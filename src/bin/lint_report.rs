//! Generates the golden lint report (`results/lint_report.txt`).
//!
//! Lints every kernel in the shared parse-fuzz corpus
//! (`rfh_testkit::corpus::KERNELS`) and every registered workload, the
//! latter both unallocated and after allocation under the paper's best
//! configuration. The output is byte-identical regardless of `RFH_JOBS`:
//! kernels are linted in parallel but results are emitted in input order.
//!
//! Usage: `lint_report > results/lint_report.txt` (CI regenerates the
//! report and `cmp`s it against the committed golden copy).

use rfh_lint::{human_line, lint_kernel, LintOptions};

fn main() {
    print!("{}", report());
}

fn report() -> String {
    let mut out = String::new();
    out.push_str("# rfh-lint golden report\n");
    out.push_str("# corpus kernels, then workloads (unallocated + allocated)\n");

    // ---- parse-fuzz corpus ----
    let corpus: Vec<(String, &str)> = rfh_testkit::corpus::KERNELS
        .iter()
        .enumerate()
        .map(|(i, text)| (format!("corpus[{i}]"), *text))
        .collect();
    let sections = rfh_testkit::pool::par_map(&corpus, |(name, text)| {
        let mut s = format!("\n== {name} ==\n");
        match rfh_isa::parse_kernel(text).and_then(|k| rfh_isa::validate(&k).map(|()| k)) {
            Err(e) => {
                s.push_str(&format!("rejected: {e}\n"));
            }
            Ok(kernel) => lint_into(&mut s, name, &kernel, &LintOptions::default()),
        }
        s
    });
    for s in sections {
        out.push_str(&s);
    }

    // ---- workloads ----
    let workloads = rfh_workloads::all();
    let config = rfh_alloc::AllocConfig::default();
    let model = rfh_energy::EnergyModel::paper();
    let sections = rfh_testkit::pool::par_map(&workloads, |w| {
        let mut s = format!("\n== workload {} ==\n", w.name);
        lint_into(
            &mut s,
            &w.name,
            &w.kernel,
            &LintOptions {
                alloc: config,
                ..Default::default()
            },
        );
        let mut allocated = w.kernel.clone();
        match rfh_alloc::allocate(&mut allocated, &config, &model) {
            Err(e) => s.push_str(&format!("allocation error: {e}\n")),
            Ok(_) => {
                s.push_str(&format!("-- {} (allocated) --\n", w.name));
                lint_into(
                    &mut s,
                    &w.name,
                    &allocated,
                    &LintOptions {
                        alloc: config,
                        ..Default::default()
                    },
                );
            }
        }
        s
    });
    for s in sections {
        out.push_str(&s);
    }
    out
}

fn lint_into(out: &mut String, name: &str, kernel: &rfh_isa::Kernel, options: &LintOptions) {
    let diags = lint_kernel(kernel, options);
    if diags.is_empty() {
        out.push_str("clean\n");
        return;
    }
    for d in &diags {
        out.push_str(&human_line(name, d));
        out.push('\n');
    }
}
