//! `rfhc` — the standalone hierarchy compiler driver.
//!
//! Reads a kernel in the textual assembly format, runs strand marking,
//! liveness, and LRF/ORF/MRF allocation, and prints the annotated result
//! (or plain text with only the strand bits via `--plain`).
//!
//! ```text
//! rfhc [--orf N] [--lrf none|unified|split] [--no-partial] [--no-readop]
//!      [--plain] [--stats] <kernel.rfasm | ->
//! ```
//!
//! Exit codes are stable per error class (see `docs/ROBUSTNESS.md`):
//! 0 success, 1 I/O, 2 usage, 3 parse error, 4 invalid kernel, 5 bad
//! allocation config, 70 internal panic.

use std::io::Read;
use std::process::exit;

use rfh::alloc::{allocate, AllocConfig, LrfMode};
use rfh::energy::EnergyModel;
use rfh::{RfhError, EXIT_INTERNAL_PANIC};

const USAGE: &str = "usage: rfhc [--orf N] [--lrf none|unified|split] [--no-partial] \
     [--no-readop] [--plain] [--stats] <kernel.rfasm | ->";

fn usage(msg: &str) -> RfhError {
    RfhError::Usage(format!("{msg}\n{USAGE}"))
}

fn main() {
    // The libraries are panic-free by contract; a panic that reaches this
    // boundary is a toolchain bug and gets its own exit code so scripted
    // callers can tell it apart from every expected failure.
    let code = match std::panic::catch_unwind(real_main) {
        Ok(Ok(())) => 0,
        Ok(Err(e)) => {
            eprintln!("rfhc: {e}");
            e.exit_code()
        }
        Err(_) => {
            eprintln!("rfhc: internal error (panic); this is a bug");
            EXIT_INTERNAL_PANIC
        }
    };
    exit(code);
}

fn real_main() -> Result<(), RfhError> {
    let mut config = AllocConfig::three_level(3, true);
    let mut plain = false;
    let mut stats_only = false;
    let mut input: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--orf" => {
                let n = args.next().ok_or_else(|| usage("--orf needs a value"))?;
                config.orf_entries = n
                    .parse()
                    .map_err(|_| usage("--orf needs an integer value"))?;
                if config.orf_entries > 8 {
                    return Err(usage("ORF sizes beyond 8 entries have no energy model"));
                }
            }
            "--lrf" => {
                config.lrf = match args.next().as_deref() {
                    Some("none") => LrfMode::None,
                    Some("unified") => LrfMode::Unified,
                    Some("split") => LrfMode::Split,
                    _ => return Err(usage("--lrf needs none|unified|split")),
                }
            }
            "--no-partial" => config.partial_ranges = false,
            "--no-readop" => config.read_operands = false,
            "--plain" => plain = true,
            "--stats" => stats_only = true,
            "--help" | "-h" => return Err(usage("")),
            "-" if input.is_none() => input = Some("-".into()),
            other if input.is_none() && !other.starts_with('-') => input = Some(other.into()),
            other => return Err(usage(&format!("unrecognized argument `{other}`"))),
        }
    }
    let path = input.ok_or_else(|| usage("no input file"))?;

    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|source| RfhError::Io {
                path: "-".into(),
                source,
            })?;
        buf
    } else {
        std::fs::read_to_string(&path).map_err(|source| RfhError::Io {
            path: path.clone(),
            source,
        })?
    };

    let mut kernel = rfh::isa::parse_kernel(&text)?;

    let stats = allocate(&mut kernel, &config, &EnergyModel::paper())?;
    if stats.demoted > 0 {
        eprintln!(
            "rfhc: warning: internal placement validation failed; \
             kernel demoted to MRF-only placement ({} demotion)",
            stats.demoted
        );
    }
    if stats_only || !plain {
        eprintln!(
            "rfhc: {} — {} strands, {} LRF values, {} ORF values ({} partial), {} read operands",
            config,
            stats.strands,
            stats.lrf_values,
            stats.orf_values,
            stats.orf_partial,
            stats.read_operands
        );
    }
    if stats_only {
        return Ok(());
    }
    if plain {
        print!("{}", rfh::isa::printer::print_kernel(&kernel));
    } else {
        print!("{}", rfh::isa::printer::print_kernel_annotated(&kernel));
    }
    Ok(())
}
