//! `rfhc` — the standalone hierarchy compiler driver.
//!
//! Reads a kernel in the textual assembly format, runs strand marking,
//! liveness, and LRF/ORF/MRF allocation, and prints the annotated result
//! (or plain text with only the strand bits via `--plain`).
//!
//! ```text
//! rfhc [--orf N] [--lrf none|unified|split] [--no-partial] [--no-readop]
//!      [--plain] [--stats] <kernel.rfasm | ->
//! ```

use std::io::Read;
use std::process::exit;

use rfh::alloc::{allocate, AllocConfig, LrfMode};
use rfh::energy::EnergyModel;

fn usage() -> ! {
    eprintln!(
        "usage: rfhc [--orf N] [--lrf none|unified|split] [--no-partial] \
         [--no-readop] [--plain] [--stats] <kernel.rfasm | ->"
    );
    exit(2)
}

fn main() {
    let mut config = AllocConfig::three_level(3, true);
    let mut plain = false;
    let mut stats_only = false;
    let mut input: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--orf" => {
                let n = args.next().unwrap_or_else(|| usage());
                config.orf_entries = n.parse().unwrap_or_else(|_| usage());
                if config.orf_entries > 8 {
                    eprintln!("rfhc: ORF sizes beyond 8 entries have no energy model");
                    exit(2);
                }
            }
            "--lrf" => {
                config.lrf = match args.next().as_deref() {
                    Some("none") => LrfMode::None,
                    Some("unified") => LrfMode::Unified,
                    Some("split") => LrfMode::Split,
                    _ => usage(),
                }
            }
            "--no-partial" => config.partial_ranges = false,
            "--no-readop" => config.read_operands = false,
            "--plain" => plain = true,
            "--stats" => stats_only = true,
            "--help" | "-h" => usage(),
            "-" if input.is_none() => input = Some("-".into()),
            other if input.is_none() && !other.starts_with('-') => input = Some(other.into()),
            _ => usage(),
        }
    }
    let Some(path) = input else { usage() };

    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("read stdin");
        buf
    } else {
        match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("rfhc: cannot read {path}: {e}");
                exit(1);
            }
        }
    };

    let mut kernel = match rfh::isa::parse_kernel(&text) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("rfhc: {e}");
            exit(1);
        }
    };

    let stats = allocate(&mut kernel, &config, &EnergyModel::paper());
    if stats_only || !plain {
        eprintln!(
            "rfhc: {} — {} strands, {} LRF values, {} ORF values ({} partial), {} read operands",
            config,
            stats.strands,
            stats.lrf_values,
            stats.orf_values,
            stats.orf_partial,
            stats.read_operands
        );
    }
    if stats_only {
        return;
    }
    if plain {
        print!("{}", rfh::isa::printer::print_kernel(&kernel));
    } else {
        print!("{}", rfh::isa::printer::print_kernel_annotated(&kernel));
    }
}
