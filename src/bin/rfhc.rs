//! `rfhc` — the standalone hierarchy compiler driver.
//!
//! Reads a kernel in the textual assembly format, runs strand marking,
//! liveness, and LRF/ORF/MRF allocation, and prints the annotated result
//! (or plain text with only the strand bits via `--plain`). The `lint`
//! subcommand runs the `rfh-lint` static analyzer instead of allocating;
//! the `trace` subcommand allocates, executes, and exports the structured
//! instruction trace (JSON lines, Chrome trace, or the per-strand energy
//! profile).
//!
//! ```text
//! rfhc [--orf N] [--lrf none|unified|split] [--no-partial] [--no-readop]
//!      [--plain] [--stats] [--jobs N] <kernel.rfasm | ->
//! rfhc lint [--orf N] [--lrf none|unified|split] [--json] [--jobs N]
//!      <kernel.rfasm | ->
//! rfhc trace [--orf N] [--lrf none|unified|split] [--no-partial]
//!      [--no-readop] [--baseline] [--json | --chrome | --profile]
//!      [--ctas N] [--threads N] [--engine soa|reference] [--jobs N]
//!      <kernel.rfasm | ->
//! ```
//!
//! `--engine` selects the executor: the warp-batched SoA engine (the
//! default) or the frozen reference interpreter it is differentially
//! tested against. Both produce byte-identical traces; the flag exists so
//! any divergence can be reproduced from the command line.
//!
//! Exit codes are stable per error class (see `docs/ROBUSTNESS.md`):
//! 0 success, 1 I/O, 2 usage, 3 parse error, 4 invalid kernel, 5 bad
//! allocation config, 6 execution error, 8 lint errors, 70 internal
//! panic. `rfhc lint` exits 0 when only warnings were found.

use std::io::Read;
use std::process::exit;

use rfh::alloc::{allocate, AllocConfig, LrfMode};
use rfh::energy::EnergyModel;
use rfh::{RfhError, EXIT_INTERNAL_PANIC};

const USAGE: &str = "usage: rfhc [--orf N] [--lrf none|unified|split] [--no-partial] \
     [--no-readop] [--plain] [--stats] [--jobs N] <kernel.rfasm | ->\n\
       rfhc lint [--orf N] [--lrf none|unified|split] [--json] [--jobs N] \
     <kernel.rfasm | ->\n\
       rfhc trace [--orf N] [--lrf none|unified|split] [--no-partial] [--no-readop] \
     [--baseline]\n\
             [--json | --chrome | --profile] [--ctas N] [--threads N] \
     [--engine soa|reference] [--jobs N]\n\
             <kernel.rfasm | ->";

fn usage(msg: &str) -> RfhError {
    RfhError::Usage(format!("{msg}\n{USAGE}"))
}

/// Applies `--jobs N`: overrides the `RFH_JOBS` pool knob for the rest of
/// the process. Parsed through the shared knob grammar, so a malformed
/// value warns loudly on stderr and falls back (exactly like a malformed
/// `RFH_JOBS` env var) instead of inventing a third behavior.
fn set_jobs(raw: &str) {
    if let Some(n) = rfh_testkit::env::parse_positive_usize("--jobs", raw) {
        std::env::set_var("RFH_JOBS", n.to_string());
    }
}

fn main() {
    // The libraries are panic-free by contract; a panic that reaches this
    // boundary is a toolchain bug and gets its own exit code so scripted
    // callers can tell it apart from every expected failure.
    let code = match std::panic::catch_unwind(real_main) {
        Ok(Ok(())) => 0,
        Ok(Err(e)) => {
            eprintln!("rfhc: {e}");
            e.exit_code()
        }
        Err(_) => {
            eprintln!("rfhc: internal error (panic); this is a bug");
            EXIT_INTERNAL_PANIC
        }
    };
    exit(code);
}

fn real_main() -> Result<(), RfhError> {
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("lint") {
        args.next();
        return lint_main(args);
    }
    if args.peek().map(String::as_str) == Some("trace") {
        args.next();
        return trace_main(args);
    }

    let mut config = AllocConfig::three_level(3, true);
    let mut plain = false;
    let mut stats_only = false;
    let mut input: Option<String> = None;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--orf" => {
                let n = args.next().ok_or_else(|| usage("--orf needs a value"))?;
                config.orf_entries = n
                    .parse()
                    .map_err(|_| usage("--orf needs an integer value"))?;
                if config.orf_entries > 8 {
                    return Err(usage("ORF sizes beyond 8 entries have no energy model"));
                }
            }
            "--lrf" => {
                config.lrf = match args.next().as_deref() {
                    Some("none") => LrfMode::None,
                    Some("unified") => LrfMode::Unified,
                    Some("split") => LrfMode::Split,
                    _ => return Err(usage("--lrf needs none|unified|split")),
                }
            }
            "--no-partial" => config.partial_ranges = false,
            "--no-readop" => config.read_operands = false,
            "--plain" => plain = true,
            "--stats" => stats_only = true,
            "--jobs" => set_jobs(&args.next().ok_or_else(|| usage("--jobs needs a value"))?),
            "--help" | "-h" => return Err(usage("")),
            "-" if input.is_none() => input = Some("-".into()),
            other if input.is_none() && !other.starts_with('-') => input = Some(other.into()),
            other => return Err(usage(&format!("unrecognized argument `{other}`"))),
        }
    }
    let path = input.ok_or_else(|| usage("no input file"))?;
    let text = read_input(&path)?;

    let mut kernel = rfh::isa::parse_kernel(&text)?;

    let stats = allocate(&mut kernel, &config, &EnergyModel::paper())?;
    if stats.demoted > 0 {
        eprintln!(
            "rfhc: warning: internal placement validation failed; \
             kernel demoted to MRF-only placement ({} demotion)",
            stats.demoted
        );
    }
    if stats_only || !plain {
        eprintln!(
            "rfhc: {} — {} strands, {} LRF values, {} ORF values ({} partial), {} read operands",
            config,
            stats.strands,
            stats.lrf_values,
            stats.orf_values,
            stats.orf_partial,
            stats.read_operands
        );
    }
    if stats_only {
        return Ok(());
    }
    if plain {
        print!("{}", rfh::isa::printer::print_kernel(&kernel));
    } else {
        print!("{}", rfh::isa::printer::print_kernel_annotated(&kernel));
    }
    Ok(())
}

/// The `rfhc lint` subcommand: parse, validate, lint, render.
///
/// Diagnostics go to stdout (human lines, or JSON lines under `--json`);
/// the summary goes to stderr. Error-severity findings exit 8; warnings
/// alone exit 0.
fn lint_main(mut args: std::iter::Peekable<impl Iterator<Item = String>>) -> Result<(), RfhError> {
    let mut options = rfh::lint::LintOptions::default();
    let mut json = false;
    let mut input: Option<String> = None;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--orf" => {
                let n = args.next().ok_or_else(|| usage("--orf needs a value"))?;
                options.alloc.orf_entries = n
                    .parse()
                    .map_err(|_| usage("--orf needs an integer value"))?;
            }
            "--lrf" => {
                options.alloc.lrf = match args.next().as_deref() {
                    Some("none") => LrfMode::None,
                    Some("unified") => LrfMode::Unified,
                    Some("split") => LrfMode::Split,
                    _ => return Err(usage("--lrf needs none|unified|split")),
                }
            }
            "--json" => json = true,
            "--jobs" => set_jobs(&args.next().ok_or_else(|| usage("--jobs needs a value"))?),
            "--help" | "-h" => return Err(usage("")),
            "-" if input.is_none() => input = Some("-".into()),
            other if input.is_none() && !other.starts_with('-') => input = Some(other.into()),
            other => return Err(usage(&format!("unrecognized argument `{other}`"))),
        }
    }
    let path = input.ok_or_else(|| usage("no input file"))?;
    let text = read_input(&path)?;

    let kernel = rfh::isa::parse_kernel(&text)?;
    rfh::isa::validate(&kernel)?;

    let name = if path == "-" {
        "<stdin>"
    } else {
        path.as_str()
    };
    let diags = rfh::lint::lint_kernel(&kernel, &options);
    for d in &diags {
        if json {
            println!("{}", rfh::lint::json_line(name, d));
        } else {
            println!("{}", rfh::lint::human_line(name, d));
        }
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity() == rfh::lint::Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    eprintln!("rfhc lint: {errors} error(s), {warnings} warning(s)");
    if errors > 0 {
        return Err(RfhError::Lint { errors });
    }
    Ok(())
}

/// Output format of `rfhc trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Json,
    Chrome,
    Profile,
}

/// The `rfhc trace` subcommand: parse, allocate (unless `--baseline`),
/// execute, and export the structured trace.
///
/// The trace goes to stdout in the selected format (JSON lines by
/// default); a one-line summary goes to stderr. The whole observer stack
/// — exporter, per-strand energy profiler, access counter — hangs off one
/// `FanoutSink`, so the executor sees a single sink.
fn trace_main(mut args: std::iter::Peekable<impl Iterator<Item = String>>) -> Result<(), RfhError> {
    let mut config = AllocConfig::three_level(3, true);
    let mut baseline = false;
    let mut format = TraceFormat::Json;
    let mut ctas: usize = 1;
    let mut threads: usize = 64;
    let mut engine = rfh::sim::Engine::default();
    let mut input: Option<String> = None;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--orf" => {
                let n = args.next().ok_or_else(|| usage("--orf needs a value"))?;
                config.orf_entries = n
                    .parse()
                    .map_err(|_| usage("--orf needs an integer value"))?;
                if config.orf_entries > 8 {
                    return Err(usage("ORF sizes beyond 8 entries have no energy model"));
                }
            }
            "--lrf" => {
                config.lrf = match args.next().as_deref() {
                    Some("none") => LrfMode::None,
                    Some("unified") => LrfMode::Unified,
                    Some("split") => LrfMode::Split,
                    _ => return Err(usage("--lrf needs none|unified|split")),
                }
            }
            "--no-partial" => config.partial_ranges = false,
            "--no-readop" => config.read_operands = false,
            "--baseline" => baseline = true,
            "--json" => format = TraceFormat::Json,
            "--chrome" => format = TraceFormat::Chrome,
            "--profile" => format = TraceFormat::Profile,
            "--ctas" => {
                ctas = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| usage("--ctas needs a positive integer"))?;
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| usage("--threads needs a positive integer"))?;
            }
            "--engine" => {
                engine = args
                    .next()
                    .as_deref()
                    .and_then(rfh::sim::Engine::from_name)
                    .ok_or_else(|| usage("--engine needs soa|reference"))?;
            }
            "--jobs" => set_jobs(&args.next().ok_or_else(|| usage("--jobs needs a value"))?),
            "--help" | "-h" => return Err(usage("")),
            "-" if input.is_none() => input = Some("-".into()),
            other if input.is_none() && !other.starts_with('-') => input = Some(other.into()),
            other => return Err(usage(&format!("unrecognized argument `{other}`"))),
        }
    }
    let path = input.ok_or_else(|| usage("no input file"))?;
    let text = read_input(&path)?;

    let mut kernel = rfh::isa::parse_kernel(&text)?;
    let mode = if baseline {
        rfh::isa::validate(&kernel)?;
        rfh::sim::ExecMode::Baseline
    } else {
        allocate(&mut kernel, &config, &EnergyModel::paper())?;
        rfh::sim::ExecMode::Hierarchy(config)
    };

    let mut exporter = rfh::sim::TraceExporter::new(&kernel);
    let mut profiler =
        rfh::sim::EnergyProfiler::new(&kernel, EnergyModel::paper(), config.orf_entries);
    let mut counter = rfh::sim::SwCounter::default();
    let mut fan = rfh::sim::FanoutSink::new()
        .with(&mut exporter)
        .with(&mut profiler)
        .with(&mut counter);

    let launch = rfh::sim::Launch::new(ctas, threads);
    let mut mem = rfh::sim::GlobalMemory::new(1 << 16);
    let machine = rfh::sim::MachineConfig::paper();
    rfh::sim::execute_with_engine(
        &kernel,
        &launch,
        &mut mem,
        mode,
        &machine,
        engine,
        &mut [&mut fan],
    )?;

    match format {
        TraceFormat::Json => print!("{}", exporter.json_lines()),
        TraceFormat::Chrome => print!("{}", exporter.chrome_trace()),
        TraceFormat::Profile => print!("{}", profiler.render()),
    }
    eprintln!(
        "rfhc trace: {} — {} strand(s), total energy {:.3} pJ",
        exporter.summary(),
        profiler.per_strand().len(),
        profiler.total_energy().total()
    );
    Ok(())
}

/// Reads the kernel text from a file path or stdin (`-`).
fn read_input(path: &str) -> Result<String, RfhError> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|source| RfhError::Io {
                path: "-".into(),
                source,
            })?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|source| RfhError::Io {
            path: path.to_string(),
            source,
        })
    }
}
