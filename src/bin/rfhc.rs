//! `rfhc` — the standalone hierarchy compiler driver.
//!
//! Reads a kernel in the textual assembly format, runs strand marking,
//! liveness, and LRF/ORF/MRF allocation, and prints the annotated result
//! (or plain text with only the strand bits via `--plain`). The `lint`
//! subcommand runs the `rfh-lint` static analyzer instead of allocating;
//! the `trace` subcommand allocates, executes, and exports the structured
//! instruction trace (JSON lines, Chrome trace, or the per-strand energy
//! profile).
//!
//! ```text
//! rfhc [--orf N] [--lrf none|unified|split] [--no-partial] [--no-readop]
//!      [--hints] [--plain] [--stats] [--jobs N] <kernel.rfasm | ->
//! rfhc lint [--orf N] [--lrf none|unified|split] [--json]
//!      [--deny-warnings] [--jobs N] <kernel.rfasm | ->
//! rfhc trace [--orf N] [--lrf none|unified|split] [--no-partial]
//!      [--no-readop] [--hints] [--baseline] [--json | --chrome | --profile]
//!      [--ctas N] [--threads N] [--engine soa|reference] [--jobs N]
//!      <kernel.rfasm | ->
//! ```
//!
//! `--hints` feeds the allocator compiler-assisted last-use hints from the
//! abstract interpreter (`rfh_analysis::absint`): reads proven to be a
//! value's final read release its ORF/LRF entry immediately, eliding
//! same-guard MRF safety copies. `--deny-warnings` makes `rfhc lint` exit
//! with the lint error code on *any* finding, notes included.
//!
//! `--engine` selects the executor: the warp-batched SoA engine (the
//! default) or the frozen reference interpreter it is differentially
//! tested against. Both produce byte-identical traces; the flag exists so
//! any divergence can be reproduced from the command line.
//!
//! The `timing` subcommand replays a captured instruction trace through
//! the cycle-level two-level-scheduler model (`rfh::sim::timing`) across
//! `--sms N` SM contexts sharing a contended memory model, and prints the
//! per-SM and chip-level results. Its own `--engine staged|reference`
//! flag picks between the stage-combinator engine (the default) and the
//! frozen reference oracle; both produce identical results, and the
//! output is byte-identical at any `--jobs` count.
//!
//! The `serve` subcommand runs the compile-service daemon (`rfh-rfhd`) in
//! the foreground; `client` drives it — one request, or the
//! `--replay-workloads` load generator with `--bench-json` output.
//!
//! Exit codes are stable per error class (see `docs/ROBUSTNESS.md`):
//! 0 success, 1 I/O, 2 usage, 3 parse error, 4 invalid kernel, 5 bad
//! allocation config, 6 execution error, 8 lint errors, 9 daemon failure
//! (protocol violation, timeout, overload), 70 internal panic. `rfhc
//! lint` exits 0 when only warnings were found; `rfhc client` maps a
//! daemon error frame to the frame's own class code.

use std::io::Read;
use std::process::exit;

use rfh::alloc::{allocate_with_hints, AllocConfig, LrfMode};
use rfh::energy::EnergyModel;
use rfh::{RfhError, EXIT_INTERNAL_PANIC};

const USAGE: &str = "usage: rfhc [--orf N] [--lrf none|unified|split] [--no-partial] \
     [--no-readop] [--hints] [--plain] [--stats] [--jobs N] <kernel.rfasm | ->\n\
       rfhc lint [--orf N] [--lrf none|unified|split] [--json] [--deny-warnings] \
     [--jobs N] <kernel.rfasm | ->\n\
       rfhc trace [--orf N] [--lrf none|unified|split] [--no-partial] [--no-readop] \
     [--hints] [--baseline]\n\
             [--json | --chrome | --profile] [--ctas N] [--threads N] \
     [--engine soa|reference] [--jobs N]\n\
             <kernel.rfasm | ->\n\
       rfhc timing [--sms N] [--engine staged|reference] [--active N | --single-level] \
     [--greedy]\n\
             [--uncontended] [--ctas N] [--threads N] [--jobs N] \
     (--workload NAME | <kernel.rfasm | ->)\n\
       rfhc serve (--tcp HOST:PORT | --unix PATH) [--workers N]\n\
       rfhc client (--tcp HOST:PORT | --unix PATH) [--op OP] [--workload NAME] \
     [--timeout-ms N]\n\
             [--replay-workloads [--jobs N] [--rounds N] [--bench-json PATH]] \
     [--edit-replay]\n\
             [--malformed-probe] [<kernel.rfasm | ->]";

fn usage(msg: &str) -> RfhError {
    RfhError::Usage(format!("{msg}\n{USAGE}"))
}

/// Applies `--jobs N`: overrides the `RFH_JOBS` pool knob for the rest of
/// the process. Parsed through the shared knob grammar, so a malformed
/// value warns loudly on stderr and falls back (exactly like a malformed
/// `RFH_JOBS` env var) instead of inventing a third behavior.
fn set_jobs(raw: &str) {
    if let Some(n) = rfh_testkit::env::parse_positive_usize("--jobs", raw) {
        std::env::set_var("RFH_JOBS", n.to_string());
    }
}

fn main() {
    // The libraries are panic-free by contract; a panic that reaches this
    // boundary is a toolchain bug and gets its own exit code so scripted
    // callers can tell it apart from every expected failure.
    let code = match std::panic::catch_unwind(real_main) {
        Ok(Ok(())) => 0,
        Ok(Err(e)) => {
            eprintln!("rfhc: {e}");
            e.exit_code()
        }
        Err(_) => {
            eprintln!("rfhc: internal error (panic); this is a bug");
            EXIT_INTERNAL_PANIC
        }
    };
    exit(code);
}

fn real_main() -> Result<(), RfhError> {
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("lint") {
        args.next();
        return lint_main(args);
    }
    if args.peek().map(String::as_str) == Some("trace") {
        args.next();
        return trace_main(args);
    }
    if args.peek().map(String::as_str) == Some("timing") {
        args.next();
        return timing_main(args);
    }
    if args.peek().map(String::as_str) == Some("serve") {
        args.next();
        return serve_main(args);
    }
    if args.peek().map(String::as_str) == Some("client") {
        args.next();
        return client_main(args);
    }

    let mut config = AllocConfig::three_level(3, true);
    let mut hints = false;
    let mut plain = false;
    let mut stats_only = false;
    let mut input: Option<String> = None;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--orf" => {
                let n = args.next().ok_or_else(|| usage("--orf needs a value"))?;
                config.orf_entries = n
                    .parse()
                    .map_err(|_| usage("--orf needs an integer value"))?;
                if config.orf_entries > 8 {
                    return Err(usage("ORF sizes beyond 8 entries have no energy model"));
                }
            }
            "--lrf" => {
                config.lrf = match args.next().as_deref() {
                    Some("none") => LrfMode::None,
                    Some("unified") => LrfMode::Unified,
                    Some("split") => LrfMode::Split,
                    _ => return Err(usage("--lrf needs none|unified|split")),
                }
            }
            "--no-partial" => config.partial_ranges = false,
            "--no-readop" => config.read_operands = false,
            "--hints" => hints = true,
            "--plain" => plain = true,
            "--stats" => stats_only = true,
            "--jobs" => set_jobs(&args.next().ok_or_else(|| usage("--jobs needs a value"))?),
            "--help" | "-h" => return Err(usage("")),
            "-" if input.is_none() => input = Some("-".into()),
            other if input.is_none() && !other.starts_with('-') => input = Some(other.into()),
            other => return Err(usage(&format!("unrecognized argument `{other}`"))),
        }
    }
    let path = input.ok_or_else(|| usage("no input file"))?;
    let text = read_input(&path)?;

    let mut kernel = rfh::isa::parse_kernel(&text)?;

    let stats = allocate_with_hints(&mut kernel, &config, &EnergyModel::paper(), hints)?;
    if stats.demoted > 0 {
        eprintln!(
            "rfhc: warning: internal placement validation failed; \
             kernel demoted to MRF-only placement ({} demotion)",
            stats.demoted
        );
    }
    if stats_only || !plain {
        eprintln!(
            "rfhc: {} — {} strands, {} LRF values, {} ORF values ({} partial), {} read operands",
            config,
            stats.strands,
            stats.lrf_values,
            stats.orf_values,
            stats.orf_partial,
            stats.read_operands
        );
    }
    if stats_only {
        return Ok(());
    }
    if plain {
        print!("{}", rfh::isa::printer::print_kernel(&kernel));
    } else {
        print!("{}", rfh::isa::printer::print_kernel_annotated(&kernel));
    }
    Ok(())
}

/// The `rfhc lint` subcommand: parse, validate, lint, render.
///
/// Diagnostics go to stdout (human lines, or JSON lines under `--json`);
/// the summary goes to stderr. Error-severity findings exit 8; warnings
/// and notes alone exit 0 — unless `--deny-warnings` turns *any* finding
/// into the lint exit code (for CI gates that keep reports empty).
fn lint_main(mut args: std::iter::Peekable<impl Iterator<Item = String>>) -> Result<(), RfhError> {
    let mut options = rfh::lint::LintOptions::default();
    let mut json = false;
    let mut deny_warnings = false;
    let mut input: Option<String> = None;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--orf" => {
                let n = args.next().ok_or_else(|| usage("--orf needs a value"))?;
                options.alloc.orf_entries = n
                    .parse()
                    .map_err(|_| usage("--orf needs an integer value"))?;
            }
            "--lrf" => {
                options.alloc.lrf = match args.next().as_deref() {
                    Some("none") => LrfMode::None,
                    Some("unified") => LrfMode::Unified,
                    Some("split") => LrfMode::Split,
                    _ => return Err(usage("--lrf needs none|unified|split")),
                }
            }
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--jobs" => set_jobs(&args.next().ok_or_else(|| usage("--jobs needs a value"))?),
            "--help" | "-h" => return Err(usage("")),
            "-" if input.is_none() => input = Some("-".into()),
            other if input.is_none() && !other.starts_with('-') => input = Some(other.into()),
            other => return Err(usage(&format!("unrecognized argument `{other}`"))),
        }
    }
    let path = input.ok_or_else(|| usage("no input file"))?;
    let text = read_input(&path)?;

    let kernel = rfh::isa::parse_kernel(&text)?;
    rfh::isa::validate(&kernel)?;

    let name = if path == "-" {
        "<stdin>"
    } else {
        path.as_str()
    };
    let diags = rfh::lint::lint_kernel(&kernel, &options);
    for d in &diags {
        if json {
            println!("{}", rfh::lint::json_line(name, d));
        } else {
            println!("{}", rfh::lint::human_line(name, d));
        }
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity() == rfh::lint::Severity::Error)
        .count();
    let notes = diags
        .iter()
        .filter(|d| d.severity() == rfh::lint::Severity::Note)
        .count();
    let warnings = diags.len() - errors - notes;
    eprintln!("rfhc lint: {errors} error(s), {warnings} warning(s), {notes} note(s)");
    if errors > 0 {
        return Err(RfhError::Lint { errors });
    }
    if deny_warnings && !diags.is_empty() {
        eprintln!("rfhc lint: --deny-warnings treats every finding as an error");
        return Err(RfhError::Lint {
            errors: diags.len(),
        });
    }
    Ok(())
}

/// Output format of `rfhc trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Json,
    Chrome,
    Profile,
}

/// The `rfhc trace` subcommand: parse, allocate (unless `--baseline`),
/// execute, and export the structured trace.
///
/// The trace goes to stdout in the selected format (JSON lines by
/// default); a one-line summary goes to stderr. The whole observer stack
/// — exporter, per-strand energy profiler, access counter — hangs off one
/// `FanoutSink`, so the executor sees a single sink.
fn trace_main(mut args: std::iter::Peekable<impl Iterator<Item = String>>) -> Result<(), RfhError> {
    let mut config = AllocConfig::three_level(3, true);
    let mut hints = false;
    let mut baseline = false;
    let mut format = TraceFormat::Json;
    let mut ctas: usize = 1;
    let mut threads: usize = 64;
    let mut engine = rfh::sim::Engine::default();
    let mut input: Option<String> = None;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--orf" => {
                let n = args.next().ok_or_else(|| usage("--orf needs a value"))?;
                config.orf_entries = n
                    .parse()
                    .map_err(|_| usage("--orf needs an integer value"))?;
                if config.orf_entries > 8 {
                    return Err(usage("ORF sizes beyond 8 entries have no energy model"));
                }
            }
            "--lrf" => {
                config.lrf = match args.next().as_deref() {
                    Some("none") => LrfMode::None,
                    Some("unified") => LrfMode::Unified,
                    Some("split") => LrfMode::Split,
                    _ => return Err(usage("--lrf needs none|unified|split")),
                }
            }
            "--no-partial" => config.partial_ranges = false,
            "--no-readop" => config.read_operands = false,
            "--hints" => hints = true,
            "--baseline" => baseline = true,
            "--json" => format = TraceFormat::Json,
            "--chrome" => format = TraceFormat::Chrome,
            "--profile" => format = TraceFormat::Profile,
            "--ctas" => {
                ctas = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| usage("--ctas needs a positive integer"))?;
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| usage("--threads needs a positive integer"))?;
            }
            "--engine" => {
                engine = args
                    .next()
                    .as_deref()
                    .and_then(rfh::sim::Engine::from_name)
                    .ok_or_else(|| usage("--engine needs soa|reference"))?;
            }
            "--jobs" => set_jobs(&args.next().ok_or_else(|| usage("--jobs needs a value"))?),
            "--help" | "-h" => return Err(usage("")),
            "-" if input.is_none() => input = Some("-".into()),
            other if input.is_none() && !other.starts_with('-') => input = Some(other.into()),
            other => return Err(usage(&format!("unrecognized argument `{other}`"))),
        }
    }
    let path = input.ok_or_else(|| usage("no input file"))?;
    let text = read_input(&path)?;

    let mut kernel = rfh::isa::parse_kernel(&text)?;
    let mode = if baseline {
        rfh::isa::validate(&kernel)?;
        rfh::sim::ExecMode::Baseline
    } else {
        allocate_with_hints(&mut kernel, &config, &EnergyModel::paper(), hints)?;
        rfh::sim::ExecMode::Hierarchy(config)
    };

    let mut exporter = rfh::sim::TraceExporter::new(&kernel);
    let mut profiler =
        rfh::sim::EnergyProfiler::new(&kernel, EnergyModel::paper(), config.orf_entries);
    let mut counter = rfh::sim::SwCounter::default();
    let mut fan = rfh::sim::FanoutSink::new()
        .with(&mut exporter)
        .with(&mut profiler)
        .with(&mut counter);

    let launch = rfh::sim::Launch::new(ctas, threads);
    let mut mem = rfh::sim::GlobalMemory::new(1 << 16);
    let machine = rfh::sim::MachineConfig::paper();
    rfh::sim::execute_with_engine(
        &kernel,
        &launch,
        &mut mem,
        mode,
        &machine,
        engine,
        &mut [&mut fan],
    )?;

    match format {
        TraceFormat::Json => print!("{}", exporter.json_lines()),
        TraceFormat::Chrome => print!("{}", exporter.chrome_trace()),
        TraceFormat::Profile => print!("{}", profiler.render()),
    }
    eprintln!(
        "rfhc trace: {} — {} strand(s), total energy {:.3} pJ",
        exporter.summary(),
        profiler.per_strand().len(),
        profiler.total_energy().total()
    );
    Ok(())
}

/// The `rfhc timing` subcommand: capture a baseline instruction trace
/// and replay it through the cycle-level scheduler model across `--sms`
/// SM contexts.
///
/// The kernel comes from `--workload NAME` (a paper-suite workload with
/// its own launch geometry and memory image) or a kernel file; the
/// per-SM result table goes to stdout and a chip-level summary to
/// stderr. SMs simulate in parallel over the worker pool with results
/// folded in SM order, so the output is byte-identical at any `--jobs`
/// count.
fn timing_main(
    mut args: std::iter::Peekable<impl Iterator<Item = String>>,
) -> Result<(), RfhError> {
    use rfh::sim::timing::{Engine, MemoryModel, MultiSmConfig, TimingConfig, TraceCapture};

    let mut sms: usize = 1;
    let mut engine = Engine::default();
    let mut active: usize = 8;
    let mut single_level = false;
    let mut greedy = false;
    let mut uncontended = false;
    let mut ctas: usize = 1;
    let mut threads: usize = 64;
    let mut workload: Option<String> = None;
    let mut input: Option<String> = None;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sms" => {
                sms = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| usage("--sms needs a positive integer"))?;
            }
            "--engine" => {
                engine = args
                    .next()
                    .as_deref()
                    .and_then(Engine::from_name)
                    .ok_or_else(|| usage("--engine needs staged|reference"))?;
            }
            "--active" => {
                active = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .ok_or_else(|| usage("--active needs an integer value"))?;
            }
            "--single-level" => single_level = true,
            "--greedy" => greedy = true,
            "--uncontended" => uncontended = true,
            "--ctas" => {
                ctas = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| usage("--ctas needs a positive integer"))?;
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| usage("--threads needs a positive integer"))?;
            }
            "--workload" => {
                workload = Some(
                    args.next()
                        .ok_or_else(|| usage("--workload needs a name"))?,
                )
            }
            "--jobs" => set_jobs(&args.next().ok_or_else(|| usage("--jobs needs a value"))?),
            "--help" | "-h" => return Err(usage("")),
            "-" if input.is_none() => input = Some("-".into()),
            other if input.is_none() && !other.starts_with('-') => input = Some(other.into()),
            other => return Err(usage(&format!("unrecognized argument `{other}`"))),
        }
    }

    // The trace source: a paper-suite workload (own launch geometry and
    // memory image) or a kernel file under `--ctas`/`--threads`.
    let machine = rfh::sim::MachineConfig::paper();
    let (name, kernel, launch, mut mem) = match (&workload, &input) {
        (Some(_), Some(_)) => {
            return Err(usage("--workload and a kernel file are mutually exclusive"))
        }
        (Some(name), None) => {
            let w = rfh::workloads::by_name(name).ok_or_else(|| {
                usage(&format!(
                    "unknown workload `{name}` (see `rfh::workloads::all`)"
                ))
            })?;
            (w.name.to_string(), w.kernel, w.launch, w.memory)
        }
        (None, Some(path)) => {
            let text = read_input(path)?;
            let kernel = rfh::isa::parse_kernel(&text)?;
            rfh::isa::validate(&kernel)?;
            (
                path.clone(),
                kernel,
                rfh::sim::Launch::new(ctas, threads),
                rfh::sim::GlobalMemory::new(1 << 16),
            )
        }
        (None, None) => return Err(usage("timing needs --workload NAME or a kernel file")),
    };

    let mut cap = TraceCapture::new(machine.clone(), launch.threads_per_cta);
    rfh::sim::exec::execute_with(
        &kernel,
        &launch,
        &mut mem,
        rfh::sim::ExecMode::Baseline,
        &machine,
        &mut [&mut cap],
    )?;

    let mut per_sm = if single_level {
        TimingConfig::single_level()
    } else {
        TimingConfig::two_level(active)
    };
    if greedy {
        per_sm = per_sm.with_policy(rfh::sim::SchedPolicy::Greedy);
    }
    let mut config = MultiSmConfig::new(sms, per_sm).with_engine(engine);
    if uncontended {
        config = config.with_memory(MemoryModel::uncontended());
    }

    let result = rfh::sim::timing::simulate_multi_sm(&cap.traces, &|w| cap.cta_of(w), &config)?;
    for s in &result.per_sm {
        println!(
            "sm {}: ctas {} warps {} cycles {} instructions {} deschedules {} ipc {:.4}",
            s.sm,
            s.ctas,
            s.warps,
            s.result.cycles,
            s.result.instructions,
            s.result.deschedules,
            s.result.ipc()
        );
    }
    println!(
        "total: sms {} cycles {} instructions {} deschedules {} ipc {:.4}",
        sms,
        result.cycles(),
        result.instructions(),
        result.deschedules(),
        result.ipc()
    );
    eprintln!(
        "rfhc timing: {name} — {} warp(s) in {} CTA(s) across {sms} SM(s), \
         engine {}, chip IPC {:.4}",
        cap.traces.len(),
        launch.ctas,
        engine.name(),
        result.ipc()
    );
    Ok(())
}

/// Parses the shared `--tcp HOST:PORT | --unix PATH` endpoint flags.
/// Returns `None` when the argument is not an endpoint flag.
fn parse_endpoint_flag(
    arg: &str,
    args: &mut std::iter::Peekable<impl Iterator<Item = String>>,
    endpoint: &mut Option<rfh::rfhd::Endpoint>,
) -> Result<bool, RfhError> {
    match arg {
        "--tcp" => {
            let addr = args.next().ok_or_else(|| usage("--tcp needs HOST:PORT"))?;
            *endpoint = Some(rfh::rfhd::Endpoint::Tcp(addr));
            Ok(true)
        }
        "--unix" => {
            let path = args.next().ok_or_else(|| usage("--unix needs a path"))?;
            *endpoint = Some(rfh::rfhd::Endpoint::Unix(path.into()));
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// The `rfhc serve` subcommand: run the compile-service daemon in the
/// foreground until a `shutdown` request drains it.
///
/// The `RFHD_TIMEOUT_MS`, `RFHD_QUEUE_DEPTH`, and `RFHD_CACHE_ENTRIES`
/// environment knobs configure the per-request wall-clock timeout, the
/// accept-queue depth, and the result-cache capacity; all three follow
/// the shared knob grammar (decimal or `0x`-hex, loud warning and
/// fallback on a malformed value).
fn serve_main(mut args: std::iter::Peekable<impl Iterator<Item = String>>) -> Result<(), RfhError> {
    let mut endpoint: Option<rfh::rfhd::Endpoint> = None;
    let mut workers: Option<usize> = None;
    while let Some(arg) = args.next() {
        if parse_endpoint_flag(&arg, &mut args, &mut endpoint)? {
            continue;
        }
        match arg.as_str() {
            "--workers" => {
                let raw = args
                    .next()
                    .ok_or_else(|| usage("--workers needs a value"))?;
                workers = Some(
                    rfh_testkit::env::parse_positive_usize("--workers", &raw)
                        .ok_or_else(|| usage("--workers needs a positive integer"))?,
                );
            }
            "--help" | "-h" => return Err(usage("")),
            other => return Err(usage(&format!("unrecognized argument `{other}`"))),
        }
    }
    let endpoint = endpoint.ok_or_else(|| usage("serve needs --tcp HOST:PORT or --unix PATH"))?;
    let mut cfg = rfh::rfhd::ServerConfig::from_env(endpoint);
    if let Some(w) = workers {
        cfg.workers = w;
    }
    let server = rfh::rfhd::Server::bind(cfg).map_err(|e| RfhError::Daemon {
        message: format!("cannot bind: {e}"),
        code: 9,
    })?;
    eprintln!("rfhc serve: listening on {}", server.endpoint());
    let report = server.run().map_err(|e| RfhError::Daemon {
        message: format!("accept loop failed: {e}"),
        code: 9,
    })?;
    eprintln!(
        "rfhc serve: drained — {} served, {} shed, {} timeout(s), {} compute panic(s), \
         {} pool panic(s), {} in flight",
        report.served,
        report.shed,
        report.timeouts,
        report.compute_panics,
        report.pool_panics,
        report.in_flight_at_exit
    );
    Ok(())
}

/// The `rfhc client` subcommand: one request against a daemon, or the
/// `--replay-workloads` load generator.
///
/// Single-request mode sends `--op` (default `ping`) with either a
/// kernel file (positional, `-` for stdin) or `--workload NAME`, prints
/// the `result` JSON on stdout, and exits with the error frame's own
/// class code on failure — remote failures script exactly like local
/// ones.
fn client_main(
    mut args: std::iter::Peekable<impl Iterator<Item = String>>,
) -> Result<(), RfhError> {
    let mut endpoint: Option<rfh::rfhd::Endpoint> = None;
    let mut op = "ping".to_string();
    let mut workload: Option<String> = None;
    let mut input: Option<String> = None;
    let mut timeout_ms: Option<u64> = None;
    let mut replay = false;
    let mut edit = false;
    let mut malformed = false;
    let mut rounds: usize = 2;
    let mut jobs: usize = rfh_testkit::pool::jobs();
    let mut bench_json: Option<String> = None;

    while let Some(arg) = args.next() {
        if parse_endpoint_flag(&arg, &mut args, &mut endpoint)? {
            continue;
        }
        match arg.as_str() {
            "--op" => op = args.next().ok_or_else(|| usage("--op needs a value"))?,
            "--workload" => {
                workload = Some(
                    args.next()
                        .ok_or_else(|| usage("--workload needs a name"))?,
                )
            }
            "--timeout-ms" => {
                let raw = args
                    .next()
                    .ok_or_else(|| usage("--timeout-ms needs a value"))?;
                timeout_ms = Some(
                    rfh_testkit::env::parse_u64("--timeout-ms", &raw)
                        .ok_or_else(|| usage("--timeout-ms needs an integer"))?,
                );
            }
            "--replay-workloads" => replay = true,
            "--edit-replay" => edit = true,
            "--malformed-probe" => malformed = true,
            "--rounds" => {
                let raw = args.next().ok_or_else(|| usage("--rounds needs a value"))?;
                rounds = rfh_testkit::env::parse_positive_usize("--rounds", &raw)
                    .ok_or_else(|| usage("--rounds needs a positive integer"))?;
            }
            "--jobs" => {
                let raw = args.next().ok_or_else(|| usage("--jobs needs a value"))?;
                jobs = rfh_testkit::env::parse_positive_usize("--jobs", &raw)
                    .ok_or_else(|| usage("--jobs needs a positive integer"))?;
            }
            "--bench-json" => {
                bench_json = Some(
                    args.next()
                        .ok_or_else(|| usage("--bench-json needs a path"))?,
                )
            }
            "--help" | "-h" => return Err(usage("")),
            "-" if input.is_none() => input = Some("-".into()),
            other if input.is_none() && !other.starts_with('-') => input = Some(other.into()),
            other => return Err(usage(&format!("unrecognized argument `{other}`"))),
        }
    }
    let endpoint = endpoint.ok_or_else(|| usage("client needs --tcp HOST:PORT or --unix PATH"))?;

    if malformed {
        // Diagnostic: send a deliberately malformed frame. A healthy
        // daemon answers a structured `protocol` error frame; the probe
        // then exits with that frame's class code (9), exactly as any
        // request reporting that class would — so the CI smoke can
        // assert the framing layer fails closed.
        return match rfh::rfhd::malformed_probe(&endpoint) {
            Ok(frame) => Err(RfhError::Daemon {
                code: frame.kind.exit_code(),
                message: format!("malformed-frame probe answered: {frame}"),
            }),
            Err(e) => Err(RfhError::Daemon {
                code: e.exit_code(),
                message: format!("malformed-frame probe misbehaved: {e}"),
            }),
        };
    }

    if replay {
        let report =
            rfh::rfhd::replay_workloads(&endpoint, jobs, rounds, rfh::rfhd::RetryPolicy::default());
        eprintln!(
            "rfhc client: replayed {} request(s) with {} job(s) in {} ms — {} ok \
             ({} cached), {} failed",
            report.entries.len(),
            report.jobs,
            report.wall_ms,
            report.ok(),
            report.cached(),
            report.failed()
        );
        if let Some(path) = bench_json.clone() {
            let rendered = report.bench_json();
            if path == "-" {
                print!("{rendered}");
            } else {
                std::fs::write(&path, rendered).map_err(|source| RfhError::Io { path, source })?;
            }
        }
        if report.failed() > 0 {
            return Err(RfhError::Daemon {
                message: format!("{} replay request(s) failed", report.failed()),
                code: 9,
            });
        }
        if !edit {
            return Ok(());
        }
    }

    if edit {
        // The before/after of incremental allocation: allocate every
        // workload cold, edit one immediate (one strand), allocate
        // again; the daemon's strand cache must splice every unchanged
        // strand. Appends to --bench-json so a replay doc written above
        // (or by an earlier run) is kept alongside.
        let report = rfh::rfhd::edit_replay(&endpoint, jobs, rfh::rfhd::RetryPolicy::default());
        eprintln!(
            "rfhc client: edit-replayed {} workload(s) with {} job(s) in {} ms — \
             {} fully spliced, {} failed ({} strands: {} cold misses, {} edit hits, \
             {} edit misses)",
            report.entries.len(),
            report.jobs,
            report.wall_ms,
            report.fully_spliced(),
            report.failed(),
            report.entries.iter().map(|e| e.strands).sum::<u64>(),
            report.entries.iter().map(|e| e.cold_misses).sum::<u64>(),
            report.entries.iter().map(|e| e.edit_hits).sum::<u64>(),
            report.entries.iter().map(|e| e.edit_misses).sum::<u64>(),
        );
        if let Some(path) = bench_json {
            let rendered = report.bench_json();
            if path == "-" {
                print!("{rendered}");
            } else {
                use std::io::Write as _;
                let mut f = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                    .map_err(|source| RfhError::Io {
                        path: path.clone(),
                        source,
                    })?;
                f.write_all(rendered.as_bytes())
                    .map_err(|source| RfhError::Io { path, source })?;
            }
        }
        if report.failed() > 0 {
            return Err(RfhError::Daemon {
                message: format!("{} edit-replay workload(s) failed", report.failed()),
                code: 9,
            });
        }
        return Ok(());
    }

    let mut fields = vec![("op".to_string(), rfh::rfhd::Json::str(&op))];
    match (&workload, &input) {
        (Some(_), Some(_)) => {
            return Err(usage("--workload and a kernel file are mutually exclusive"))
        }
        (Some(name), None) => {
            fields.push(("workload".to_string(), rfh::rfhd::Json::str(name)));
        }
        (None, Some(path)) => {
            let text = read_input(path)?;
            fields.push(("kernel".to_string(), rfh::rfhd::Json::str(&text)));
        }
        (None, None) => {}
    }
    if let Some(ms) = timeout_ms {
        fields.push(("timeout_ms".to_string(), rfh::rfhd::Json::u64(ms)));
    }
    let mut client = rfh::rfhd::Client::new(endpoint, rfh::rfhd::RetryPolicy::default());
    match client.request(fields) {
        Ok((result, cached)) => {
            println!("{}", result.render());
            if cached {
                eprintln!("rfhc client: served from daemon cache");
            }
            Ok(())
        }
        Err(e) => Err(RfhError::Daemon {
            code: e.exit_code(),
            message: e.to_string(),
        }),
    }
}

/// Reads the kernel text from a file path or stdin (`-`).
fn read_input(path: &str) -> Result<String, RfhError> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|source| RfhError::Io {
                path: "-".into(),
                source,
            })?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|source| RfhError::Io {
            path: path.to_string(),
            source,
        })
    }
}
