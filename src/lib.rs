#![warn(missing_docs)]

//! # rfh — a compile-time managed multi-level GPU register file hierarchy
//!
//! A from-scratch reproduction of Gebhart, Keckler, Dally, *A Compile-Time
//! Managed Multi-Level Register File Hierarchy* (MICRO 2011): the compiler
//! algorithms that place GPU register values across an LRF / ORF / MRF
//! hierarchy to minimize energy, together with everything needed to
//! evaluate them — a SIMT ISA and kernel IR, compiler analyses, a
//! functional single-SM simulator with hierarchy-faithful execution, the
//! hardware register-file-cache baseline, a two-level warp scheduler
//! timing model, the paper's energy model, three benchmark suites, and an
//! experiment harness regenerating every table and figure.
//!
//! This crate re-exports the component crates:
//!
//! * [`isa`] — instruction set and kernel IR;
//! * [`analysis`] — dominators, liveness, strands, def-use;
//! * [`energy`] — the Tables 3/4 energy model;
//! * [`alloc`] — the allocation algorithms (the paper's contribution);
//! * [`sim`] — executor, HW cache models, scheduler timing;
//! * [`workloads`] — benchmark suites and the random kernel generator;
//! * [`experiments`] — per-figure/table experiment runners;
//! * [`lint`] — the static analyzer behind `rfhc lint` (RFH-L0xx codes);
//! * [`rfhd`] — the compile-service daemon behind `rfhc serve` and its
//!   deterministic client (`rfhc client`).
//!
//! ## Quickstart
//!
//! ```
//! use rfh::alloc::{allocate, AllocConfig};
//! use rfh::energy::EnergyModel;
//!
//! let mut kernel = rfh::isa::parse_kernel("
//! .kernel axpy
//! BB0:
//!   mov r0, %tid.x
//!   ld.global r1 r0
//!   ffma r2 r1, 2.0f, r1
//!   st.global r0, r2
//!   exit
//! ").unwrap();
//! let stats = allocate(&mut kernel, &AllocConfig::three_level(3, true), &EnergyModel::paper())
//!     .expect("structurally valid kernel");
//! assert!(stats.lrf_values + stats.orf_values > 0);
//! ```
//!
//! ## Robustness
//!
//! The pipeline is panic-free on arbitrary input: parsing, validation,
//! allocation, execution, and timing all return `Result`, unified under
//! [`RfhError`] with a stable exit-code mapping for drivers. See
//! `docs/ROBUSTNESS.md` for the error taxonomy and the `rfh-chaos`
//! fault-injection harness that enforces it.

pub mod error;

pub use error::{RfhError, EXIT_INTERNAL_PANIC};

pub use rfh_alloc as alloc;
pub use rfh_analysis as analysis;
pub use rfh_energy as energy;
pub use rfh_experiments as experiments;
pub use rfh_isa as isa;
pub use rfh_lint as lint;
pub use rfh_rfhd as rfhd;
pub use rfh_sim as sim;
pub use rfh_workloads as workloads;
