//! The unified error taxonomy of the `rfh` toolchain.
//!
//! Every component crate reports failures through its own error type
//! ([`rfh_isa::IsaError`], [`rfh_alloc::AllocError`],
//! [`rfh_sim::ExecError`], [`rfh_sim::TimingError`]); [`RfhError`] folds
//! them into one enum so a driver can handle "anything the pipeline can
//! report" uniformly and map each class to a stable process exit code.
//!
//! The exit-code contract (documented in `docs/ROBUSTNESS.md` and relied
//! on by `tests/cli.rs`):
//!
//! | code | meaning                                     |
//! |------|---------------------------------------------|
//! | 0    | success                                     |
//! | 1    | I/O failure (unreadable input, stdin error) |
//! | 2    | usage error (bad flags or arguments)        |
//! | 3    | parse error in the kernel text              |
//! | 4    | structurally invalid kernel                 |
//! | 5    | allocation configuration error              |
//! | 6    | execution error                             |
//! | 7    | timing-model error (deadlock, cycle budget) |
//! | 8    | lint errors reported by `rfhc lint`         |
//! | 9    | daemon failure (protocol, timeout, overload)|
//! | 70   | internal panic caught at the driver boundary|
//!
//! `rfhc client` additionally maps error frames reported by a daemon back
//! onto this same table using the frame's own class code (a `parse` frame
//! exits 3, a `lint` frame exits 8, …), so scripting against the daemon
//! feels exactly like scripting against the local pipeline; code 9 covers
//! the failures only a daemon can have.

use std::fmt;

use rfh_alloc::AllocError;
use rfh_isa::IsaError;
use rfh_sim::{ExecError, TimingError};

/// Exit code used when the driver's `catch_unwind` boundary traps a panic
/// that escaped the library (a bug, by definition — the libraries are
/// panic-free by contract).
pub const EXIT_INTERNAL_PANIC: i32 = 70;

/// Any error the rfh pipeline can report.
#[derive(Debug)]
pub enum RfhError {
    /// Reading input failed.
    Io {
        /// The path (or `-` for stdin) that could not be read.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The command line was malformed.
    Usage(String),
    /// The kernel text failed to parse or validate.
    Isa(IsaError),
    /// Allocation rejected its input or configuration.
    Alloc(AllocError),
    /// Functional execution failed.
    Exec(ExecError),
    /// The timing model aborted (deadlock or cycle budget).
    Timing(TimingError),
    /// `rfhc lint` found error-severity diagnostics (the diagnostics
    /// themselves go to stdout; this carries the count for the summary).
    Lint {
        /// Number of error-severity findings.
        errors: usize,
    },
    /// A daemon-side failure (`rfhc serve` / `rfhc client`): transport
    /// errors, protocol violations, wall-clock timeouts, load shedding.
    /// Carries the exact exit code because error frames map back onto
    /// this whole table, not just to 9 (see [`RfhError::exit_code`]).
    Daemon {
        /// Description of the failure.
        message: String,
        /// The stable exit code reported by the error-frame class, or 9
        /// for transport-level failures.
        code: i32,
    },
}

impl RfhError {
    /// The stable process exit code for this error class (see the module
    /// docs for the full table).
    pub fn exit_code(&self) -> i32 {
        match self {
            RfhError::Io { .. } => 1,
            RfhError::Usage(_) => 2,
            RfhError::Isa(IsaError::Parse { .. }) => 3,
            RfhError::Isa(IsaError::Validate { .. }) => 4,
            // An invalid kernel is the same failure whether the caller or
            // the allocator noticed it first.
            RfhError::Alloc(AllocError::InvalidKernel(_)) => 4,
            RfhError::Alloc(AllocError::Config(_)) => 5,
            RfhError::Exec(_) => 6,
            RfhError::Timing(_) => 7,
            RfhError::Lint { .. } => 8,
            RfhError::Daemon { code, .. } => *code,
        }
    }
}

impl fmt::Display for RfhError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RfhError::Io { path, source } => write!(f, "cannot read {path}: {source}"),
            RfhError::Usage(msg) => write!(f, "usage error: {msg}"),
            RfhError::Isa(e) => write!(f, "{e}"),
            RfhError::Alloc(e) => write!(f, "{e}"),
            RfhError::Exec(e) => write!(f, "{e}"),
            RfhError::Timing(e) => write!(f, "{e}"),
            RfhError::Lint { errors } => write!(
                f,
                "lint found {errors} error{}",
                if *errors == 1 { "" } else { "s" }
            ),
            RfhError::Daemon { message, .. } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for RfhError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RfhError::Io { source, .. } => Some(source),
            RfhError::Usage(_) => None,
            RfhError::Isa(e) => Some(e),
            RfhError::Alloc(e) => Some(e),
            RfhError::Exec(e) => Some(e),
            RfhError::Timing(e) => Some(e),
            RfhError::Lint { .. } => None,
            RfhError::Daemon { .. } => None,
        }
    }
}

impl From<IsaError> for RfhError {
    fn from(e: IsaError) -> Self {
        RfhError::Isa(e)
    }
}

impl From<AllocError> for RfhError {
    fn from(e: AllocError) -> Self {
        RfhError::Alloc(e)
    }
}

impl From<ExecError> for RfhError {
    fn from(e: ExecError) -> Self {
        RfhError::Exec(e)
    }
}

impl From<TimingError> for RfhError {
    fn from(e: TimingError) -> Self {
        RfhError::Timing(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_per_class() {
        let codes = [
            RfhError::Io {
                path: "x".into(),
                source: std::io::Error::new(std::io::ErrorKind::NotFound, "nope"),
            }
            .exit_code(),
            RfhError::Usage("bad flag".into()).exit_code(),
            RfhError::Isa(IsaError::Parse {
                line: 1,
                msg: "junk".into(),
            })
            .exit_code(),
            RfhError::Isa(IsaError::Validate {
                at: "BB0".into(),
                msg: "bad".into(),
            })
            .exit_code(),
            RfhError::Alloc(AllocError::Config("cfg".into())).exit_code(),
            RfhError::Timing(TimingError::Deadlock {
                cycle: 3,
                snapshot: rfh_sim::DeadlockSnapshot::default(),
            })
            .exit_code(),
            RfhError::Lint { errors: 2 }.exit_code(),
            RfhError::Daemon {
                message: "daemon connection failed".into(),
                code: 9,
            }
            .exit_code(),
        ];
        assert_eq!(codes, [1, 2, 3, 4, 5, 7, 8, 9]);
    }

    #[test]
    fn daemon_errors_carry_the_frame_class_code() {
        // An error frame from the daemon keeps its own class code, so a
        // parse failure exits 3 whether it happened locally or remotely.
        let remote_parse = RfhError::Daemon {
            message: "daemon error: parse: line 1: junk".into(),
            code: 3,
        };
        assert_eq!(remote_parse.exit_code(), 3);
    }

    #[test]
    fn lint_error_display_counts() {
        assert_eq!(
            RfhError::Lint { errors: 1 }.to_string(),
            "lint found 1 error"
        );
        assert_eq!(
            RfhError::Lint { errors: 3 }.to_string(),
            "lint found 3 errors"
        );
    }

    #[test]
    fn validate_maps_like_alloc_invalid_kernel() {
        let via_isa = RfhError::Isa(IsaError::Validate {
            at: "BB0".into(),
            msg: "bad".into(),
        });
        let via_alloc = RfhError::Alloc(AllocError::InvalidKernel(IsaError::Validate {
            at: "BB0".into(),
            msg: "bad".into(),
        }));
        assert_eq!(via_isa.exit_code(), via_alloc.exit_code());
    }

    #[test]
    fn display_and_source_chain() {
        let e = RfhError::from(IsaError::Parse {
            line: 7,
            msg: "unknown opcode".into(),
        });
        assert!(e.to_string().contains("unknown opcode"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
