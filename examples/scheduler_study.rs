//! Reproduce the two-level warp scheduler claim interactively: sweep the
//! active-set size and watch when latency hiding breaks down.
//!
//! ```sh
//! cargo run --release --example scheduler_study
//! ```

use rfh::sim::exec::{execute, ExecMode};
use rfh::sim::machine::MachineConfig;
use rfh::sim::timing::{simulate_timing, TimingConfig, TraceCapture};

fn main() {
    let names = ["scalarprod", "matrixmul", "mandelbrot", "mri-q"];
    let machine = MachineConfig::paper();
    println!("normalized runtime vs single-level scheduler (1.0 = no loss)\n");
    print!("{:<14}", "active warps");
    for a in [1, 2, 4, 6, 8, 16, 32] {
        print!("{a:>8}");
    }
    println!();

    for name in names {
        let w = rfh::workloads::by_name(name).expect("known workload");
        let mut cap = TraceCapture::new(machine.clone(), w.launch.threads_per_cta);
        let mut mem = w.memory.clone();
        execute(
            &w.kernel,
            &w.launch,
            &mut mem,
            ExecMode::Baseline,
            &mut [&mut cap],
        )
        .expect("executes");
        let base = simulate_timing(
            &cap.traces,
            &|x| cap.cta_of(x),
            &TimingConfig::single_level(),
        )
        .expect("replays within budget");
        print!("{name:<14}");
        for a in [1usize, 2, 4, 6, 8, 16, 32] {
            let t = simulate_timing(&cap.traces, &|x| cap.cta_of(x), &TimingConfig::two_level(a))
                .expect("replays within budget");
            print!("{:>8.3}", t.cycles as f64 / base.cycles as f64);
        }
        println!();
    }
    println!("\nThe paper's claim: with 8 active warps the two-level scheduler");
    println!("matches the single-level baseline (values ≈ 1.0 in the `8` column).");
}
