//! Sweep ORF sizes over a benchmark and compare the software-managed
//! hierarchy against the hardware register file cache — a miniature
//! Figure 13 for one workload.
//!
//! ```sh
//! cargo run --release --example energy_sweep [workload]
//! ```

use rfh::alloc::AllocConfig;
use rfh::energy::EnergyModel;
use rfh::experiments::runner::{baseline_counts, hw_counts, normalized_energy, sw_counts};
use rfh::sim::rfc::RfcConfig;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "matrixmul".into());
    let Some(w) = rfh::workloads::by_name(&name) else {
        eprintln!("unknown workload `{name}`; available:");
        for w in rfh::workloads::all() {
            eprintln!("  {}", w.name);
        }
        std::process::exit(2);
    };

    let model = EnergyModel::paper();
    let base = baseline_counts(&w);
    println!(
        "workload: {} ({} warp threads)",
        w.name,
        w.launch.total_threads()
    );
    println!("entries  HW RFC  SW ORF  SW ORF+split LRF");
    for entries in 1..=8 {
        let hw = hw_counts(&w, &RfcConfig::two_level(entries));
        let sw = sw_counts(&w, &AllocConfig::two_level(entries), &model);
        let sw3 = sw_counts(&w, &AllocConfig::three_level(entries, true), &model);
        println!(
            "{entries:^7}  {:.3}   {:.3}   {:.3}",
            normalized_energy(&hw, &base, &model, entries),
            normalized_energy(&sw, &base, &model, entries),
            normalized_energy(&sw3, &base, &model, entries),
        );
    }
}
