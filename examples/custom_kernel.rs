//! Build a kernel with the `KernelBuilder` DSL, then sweep hierarchy
//! configurations to see where its values land.
//!
//! ```sh
//! cargo run --example custom_kernel
//! ```

use rfh::alloc::{allocate, pass::read_level_counts, AllocConfig};
use rfh::energy::EnergyModel;
use rfh::isa::{ops, CmpOp, KernelBuilder, Operand, Special};

fn main() {
    // A blocked horner-evaluation kernel: out[i] = p(x[i]) for a degree-7
    // polynomial, built programmatically.
    let mut b = KernelBuilder::new("horner7");
    let x = b.reg();
    let acc = b.reg();
    let idx = b.reg();
    let addr = b.reg();
    b.push(ops::mov(idx, Operand::Special(Special::TidX)));
    b.push(ops::ld_global(x, idx.into()));
    b.push(ops::mov(acc, Operand::f32(0.25)));
    let coeffs = [0.5f32, -1.0, 0.125, 2.0, -0.75, 1.5, 0.0625];
    for c in coeffs {
        b.push(ops::ffma(acc, acc.into(), x.into(), Operand::f32(c)));
    }
    // Guarded clamp: negative results are zeroed.
    let p = b.pred();
    b.push(ops::fsetp(CmpOp::Lt, p, acc.into(), Operand::f32(0.0)));
    b.push(ops::mov(acc, Operand::f32(0.0)).guarded(p, false));
    b.push(ops::iadd(addr, idx.into(), 1024.into()));
    b.push(ops::st_global(addr.into(), acc.into()));
    b.push(ops::exit());
    let kernel = b.finish();

    println!("{}", rfh::isa::printer::print_kernel(&kernel));

    let model = EnergyModel::paper();
    println!("config                       LRF reads  ORF reads  MRF reads");
    for (name, cfg) in [
        ("baseline (MRF only)", AllocConfig::baseline()),
        ("2-level, 3-entry ORF", AllocConfig::two_level(3)),
        ("3-level, unified LRF", AllocConfig::three_level(3, false)),
        ("3-level, split LRF", AllocConfig::three_level(3, true)),
    ] {
        let mut k = kernel.clone();
        allocate(&mut k, &cfg, &model).expect("structurally valid kernel");
        let (lrf, orf, mrf) = read_level_counts(&k);
        println!("{name:<28} {lrf:^9}  {orf:^9}  {mrf:^9}");
    }
}
