//! Quickstart: compile a kernel for the register file hierarchy, inspect
//! the placements, execute it faithfully, and price the energy.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rfh::alloc::{allocate, AllocConfig};
use rfh::energy::EnergyModel;
use rfh::sim::exec::{execute, ExecMode, Launch};
use rfh::sim::mem::GlobalMemory;
use rfh::sim::SwCounter;

fn main() {
    // A small SAXPY-like kernel in the textual assembly format.
    let mut kernel = rfh::isa::parse_kernel(
        "
.kernel saxpy
BB0:
  mov r0, %tid.x
  ld.param r1 0
  iadd r2 r1, r0
  ld.global r3 r2
  ffma r4 r3, 2.5f, r3
  ld.param r5 1
  iadd r6 r5, r0
  st.global r6, r4
  exit
",
    )
    .expect("valid kernel");

    // Compile-time allocation onto a 3-entry ORF with a split LRF — the
    // paper's most energy-efficient configuration.
    let config = AllocConfig::three_level(3, true);
    let model = EnergyModel::paper();
    let stats = allocate(&mut kernel, &config, &model).expect("structurally valid kernel");
    println!("allocated: {stats:?}\n");
    println!("{}", rfh::isa::printer::print_kernel_annotated(&kernel));

    // Execute with operands actually flowing through the modeled hierarchy.
    let launch = Launch::new(1, 128).with_params(vec![0, 128]);
    let mut memory = GlobalMemory::from_f32(&(0..256).map(|i| i as f32).collect::<Vec<_>>());
    let mut counter = SwCounter::default();
    execute(
        &kernel,
        &launch,
        &mut memory,
        ExecMode::Hierarchy(config),
        &mut [&mut counter],
    )
    .expect("executes");
    println!("y[3] = {}", memory.load_f32(128 + 3).unwrap());

    // Price the access counts.
    let counts = counter.counts();
    let energy = model.energy(&counts, config.orf_entries);
    let baseline = model.baseline_energy(counts.total_reads(), counts.total_writes());
    println!("\naccess counts: {counts:?}");
    println!("energy: {energy}");
    println!(
        "savings vs single-level register file: {:.1}%",
        (1.0 - energy.total() / baseline.total()) * 100.0
    );
}
