#!/usr/bin/env sh
# Hermetic CI gate: everything here must pass with an empty cargo
# registry. `--offline` is load-bearing — the workspace has no non-path
# dependencies (rfh-testkit replaces proptest/rand/criterion in-repo),
# and this script is what keeps it that way.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test"
cargo test -q --offline

echo "CI OK"
