#!/usr/bin/env sh
# Hermetic CI gate: everything here must pass with an empty cargo
# registry. `--offline` is load-bearing — the workspace has no non-path
# dependencies (rfh-testkit replaces proptest/rand/criterion in-repo),
# and this script is what keeps it that way.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
# --workspace is load-bearing: a bare root build does not relink member
# binaries (e.g. `repro`), and the smoke below must run the fresh one.
cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --offline

echo "==> chaos smoke (bounded fault-injection run)"
RFH_CHAOS_CASES=200 cargo test -p rfh-chaos -q --offline

echo "==> exec differential smoke (SoA engine vs frozen reference oracle)"
# The differential conformance suite must hold at both ends of the pool:
# serial, and with 8 workers (whose fold order must not matter). The full
# 1000-case sweep runs in `cargo test` above; these runs pin the job-count
# invariance with a bounded budget.
RFH_JOBS=1 RFH_EXEC_DIFF_CASES=100 cargo test -q --offline --test exec_differential
RFH_JOBS=8 RFH_EXEC_DIFF_CASES=100 cargo test -q --offline --test exec_differential
echo "exec differential suite green under RFH_JOBS=1 and RFH_JOBS=8"

echo "==> timing differential smoke (staged engine vs frozen reference engine)"
# Same contract for the timing-model pair: the full 600-case sweep runs
# in `cargo test` above; these bounded runs pin job-count invariance of
# the 35-workload grid and the generated-trace generator.
RFH_JOBS=1 RFH_TIMING_DIFF_CASES=100 cargo test -q --offline --test timing_differential
RFH_JOBS=8 RFH_TIMING_DIFF_CASES=100 cargo test -q --offline --test timing_differential
echo "timing differential suite green under RFH_JOBS=1 and RFH_JOBS=8"

echo "==> repro smoke (parallel run must reproduce the committed goldens)"
# Regenerate the golden CSVs with two pool workers and diff byte-for-byte
# against results/*.csv: parallelism and memoization must not change a
# single byte of any figure.
artifacts=target/ci-artifacts
rm -rf "$artifacts"
mkdir -p "$artifacts/csv"
RFH_JOBS=2 ./target/release/repro --csv "$artifacts/csv" \
    --bench-json "$artifacts/BENCH_repro.json" all > "$artifacts/repro.txt"
for f in results/*.csv; do
    cmp "$f" "$artifacts/csv/$(basename "$f")"
done
echo "repro goldens byte-identical under RFH_JOBS=2"
echo "bench timings: $artifacts/BENCH_repro.json"

echo "==> exec-bench smoke (executor throughput, one rep)"
# One timed repetition: checks the bench arm end to end and exports the
# rfh-exec-bench-v1 JSON for inspection. Perf numbers are not gated here
# (CI machines vary); the committed history lives in BENCH_exec.json.
RFH_EXEC_BENCH_REPS=1 ./target/release/repro \
    --exec-bench-json "$artifacts/BENCH_exec.json" exec-bench \
    > "$artifacts/exec_bench.txt"
grep -q '"schema": "rfh-exec-bench-v1"' "$artifacts/BENCH_exec.json"
echo "exec-bench result: $artifacts/BENCH_exec.json"

echo "==> multi-SM smoke (rfhc timing across SM counts)"
# `rfhc timing --sms N` must produce byte-identical stdout under a serial
# pool and an 8-worker pool (SM results fold in SM order), and both
# timing engines must render the same table.
for sms in 1 4; do
    RFH_JOBS=1 ./target/release/rfhc timing --workload vectoradd --sms "$sms" \
        > "$artifacts/timing_sms$sms.txt" 2> /dev/null
    RFH_JOBS=8 ./target/release/rfhc timing --workload vectoradd --sms "$sms" \
        > "$artifacts/timing_sms$sms.jobs8.txt" 2> /dev/null
    cmp "$artifacts/timing_sms$sms.txt" "$artifacts/timing_sms$sms.jobs8.txt"
done
./target/release/rfhc timing --workload reduction --sms 2 --engine reference \
    > "$artifacts/timing_reference.txt" 2> /dev/null
./target/release/rfhc timing --workload reduction --sms 2 --engine staged \
    > "$artifacts/timing_staged.txt" 2> /dev/null
cmp "$artifacts/timing_reference.txt" "$artifacts/timing_staged.txt"
echo "multi-SM runs byte-identical across job counts and engines"

echo "==> timing-bench smoke (timing-model throughput, one rep)"
# One timed repetition of the staged-vs-reference throughput and the SM
# scaling curve; exports the rfh-timing-bench-v1 JSON. Perf numbers are
# not gated (CI machines vary); the committed history is BENCH_timing.json.
RFH_TIMING_BENCH_REPS=1 ./target/release/repro \
    --timing-bench-json "$artifacts/BENCH_timing.json" timing-bench \
    > "$artifacts/timing_bench.txt"
grep -q '"schema": "rfh-timing-bench-v1"' "$artifacts/BENCH_timing.json"
echo "timing-bench result: $artifacts/BENCH_timing.json"

echo "==> lint smoke + golden diagnostics report"
# The analyzer must accept the repo's own kernels: `rfhc lint` on a known
# workload exits 0, and the full report over the corpus + all workloads
# (unallocated and allocated) is byte-identical to the committed golden,
# parallelism notwithstanding.
printf '%s\n' '.kernel smoke' 'BB0:' '  mov r0, %tid.x' '  st.global r0, r0' '  exit' \
    | ./target/release/rfhc lint --json - > /dev/null \
    || { echo "rfhc lint smoke FAILED"; exit 1; }
# `--deny-warnings` turns every finding — warnings and notes included —
# into exit code 8: a clean kernel still passes, a kernel with one
# constant-fold note (RFH-L011) must fail.
printf '%s\n' '.kernel smoke' 'BB0:' '  mov r0, %tid.x' '  st.global r0, r0' '  exit' \
    | ./target/release/rfhc lint --deny-warnings - > /dev/null \
    || { echo "rfhc lint --deny-warnings rejected a clean kernel"; exit 1; }
set +e
printf '%s\n' '.kernel noteful' 'BB0:' '  mov r0, 5' '  iadd r1, r0, 2' \
    '  st.global r0, r1' '  exit' \
    | ./target/release/rfhc lint --deny-warnings - > /dev/null 2>&1
rc=$?
set -e
[ "$rc" -eq 8 ] || { echo "lint --deny-warnings exited $rc on a noteful kernel, want 8"; exit 1; }
RFH_JOBS=2 ./target/release/lint_report > "$artifacts/lint_report.txt"
cmp results/lint_report.txt "$artifacts/lint_report.txt"
echo "lint report byte-identical under RFH_JOBS=2"

echo "==> trace smoke + golden structured trace"
# The structured trace exporter must be deterministic at any pool size:
# `rfhc trace --json` over the golden kernel is byte-identical to the
# committed golden under RFH_JOBS=1 and RFH_JOBS=8, and the per-strand
# energy profile matches its golden too. Both regenerated artifacts stay
# in target/ci-artifacts for inspection.
RFH_JOBS=1 ./target/release/rfhc trace --json examples/trace_golden.rfasm \
    > "$artifacts/trace_golden.jsonl" 2> /dev/null
cmp results/trace_golden.jsonl "$artifacts/trace_golden.jsonl"
RFH_JOBS=8 ./target/release/rfhc trace --json examples/trace_golden.rfasm \
    > "$artifacts/trace_golden.jobs8.jsonl" 2> /dev/null
cmp results/trace_golden.jsonl "$artifacts/trace_golden.jobs8.jsonl"
RFH_JOBS=1 ./target/release/rfhc trace --profile examples/trace_golden.rfasm \
    > "$artifacts/strand_profile_golden.txt" 2> /dev/null
cmp results/strand_profile_golden.txt "$artifacts/strand_profile_golden.txt"
echo "trace + strand profile byte-identical under RFH_JOBS=1 and RFH_JOBS=8"

echo "==> daemon smoke (rfhd serve/client over a unix socket)"
# A live daemon must survive a request mix that includes a malformed
# frame and a timeout-inducing kernel, keep serving, and drain to exit 0
# — under a serial pool and an 8-worker pool alike. The replay load
# generator's rfhd-bench-v1 JSON is exported for inspection.
for jobs in 1 8; do
    sock="$artifacts/rfhd-$jobs.sock"
    RFH_JOBS=$jobs ./target/release/rfhc serve --unix "$sock" --workers 2 &
    serve_pid=$!
    tries=0
    while [ ! -S "$sock" ]; do
        tries=$((tries + 1))
        [ "$tries" -le 50 ] || { echo "daemon socket never appeared"; exit 1; }
        sleep 0.1
    done
    # Well-formed mix: a verified workload simulation and an assemble.
    ./target/release/rfhc client --unix "$sock" \
        --op simulate --workload vectoradd > /dev/null
    ./target/release/rfhc client --unix "$sock" \
        --op assemble examples/trace_golden.rfasm > /dev/null
    # An unparseable kernel comes back as a structured parse error frame,
    # which the client maps to the local parse exit code (3).
    set +e
    printf 'this is not a kernel\n' \
        | ./target/release/rfhc client --unix "$sock" --op assemble - \
        > /dev/null 2>&1
    rc=$?
    set -e
    [ "$rc" -eq 3 ] || { echo "remote parse error exited $rc, want 3"; exit 1; }
    # One malformed frame: the framing layer must answer a structured
    # protocol error frame (client maps it to exit 9), not die.
    set +e
    ./target/release/rfhc client --unix "$sock" --malformed-probe 2> /dev/null
    rc=$?
    set -e
    [ "$rc" -eq 9 ] || { echo "malformed-frame probe exited $rc, want 9"; exit 1; }
    # One timeout-inducing kernel: the spin loop must be stopped by the
    # wall-clock timeout (9) — or, on a very fast machine, by the
    # instruction budget (6). Either way the boundary held.
    set +e
    ./target/release/rfhc client --unix "$sock" \
        --op simulate --timeout-ms 200 examples/spin.rfasm > /dev/null 2>&1
    rc=$?
    set -e
    { [ "$rc" -eq 9 ] || [ "$rc" -eq 6 ]; } \
        || { echo "spin kernel exited $rc, want 9 (timeout) or 6 (budget)"; exit 1; }
    # The daemon is still healthy: replay every workload concurrently and
    # export the bench JSON.
    ./target/release/rfhc client --unix "$sock" --replay-workloads \
        --jobs 4 --rounds 1 --bench-json "$artifacts/BENCH_rfhd.jobs$jobs.json" \
        2> /dev/null
    grep -q '"schema": "rfhd-bench-v1"' "$artifacts/BENCH_rfhd.jobs$jobs.json"
    # Incremental smoke: re-allocate every workload with one immediate
    # (one strand) edited. The strand cache — warmed by the replay round
    # above — must splice every unchanged strand (the edit-replay exits
    # non-zero otherwise), and the server-level `stats` op must report
    # the strand-cache hits.
    ./target/release/rfhc client --unix "$sock" --edit-replay \
        --jobs 4 --bench-json "$artifacts/BENCH_rfhd.jobs$jobs.json" 2> /dev/null
    grep -q '"schema": "rfhd-edit-bench-v1"' "$artifacts/BENCH_rfhd.jobs$jobs.json"
    strand_hits=$(./target/release/rfhc client --unix "$sock" --op stats \
        | grep -o '"strand_cache":{[^}]*}' | grep -o '"hits":[0-9]*' | cut -d: -f2)
    [ -n "$strand_hits" ] && [ "$strand_hits" -gt 0 ] \
        || { echo "strand cache reported ${strand_hits:-no} hits, want > 0"; exit 1; }
    # Drain: shutdown is acknowledged, the serve process exits 0, and the
    # socket file is cleaned up.
    ./target/release/rfhc client --unix "$sock" --op shutdown > /dev/null
    wait "$serve_pid" || { echo "daemon exited non-zero after drain"; exit 1; }
    [ ! -S "$sock" ] || { echo "socket file survived the drain"; exit 1; }
done
echo "daemon smoke green under RFH_JOBS=1 and RFH_JOBS=8"
echo "replay bench: $artifacts/BENCH_rfhd.jobs1.json, $artifacts/BENCH_rfhd.jobs8.json"

echo "==> panic gate (hardened crates)"
# Non-test library code of the hardened crates must stay panic-free:
# no .unwrap() / panic! / unreachable! / todo! outside #[cfg(test)]
# modules. `.expect("reason")` is allowed — the reason is the review gate.
# Whole-file test modules (src/*/tests.rs, declared `#[cfg(test)] mod
# tests;` by their parent) are skipped like inline test modules.
fail=0
for f in crates/isa/src/*.rs crates/alloc/src/*.rs crates/analysis/src/*.rs \
    crates/sim/src/*.rs crates/sim/src/*/*.rs crates/chaos/src/*.rs \
    crates/lint/src/*.rs crates/rfhd/src/*.rs; do
    case "$f" in */tests.rs) continue ;; esac
    hits=$(awk '
        /^[[:space:]]*#\[cfg\(test\)\]/ { exit }
        /^[[:space:]]*\/\// { next }
        /\.unwrap\(\)|panic!\(|unreachable!\(|todo!\(/ { print FILENAME ":" FNR ": " $0 }
    ' "$f")
    if [ -n "$hits" ]; then
        echo "$hits"
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "panic gate FAILED: structured errors only in hardened library code"
    exit 1
fi

echo "CI OK"
