#![warn(missing_docs)]

//! # rfh-bench — criterion benchmark harness
//!
//! Two benchmark suites:
//!
//! * `benches/figures.rs` — regenerates each of the paper's tables and
//!   figures end-to-end (on a reduced workload subset so a full criterion
//!   run stays tractable); the numbers printed by `repro` come from the
//!   same code paths.
//! * `benches/pipeline.rs` — component throughput: analyses, allocation,
//!   functional execution, cache models, and the timing simulator.

use rfh_workloads::Workload;

/// A small but representative workload subset used by the benches (one
/// streaming, one loop/FMA, one divergent, one integer, one SFU-heavy).
pub fn bench_subset() -> Vec<Workload> {
    ["vectoradd", "scalarprod", "mandelbrot", "needle", "cp"]
        .iter()
        .map(|n| rfh_workloads::by_name(n).expect("known workload"))
        .collect()
}
