//! One criterion group per paper table/figure: measures the cost of
//! regenerating each result (and, as a side effect, exercises the full
//! pipeline under the benchmark runner).

use rfh_testkit::bench::Criterion;
use rfh_testkit::{criterion_group, criterion_main};
use std::hint::black_box;

use rfh_bench::bench_subset;
use rfh_experiments::{
    encoding, fig11, fig12, fig13, fig14, fig15, fig2, limit, perf, tables, ExperimentCtx,
};

fn bench_figures(c: &mut Criterion) {
    let ws = bench_subset();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("table1_to_4", |b| {
        b.iter(|| {
            black_box(tables::table1(&ws));
            black_box(tables::table2());
            black_box(tables::table3());
            black_box(tables::table4());
        })
    });
    g.bench_function("fig2_usage_patterns", |b| b.iter(|| black_box(fig2::run())));
    // Each iteration builds a fresh context so the figure benches measure
    // full regeneration cost, not cache hits.
    g.bench_function("fig11_two_level_breakdown", |b| {
        b.iter(|| black_box(fig11::run(&ExperimentCtx::new(&ws))))
    });
    g.bench_function("fig12_three_level_breakdown", |b| {
        b.iter(|| black_box(fig12::run(&ExperimentCtx::new(&ws))))
    });
    g.bench_function("fig13_energy_sweep", |b| {
        b.iter(|| black_box(fig13::run(&ExperimentCtx::new(&ws))))
    });
    g.bench_function("fig14_energy_breakdown", |b| {
        b.iter(|| black_box(fig14::run(&ExperimentCtx::new(&ws))))
    });
    g.bench_function("fig15_per_benchmark", |b| {
        b.iter(|| black_box(fig15::run(&ExperimentCtx::new(&ws))))
    });
    g.bench_function("sec6_5_encoding", |b| {
        b.iter(|| black_box(encoding::run(black_box(0.4))))
    });
    g.bench_function("sec6_perf_scheduler", |b| {
        b.iter(|| black_box(perf::run(&ExperimentCtx::new(&ws), &[2, 8, 32])))
    });
    g.bench_function("sec7_limit_study", |b| {
        b.iter(|| black_box(limit::run(&ExperimentCtx::new(&ws))))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
