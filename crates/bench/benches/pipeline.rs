//! Component throughput benchmarks: per-pass compiler cost and simulator
//! speed, measured on a representative kernel.

use rfh_testkit::bench::{BatchSize, Criterion, Throughput};
use rfh_testkit::{criterion_group, criterion_main};
use std::hint::black_box;

use rfh_alloc::{allocate, AllocConfig};
use rfh_analysis::{liveness::annotate_dead, strand::mark_strands, DomTree, Liveness};
use rfh_energy::EnergyModel;
use rfh_sim::counts::SwCounter;
use rfh_sim::exec::{execute, ExecMode};
use rfh_sim::machine::MachineConfig;
use rfh_sim::rfc::{HwCounter, RfcConfig};
use rfh_sim::sink::NullSink;
use rfh_sim::timing::{simulate_timing, TimingConfig, TraceCapture};

fn kernel_under_test() -> rfh_workloads::Workload {
    rfh_workloads::by_name("matrixmul").expect("known workload")
}

fn bench_compiler(c: &mut Criterion) {
    let w = kernel_under_test();
    let mut g = c.benchmark_group("compiler");
    g.bench_function("dominators", |b| {
        b.iter(|| black_box(DomTree::dominators(&w.kernel)))
    });
    g.bench_function("liveness", |b| {
        b.iter(|| black_box(Liveness::compute(&w.kernel)))
    });
    g.bench_function("mark_strands", |b| {
        b.iter_batched(
            || w.kernel.clone(),
            |mut k| black_box(mark_strands(&mut k)),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("annotate_dead", |b| {
        let lv = Liveness::compute(&w.kernel);
        b.iter_batched(
            || w.kernel.clone(),
            |mut k| annotate_dead(&mut k, &lv),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("allocate_three_level", |b| {
        let model = EnergyModel::paper();
        b.iter_batched(
            || w.kernel.clone(),
            |mut k| black_box(allocate(&mut k, &AllocConfig::three_level(3, true), &model)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let w = kernel_under_test();
    let model = EnergyModel::paper();
    let mut warm = w.memory.clone();
    let mut sink = NullSink;
    let report = execute(
        &w.kernel,
        &w.launch,
        &mut warm,
        ExecMode::Baseline,
        &mut [&mut sink],
    )
    .unwrap();

    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(report.warp_instructions));
    g.bench_function("execute_baseline", |b| {
        b.iter_batched(
            || w.memory.clone(),
            |mut mem| {
                let mut sink = NullSink;
                execute(
                    &w.kernel,
                    &w.launch,
                    &mut mem,
                    ExecMode::Baseline,
                    &mut [&mut sink],
                )
                .unwrap()
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("execute_hierarchy_counted", |b| {
        let cfg = AllocConfig::three_level(3, true);
        let mut kernel = w.kernel.clone();
        allocate(&mut kernel, &cfg, &model).expect("workload kernels allocate");
        b.iter_batched(
            || w.memory.clone(),
            |mut mem| {
                let mut counter = SwCounter::default();
                execute(
                    &kernel,
                    &w.launch,
                    &mut mem,
                    ExecMode::Hierarchy(cfg),
                    &mut [&mut counter],
                )
                .unwrap();
                counter.counts()
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("execute_hw_rfc_counted", |b| {
        let mut kernel = w.kernel.clone();
        let lv = Liveness::compute(&kernel);
        annotate_dead(&mut kernel, &lv);
        b.iter_batched(
            || w.memory.clone(),
            |mut mem| {
                let mut hw = HwCounter::new(RfcConfig::two_level(6), &kernel);
                execute(
                    &kernel,
                    &w.launch,
                    &mut mem,
                    ExecMode::Baseline,
                    &mut [&mut hw],
                )
                .unwrap();
                hw.counts()
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();

    let machine = MachineConfig::paper();
    let mut cap = TraceCapture::new(machine, w.launch.threads_per_cta);
    let mut mem = w.memory.clone();
    execute(
        &w.kernel,
        &w.launch,
        &mut mem,
        ExecMode::Baseline,
        &mut [&mut cap],
    )
    .unwrap();
    let mut g2 = c.benchmark_group("timing");
    g2.bench_function("two_level_scheduler", |b| {
        b.iter(|| {
            black_box(simulate_timing(
                &cap.traces,
                &|x| cap.cta_of(x),
                &TimingConfig::two_level(8),
            ))
        })
    });
    g2.finish();
}

criterion_group!(benches, bench_compiler, bench_simulator);
criterion_main!(benches);
