//! Request decoding and per-op compute: the pure part of the daemon.
//!
//! [`decode_request`] turns a parsed JSON document into a typed
//! [`Request`] (or a structured usage/protocol error frame), and
//! [`handle`] runs one compute op to a `Result<Json, ErrorFrame>`.
//! Everything here is synchronous and side-effect-free — timeouts, panic
//! isolation, caching, and socket I/O live in [`crate::server`], which
//! wraps these functions.
//!
//! Every pipeline error maps onto the wire taxonomy exactly as `rfhc`
//! maps it onto exit codes: parse failures are [`ErrorKind::Parse`],
//! structural invalidity is [`ErrorKind::InvalidKernel`], and so on, so a
//! client scripting the daemon sees the same failure classes as a script
//! driving the CLI.

use std::sync::Arc;

use rfh_alloc::{
    allocate, allocate_incremental, AllocConfig, AllocError, IncrementalStats, LrfMode,
    StrandAllocation,
};
use rfh_energy::{AccessCounts, EnergyModel};
use rfh_isa::{IsaError, Kernel};
use rfh_sim::counts::SwCounter;
use rfh_sim::exec::{execute_with_engine, Engine, ExecMode, Launch};
use rfh_sim::machine::MachineConfig;
use rfh_sim::mem::GlobalMemory;
use rfh_sim::timing::{simulate_timing, TimingConfig, TraceCapture};
use rfh_sim::TraceExporter;

use crate::cache::{fnv1a, Key, Store};
use crate::json::Json;
use crate::proto::{ErrorFrame, ErrorKind, SCHEMA};

/// Default global-memory words for kernels submitted as raw text (64 K
/// words, matching `rfhc trace`).
const TEXT_KERNEL_MEM_WORDS: usize = 1 << 16;

/// The compute operations the daemon serves. `Stats` and `Shutdown` are
/// control ops handled by the server itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Liveness probe.
    Ping,
    /// Parse (and validate) kernel text; return the canonical form.
    Assemble,
    /// Run the static analyzer.
    Lint,
    /// Run the hierarchy allocator; return the annotated kernel.
    Allocate,
    /// Execute functionally; return the report, access counts, energy.
    Simulate,
    /// Execute, capture the dynamic trace, replay it through the
    /// two-level scheduler timing model.
    Timing,
    /// Execute and export the structured instruction trace.
    Trace,
    /// Daemon statistics (server-handled).
    Stats,
    /// Graceful drain-then-exit (server-handled).
    Shutdown,
}

impl Op {
    /// The wire name.
    pub const fn name(self) -> &'static str {
        match self {
            Op::Ping => "ping",
            Op::Assemble => "assemble",
            Op::Lint => "lint",
            Op::Allocate => "allocate",
            Op::Simulate => "simulate",
            Op::Timing => "timing",
            Op::Trace => "trace",
            Op::Stats => "stats",
            Op::Shutdown => "shutdown",
        }
    }

    /// Parses the wire name.
    pub fn from_name(name: &str) -> Option<Op> {
        Some(match name {
            "ping" => Op::Ping,
            "assemble" => Op::Assemble,
            "lint" => Op::Lint,
            "allocate" => Op::Allocate,
            "simulate" => Op::Simulate,
            "timing" => Op::Timing,
            "trace" => Op::Trace,
            "stats" => Op::Stats,
            "shutdown" => Op::Shutdown,
            _ => return None,
        })
    }

    /// Whether results of this op are deterministic functions of the
    /// request and therefore cacheable.
    pub const fn cacheable(self) -> bool {
        matches!(
            self,
            Op::Assemble | Op::Lint | Op::Allocate | Op::Simulate | Op::Timing | Op::Trace
        )
    }

    /// Whether this op needs a kernel (text or workload name).
    pub const fn needs_kernel(self) -> bool {
        !matches!(self, Op::Ping | Op::Stats | Op::Shutdown)
    }
}

/// Where the kernel comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelSource {
    /// Raw assembly text supplied in the request.
    Text(String),
    /// The name of a benchmark workload the daemon knows
    /// (`rfh_workloads::by_name`), including its launch geometry, input
    /// memory, and host reference checker.
    Workload(String),
}

/// A decoded, validated `rfhd-v1` request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen request id, echoed in the response.
    pub id: u64,
    /// The operation.
    pub op: Op,
    /// The kernel, for ops that need one.
    pub source: Option<KernelSource>,
    /// Allocation configuration.
    pub config: AllocConfig,
    /// Execute unallocated in baseline mode (simulate/timing/trace).
    pub baseline: bool,
    /// Launch geometry for [`KernelSource::Text`] kernels.
    pub ctas: usize,
    /// Threads per CTA for [`KernelSource::Text`] kernels.
    pub threads: usize,
    /// Per-request wall-clock timeout override (capped by the server).
    pub timeout_ms: Option<u64>,
    /// Per-request instruction budget override (capped by the server).
    pub budget_instructions: Option<u64>,
    /// Per-request timing cycle budget override (capped by the server).
    pub budget_cycles: Option<u64>,
    /// Active-warp count for the timing op's two-level scheduler.
    pub active_warps: usize,
    /// Executor engine.
    pub engine: Engine,
}

impl Request {
    /// The canonical request string: every semantic field, serialized so
    /// that two requests canonicalize equal exactly when their results
    /// must be equal. This full string keys the daemon's result cache
    /// (its [`fnv1a`] digest is only a fast pre-key — see
    /// [`crate::cache::Key`]), so a digest collision between two distinct
    /// requests can never serve the wrong cached response.
    pub fn canonical(&self) -> String {
        let mut canon = String::new();
        canon.push_str(self.op.name());
        canon.push('\0');
        match &self.source {
            Some(KernelSource::Text(t)) => {
                canon.push_str("text\0");
                canon.push_str(t);
            }
            Some(KernelSource::Workload(w)) => {
                canon.push_str("workload\0");
                canon.push_str(w);
            }
            None => canon.push_str("none"),
        }
        canon.push('\0');
        canon.push_str(&format!(
            "orf={} lrf={:?} partial={} readop={} base={} ctas={} threads={} \
             binst={:?} bcyc={:?} active={} engine={}",
            self.config.orf_entries,
            self.config.lrf,
            self.config.partial_ranges,
            self.config.read_operands,
            self.baseline,
            self.ctas,
            self.threads,
            self.budget_instructions,
            self.budget_cycles,
            self.active_warps,
            engine_name(self.engine),
        ));
        canon
    }

    /// The 64-bit content digest of [`Request::canonical`]. Kept for
    /// reporting and as the cache pre-key; no longer used as a cache key
    /// on its own.
    pub fn content_hash(&self) -> u64 {
        fnv1a(self.canonical().as_bytes())
    }
}

/// The per-strand allocation cache shared across requests: strand
/// fingerprints ([`rfh_alloc::strand_fingerprint`]) map to cached
/// [`StrandAllocation`]s, so an edited kernel re-runs analysis +
/// allocation only for the strands whose content changed.
pub type StrandStore = Store<Key, Arc<StrandAllocation>>;

/// Runs hierarchy allocation, incrementally when a strand cache is
/// supplied, monolithically otherwise. Both paths produce byte-identical
/// kernels and stats (proven by `tests/incremental.rs`).
fn allocate_via(
    kernel: &mut Kernel,
    config: &AllocConfig,
    strands: Option<&StrandStore>,
) -> Result<(rfh_alloc::AllocStats, Option<IncrementalStats>), AllocError> {
    let model = EnergyModel::paper();
    match strands {
        None => Ok((allocate(kernel, config, &model)?, None)),
        Some(store) => {
            let (stats, inc) = allocate_incremental(
                kernel,
                config,
                &model,
                &mut |fp| store.get(&Key::new(fp)).map(|a| (*a).clone()),
                &mut |fp, sa| {
                    store.insert(Key::new(fp), Arc::new(sa.clone()));
                },
            )?;
            Ok((stats, Some(inc)))
        }
    }
}

fn usage(msg: impl Into<String>) -> ErrorFrame {
    ErrorFrame::new(ErrorKind::Usage, msg)
}

/// The wire name of an engine (inverse of [`Engine::from_name`]).
pub fn engine_name(engine: Engine) -> &'static str {
    match engine {
        Engine::Soa => "soa",
        Engine::Reference => "reference",
    }
}

/// Decodes a parsed request document into a [`Request`].
///
/// # Errors
///
/// A [`ErrorKind::Protocol`] frame for a missing/wrong schema tag, and a
/// [`ErrorKind::Usage`] frame for bad fields (unknown op, missing or
/// conflicting kernel source, out-of-range geometry).
pub fn decode_request(doc: &Json) -> Result<Request, ErrorFrame> {
    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(ErrorFrame::new(
            ErrorKind::Protocol,
            format!("request must carry \"schema\":\"{SCHEMA}\""),
        ));
    }
    // A missing id defaults to 0, but a *present* id that is not an
    // unsigned integer is a client bug: answering it with id 0 would
    // silently mis-correlate the response, so reject it loudly instead.
    let id = match doc.get("id") {
        None => 0,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| usage("`id` must be an unsigned integer"))?,
    };
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| usage("request is missing the `op` field"))
        .and_then(|name| {
            Op::from_name(name).ok_or_else(|| usage(format!("unknown op `{name}`")))
        })?;

    let kernel = doc.get("kernel").and_then(Json::as_str);
    let workload = doc.get("workload").and_then(Json::as_str);
    let source = match (kernel, workload) {
        (Some(_), Some(_)) => return Err(usage("`kernel` and `workload` are mutually exclusive")),
        (Some(text), None) => Some(KernelSource::Text(text.to_string())),
        (None, Some(name)) => Some(KernelSource::Workload(name.to_string())),
        (None, None) => None,
    };
    if op.needs_kernel() && source.is_none() {
        return Err(usage(format!(
            "op `{}` needs a `kernel` or `workload` field",
            op.name()
        )));
    }

    let mut config = AllocConfig::three_level(3, true);
    if let Some(c) = doc.get("config") {
        if let Some(orf) = c.get("orf").and_then(Json::as_u64) {
            if !(1..=8).contains(&orf) {
                return Err(usage("config.orf must be in 1..=8 (energy model bound)"));
            }
            config.orf_entries = orf as usize;
        }
        if let Some(lrf) = c.get("lrf").and_then(Json::as_str) {
            config.lrf = match lrf {
                "none" => LrfMode::None,
                "unified" => LrfMode::Unified,
                "split" => LrfMode::Split,
                other => {
                    return Err(usage(format!(
                        "config.lrf `{other}` not none|unified|split"
                    )))
                }
            };
        }
        if let Some(p) = c.get("partial").and_then(Json::as_bool) {
            config.partial_ranges = p;
        }
        if let Some(r) = c.get("readop").and_then(Json::as_bool) {
            config.read_operands = r;
        }
    }

    let geometry = |field: &str, default: usize| -> Result<usize, ErrorFrame> {
        match doc.get(field) {
            None => Ok(default),
            Some(v) => v
                .as_u64()
                .map(|n| n as usize)
                .filter(|&n| (1..=4096).contains(&n))
                .ok_or_else(|| usage(format!("`{field}` must be an integer in 1..=4096"))),
        }
    };
    let engine = match doc.get("engine").and_then(Json::as_str) {
        None => Engine::default(),
        Some(name) => Engine::from_name(name)
            .ok_or_else(|| usage(format!("`engine` `{name}` not soa|reference")))?,
    };

    Ok(Request {
        id,
        op,
        source,
        config,
        baseline: doc.get("baseline").and_then(Json::as_bool).unwrap_or(false),
        ctas: geometry("ctas", 1)?,
        threads: geometry("threads", 64)?,
        timeout_ms: doc.get("timeout_ms").and_then(Json::as_u64),
        budget_instructions: doc.get("budget_instructions").and_then(Json::as_u64),
        budget_cycles: doc.get("budget_cycles").and_then(Json::as_u64),
        active_warps: geometry("active_warps", 8)?,
        engine,
    })
}

/// Caps actually applied to one request: the server clamps client
/// overrides to its configured maxima before calling [`handle`].
#[derive(Debug, Clone, Copy)]
pub struct Budgets {
    /// Instruction budget per warp for functional execution.
    pub max_warp_instructions: u64,
    /// Cycle budget for the timing model.
    pub max_cycles: u64,
}

fn isa_error(e: IsaError) -> ErrorFrame {
    match e {
        IsaError::Parse { .. } => ErrorFrame::new(ErrorKind::Parse, e.to_string()),
        IsaError::Validate { .. } => ErrorFrame::new(ErrorKind::InvalidKernel, e.to_string()),
    }
}

fn alloc_error(e: AllocError) -> ErrorFrame {
    match e {
        AllocError::InvalidKernel(inner) => {
            ErrorFrame::new(ErrorKind::InvalidKernel, inner.to_string())
        }
        AllocError::Config(_) => ErrorFrame::new(ErrorKind::Config, e.to_string()),
    }
}

/// The kernel, launch, and memory a request resolves to.
struct Resolved {
    kernel: Kernel,
    launch: Launch,
    memory: GlobalMemory,
    /// Set for workload sources: the full workload, for its host
    /// reference checker and pristine input image.
    workload: Option<rfh_workloads::Workload>,
}

fn resolve(req: &Request) -> Result<Resolved, ErrorFrame> {
    match req.source.as_ref() {
        Some(KernelSource::Text(text)) => {
            let kernel = rfh_isa::parse_kernel(text).map_err(isa_error)?;
            Ok(Resolved {
                kernel,
                launch: Launch::new(req.ctas, req.threads),
                memory: GlobalMemory::new(TEXT_KERNEL_MEM_WORDS),
                workload: None,
            })
        }
        Some(KernelSource::Workload(name)) => {
            let w = rfh_workloads::by_name(name).ok_or_else(|| {
                usage(format!(
                    "unknown workload `{name}` (see `rfh_workloads::all`)"
                ))
            })?;
            Ok(Resolved {
                kernel: w.kernel.clone(),
                launch: w.launch.clone(),
                memory: w.memory.clone(),
                workload: Some(w),
            })
        }
        None => Err(usage(format!("op `{}` needs a kernel", req.op.name()))),
    }
}

/// Allocates (unless baseline) and returns the exec mode + alloc stats.
fn prepare(
    req: &Request,
    kernel: &mut Kernel,
    strands: Option<&StrandStore>,
) -> Result<(ExecMode, Option<rfh_alloc::AllocStats>), ErrorFrame> {
    if req.baseline {
        rfh_isa::validate(kernel).map_err(isa_error)?;
        Ok((ExecMode::Baseline, None))
    } else {
        let (stats, _) = allocate_via(kernel, &req.config, strands).map_err(alloc_error)?;
        Ok((ExecMode::Hierarchy(req.config), Some(stats)))
    }
}

fn counts_json(c: &AccessCounts) -> Json {
    Json::Obj(vec![
        ("mrf_read".into(), Json::u64(c.mrf_read)),
        ("mrf_write".into(), Json::u64(c.mrf_write)),
        (
            "orf_read".into(),
            Json::u64(c.orf_read_private + c.orf_read_shared),
        ),
        (
            "orf_write".into(),
            Json::u64(c.orf_write_private + c.orf_write_shared),
        ),
        ("lrf_read".into(), Json::u64(c.lrf_read)),
        ("lrf_write".into(), Json::u64(c.lrf_write)),
    ])
}

/// Runs one compute op. Infallible ops (`ping`) aside, every failure is a
/// structured error frame; the server adds `catch_unwind` and the
/// wall-clock timeout around this call.
///
/// Allocation runs monolithically; the daemon threads its per-strand
/// cache through [`handle_with`] instead.
///
/// # Errors
///
/// An [`ErrorFrame`] in the class matching the pipeline failure.
pub fn handle(req: &Request, budgets: &Budgets) -> Result<Json, ErrorFrame> {
    handle_with(req, budgets, None)
}

/// [`handle`] with an optional per-strand allocation cache: ops that
/// allocate (`allocate`, `simulate`, `timing`, `trace`) splice unchanged
/// strands' placements from the store instead of recomputing them.
///
/// # Errors
///
/// An [`ErrorFrame`] in the class matching the pipeline failure.
pub fn handle_with(
    req: &Request,
    budgets: &Budgets,
    strands: Option<&StrandStore>,
) -> Result<Json, ErrorFrame> {
    match req.op {
        Op::Ping => Ok(Json::Obj(vec![("pong".into(), Json::Bool(true))])),
        Op::Assemble => {
            let r = resolve(req)?;
            rfh_isa::validate(&r.kernel).map_err(isa_error)?;
            Ok(Json::Obj(vec![
                (
                    "text".into(),
                    Json::str(rfh_isa::printer::print_kernel(&r.kernel)),
                ),
                (
                    "instructions".into(),
                    Json::u64(r.kernel.instr_count() as u64),
                ),
            ]))
        }
        Op::Lint => {
            let r = resolve(req)?;
            rfh_isa::validate(&r.kernel).map_err(isa_error)?;
            let options = rfh_lint::LintOptions {
                alloc: req.config,
                ..Default::default()
            };
            let diags = rfh_lint::lint_kernel(&r.kernel, &options);
            let errors = diags
                .iter()
                .filter(|d| d.severity() == rfh_lint::Severity::Error)
                .count();
            let name = match &req.source {
                Some(KernelSource::Workload(n)) => n.as_str(),
                _ => "<request>",
            };
            let lines: Vec<Json> = diags
                .iter()
                .map(|d| Json::str(rfh_lint::human_line(name, d)))
                .collect();
            if errors > 0 {
                return Err(ErrorFrame::new(
                    ErrorKind::Lint,
                    format!("lint found {errors} error(s)"),
                )
                .with_detail(Json::Arr(lines)));
            }
            Ok(Json::Obj(vec![
                ("errors".into(), Json::u64(0)),
                ("warnings".into(), Json::u64(lines.len() as u64)),
                ("diagnostics".into(), Json::Arr(lines)),
            ]))
        }
        Op::Allocate => {
            let r = resolve(req)?;
            let mut kernel = r.kernel;
            let (stats, inc) =
                allocate_via(&mut kernel, &req.config, strands).map_err(alloc_error)?;
            let mut stats_fields = vec![
                ("strands".into(), Json::u64(stats.strands as u64)),
                ("lrf_values".into(), Json::u64(stats.lrf_values as u64)),
                ("orf_values".into(), Json::u64(stats.orf_values as u64)),
                ("orf_partial".into(), Json::u64(stats.orf_partial as u64)),
                (
                    "read_operands".into(),
                    Json::u64(stats.read_operands as u64),
                ),
                ("demoted".into(), Json::u64(stats.demoted as u64)),
            ];
            if let Some(inc) = inc {
                stats_fields.push(("strand_hits".into(), Json::u64(inc.hits as u64)));
                stats_fields.push(("strand_misses".into(), Json::u64(inc.misses as u64)));
            }
            Ok(Json::Obj(vec![
                (
                    "text".into(),
                    Json::str(rfh_isa::printer::print_kernel_annotated(&kernel)),
                ),
                ("stats".into(), Json::Obj(stats_fields)),
            ]))
        }
        Op::Simulate => {
            let r = resolve(req)?;
            let mut kernel = r.kernel;
            let (mode, _) = prepare(req, &mut kernel, strands)?;
            let mut machine = MachineConfig::paper();
            machine.max_warp_instructions = budgets.max_warp_instructions;
            let mut counter = SwCounter::default();
            let mut mem = r.memory.clone();
            let report = execute_with_engine(
                &kernel,
                &r.launch,
                &mut mem,
                mode,
                &machine,
                req.engine,
                &mut [&mut counter],
            )
            .map_err(|e| ErrorFrame::new(ErrorKind::Exec, e.to_string()))?;
            let verified = match &r.workload {
                Some(w) => {
                    (w.verify)(&w.memory, &mem)
                        .map_err(|e| ErrorFrame::new(ErrorKind::Exec, format!("verify: {e}")))?;
                    Json::Bool(true)
                }
                None => Json::Null,
            };
            let counts = counter.counts();
            let energy = EnergyModel::paper()
                .energy(&counts, req.config.orf_entries)
                .total();
            Ok(Json::Obj(vec![
                (
                    "report".into(),
                    Json::Obj(vec![
                        (
                            "warp_instructions".into(),
                            Json::u64(report.warp_instructions),
                        ),
                        (
                            "thread_instructions".into(),
                            Json::u64(report.thread_instructions),
                        ),
                        ("warps".into(), Json::u64(report.warps as u64)),
                    ]),
                ),
                ("counts".into(), counts_json(&counts)),
                ("energy_pj".into(), Json::Num(energy)),
                ("verified".into(), verified),
            ]))
        }
        Op::Timing => {
            let r = resolve(req)?;
            let mut kernel = r.kernel;
            let (mode, _) = prepare(req, &mut kernel, strands)?;
            let mut machine = MachineConfig::paper();
            machine.max_warp_instructions = budgets.max_warp_instructions;
            let mut cap = TraceCapture::new(machine.clone(), r.launch.threads_per_cta);
            let mut mem = r.memory.clone();
            execute_with_engine(
                &kernel,
                &r.launch,
                &mut mem,
                mode,
                &machine,
                req.engine,
                &mut [&mut cap],
            )
            .map_err(|e| ErrorFrame::new(ErrorKind::Exec, e.to_string()))?;
            let config =
                TimingConfig::two_level(req.active_warps).with_max_cycles(budgets.max_cycles);
            let t = simulate_timing(&cap.traces, &|w| cap.cta_of(w), &config)
                .map_err(|e| ErrorFrame::new(ErrorKind::Timing, e.to_string()))?;
            Ok(Json::Obj(vec![
                ("cycles".into(), Json::u64(t.cycles)),
                ("instructions".into(), Json::u64(t.instructions)),
                ("deschedules".into(), Json::u64(t.deschedules)),
                ("ipc".into(), Json::Num((t.ipc() * 1e6).round() / 1e6)),
            ]))
        }
        Op::Trace => {
            let r = resolve(req)?;
            let mut kernel = r.kernel;
            let (mode, _) = prepare(req, &mut kernel, strands)?;
            let mut machine = MachineConfig::paper();
            machine.max_warp_instructions = budgets.max_warp_instructions;
            let mut exporter = TraceExporter::new(&kernel);
            let mut mem = r.memory.clone();
            execute_with_engine(
                &kernel,
                &r.launch,
                &mut mem,
                mode,
                &machine,
                req.engine,
                &mut [&mut exporter],
            )
            .map_err(|e| ErrorFrame::new(ErrorKind::Exec, e.to_string()))?;
            Ok(Json::Obj(vec![
                ("jsonl".into(), Json::str(exporter.json_lines())),
                ("summary".into(), Json::str(exporter.summary())),
            ]))
        }
        // Control ops never reach the compute path.
        Op::Stats | Op::Shutdown => Err(usage(format!(
            "op `{}` is handled by the server",
            req.op.name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    const KERNEL: &str = "
.kernel axpy
BB0:
  mov r0, %tid.x
  ld.global r1 r0
  ffma r2 r1, 2.0f, r1
  st.global r0, r2
  exit
";

    fn budgets() -> Budgets {
        Budgets {
            max_warp_instructions: 1_000_000,
            max_cycles: 10_000_000,
        }
    }

    fn req(json: &str) -> Result<Request, ErrorFrame> {
        decode_request(&parse(json).expect("test request parses"))
    }

    fn kernel_req(op: &str) -> Request {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::str(SCHEMA)),
            ("id".into(), Json::u64(1)),
            ("op".into(), Json::str(op)),
            ("kernel".into(), Json::str(KERNEL)),
        ]);
        decode_request(&doc).expect("decodes")
    }

    #[test]
    fn decode_rejects_bad_requests_structurally() {
        let cases = [
            ("{}", ErrorKind::Protocol),
            (
                "{\"schema\":\"rfhd-v0\",\"op\":\"ping\"}",
                ErrorKind::Protocol,
            ),
            ("{\"schema\":\"rfhd-v1\"}", ErrorKind::Usage),
            (
                "{\"schema\":\"rfhd-v1\",\"op\":\"frobnicate\"}",
                ErrorKind::Usage,
            ),
            (
                "{\"schema\":\"rfhd-v1\",\"op\":\"allocate\"}",
                ErrorKind::Usage,
            ),
            (
                "{\"schema\":\"rfhd-v1\",\"op\":\"allocate\",\"kernel\":\"x\",\"workload\":\"y\"}",
                ErrorKind::Usage,
            ),
            (
                "{\"schema\":\"rfhd-v1\",\"op\":\"simulate\",\"kernel\":\"x\",\"ctas\":0}",
                ErrorKind::Usage,
            ),
            (
                "{\"schema\":\"rfhd-v1\",\"op\":\"simulate\",\"kernel\":\"x\",\
                 \"config\":{\"orf\":9}}",
                ErrorKind::Usage,
            ),
        ];
        for (text, kind) in cases {
            let e = req(text).expect_err(text);
            assert_eq!(e.kind, kind, "{text}");
        }
    }

    #[test]
    fn ping_needs_no_kernel() {
        let r = req("{\"schema\":\"rfhd-v1\",\"op\":\"ping\",\"id\":9}").expect("decodes");
        assert_eq!(r.id, 9);
        let out = handle(&r, &budgets()).expect("pong");
        assert_eq!(out.get("pong").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn allocate_round_trips_a_kernel() {
        let out = handle(&kernel_req("allocate"), &budgets()).expect("allocates");
        let text = out.get("text").and_then(Json::as_str).expect("text");
        assert!(text.contains("axpy"));
        let stats = out.get("stats").expect("stats");
        assert_eq!(stats.get("demoted").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn simulate_reports_counts_and_energy() {
        let out = handle(&kernel_req("simulate"), &budgets()).expect("simulates");
        let report = out.get("report").expect("report");
        assert!(report.get("warp_instructions").and_then(Json::as_u64) > Some(0));
        assert!(out.get("energy_pj").and_then(Json::as_f64) > Some(0.0));
        assert_eq!(out.get("verified"), Some(&Json::Null));
    }

    #[test]
    fn simulate_workload_verifies_against_host_reference() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::str(SCHEMA)),
            ("op".into(), Json::str("simulate")),
            ("workload".into(), Json::str("vectoradd")),
        ]);
        let r = decode_request(&doc).expect("decodes");
        let out = handle(&r, &budgets()).expect("simulates");
        assert_eq!(out.get("verified"), Some(&Json::Bool(true)));
    }

    #[test]
    fn timing_threads_the_cycle_budget() {
        let out = handle(&kernel_req("timing"), &budgets()).expect("times");
        assert!(out.get("cycles").and_then(Json::as_u64) > Some(0));
        // A one-cycle budget must come back as a structured timing error.
        let e = handle(
            &kernel_req("timing"),
            &Budgets {
                max_warp_instructions: 1_000_000,
                max_cycles: 1,
            },
        )
        .expect_err("budget of 1 cycle");
        assert_eq!(e.kind, ErrorKind::Timing);
    }

    #[test]
    fn parse_failures_map_to_the_parse_class() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::str(SCHEMA)),
            ("op".into(), Json::str("assemble")),
            ("kernel".into(), Json::str("this is not a kernel")),
        ]);
        let r = decode_request(&doc).expect("decodes");
        let e = handle(&r, &budgets()).expect_err("parse error");
        assert_eq!(e.kind, ErrorKind::Parse);
    }

    #[test]
    fn unknown_workload_is_a_usage_error() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::str(SCHEMA)),
            ("op".into(), Json::str("simulate")),
            ("workload".into(), Json::str("no-such-benchmark")),
        ]);
        let r = decode_request(&doc).expect("decodes");
        assert_eq!(
            handle(&r, &budgets()).expect_err("unknown").kind,
            ErrorKind::Usage
        );
    }

    #[test]
    fn content_hash_separates_semantic_fields_only() {
        let a = kernel_req("simulate");
        let mut b = a.clone();
        assert_eq!(a.content_hash(), b.content_hash());
        b.id = 99; // id is not semantic
        b.timeout_ms = Some(123); // neither is the wall-clock timeout
        assert_eq!(a.content_hash(), b.content_hash());
        let mut c = a.clone();
        c.config.orf_entries = 5;
        assert_ne!(a.content_hash(), c.content_hash());
        let mut d = a.clone();
        d.baseline = true;
        assert_ne!(a.content_hash(), d.content_hash());
    }

    #[test]
    fn non_numeric_id_is_a_usage_error_not_id_zero() {
        // Regression: a present-but-non-numeric `id` used to be silently
        // coerced to 0; it must be answered with a structured usage error.
        for bad in [
            "{\"schema\":\"rfhd-v1\",\"op\":\"ping\",\"id\":\"7\"}",
            "{\"schema\":\"rfhd-v1\",\"op\":\"ping\",\"id\":true}",
            "{\"schema\":\"rfhd-v1\",\"op\":\"ping\",\"id\":-3}",
            "{\"schema\":\"rfhd-v1\",\"op\":\"ping\",\"id\":1.5}",
            "{\"schema\":\"rfhd-v1\",\"op\":\"ping\",\"id\":null}",
            "{\"schema\":\"rfhd-v1\",\"op\":\"ping\",\"id\":[1]}",
        ] {
            let e = req(bad).expect_err(bad);
            assert_eq!(e.kind, ErrorKind::Usage, "{bad}");
            assert!(e.message.contains("id"), "{bad}: {}", e.message);
        }
        // An absent id still defaults to 0.
        let r = req("{\"schema\":\"rfhd-v1\",\"op\":\"ping\"}").expect("decodes");
        assert_eq!(r.id, 0);
    }

    #[test]
    fn strand_store_is_warmed_by_allocate_and_reused() {
        let store = StrandStore::with_capacity(64);
        let r = kernel_req("allocate");
        let cold = handle_with(&r, &budgets(), Some(&store)).expect("cold allocate");
        let hits0 = cold
            .get("stats")
            .and_then(|s| s.get("strand_hits"))
            .and_then(Json::as_u64)
            .expect("strand_hits reported");
        let miss0 = cold
            .get("stats")
            .and_then(|s| s.get("strand_misses"))
            .and_then(Json::as_u64)
            .expect("strand_misses reported");
        assert_eq!(hits0, 0);
        assert!(miss0 > 0);
        let warm = handle_with(&r, &budgets(), Some(&store)).expect("warm allocate");
        let hits1 = warm
            .get("stats")
            .and_then(|s| s.get("strand_hits"))
            .and_then(Json::as_u64)
            .expect("strand_hits reported");
        let miss1 = warm
            .get("stats")
            .and_then(|s| s.get("strand_misses"))
            .and_then(Json::as_u64)
            .expect("strand_misses reported");
        assert_eq!(miss1, 0, "every strand must splice from the cache");
        assert_eq!(hits1, miss0, "one hit per previously computed strand");
        // Identical output either way.
        assert_eq!(cold.get("text"), warm.get("text"));
        let mono = handle(&r, &budgets()).expect("monolithic allocate");
        assert_eq!(mono.get("text"), warm.get("text"));
    }

    #[test]
    fn handle_without_store_omits_strand_counters() {
        let out = handle(&kernel_req("allocate"), &budgets()).expect("allocates");
        assert!(out
            .get("stats")
            .and_then(|s| s.get("strand_hits"))
            .is_none());
    }
}
