//! The daemon: listeners, request isolation, backpressure, and the
//! result cache.
//!
//! ## Fault domains
//!
//! Every connection is one task on a bounded [`TaskPool`]; the pool's
//! queue **is** the accept queue, so admission control is explicit: when
//! the queue is full the acceptor writes an `overloaded` error frame with
//! a `retry_after_ms` hint and closes — load is shed at the edge instead
//! of queueing without bound.
//!
//! Within a connection, each compute request runs on its own thread under
//! `catch_unwind`, with the response collected through a channel under a
//! wall-clock timeout. A panic becomes an `internal` error frame; a
//! timeout becomes a `timeout` frame and the abandoned thread is bounded
//! by the instruction/cycle budgets threaded into the executor and timing
//! model, so stragglers cannot accumulate forever. Neither event kills
//! the worker, the connection, or the daemon.
//!
//! Socket reads carry an idle timeout, so a stalled slow-writer client
//! occupies its pool slot only for the configured window before being
//! disconnected.
//!
//! ## Shutdown
//!
//! A `shutdown` request flips the accept flag and wakes the acceptor; the
//! daemon then stops admitting connections, drains the pool (every
//! admitted connection finishes), and reports end-of-life counters.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use rfh_testkit::env;
use rfh_testkit::pool::TaskPool;

use crate::cache::{Key, Store};
use crate::handler::{decode_request, handle_with, Budgets, Op, Request, StrandStore};
use crate::json::Json;
use crate::proto::{
    read_frame, render_response, write_frame, ErrorFrame, ErrorKind, FrameError, DEFAULT_MAX_FRAME,
};

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:7117` (port 0 picks a free port).
    Tcp(String),
    /// A unix-domain socket path.
    Unix(PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// Daemon configuration. [`ServerConfig::from_env`] layers the `RFHD_*`
/// environment knobs (parsed under the shared [`rfh_testkit::env`]
/// grammar: decimal or `0x`-hex, loud warning and fallback on a malformed
/// value) over these defaults.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen.
    pub endpoint: Endpoint,
    /// Worker threads (connections served concurrently).
    pub workers: usize,
    /// Accept-queue depth beyond the workers; connections arriving with
    /// the queue full are shed with an `overloaded` frame.
    pub queue_depth: usize,
    /// Result-cache capacity in entries.
    pub cache_entries: usize,
    /// Per-strand allocation cache capacity in entries (strands are much
    /// smaller and more numerous than whole results, so the default is
    /// correspondingly larger).
    pub strand_cache_entries: usize,
    /// Default and maximum per-request wall-clock timeout. Clients may
    /// request less via `timeout_ms`, never more.
    pub timeout_ms: u64,
    /// Socket read timeout: how long a connection may sit idle (or a
    /// slow-writer stall mid-frame) before being disconnected.
    pub io_timeout_ms: u64,
    /// Maximum accepted frame payload.
    pub max_frame: usize,
    /// Ceiling on per-request instruction budgets.
    pub max_warp_instructions: u64,
    /// Ceiling on per-request timing-model cycle budgets.
    pub max_cycles: u64,
}

impl ServerConfig {
    /// Conservative defaults for the given endpoint.
    pub fn new(endpoint: Endpoint) -> Self {
        ServerConfig {
            endpoint,
            workers: 4,
            queue_depth: 16,
            cache_entries: 256,
            strand_cache_entries: 2048,
            timeout_ms: 10_000,
            io_timeout_ms: 10_000,
            max_frame: DEFAULT_MAX_FRAME,
            max_warp_instructions: 20_000_000,
            max_cycles: 200_000_000,
        }
    }

    /// Defaults overridden by the `RFHD_TIMEOUT_MS`, `RFHD_QUEUE_DEPTH`,
    /// `RFHD_CACHE_ENTRIES`, and `RFHD_STRAND_CACHE_ENTRIES` environment
    /// knobs.
    pub fn from_env(endpoint: Endpoint) -> Self {
        let mut cfg = ServerConfig::new(endpoint);
        if let Some(ms) = env::u64_knob("RFHD_TIMEOUT_MS") {
            cfg.timeout_ms = ms.max(1);
        }
        if let Some(depth) = env::positive_usize_knob("RFHD_QUEUE_DEPTH") {
            cfg.queue_depth = depth;
        }
        if let Some(entries) = env::positive_usize_knob("RFHD_CACHE_ENTRIES") {
            cfg.cache_entries = entries;
        }
        if let Some(entries) = env::positive_usize_knob("RFHD_STRAND_CACHE_ENTRIES") {
            cfg.strand_cache_entries = entries;
        }
        cfg
    }
}

/// End-of-life counters reported by [`Server::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// Requests answered (including error frames).
    pub served: u64,
    /// Connections shed with an `overloaded` frame.
    pub shed: u64,
    /// Requests that hit the wall-clock timeout.
    pub timeouts: u64,
    /// Panics caught inside request isolation.
    pub compute_panics: u64,
    /// Panics that escaped a connection task (should stay 0; compute
    /// panics are caught one level deeper).
    pub pool_panics: u64,
    /// Connections still being handled when the drain finished (must be
    /// 0 — drain waits for every admitted connection).
    pub in_flight_at_exit: usize,
}

struct Counters {
    served: AtomicU64,
    shed: AtomicU64,
    timeouts: AtomicU64,
    compute_panics: AtomicU64,
    in_flight: AtomicUsize,
}

struct Shared {
    cfg: ServerConfig,
    /// The endpoint after binding (real port for TCP port 0) — the
    /// shutdown wake connects here.
    resolved: Endpoint,
    /// Whole-response result cache, keyed by the full canonical request
    /// string (the 64-bit digest is only a pre-key — see
    /// [`crate::cache::Key`]).
    cache: Store<Key, Json>,
    /// Per-strand allocation cache shared by every compute thread.
    strand_cache: Arc<StrandStore>,
    budget_caps: Budgets,
    shutdown: AtomicBool,
    counters: Counters,
    started: Instant,
    workers: usize,
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

/// One connection, generic over the transport. Shared with the client
/// side, which dials with [`Conn::connect`].
pub(crate) enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    /// Dials an endpoint.
    pub(crate) fn connect(endpoint: &Endpoint) -> std::io::Result<Conn> {
        match endpoint {
            Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(Conn::Tcp),
            Endpoint::Unix(path) => UnixStream::connect(path).map(Conn::Unix),
        }
    }

    pub(crate) fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(t),
            Conn::Unix(s) => s.set_read_timeout(t),
        }
    }

    pub(crate) fn set_write_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(t),
            Conn::Unix(s) => s.set_write_timeout(t),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// A bound daemon, ready to [`run`](Server::run).
pub struct Server {
    listener: Listener,
    shared: Arc<Shared>,
    /// The endpoint after binding — for TCP port 0 this carries the
    /// actual port, so tests and the chaos harness can connect.
    endpoint: Endpoint,
}

impl Server {
    /// Binds the configured endpoint. An existing socket file at a unix
    /// endpoint is removed first (a daemon that died without cleanup must
    /// not brick its own socket path).
    ///
    /// # Errors
    ///
    /// Any bind failure.
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let (listener, endpoint) = match &cfg.endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                let actual = Endpoint::Tcp(l.local_addr()?.to_string());
                (Listener::Tcp(l), actual)
            }
            Endpoint::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                let l = UnixListener::bind(path)?;
                (Listener::Unix(l), Endpoint::Unix(path.clone()))
            }
        };
        let budget_caps = Budgets {
            max_warp_instructions: cfg.max_warp_instructions,
            max_cycles: cfg.max_cycles,
        };
        let shared = Arc::new(Shared {
            resolved: endpoint.clone(),
            cache: Store::with_capacity(cfg.cache_entries),
            strand_cache: Arc::new(Store::with_capacity(cfg.strand_cache_entries)),
            budget_caps,
            shutdown: AtomicBool::new(false),
            counters: Counters {
                served: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                timeouts: AtomicU64::new(0),
                compute_panics: AtomicU64::new(0),
                in_flight: AtomicUsize::new(0),
            },
            started: Instant::now(),
            workers: cfg.workers,
            cfg,
        });
        Ok(Server {
            listener,
            shared,
            endpoint,
        })
    }

    /// The endpoint actually bound (with the real port for TCP port 0).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Serves until a `shutdown` request, then drains and reports.
    ///
    /// # Errors
    ///
    /// Only fatal accept-loop failures; per-connection errors are
    /// contained and answered in-band.
    pub fn run(self) -> std::io::Result<ServerReport> {
        let pool = TaskPool::new(self.shared.cfg.workers, self.shared.cfg.queue_depth);
        loop {
            let conn = match &self.listener {
                Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
                Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            };
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break; // the wake connection is dropped unanswered
            }
            let conn = match conn {
                Ok(c) => c,
                // A failed accept (peer vanished between SYN and accept)
                // must not kill the daemon.
                Err(_) => continue,
            };
            // The connection rides in a shared slot so that on shedding
            // (the closure is handed back unexecuted) the acceptor can
            // take it back and answer in-band before closing.
            let slot = Arc::new(std::sync::Mutex::new(Some(conn)));
            let task_slot = Arc::clone(&slot);
            let shared = Arc::clone(&self.shared);
            let admitted = pool.try_execute(Box::new(move || {
                let conn = lock_slot(&task_slot).take();
                if let Some(conn) = conn {
                    serve_conn(conn, &shared);
                }
            }));
            if let Err(rfh_testkit::pool::PoolBusy(task)) = admitted {
                drop(task);
                self.shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                if let Some(mut conn) = lock_slot(&slot).take() {
                    // Queue full: shed at the edge, telling the client
                    // when to retry (a fraction of the request window —
                    // a slot frees up at latest when one request ends).
                    let hint = (self.shared.cfg.timeout_ms / 10).clamp(10, 1_000);
                    let mut frame = ErrorFrame::new(ErrorKind::Overloaded, "accept queue is full");
                    frame.retry_after_ms = Some(hint);
                    let _ = conn.set_write_timeout(Some(Duration::from_millis(1_000)));
                    let _ = write_frame(&mut conn, &render_response(0, &Err(frame)));
                }
            }
        }
        let pool_panics = pool.drain() as u64;
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
        let c = &self.shared.counters;
        Ok(ServerReport {
            served: c.served.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            compute_panics: c.compute_panics.load(Ordering::Relaxed),
            pool_panics,
            in_flight_at_exit: c.in_flight.load(Ordering::Relaxed),
        })
    }

    /// Binds and serves on a background thread; the returned handle
    /// carries the resolved endpoint. Used by tests, the chaos harness,
    /// and the CI smoke test.
    ///
    /// # Errors
    ///
    /// Any bind failure.
    pub fn spawn(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        let server = Server::bind(cfg)?;
        let endpoint = server.endpoint.clone();
        let shared = Arc::clone(&server.shared);
        let thread = std::thread::spawn(move || server.run());
        Ok(ServerHandle {
            endpoint,
            shared,
            thread,
        })
    }
}

/// Handle to a daemon running on a background thread.
pub struct ServerHandle {
    /// The resolved endpoint to connect to.
    pub endpoint: Endpoint,
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<std::io::Result<ServerReport>>,
}

impl ServerHandle {
    /// Connections currently admitted and not yet finished.
    pub fn in_flight(&self) -> usize {
        self.shared.counters.in_flight.load(Ordering::Relaxed)
    }

    /// Waits for the daemon to exit (send a `shutdown` request first).
    ///
    /// # Errors
    ///
    /// The accept loop's fatal error, if any; a panic of the server
    /// thread itself is surfaced as an `Other` I/O error.
    pub fn join(self) -> std::io::Result<ServerReport> {
        self.thread
            .join()
            .map_err(|_| std::io::Error::other("server thread panicked"))?
    }
}

/// Serves one connection to completion: a sequence of frames, each
/// answered in order on the same socket.
fn serve_conn(mut conn: Conn, shared: &Shared) {
    shared.counters.in_flight.fetch_add(1, Ordering::SeqCst);
    // Decrement even if this function panics (the pool contains it).
    struct InFlightGuard<'a>(&'a Counters);
    impl Drop for InFlightGuard<'_> {
        fn drop(&mut self) {
            self.0.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
    }
    let _guard = InFlightGuard(&shared.counters);

    let io_timeout = Duration::from_millis(shared.cfg.io_timeout_ms.max(1));
    if conn.set_read_timeout(Some(io_timeout)).is_err()
        || conn.set_write_timeout(Some(io_timeout)).is_err()
    {
        return;
    }

    loop {
        let payload = match read_frame(&mut conn, shared.cfg.max_frame) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean close
            Err(e) => {
                // After a framing error the byte stream cannot be
                // resynchronized: answer once (where the peer can still
                // hear it), then close.
                let frame = match &e {
                    FrameError::Io(io) => match io.kind() {
                        // A stalled slow-writer (or idle keep-alive) hit
                        // the socket read timeout.
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                            ErrorFrame::new(
                                ErrorKind::Timeout,
                                format!("no complete frame within {} ms", shared.cfg.io_timeout_ms),
                            )
                        }
                        // The peer is gone; nobody is listening.
                        _ => return,
                    },
                    _ => ErrorFrame::new(ErrorKind::Protocol, e.to_string()),
                };
                respond(&mut conn, shared, 0, &Err(frame));
                return;
            }
        };
        let doc = match crate::json::parse(&payload) {
            Ok(doc) => doc,
            Err(e) => {
                // Framing is intact, so the stream stays usable: answer
                // the malformed request and keep serving.
                let frame = ErrorFrame::new(ErrorKind::Protocol, format!("bad JSON: {e}"));
                respond(&mut conn, shared, 0, &Err(frame));
                continue;
            }
        };
        let req = match decode_request(&doc) {
            Ok(req) => req,
            Err(frame) => {
                let id = doc.get("id").and_then(Json::as_u64).unwrap_or(0);
                respond(&mut conn, shared, id, &Err(frame));
                continue;
            }
        };
        match req.op {
            Op::Shutdown => {
                respond(
                    &mut conn,
                    shared,
                    req.id,
                    &Ok((
                        Json::Obj(vec![("draining".into(), Json::Bool(true))]),
                        false,
                    )),
                );
                shared.shutdown.store(true, Ordering::SeqCst);
                wake_acceptor(shared);
                return;
            }
            Op::Stats => {
                let outcome = Ok((stats_json(shared), false));
                respond(&mut conn, shared, req.id, &outcome);
            }
            _ => {
                let outcome = compute(shared, &req);
                respond(&mut conn, shared, req.id, &outcome);
            }
        }
    }
}

/// Runs one compute request under the full isolation stack: cache →
/// spawned thread → `catch_unwind` → wall-clock timeout.
fn compute(shared: &Shared, req: &Request) -> Result<(Json, bool), ErrorFrame> {
    let key = Key::new(req.canonical());
    if req.op.cacheable() {
        if let Some(result) = shared.cache.get(&key) {
            return Ok((result, true));
        }
    }
    let budgets = Budgets {
        max_warp_instructions: req
            .budget_instructions
            .unwrap_or(shared.budget_caps.max_warp_instructions)
            .clamp(1, shared.budget_caps.max_warp_instructions),
        max_cycles: req
            .budget_cycles
            .unwrap_or(shared.budget_caps.max_cycles)
            .clamp(1, shared.budget_caps.max_cycles),
    };
    let timeout = Duration::from_millis(
        req.timeout_ms
            .unwrap_or(shared.cfg.timeout_ms)
            .clamp(1, shared.cfg.timeout_ms),
    );
    let (tx, rx) = mpsc::channel();
    let thread_req = req.clone();
    let strand_cache = Arc::clone(&shared.strand_cache);
    std::thread::spawn(move || {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle_with(&thread_req, &budgets, Some(&strand_cache))
        }));
        // A send failure means the request timed out and the receiver is
        // gone; the result is simply dropped.
        let _ = tx.send(outcome);
    });
    match rx.recv_timeout(timeout) {
        Ok(Ok(Ok(result))) => {
            let result = if req.op.cacheable() {
                shared.cache.insert(key, result)
            } else {
                result
            };
            Ok((result, false))
        }
        Ok(Ok(Err(frame))) => Err(frame),
        Ok(Err(panic)) => {
            shared
                .counters
                .compute_panics
                .fetch_add(1, Ordering::Relaxed);
            let what = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            Err(ErrorFrame::new(
                ErrorKind::Internal,
                format!("request panicked: {what}"),
            ))
        }
        Err(_) => {
            shared.counters.timeouts.fetch_add(1, Ordering::Relaxed);
            // The straggler thread keeps running until its instruction or
            // cycle budget halts it; its late result is dropped.
            Err(ErrorFrame::new(
                ErrorKind::Timeout,
                format!("request exceeded {} ms", timeout.as_millis()),
            ))
        }
    }
}

fn respond(conn: &mut Conn, shared: &Shared, id: u64, outcome: &Result<(Json, bool), ErrorFrame>) {
    shared.counters.served.fetch_add(1, Ordering::Relaxed);
    // A write failure means the peer is gone; nothing to do but let the
    // caller finish the connection.
    let _ = write_frame(conn, &render_response(id, outcome));
}

fn cache_stats_json(stats: crate::cache::CacheStats) -> Json {
    let mut fields = vec![
        ("hits".into(), Json::u64(stats.hits)),
        ("misses".into(), Json::u64(stats.misses)),
        ("evictions".into(), Json::u64(stats.evictions)),
        ("races".into(), Json::u64(stats.races)),
        ("entries".into(), Json::u64(stats.entries as u64)),
    ];
    if let Some(cap) = stats.capacity {
        fields.push(("capacity".into(), Json::u64(cap as u64)));
    }
    Json::Obj(fields)
}

fn stats_json(shared: &Shared) -> Json {
    let c = &shared.counters;
    Json::Obj(vec![
        ("cache".into(), cache_stats_json(shared.cache.stats())),
        (
            "strand_cache".into(),
            cache_stats_json(shared.strand_cache.stats()),
        ),
        ("served".into(), Json::u64(c.served.load(Ordering::Relaxed))),
        ("shed".into(), Json::u64(c.shed.load(Ordering::Relaxed))),
        (
            "timeouts".into(),
            Json::u64(c.timeouts.load(Ordering::Relaxed)),
        ),
        (
            "compute_panics".into(),
            Json::u64(c.compute_panics.load(Ordering::Relaxed)),
        ),
        (
            "in_flight".into(),
            Json::u64(c.in_flight.load(Ordering::Relaxed) as u64),
        ),
        ("workers".into(), Json::u64(shared.workers as u64)),
        (
            "queue_depth".into(),
            Json::u64(shared.cfg.queue_depth as u64),
        ),
        (
            "uptime_ms".into(),
            Json::u64(shared.started.elapsed().as_millis() as u64),
        ),
    ])
}

/// Unblocks the acceptor after the shutdown flag flips, via a throwaway
/// connection to the daemon's own (resolved) endpoint. The acceptor sees
/// the flag before handling the wake connection and exits.
fn wake_acceptor(shared: &Shared) {
    match &shared.resolved {
        Endpoint::Tcp(addr) => drop(TcpStream::connect(addr.as_str())),
        Endpoint::Unix(path) => drop(UnixStream::connect(path)),
    }
}

/// Locks a connection slot, recovering from poisoning (a panic in a
/// connection task is already contained by the pool; the slot's `Option`
/// stays consistent either way).
fn lock_slot<'a>(
    slot: &'a Arc<std::sync::Mutex<Option<Conn>>>,
) -> std::sync::MutexGuard<'a, Option<Conn>> {
    match slot.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_from_env_reads_knobs() {
        // Unique names per test: the environment is process-global.
        std::env::set_var("RFHD_TIMEOUT_MS", "250");
        std::env::set_var("RFHD_QUEUE_DEPTH", "3");
        std::env::set_var("RFHD_CACHE_ENTRIES", "0x10");
        std::env::set_var("RFHD_STRAND_CACHE_ENTRIES", "0x40");
        let cfg = ServerConfig::from_env(Endpoint::Tcp("127.0.0.1:0".into()));
        assert_eq!(cfg.timeout_ms, 250);
        assert_eq!(cfg.queue_depth, 3);
        assert_eq!(cfg.cache_entries, 16);
        assert_eq!(cfg.strand_cache_entries, 64);
        std::env::remove_var("RFHD_TIMEOUT_MS");
        std::env::remove_var("RFHD_QUEUE_DEPTH");
        std::env::remove_var("RFHD_CACHE_ENTRIES");
        std::env::remove_var("RFHD_STRAND_CACHE_ENTRIES");
    }
}
