//! A thread-safe memoization store with optional LRU eviction and
//! hit/miss/eviction statistics.
//!
//! This generalizes the per-(workload, config) caches that grew up inside
//! `rfh_experiments::ExperimentCtx` into one reusable component:
//!
//! * **unbounded** stores ([`Store::unbounded`]) memoize deterministic
//!   computations for the lifetime of a process — the experiment engine's
//!   use, where every cell will be revisited;
//! * **bounded** stores ([`Store::with_capacity`]) serve open-ended
//!   traffic — the daemon's kernel cache, where the key space is
//!   unbounded and the least-recently-used entry is evicted instead of
//!   growing memory without limit.
//!
//! All cached values are assumed to be deterministic functions of their
//! key, so concurrent computation of one key is benign: the first insert
//! wins and every caller sees an identical value. Values are cloned out
//! (wrap big payloads in `Arc`).
//!
//! The store also exposes [`fnv1a`], the content hash used to key daemon
//! requests: stable across runs and platforms, so cache behavior is
//! replayable.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// A collision-proof cache key: the **full canonical string** is the key;
/// the 64-bit [`fnv1a`] digest is retained only as a fast pre-key so that
/// `HashMap` probing does not rehash the whole string on every lookup.
///
/// Equality compares the pre-key first (cheap reject) and then the full
/// canonical text, so two distinct requests whose digests collide map to
/// *different* entries instead of silently sharing one — the bug this type
/// replaces (`Store<u64, _>` keyed by the bare digest) served the first
/// request's cached response to the second.
#[derive(Debug, Clone, Eq)]
pub struct Key {
    hash: u64,
    canon: String,
}

impl Key {
    /// Keys a canonical request string.
    pub fn new(canon: impl Into<String>) -> Key {
        let canon = canon.into();
        Key {
            hash: fnv1a(canon.as_bytes()),
            canon,
        }
    }

    /// A key with a caller-chosen pre-key. Real 64-bit FNV-1a collisions
    /// take ~2³² birthday work to find, so collision regression tests use
    /// this constructor to force two distinct canonical strings onto one
    /// pre-key.
    pub fn with_pre_key(hash: u64, canon: impl Into<String>) -> Key {
        Key {
            hash,
            canon: canon.into(),
        }
    }

    /// The 64-bit pre-key (the FNV-1a digest for [`Key::new`] keys).
    pub fn pre_key(&self) -> u64 {
        self.hash
    }

    /// The full canonical string.
    pub fn canon(&self) -> &str {
        &self.canon
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.canon == other.canon
    }
}

impl Hash for Key {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Only the pre-key feeds the table hash; full-string comparison
        // happens in `eq`, where colliding keys are told apart.
        state.write_u64(self.hash);
    }
}

/// Counters describing a store's effectiveness. All counts are since
/// construction; `entries`/`capacity` describe the current shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the key.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room (bounded stores only).
    pub evictions: u64,
    /// Inserts that lost the first-writer-wins race (benign duplicates).
    pub races: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries; `None` for unbounded stores.
    pub capacity: Option<usize>,
}

struct Inner<K, V> {
    map: HashMap<K, Slot<V>>,
    /// Monotonic logical clock stamping recency of use.
    tick: u64,
    stats: CacheStats,
}

struct Slot<V> {
    value: V,
    last_used: u64,
}

/// A memoization store (see module docs).
pub struct Store<K, V> {
    inner: Mutex<Inner<K, V>>,
    capacity: Option<usize>,
}

impl<K: Eq + Hash + Clone, V: Clone> Store<K, V> {
    /// A store that never evicts.
    pub fn unbounded() -> Self {
        Store::build(None)
    }

    /// A store holding at most `capacity` entries (at least 1), evicting
    /// the least-recently-used entry on overflow.
    pub fn with_capacity(capacity: usize) -> Self {
        Store::build(Some(capacity.max(1)))
    }

    fn build(capacity: Option<usize>) -> Self {
        Store {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                stats: CacheStats {
                    capacity,
                    ..CacheStats::default()
                },
            }),
            capacity,
        }
    }

    /// Looks up `key`, counting a hit or miss and refreshing recency.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(slot) => {
                slot.last_used = tick;
                let v = slot.value.clone();
                inner.stats.hits += 1;
                Some(v)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts `value` unless `key` is already present, returning the
    /// resident value either way (first writer wins — later duplicates
    /// from concurrent computation of the same key are dropped and
    /// counted under [`CacheStats::races`]). Evicts the least-recently-
    /// used entry first when a bounded store is full.
    ///
    /// The residency check runs **before** the capacity check: an insert
    /// that loses the first-writer race on a full store returns the
    /// resident value immediately and never runs the O(n) eviction scan —
    /// a racing duplicate must not evict an unrelated entry.
    pub fn insert(&self, key: K, value: V) -> V {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(slot) = inner.map.get_mut(&key) {
            slot.last_used = tick;
            let v = slot.value.clone();
            inner.stats.races += 1;
            return v;
        }
        if let Some(cap) = self.capacity {
            while inner.map.len() >= cap {
                // O(n) scan; daemon caches hold at most a few thousand
                // entries and eviction is off the request fast path
                // (hits never scan).
                if let Some(oldest) = inner
                    .map
                    .iter()
                    .min_by_key(|(_, s)| s.last_used)
                    .map(|(k, _)| k.clone())
                {
                    inner.map.remove(&oldest);
                    inner.stats.evictions += 1;
                } else {
                    break;
                }
            }
        }
        inner.map.insert(
            key,
            Slot {
                value: value.clone(),
                last_used: tick,
            },
        );
        inner.stats.entries = inner.map.len();
        value
    }

    /// Memoizes `compute` under `key`. The computation runs **outside**
    /// the store lock, so a slow miss does not serialize other lookups;
    /// the cost is that concurrent misses of one key may compute twice
    /// (benign — first insert wins).
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(&key) {
            return v;
        }
        let v = compute();
        self.insert(key, v)
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let mut inner = self.lock();
        inner.stats.entries = inner.map.len();
        inner.stats
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<K, V>> {
        // Poisoning is impossible by construction: no user code runs
        // under the lock (compute closures run outside it).
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// FNV-1a over a byte stream: the stable content hash keying the daemon's
/// request cache.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_memoizes_and_counts() {
        let store: Store<u32, String> = Store::unbounded();
        assert_eq!(store.get(&1), None);
        let computed = std::cell::Cell::new(0);
        let v = store.get_or_insert_with(1, || {
            computed.set(computed.get() + 1);
            "one".to_string()
        });
        assert_eq!(v, "one");
        let v = store.get_or_insert_with(1, || {
            computed.set(computed.get() + 1);
            "other".to_string()
        });
        assert_eq!(v, "one", "memoized value wins");
        assert_eq!(computed.get(), 1, "second lookup must not recompute");
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 2, 0));
        assert_eq!(s.entries, 1);
        assert_eq!(s.capacity, None);
    }

    #[test]
    fn first_writer_wins_on_duplicate_insert() {
        let store: Store<u32, u32> = Store::unbounded();
        assert_eq!(store.insert(7, 70), 70);
        assert_eq!(store.insert(7, 71), 70, "duplicate insert is dropped");
        assert_eq!(store.get(&7), Some(70));
        assert_eq!(store.stats().races, 1);
    }

    #[test]
    fn bounded_store_evicts_least_recently_used() {
        let store: Store<u32, u32> = Store::with_capacity(2);
        store.insert(1, 10);
        store.insert(2, 20);
        assert_eq!(store.get(&1), Some(10)); // refresh 1: now 2 is LRU
        store.insert(3, 30);
        assert_eq!(store.get(&2), None, "2 was least recently used");
        assert_eq!(store.get(&1), Some(10));
        assert_eq!(store.get(&3), Some(30));
        let s = store.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert_eq!(s.capacity, Some(2));
    }

    #[test]
    fn capacity_one_still_works() {
        let store: Store<u32, u32> = Store::with_capacity(1);
        store.insert(1, 10);
        store.insert(2, 20);
        assert_eq!(store.get(&1), None);
        assert_eq!(store.get(&2), Some(20));
    }

    #[test]
    fn concurrent_misses_agree() {
        let store: std::sync::Arc<Store<u32, u64>> = std::sync::Arc::new(Store::unbounded());
        let results: Vec<u64> =
            rfh_testkit::pool::par_map(&[0u32; 16], |_| store.get_or_insert_with(5, || 500));
        assert!(results.iter().all(|&v| v == 500));
        assert_eq!(store.stats().entries, 1);
    }

    /// Satellite regression: two distinct canonical strings forced onto
    /// one 64-bit pre-key must get separate entries and correct values —
    /// a bare-u64-keyed store would serve the first value for both.
    #[test]
    fn colliding_pre_keys_get_distinct_entries() {
        let store: Store<Key, String> = Store::unbounded();
        let a = Key::with_pre_key(0xDEAD_BEEF, "allocate\0kernel-a");
        let b = Key::with_pre_key(0xDEAD_BEEF, "allocate\0kernel-b");
        assert_eq!(a.pre_key(), b.pre_key(), "precondition: pre-keys collide");
        assert_ne!(a, b, "full keys must still differ");
        store.insert(a.clone(), "result-a".into());
        store.insert(b.clone(), "result-b".into());
        assert_eq!(store.get(&a).as_deref(), Some("result-a"));
        assert_eq!(store.get(&b).as_deref(), Some("result-b"));
        let s = store.stats();
        assert_eq!(s.entries, 2, "colliding keys must not share an entry");
        assert_eq!(s.races, 0, "distinct keys are not duplicate inserts");
    }

    /// Real (unforced) keys behave like plain values.
    #[test]
    fn key_hashes_its_canonical_string() {
        let k = Key::new("simulate\0workload\0fft");
        assert_eq!(k.pre_key(), fnv1a(b"simulate\0workload\0fft"));
        assert_eq!(k.canon(), "simulate\0workload\0fft");
        assert_eq!(k, Key::new("simulate\0workload\0fft"));
        assert_ne!(k, Key::new("simulate\0workload\0ffs"));
    }

    /// Satellite regression: an insert that loses the first-writer race
    /// on a *full* store must return the resident value without evicting
    /// anything (the residency check precedes the capacity check).
    #[test]
    fn full_capacity_race_does_not_evict() {
        let store: Store<u32, u32> = Store::with_capacity(3);
        store.insert(1, 10);
        store.insert(2, 20);
        store.insert(3, 30);
        assert_eq!(store.stats().entries, 3, "precondition: store is full");
        // Racing duplicate of a resident key while at capacity.
        assert_eq!(store.insert(2, 99), 20, "first writer wins");
        let s = store.stats();
        assert_eq!(s.races, 1, "the duplicate is counted as a race");
        assert_eq!(s.evictions, 0, "a race at capacity must not evict");
        assert_eq!(s.entries, 3);
        for (k, v) in [(1, 10), (2, 20), (3, 30)] {
            assert_eq!(store.get(&k), Some(v), "entry {k} must stay resident");
        }
    }

    #[test]
    fn fnv1a_is_stable() {
        // Reference vectors for the 64-bit FNV-1a parameters.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"allocate\0k1"), fnv1a(b"allocate\0k2"));
    }
}
