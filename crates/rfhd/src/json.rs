//! A minimal, dependency-free JSON value: parser and writer.
//!
//! The daemon protocol carries small JSON documents inside length-prefixed
//! frames, and the workspace is hermetic (no serde), so this module
//! provides exactly what the wire needs:
//!
//! * a recursive-descent parser with a **depth limit** and structured
//!   errors (byte offset + message) — it is fed attacker-controlled bytes
//!   by the protocol chaos layer and must reject garbage without panicking
//!   or overflowing the stack;
//! * a compact writer with deterministic field order ([`Json::Obj`] keeps
//!   insertion order, so identical requests serialize to identical bytes —
//!   the content-hash cache key depends on this);
//! * typed accessors that return `Option`, so request decoding reads as a
//!   chain of lookups with one structured error at the end.
//!
//! Numbers are stored as `f64`. Integers round-trip exactly up to 2^53,
//! far beyond any count the daemon reports; [`Json::as_u64`] rejects
//! values that lost precision or are out of range.

use std::fmt;

/// Maximum nesting depth the parser accepts. Protocol documents are at
/// most a few levels deep; hostile deeply-nested input is rejected with a
/// structured error rather than a stack overflow.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (see module docs on integer precision).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (preserved by the writer).
    Obj(Vec<(String, Json)>),
}

/// A structured parse failure: where and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for an integer value.
    pub fn u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact unsigned integer. `None` for
    /// non-numbers, negatives, fractions, and values beyond 2^53 (where
    /// `f64` can no longer represent every integer).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace), with object fields in
    /// insertion order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; the daemon never produces them, but a
        // defensive null beats emitting an unparsable token.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// A [`JsonError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing data after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced pos itself
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (pos is at the `u`), handling
    /// surrogate pairs. Leaves pos after the last consumed digit + 1.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        self.pos += 1; // consume `u`
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require `\uXXXX` low surrogate.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if (0xDC00..0xE000).contains(&lo) {
                        let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        return char::from_u32(cp).ok_or_else(|| self.err("bad surrogate pair"));
                    }
                }
            }
            return Err(self.err("lone high surrogate"));
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("bad code point"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> String {
        parse(text).expect("parses").render()
    }

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(roundtrip("null"), "null");
        assert_eq!(roundtrip("true"), "true");
        assert_eq!(roundtrip("false"), "false");
        assert_eq!(roundtrip("42"), "42");
        assert_eq!(roundtrip("-7"), "-7");
        assert_eq!(roundtrip("1.5"), "1.5");
        assert_eq!(roundtrip("\"hi\""), "\"hi\"");
    }

    #[test]
    fn containers_roundtrip_in_order() {
        assert_eq!(
            roundtrip("{\"b\": 1, \"a\": [2, null, {\"c\": false}]}"),
            "{\"b\":1,\"a\":[2,null,{\"c\":false}]}"
        );
        assert_eq!(roundtrip("[]"), "[]");
        assert_eq!(roundtrip("{}"), "{}");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = parse("\"a\\n\\t\\\"b\\\\c\\u0041\\u00e9\"").expect("parses");
        assert_eq!(v.as_str(), Some("a\n\t\"b\\cA\u{e9}"));
        // Control characters render as \u escapes.
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").expect("parses").as_str(),
            Some("\u{1F600}")
        );
        assert!(parse("\"\\ud83d\"").is_err(), "lone high surrogate");
        assert!(parse("\"\\ude00\"").is_err(), "lone low surrogate");
    }

    #[test]
    fn structured_errors_not_panics() {
        for bad in [
            "", "{", "[", "\"", "{\"a\"}", "[1,]", "{,}", "01x", "nul", "+1", "1e", "--2", "[1 2]",
            "\u{7f}", "{\"a\":}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn depth_limit_is_a_structured_error() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let err = parse(&deep).expect_err("too deep");
        assert!(err.msg.contains("deep"));
    }

    #[test]
    fn accessors() {
        let v = parse("{\"op\":\"ping\",\"id\":3,\"ok\":true,\"xs\":[1]}").expect("parses");
        assert_eq!(v.get("op").and_then(Json::as_str), Some("ping"));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("xs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1e300).as_u64(), None);
    }

    #[test]
    fn trailing_data_is_rejected() {
        assert!(parse("1 2").is_err());
        assert!(parse("{} garbage").is_err());
        assert!(parse("  {\"a\":1}  ").is_ok(), "surrounding whitespace ok");
    }
}
