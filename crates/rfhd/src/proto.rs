//! The `rfhd-v1` wire protocol: length-prefixed JSON frames, the request
//! and response schema, and the error-frame taxonomy.
//!
//! ## Framing
//!
//! Every message — request or response — is one **frame**:
//!
//! ```text
//! +----------------+----------------------+
//! | length: u32 BE | payload: UTF-8 JSON  |
//! +----------------+----------------------+
//! ```
//!
//! The length counts payload bytes only. A length of zero or beyond the
//! receiver's frame cap is a protocol error; the daemon answers with a
//! structured error frame where it still can and closes the connection
//! (after byte-level garbage the stream cannot be resynchronized). EOF at
//! a frame boundary is a clean close; EOF inside a frame is a truncated
//! peer.
//!
//! ## Requests
//!
//! ```json
//! {"schema":"rfhd-v1","id":1,"op":"allocate","kernel":"...",
//!  "config":{"orf":3,"lrf":"split","partial":true,"readop":true},
//!  "timeout_ms":5000,"budget_instructions":2000000}
//! ```
//!
//! `op` is one of `ping`, `assemble`, `lint`, `allocate`, `simulate`,
//! `timing`, `trace`, `stats`, `shutdown`. Kernel-carrying ops take
//! either `kernel` (assembly text) or `workload` (a benchmark name known
//! to the daemon). See `docs/ROBUSTNESS.md` for the full field table.
//!
//! ## Responses
//!
//! Success: `{"schema":"rfhd-v1","id":1,"ok":true,"cached":false,
//! "result":{...}}`. Failure: an **error frame**,
//! `{"schema":"rfhd-v1","id":1,"ok":false,"error":{"kind":"parse",
//! "code":3,"message":"..."}}` — `kind` names the [`ErrorKind`] class,
//! `code` is the class's stable `rfhc` exit code, and overload frames
//! carry a `retry_after_ms` hint.

use std::io::{Read, Write};

use crate::json::Json;

/// The protocol schema tag every frame carries.
pub const SCHEMA: &str = "rfhd-v1";

/// Default maximum frame payload size (4 MiB) — far above any legitimate
/// kernel, low enough that a hostile length prefix cannot balloon memory.
pub const DEFAULT_MAX_FRAME: usize = 4 << 20;

/// A framing-layer failure.
#[derive(Debug)]
pub enum FrameError {
    /// EOF arrived inside a frame (length prefix or payload).
    Truncated,
    /// The length prefix was zero or exceeded the frame cap.
    Oversized {
        /// The advertised payload length.
        len: u64,
        /// The receiver's cap.
        max: usize,
    },
    /// The payload was not valid UTF-8.
    Encoding,
    /// The underlying socket failed (including read timeouts).
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame length {len} outside 1..={max}")
            }
            FrameError::Encoding => write!(f, "frame payload is not UTF-8"),
            FrameError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Reads one frame. `Ok(None)` is a clean close (EOF exactly at a frame
/// boundary).
///
/// # Errors
///
/// [`FrameError`] for truncation, an out-of-range length prefix, invalid
/// UTF-8, or socket failure (including a read timeout on a stalled peer).
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Option<String>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(FrameError::Truncated)
                }
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len == 0 || len > max {
        return Err(FrameError::Oversized {
            len: len as u64,
            max,
        });
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| FrameError::Encoding)
}

/// Writes one frame.
///
/// # Errors
///
/// [`FrameError::Oversized`] if the payload exceeds `u32::MAX` bytes,
/// otherwise any socket failure as [`FrameError::Io`].
pub fn write_frame(w: &mut impl Write, payload: &str) -> Result<(), FrameError> {
    let len = u32::try_from(payload.len()).map_err(|_| FrameError::Oversized {
        len: payload.len() as u64,
        max: u32::MAX as usize,
    })?;
    w.write_all(&len.to_be_bytes()).map_err(FrameError::Io)?;
    w.write_all(payload.as_bytes()).map_err(FrameError::Io)?;
    w.flush().map_err(FrameError::Io)
}

/// Every failure class an error frame can carry. The `code` column is the
/// class's stable `rfhc` exit code: the client process exits with the
/// daemon-reported code, so scripting against `rfhc client` feels exactly
/// like scripting against `rfhc` itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed frame, JSON, or schema tag.
    Protocol,
    /// Well-formed request with bad fields (unknown op, missing kernel).
    Usage,
    /// Kernel text failed to parse.
    Parse,
    /// Kernel parsed but is structurally invalid.
    InvalidKernel,
    /// Allocation configuration rejected.
    Config,
    /// Executor error (OOB, instruction budget, bad placement).
    Exec,
    /// Timing-model error (deadlock, cycle budget).
    Timing,
    /// Lint found error-severity diagnostics.
    Lint,
    /// The request exceeded its wall-clock timeout.
    Timeout,
    /// The daemon shed the request under load; retry after the hint.
    Overloaded,
    /// A panic was caught inside the request's isolation boundary.
    Internal,
}

impl ErrorKind {
    /// The wire name (`kind` field).
    pub const fn name(self) -> &'static str {
        match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::Usage => "usage",
            ErrorKind::Parse => "parse",
            ErrorKind::InvalidKernel => "invalid_kernel",
            ErrorKind::Config => "config",
            ErrorKind::Exec => "exec",
            ErrorKind::Timing => "timing",
            ErrorKind::Lint => "lint",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parses the wire name back.
    pub fn from_name(name: &str) -> Option<ErrorKind> {
        Some(match name {
            "protocol" => ErrorKind::Protocol,
            "usage" => ErrorKind::Usage,
            "parse" => ErrorKind::Parse,
            "invalid_kernel" => ErrorKind::InvalidKernel,
            "config" => ErrorKind::Config,
            "exec" => ErrorKind::Exec,
            "timing" => ErrorKind::Timing,
            "lint" => ErrorKind::Lint,
            "timeout" => ErrorKind::Timeout,
            "overloaded" => ErrorKind::Overloaded,
            "internal" => ErrorKind::Internal,
            _ => return None,
        })
    }

    /// The stable exit code a client maps this class to. Pipeline classes
    /// reuse the `rfhc` table (3 parse, 4 invalid kernel, 5 config, 6
    /// exec, 7 timing, 8 lint); daemon-side classes (`protocol`,
    /// `timeout`, `overloaded`) map to 9, `usage` to 2, and `internal` to
    /// the panic code 70.
    pub const fn exit_code(self) -> i32 {
        match self {
            ErrorKind::Usage => 2,
            ErrorKind::Parse => 3,
            ErrorKind::InvalidKernel => 4,
            ErrorKind::Config => 5,
            ErrorKind::Exec => 6,
            ErrorKind::Timing => 7,
            ErrorKind::Lint => 8,
            ErrorKind::Protocol | ErrorKind::Timeout | ErrorKind::Overloaded => 9,
            ErrorKind::Internal => 70,
        }
    }
}

/// A structured error frame payload.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorFrame {
    /// The failure class.
    pub kind: ErrorKind,
    /// Human-readable description.
    pub message: String,
    /// For [`ErrorKind::Overloaded`]: how long the client should wait
    /// before retrying, in milliseconds.
    pub retry_after_ms: Option<u64>,
    /// Optional structured payload (e.g. the diagnostics list behind a
    /// [`ErrorKind::Lint`] frame).
    pub detail: Option<Json>,
}

impl ErrorFrame {
    /// A new error frame without a retry hint or detail payload.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        ErrorFrame {
            kind,
            message: message.into(),
            retry_after_ms: None,
            detail: None,
        }
    }

    /// Attaches a structured detail payload.
    pub fn with_detail(mut self, detail: Json) -> Self {
        self.detail = Some(detail);
        self
    }
}

impl std::fmt::Display for ErrorFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.name(), self.message)
    }
}

/// Renders a response frame payload: success with `result`, or an error
/// frame. `id` echoes the request id (0 when the request never yielded
/// one, e.g. unparsable JSON).
pub fn render_response(id: u64, outcome: &Result<(Json, bool), ErrorFrame>) -> String {
    let mut fields = vec![
        ("schema".to_string(), Json::str(SCHEMA)),
        ("id".to_string(), Json::u64(id)),
    ];
    match outcome {
        Ok((result, cached)) => {
            fields.push(("ok".to_string(), Json::Bool(true)));
            fields.push(("cached".to_string(), Json::Bool(*cached)));
            fields.push(("result".to_string(), result.clone()));
        }
        Err(e) => {
            fields.push(("ok".to_string(), Json::Bool(false)));
            let mut err = vec![
                ("kind".to_string(), Json::str(e.kind.name())),
                ("code".to_string(), Json::u64(e.kind.exit_code() as u64)),
                ("message".to_string(), Json::str(&e.message)),
            ];
            if let Some(ms) = e.retry_after_ms {
                err.push(("retry_after_ms".to_string(), Json::u64(ms)));
            }
            if let Some(detail) = &e.detail {
                err.push(("detail".to_string(), detail.clone()));
            }
            fields.push(("error".to_string(), Json::Obj(err)));
        }
    }
    Json::Obj(fields).render()
}

/// Decodes a response frame payload into the request id plus either the
/// `(result, cached)` pair or the error frame.
///
/// # Errors
///
/// A description of the malformation when the payload is not a valid
/// `rfhd-v1` response.
#[allow(clippy::type_complexity)]
pub fn decode_response(payload: &str) -> Result<(u64, Result<(Json, bool), ErrorFrame>), String> {
    let doc = crate::json::parse(payload).map_err(|e| e.to_string())?;
    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("response is not schema {SCHEMA}"));
    }
    let id = doc.get("id").and_then(Json::as_u64).unwrap_or(0);
    match doc.get("ok").and_then(Json::as_bool) {
        Some(true) => {
            let result = doc.get("result").cloned().unwrap_or(Json::Null);
            let cached = doc.get("cached").and_then(Json::as_bool).unwrap_or(false);
            Ok((id, Ok((result, cached))))
        }
        Some(false) => {
            let err = doc.get("error").ok_or("error frame without `error`")?;
            let kind = err
                .get("kind")
                .and_then(Json::as_str)
                .and_then(ErrorKind::from_name)
                .ok_or("error frame with unknown kind")?;
            let message = err
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string();
            let retry_after_ms = err.get("retry_after_ms").and_then(Json::as_u64);
            let detail = err.get("detail").cloned();
            Ok((
                id,
                Err(ErrorFrame {
                    kind,
                    message,
                    retry_after_ms,
                    detail,
                }),
            ))
        }
        None => Err("response without `ok`".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"a\":1}").expect("write");
        write_frame(&mut buf, "[]").expect("write");
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).expect("frame 1"),
            Some("{\"a\":1}".to_string())
        );
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).expect("frame 2"),
            Some("[]".to_string())
        );
        assert_eq!(read_frame(&mut r, DEFAULT_MAX_FRAME).expect("eof"), None);
    }

    #[test]
    fn truncated_and_oversized_frames_are_structured() {
        // EOF inside the length prefix.
        let mut r: &[u8] = &[0, 0];
        assert!(matches!(read_frame(&mut r, 64), Err(FrameError::Truncated)));
        // EOF inside the payload.
        let mut r: &[u8] = &[0, 0, 0, 5, b'a'];
        assert!(matches!(read_frame(&mut r, 64), Err(FrameError::Truncated)));
        // Length beyond the cap.
        let mut r: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF, 0];
        assert!(matches!(
            read_frame(&mut r, 64),
            Err(FrameError::Oversized { .. })
        ));
        // Zero length.
        let mut r: &[u8] = &[0, 0, 0, 0];
        assert!(matches!(
            read_frame(&mut r, 64),
            Err(FrameError::Oversized { .. })
        ));
        // Non-UTF-8 payload.
        let mut r: &[u8] = &[0, 0, 0, 1, 0xFF];
        assert!(matches!(read_frame(&mut r, 64), Err(FrameError::Encoding)));
    }

    #[test]
    fn responses_roundtrip() {
        let ok = render_response(7, &Ok((Json::Obj(vec![]), true)));
        let (id, outcome) = decode_response(&ok).expect("decodes");
        assert_eq!(id, 7);
        assert_eq!(outcome, Ok((Json::Obj(vec![]), true)));

        let mut e = ErrorFrame::new(ErrorKind::Overloaded, "queue full");
        e.retry_after_ms = Some(25);
        let err = render_response(8, &Err(e.clone()));
        let (id, outcome) = decode_response(&err).expect("decodes");
        assert_eq!(id, 8);
        assert_eq!(outcome, Err(e));
    }

    #[test]
    fn error_kinds_roundtrip_and_map_to_stable_codes() {
        let kinds = [
            ErrorKind::Protocol,
            ErrorKind::Usage,
            ErrorKind::Parse,
            ErrorKind::InvalidKernel,
            ErrorKind::Config,
            ErrorKind::Exec,
            ErrorKind::Timing,
            ErrorKind::Lint,
            ErrorKind::Timeout,
            ErrorKind::Overloaded,
            ErrorKind::Internal,
        ];
        for k in kinds {
            assert_eq!(ErrorKind::from_name(k.name()), Some(k));
        }
        assert_eq!(ErrorKind::from_name("bogus"), None);
        assert_eq!(ErrorKind::Parse.exit_code(), 3);
        assert_eq!(ErrorKind::Lint.exit_code(), 8);
        assert_eq!(ErrorKind::Protocol.exit_code(), 9);
        assert_eq!(ErrorKind::Internal.exit_code(), 70);
    }

    #[test]
    fn malformed_responses_are_rejected() {
        assert!(decode_response("not json").is_err());
        assert!(decode_response("{\"schema\":\"rfhd-v2\",\"ok\":true}").is_err());
        assert!(decode_response("{\"schema\":\"rfhd-v1\"}").is_err());
        assert!(decode_response("{\"schema\":\"rfhd-v1\",\"ok\":false}").is_err());
    }
}
