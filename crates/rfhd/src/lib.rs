//! `rfh-rfhd` — the fault-tolerant compile-service daemon.
//!
//! `rfhc serve` keeps a process resident with the full pipeline warm —
//! parser, lint, allocator, executor, timing model — and serves it over a
//! length-prefixed JSON protocol ([`proto`], schema `rfhd-v1`) on TCP or
//! a unix socket. `rfhc client` is the matching deterministic client.
//!
//! The crate is organized as concentric fault domains:
//!
//! * [`json`] — a hand-rolled, depth-limited JSON parser and writer (the
//!   workspace is hermetic: no serde). Insertion-ordered objects make
//!   rendering deterministic, which the cache keys rely on.
//! * [`proto`] — framing, the request/response schema, and the
//!   [`ErrorKind`](proto::ErrorKind) taxonomy whose classes carry the
//!   same stable codes `rfhc` uses as exit codes.
//! * [`handler`] — pure request decoding and op dispatch; every pipeline
//!   failure becomes a structured error frame.
//! * [`cache`] — the content-hash-keyed LRU result store (also reused by
//!   `rfh_experiments` for its memoization).
//! * [`server`] — listeners, the bounded worker pool, per-request panic
//!   isolation and wall-clock timeouts, load shedding with retry hints,
//!   and drain-then-exit shutdown.
//! * [`client`] — capped exponential backoff with seeded jitter, and the
//!   workload-replay load generator.
//!
//! The protocol chaos layer in `rfh_chaos` drives a live in-process
//! daemon through seeded fault injection (truncated frames, garbage
//! bytes, oversized length prefixes, mid-request disconnects, stalled
//! writers) and asserts the robustness trichotomy: well-formed requests
//! succeed, malformed ones get structured error frames, and neither
//! poisons the requests that follow.

pub mod cache;
pub mod client;
pub mod handler;
pub mod json;
pub mod proto;
pub mod server;

pub use cache::{fnv1a, CacheStats, Key, Store};
pub use client::{
    edit_replay, malformed_probe, replay_workloads, Client, ClientError, EditReplayReport,
    ReplayReport, RetryPolicy,
};
pub use handler::{decode_request, handle, handle_with, Budgets, Op, Request, StrandStore};
pub use json::Json;
pub use proto::{ErrorFrame, ErrorKind, SCHEMA};
pub use server::{Endpoint, Server, ServerConfig, ServerHandle, ServerReport};
