//! The deterministic daemon client: framing, capped exponential backoff
//! with seeded jitter, and the workload-replay load generator behind
//! `rfhc client --replay-workloads`.
//!
//! Retries happen in exactly two situations — a failed dial and an
//! `overloaded` error frame — because those are the only failures the
//! daemon *asks* to have retried. Everything else (parse errors, lint
//! findings, timeouts, internal frames) is a definitive answer and is
//! returned to the caller unchanged.
//!
//! Backoff is deterministic: the delay for attempt `k` is
//! `min(cap, base << k)` halved and topped up with jitter drawn from a
//! [`SmallRng`] seeded by the caller. Two clients with the same seed
//! retry on the same schedule — load tests and the chaos harness replay
//! byte-identically. An `overloaded` frame's `retry_after_ms` hint, when
//! larger, takes precedence over the computed delay.

use std::time::{Duration, Instant};

use rfh_testkit::rng::{Rng, SeedableRng, SmallRng};

use crate::json::Json;
use crate::proto::{
    decode_response, read_frame, write_frame, ErrorFrame, ErrorKind, DEFAULT_MAX_FRAME, SCHEMA,
};
use crate::server::{Conn, Endpoint};

/// Retry schedule for dial failures and `overloaded` frames.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retries).
    pub attempts: u32,
    /// Base delay before the first retry.
    pub base_ms: u64,
    /// Cap on the exponential delay.
    pub cap_ms: u64,
    /// Seed for the jitter PRNG.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 6,
            base_ms: 10,
            cap_ms: 1_000,
            seed: 0x52464844, // "RFHD"
        }
    }
}

impl RetryPolicy {
    /// The deterministic backoff delay before retry `attempt` (0-based):
    /// half the capped exponential plus seeded jitter over the other
    /// half ("equal jitter" — bounded below, so a retry storm cannot
    /// collapse onto the daemon at once, bounded above by the cap).
    pub fn delay(&self, attempt: u32, rng: &mut SmallRng) -> Duration {
        let exp = self
            .base_ms
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
            .min(self.cap_ms)
            .max(1);
        let half = exp / 2;
        let jitter = if half == 0 {
            0
        } else {
            rng.gen_range(0..=half)
        };
        Duration::from_millis(half + jitter)
    }
}

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Dialing or socket I/O failed (after retries, for dial failures).
    Io(std::io::Error),
    /// The daemon's bytes were not a valid `rfhd-v1` response.
    Protocol(String),
    /// The daemon answered with an error frame (after retries, for
    /// `overloaded` frames).
    Frame(ErrorFrame),
}

impl ClientError {
    /// The exit code `rfhc client` maps this failure to: the daemon's
    /// own class code for error frames, 9 for transport-level failures.
    pub fn exit_code(&self) -> i32 {
        match self {
            ClientError::Io(_) | ClientError::Protocol(_) => 9,
            ClientError::Frame(e) => e.kind.exit_code(),
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "daemon connection failed: {e}"),
            ClientError::Protocol(msg) => write!(f, "daemon protocol violation: {msg}"),
            ClientError::Frame(e) => write!(f, "daemon error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A connection-per-request client with deterministic retries.
///
/// One connection per request keeps the client trivially correct under
/// daemon restarts and load shedding (a shed handshake never poisons a
/// pooled connection); the replay load generator amortizes nothing and
/// measures the daemon's full accept path on every request, which is the
/// point of a robustness benchmark.
pub struct Client {
    endpoint: Endpoint,
    retry: RetryPolicy,
    rng: SmallRng,
    next_id: u64,
    /// Socket read timeout while waiting for a response.
    pub io_timeout_ms: u64,
    /// Maximum accepted response frame.
    pub max_frame: usize,
}

impl Client {
    /// A client for `endpoint` with the given retry schedule.
    pub fn new(endpoint: Endpoint, retry: RetryPolicy) -> Self {
        let rng = SmallRng::seed_from_u64(retry.seed);
        Client {
            endpoint,
            retry,
            rng,
            next_id: 1,
            io_timeout_ms: 30_000,
            max_frame: DEFAULT_MAX_FRAME,
        }
    }

    /// Sends one request (the `schema` and `id` fields are filled in) and
    /// returns the result plus whether the daemon served it from cache.
    /// Dial failures and `overloaded` frames are retried on the policy's
    /// schedule; every other failure is returned immediately.
    ///
    /// # Errors
    ///
    /// [`ClientError`] once retries are exhausted or on a definitive
    /// failure.
    pub fn request(
        &mut self,
        mut fields: Vec<(String, Json)>,
    ) -> Result<(Json, bool), ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        fields.insert(0, ("schema".to_string(), Json::str(SCHEMA)));
        fields.insert(1, ("id".to_string(), Json::u64(id)));
        let payload = Json::Obj(fields).render();

        let mut last: Option<ClientError> = None;
        for attempt in 0..self.retry.attempts.max(1) {
            if attempt > 0 {
                let mut delay = self.retry.delay(attempt - 1, &mut self.rng);
                if let Some(ClientError::Frame(f)) = &last {
                    if let Some(hint) = f.retry_after_ms {
                        delay = delay.max(Duration::from_millis(hint));
                    }
                }
                std::thread::sleep(delay);
            }
            match self.attempt(&payload, id) {
                Ok(outcome) => return Ok(outcome),
                Err(e) => {
                    let retryable = matches!(&e, ClientError::Io(_))
                        || matches!(&e, ClientError::Frame(f) if f.kind == ErrorKind::Overloaded);
                    if !retryable {
                        return Err(e);
                    }
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| {
            ClientError::Protocol("retry loop ended without an attempt".to_string())
        }))
    }

    /// Convenience for an op with no further fields.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn simple(&mut self, op: &str) -> Result<(Json, bool), ClientError> {
        self.request(vec![("op".to_string(), Json::str(op))])
    }

    fn attempt(&mut self, payload: &str, id: u64) -> Result<(Json, bool), ClientError> {
        let mut conn = Conn::connect(&self.endpoint).map_err(ClientError::Io)?;
        conn.set_read_timeout(Some(Duration::from_millis(self.io_timeout_ms.max(1))))
            .map_err(ClientError::Io)?;
        write_frame(&mut conn, payload)
            .map_err(|e| ClientError::Io(std::io::Error::other(e.to_string())))?;
        let frame = read_frame(&mut conn, self.max_frame)
            .map_err(|e| ClientError::Io(std::io::Error::other(e.to_string())))?
            .ok_or_else(|| {
                ClientError::Protocol("daemon closed the connection without answering".into())
            })?;
        let (rid, outcome) = decode_response(&frame).map_err(ClientError::Protocol)?;
        // Shed responses are written before the request is read, so they
        // legitimately carry id 0.
        if rid != id && rid != 0 {
            return Err(ClientError::Protocol(format!(
                "response id {rid} does not match request id {id}"
            )));
        }
        outcome.map_err(ClientError::Frame)
    }
}

/// Diagnostic probe: sends one deliberately malformed frame (a correctly
/// framed payload that is not JSON) and returns the daemon's answer. A
/// healthy daemon answers a structured `protocol` error frame — that is
/// the `Ok` of this function. Used by `rfhc client --malformed-probe`
/// and the CI smoke test to prove the framing layer fails closed.
///
/// # Errors
///
/// [`ClientError::Protocol`] if the daemon accepted garbage or closed
/// without answering; [`ClientError::Io`] on transport failure.
pub fn malformed_probe(endpoint: &Endpoint) -> Result<ErrorFrame, ClientError> {
    let mut conn = Conn::connect(endpoint).map_err(ClientError::Io)?;
    conn.set_read_timeout(Some(Duration::from_millis(30_000)))
        .map_err(ClientError::Io)?;
    write_frame(&mut conn, "this is deliberately not a request")
        .map_err(|e| ClientError::Io(std::io::Error::other(e.to_string())))?;
    let frame = read_frame(&mut conn, DEFAULT_MAX_FRAME)
        .map_err(|e| ClientError::Io(std::io::Error::other(e.to_string())))?
        .ok_or_else(|| ClientError::Protocol("daemon closed without answering the probe".into()))?;
    let (_, outcome) = decode_response(&frame).map_err(ClientError::Protocol)?;
    match outcome {
        Ok(_) => Err(ClientError::Protocol(
            "daemon answered a malformed frame with success".into(),
        )),
        Err(f) => Ok(f),
    }
}

/// Per-workload outcome of a replay run.
#[derive(Debug, Clone)]
pub struct ReplayEntry {
    /// The workload name.
    pub name: String,
    /// `Ok(cached)` or the failure rendered as a string.
    pub outcome: Result<bool, String>,
    /// Round-trip latency of the final (successful or failing) attempt
    /// chain, in microseconds.
    pub micros: u64,
}

/// Aggregate result of `rfhc client --replay-workloads`.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Per-workload entries, one per (round, workload), in completion
    /// groups by round.
    pub entries: Vec<ReplayEntry>,
    /// Worker threads used.
    pub jobs: usize,
    /// Full replay wall time in milliseconds.
    pub wall_ms: u64,
}

impl ReplayReport {
    /// Successful requests.
    pub fn ok(&self) -> usize {
        self.entries.iter().filter(|e| e.outcome.is_ok()).count()
    }

    /// Successful requests served from the daemon cache.
    pub fn cached(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.outcome, Ok(true)))
            .count()
    }

    /// Failed requests.
    pub fn failed(&self) -> usize {
        self.entries.len() - self.ok()
    }

    /// Renders the `rfhd-bench-v1` JSON document.
    pub fn bench_json(&self) -> String {
        let lat_sum: u64 = self.entries.iter().map(|e| e.micros).sum();
        let mut lats: Vec<u64> = self.entries.iter().map(|e| e.micros).collect();
        lats.sort_unstable();
        let pct = |p: usize| -> u64 {
            if lats.is_empty() {
                0
            } else {
                lats[(lats.len() - 1) * p / 100]
            }
        };
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"rfhd-bench-v1\",\n");
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!("  \"requests\": {},\n", self.entries.len()));
        out.push_str(&format!("  \"ok\": {},\n", self.ok()));
        out.push_str(&format!("  \"cached\": {},\n", self.cached()));
        out.push_str(&format!("  \"failed\": {},\n", self.failed()));
        out.push_str(&format!("  \"wall_ms\": {},\n", self.wall_ms));
        out.push_str(&format!(
            "  \"latency_us\": {{\"mean\": {}, \"p50\": {}, \"p90\": {}, \"max\": {}}},\n",
            lat_sum / (self.entries.len().max(1) as u64),
            pct(50),
            pct(90),
            pct(100)
        ));
        out.push_str("  \"failures\": [");
        let mut first = true;
        for e in &self.entries {
            if let Err(why) = &e.outcome {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(
                    &Json::Obj(vec![
                        ("workload".into(), Json::str(&e.name)),
                        ("error".into(), Json::str(why)),
                    ])
                    .render(),
                );
            }
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Replays every benchmark workload against a live daemon, `rounds`
/// times, with `jobs` concurrent clients. The second and later rounds
/// should be served from the daemon's result cache — the report's
/// `cached` count is the check.
///
/// Each (round, workload) pair is one `simulate` request tagged with the
/// workload's name, so the daemon re-runs the full pipeline (allocate →
/// execute → verify against the host reference) per uncached request.
pub fn replay_workloads(
    endpoint: &Endpoint,
    jobs: usize,
    rounds: usize,
    retry: RetryPolicy,
) -> ReplayReport {
    let names: Vec<String> = rfh_workloads::all().into_iter().map(|w| w.name).collect();
    let started = Instant::now();
    let mut entries = Vec::new();
    for round in 0..rounds.max(1) {
        let round_entries = rfh_testkit::pool::par_map_with_jobs(jobs, &names, |name| {
            // Per-task clients: independent sockets, and a retry seed
            // derived from the shared one so schedules are replayable
            // but not lock-step.
            let mut policy = retry.clone();
            policy.seed =
                policy.seed ^ crate::cache::fnv1a(name.as_bytes()) ^ ((round as u64) << 32);
            let mut client = Client::new(endpoint.clone(), policy);
            let t0 = Instant::now();
            let outcome = client.request(vec![
                ("op".to_string(), Json::str("simulate")),
                ("workload".to_string(), Json::str(name)),
            ]);
            ReplayEntry {
                name: name.clone(),
                outcome: match outcome {
                    Ok((_, cached)) => Ok(cached),
                    Err(e) => Err(e.to_string()),
                },
                micros: t0.elapsed().as_micros() as u64,
            }
        });
        entries.extend(round_entries);
    }
    ReplayReport {
        entries,
        jobs,
        wall_ms: started.elapsed().as_millis() as u64,
    }
}

/// Per-workload outcome of an edit-replay run: one cold `allocate`, one
/// re-`allocate` of the same kernel with a single immediate edited.
#[derive(Debug, Clone)]
pub struct EditReplayEntry {
    /// The workload name.
    pub name: String,
    /// Strands in the kernel (from the cold round's stats).
    pub strands: u64,
    /// Strand-cache misses on the cold round (== strands when the cache
    /// started empty for this kernel).
    pub cold_misses: u64,
    /// Strand-cache hits on the edited round: the unchanged strands
    /// spliced from cache.
    pub edit_hits: u64,
    /// Strand-cache misses on the edited round: the re-allocated strands
    /// (at most 1 when the edit touched a single strand).
    pub edit_misses: u64,
    /// Whether the kernel had an editable immediate (kernels without one
    /// are re-submitted verbatim; the edited round is then all hits).
    pub edited: bool,
    /// Cold-round latency in microseconds.
    pub cold_micros: u64,
    /// Edited-round latency in microseconds.
    pub edit_micros: u64,
    /// The failure, if either round failed.
    pub error: Option<String>,
}

/// Aggregate result of `rfhc client --edit-replay`.
#[derive(Debug, Clone)]
pub struct EditReplayReport {
    /// Per-workload entries.
    pub entries: Vec<EditReplayEntry>,
    /// Worker threads used.
    pub jobs: usize,
    /// Full replay wall time in milliseconds.
    pub wall_ms: u64,
}

impl EditReplayReport {
    /// Failed workloads.
    pub fn failed(&self) -> usize {
        self.entries.iter().filter(|e| e.error.is_some()).count()
    }

    /// Workloads whose edited round spliced every unchanged strand from
    /// the strand cache (`edit_hits + edit_misses == strands` with
    /// `edit_misses <= 1`).
    pub fn fully_spliced(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| {
                e.error.is_none()
                    && e.edit_misses <= u64::from(e.edited)
                    && e.edit_hits + e.edit_misses == e.strands
            })
            .count()
    }

    /// Renders the `rfhd-edit-bench-v1` JSON document: the before/after
    /// of incremental re-allocation under a single-strand edit.
    pub fn bench_json(&self) -> String {
        let sum = |f: fn(&EditReplayEntry) -> u64| -> u64 { self.entries.iter().map(f).sum() };
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"rfhd-edit-bench-v1\",\n");
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!("  \"workloads\": {},\n", self.entries.len()));
        out.push_str(&format!("  \"failed\": {},\n", self.failed()));
        out.push_str(&format!("  \"fully_spliced\": {},\n", self.fully_spliced()));
        out.push_str(&format!("  \"strands\": {},\n", sum(|e| e.strands)));
        out.push_str(&format!("  \"cold_misses\": {},\n", sum(|e| e.cold_misses)));
        out.push_str(&format!("  \"edit_hits\": {},\n", sum(|e| e.edit_hits)));
        out.push_str(&format!("  \"edit_misses\": {},\n", sum(|e| e.edit_misses)));
        out.push_str(&format!(
            "  \"cold_us\": {}, \"edit_us\": {},\n",
            sum(|e| e.cold_micros),
            sum(|e| e.edit_micros)
        ));
        out.push_str(&format!("  \"wall_ms\": {},\n", self.wall_ms));
        out.push_str("  \"failures\": [");
        let mut first = true;
        for e in &self.entries {
            if let Some(why) = &e.error {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(
                    &Json::Obj(vec![
                        ("workload".into(), Json::str(&e.name)),
                        ("error".into(), Json::str(why)),
                    ])
                    .render(),
                );
            }
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Edits one integer immediate in place, returning whether the kernel had
/// one. The edit changes a single strand's canonical text and nothing
/// else — control flow, def/use structure, and strand boundaries are all
/// immediate-blind.
fn edit_one_immediate(kernel: &mut rfh_isa::Kernel) -> bool {
    for block in &mut kernel.blocks {
        for instr in &mut block.instrs {
            for src in &mut instr.srcs {
                if let rfh_isa::Operand::Imm(v) = src {
                    *v = v.wrapping_add(1);
                    return true;
                }
            }
        }
    }
    false
}

fn strand_counter(payload: &Json, key: &str) -> Result<u64, String> {
    payload
        .get("stats")
        .and_then(|s| s.get(key))
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("allocate response lacks stats.{key}"))
}

/// The before/after load generator for incremental allocation: for every
/// benchmark workload, `allocate` the kernel cold, then edit exactly one
/// immediate operand (one strand) and `allocate` again. Against a daemon
/// with a strand cache the second round must splice every unchanged
/// strand from cache — the report's `edit_hits` / `edit_misses` columns
/// are the check.
pub fn edit_replay(endpoint: &Endpoint, jobs: usize, retry: RetryPolicy) -> EditReplayReport {
    let workloads = rfh_workloads::all();
    let started = Instant::now();
    let entries = rfh_testkit::pool::par_map_with_jobs(jobs, &workloads, |w| {
        let mut policy = retry.clone();
        policy.seed ^= crate::cache::fnv1a(w.name.as_bytes());
        let mut client = Client::new(endpoint.clone(), policy);
        let mut entry = EditReplayEntry {
            name: w.name.clone(),
            strands: 0,
            cold_misses: 0,
            edit_hits: 0,
            edit_misses: 0,
            edited: false,
            cold_micros: 0,
            edit_micros: 0,
            error: None,
        };
        let run = |client: &mut Client, kernel: &rfh_isa::Kernel| {
            let text = rfh_isa::printer::print_kernel(kernel);
            let t0 = Instant::now();
            let outcome = client.request(vec![
                ("op".to_string(), Json::str("allocate")),
                ("kernel".to_string(), Json::str(&text)),
            ]);
            let micros = t0.elapsed().as_micros() as u64;
            match outcome {
                Ok((payload, _)) => Ok((payload, micros)),
                Err(e) => Err(e.to_string()),
            }
        };
        let cold_edit = (|| -> Result<(), String> {
            let (cold, cold_us) = run(&mut client, &w.kernel)?;
            entry.cold_micros = cold_us;
            entry.strands = strand_counter(&cold, "strands")?;
            entry.cold_misses = strand_counter(&cold, "strand_misses")?;
            let mut edited = w.kernel.clone();
            entry.edited = edit_one_immediate(&mut edited);
            let (warm, edit_us) = run(&mut client, &edited)?;
            entry.edit_micros = edit_us;
            entry.edit_hits = strand_counter(&warm, "strand_hits")?;
            entry.edit_misses = strand_counter(&warm, "strand_misses")?;
            Ok(())
        })();
        if let Err(why) = cold_edit {
            entry.error = Some(why);
        }
        entry
    });
    EditReplayReport {
        entries,
        jobs,
        wall_ms: started.elapsed().as_millis() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let policy = RetryPolicy {
            attempts: 8,
            base_ms: 10,
            cap_ms: 100,
            seed: 7,
        };
        let mut a = SmallRng::seed_from_u64(policy.seed);
        let mut b = SmallRng::seed_from_u64(policy.seed);
        for attempt in 0..8 {
            let da = policy.delay(attempt, &mut a);
            let db = policy.delay(attempt, &mut b);
            assert_eq!(da, db, "same seed, same schedule");
            let exp = (10u64 << attempt).min(100);
            assert!(da.as_millis() as u64 >= exp / 2, "bounded below");
            assert!(da.as_millis() as u64 <= exp, "bounded above by the cap");
        }
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let policy = RetryPolicy::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let d = policy.delay(200, &mut rng);
        assert!(d.as_millis() as u64 <= policy.cap_ms);
    }

    #[test]
    fn dial_failure_to_dead_endpoint_is_io_after_retries() {
        // Reserved port 1 on localhost: connection refused, quickly.
        let mut client = Client::new(
            Endpoint::Tcp("127.0.0.1:1".to_string()),
            RetryPolicy {
                attempts: 2,
                base_ms: 1,
                cap_ms: 2,
                seed: 3,
            },
        );
        let err = client
            .simple("ping")
            .expect_err("nothing listens on port 1");
        assert!(matches!(err, ClientError::Io(_)));
        assert_eq!(err.exit_code(), 9);
    }
}
