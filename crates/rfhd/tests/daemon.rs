//! End-to-end daemon tests: a live server on a real socket, driven by the
//! deterministic client, covering the request mix, the result cache, the
//! isolation boundaries (wall-clock timeout, instruction budget), load
//! shedding, and drain-then-exit shutdown.

use rfh_rfhd::client::{Client, ClientError, RetryPolicy};
use rfh_rfhd::json::Json;
use rfh_rfhd::proto::{self, ErrorKind};
use rfh_rfhd::server::{Endpoint, Server, ServerConfig, ServerHandle};

const AXPY: &str = "
.kernel axpy
BB0:
  mov r0, %tid.x
  ld.global r1 r0
  ffma r2 r1, 2.0f, r1
  st.global r0, r2
  exit
";

/// Runs forever (until an instruction budget or wall-clock timeout stops
/// it): the final unconditional backward branch is a legal terminator.
const SPIN: &str = "
.kernel spin
BB0:
  mov r0, %tid.x
  iadd r0 r0, 1
  bra BB0
";

fn spawn_tcp(mut cfg_mut: impl FnMut(&mut ServerConfig)) -> ServerHandle {
    let mut cfg = ServerConfig::new(Endpoint::Tcp("127.0.0.1:0".to_string()));
    cfg.workers = 2;
    cfg.timeout_ms = 2_000;
    cfg.io_timeout_ms = 2_000;
    cfg_mut(&mut cfg);
    Server::spawn(cfg).expect("bind 127.0.0.1:0")
}

fn client(endpoint: &Endpoint) -> Client {
    Client::new(
        endpoint.clone(),
        RetryPolicy {
            attempts: 3,
            base_ms: 5,
            cap_ms: 50,
            seed: 0xC0FFEE,
        },
    )
}

fn op_kernel(op: &str, kernel: &str) -> Vec<(String, Json)> {
    vec![
        ("op".to_string(), Json::str(op)),
        ("kernel".to_string(), Json::str(kernel)),
    ]
}

fn expect_frame(result: Result<(Json, bool), ClientError>, kind: ErrorKind) -> proto::ErrorFrame {
    match result {
        Err(ClientError::Frame(f)) => {
            assert_eq!(f.kind, kind, "frame: {f}");
            f
        }
        other => panic!("expected a {} frame, got {other:?}", kind.name()),
    }
}

fn shutdown_and_join(handle: ServerHandle) -> rfh_rfhd::server::ServerReport {
    let mut c = client(&handle.endpoint);
    c.simple("shutdown").expect("shutdown acknowledged");
    let report = handle.join().expect("server exits cleanly");
    assert_eq!(report.in_flight_at_exit, 0, "drain leaves no connection");
    report
}

#[test]
fn tcp_round_trip_mix_cache_and_shutdown() {
    let handle = spawn_tcp(|_| {});
    let mut c = client(&handle.endpoint);

    // ping
    let (pong, cached) = c.simple("ping").expect("ping");
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));
    assert!(!cached);

    // assemble returns the canonical text
    let (asm, _) = c.request(op_kernel("assemble", AXPY)).expect("assemble");
    assert!(asm
        .get("text")
        .and_then(Json::as_str)
        .expect("text")
        .contains(".kernel axpy"));

    // allocate annotates and reports stats
    let (alloc, _) = c.request(op_kernel("allocate", AXPY)).expect("allocate");
    assert!(alloc.get("stats").is_some());

    // simulate a named workload, verified against the host reference
    let wl = vec![
        ("op".to_string(), Json::str("simulate")),
        ("workload".to_string(), Json::str("vectoradd")),
    ];
    let (sim, cached) = c.request(wl.clone()).expect("simulate");
    assert_eq!(sim.get("verified"), Some(&Json::Bool(true)));
    assert!(!cached, "first run computes");

    // the identical request is a cache hit
    let (sim2, cached) = c.request(wl).expect("simulate again");
    assert_eq!(sim2, sim, "cached result is identical");
    assert!(cached, "second run is served from cache");

    // stats reflect the traffic
    let (stats, _) = c.simple("stats").expect("stats");
    let cache = stats.get("cache").expect("cache block");
    assert!(cache.get("hits").and_then(Json::as_u64) >= Some(1));
    assert!(stats.get("served").and_then(Json::as_u64) >= Some(5));

    let report = shutdown_and_join(handle);
    assert_eq!(report.compute_panics, 0);
    assert_eq!(report.pool_panics, 0);
}

#[test]
fn unix_socket_round_trip() {
    let dir = std::env::temp_dir().join(format!("rfhd-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let sock = dir.join("daemon.sock");
    let mut cfg = ServerConfig::new(Endpoint::Unix(sock.clone()));
    cfg.workers = 1;
    let handle = Server::spawn(cfg).expect("bind unix socket");
    let mut c = client(&handle.endpoint);
    let (pong, _) = c.simple("ping").expect("ping over unix socket");
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));
    shutdown_and_join(handle);
    assert!(!sock.exists(), "socket file is cleaned up on exit");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wall_clock_timeout_is_a_structured_frame_and_does_not_poison() {
    let handle = spawn_tcp(|cfg| cfg.timeout_ms = 200);
    let mut c = client(&handle.endpoint);
    let mut req = op_kernel("simulate", SPIN);
    req.push(("timeout_ms".to_string(), Json::u64(100)));
    let f = expect_frame(c.request(req), ErrorKind::Timeout);
    assert_eq!(f.kind.exit_code(), 9);
    // The daemon (and even this connection's worker) keeps serving.
    let (pong, _) = c.simple("ping").expect("daemon alive after timeout");
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));
    let report = shutdown_and_join(handle);
    assert_eq!(report.timeouts, 1);
}

#[test]
fn instruction_budget_is_threaded_through_the_executor() {
    let handle = spawn_tcp(|_| {});
    let mut c = client(&handle.endpoint);
    let mut req = op_kernel("simulate", SPIN);
    req.push(("budget_instructions".to_string(), Json::u64(1_000)));
    let f = expect_frame(c.request(req), ErrorKind::Exec);
    assert!(
        f.message.contains("instruction budget"),
        "budget halt, not a timeout: {}",
        f.message
    );
    shutdown_and_join(handle);
}

#[test]
fn cycle_budget_is_threaded_through_the_timing_model() {
    let handle = spawn_tcp(|_| {});
    let mut c = client(&handle.endpoint);
    let mut req = op_kernel("timing", AXPY);
    req.push(("budget_cycles".to_string(), Json::u64(1)));
    expect_frame(c.request(req), ErrorKind::Timing);
    shutdown_and_join(handle);
}

#[test]
fn pipeline_failures_come_back_in_their_own_classes() {
    let handle = spawn_tcp(|_| {});
    let mut c = client(&handle.endpoint);
    expect_frame(
        c.request(op_kernel("assemble", "not a kernel")),
        ErrorKind::Parse,
    );
    expect_frame(
        c.request(vec![
            ("op".to_string(), Json::str("simulate")),
            ("workload".to_string(), Json::str("nope")),
        ]),
        ErrorKind::Usage,
    );
    // Lint errors carry the diagnostics as structured detail.
    let undef = "
.kernel undef
BB0:
  iadd r1 r0, 1
  st.global r1, r1
  exit
";
    let f = expect_frame(c.request(op_kernel("lint", undef)), ErrorKind::Lint);
    let detail = f.detail.expect("lint frames carry diagnostics");
    assert!(matches!(&detail, Json::Arr(lines) if !lines.is_empty()));
    shutdown_and_join(handle);
}

#[test]
fn full_queue_sheds_with_retry_hint_and_client_backoff_recovers() {
    let handle = spawn_tcp(|cfg| {
        cfg.workers = 1;
        cfg.queue_depth = 1;
        cfg.io_timeout_ms = 300; // idle occupiers are released quickly
    });
    let Endpoint::Tcp(addr) = handle.endpoint.clone() else {
        panic!("tcp endpoint")
    };

    // Two idle connections: one occupies the only worker, one fills the
    // only queue slot. Stagger them so admission order is deterministic.
    let hold_a = std::net::TcpStream::connect(&addr).expect("occupier A");
    std::thread::sleep(std::time::Duration::from_millis(50));
    let hold_b = std::net::TcpStream::connect(&addr).expect("occupier B");
    std::thread::sleep(std::time::Duration::from_millis(50));

    // A third connection must be shed in-band, not silently dropped.
    // The shed frame is written at accept time, before the request is
    // ever read, so the victim must not send first: a write racing with
    // the server's close draws an RST that can both fail the send and
    // discard the buffered response. Just read.
    let mut raw = std::net::TcpStream::connect(&addr).expect("shed victim");
    let frame = proto::read_frame(&mut raw, proto::DEFAULT_MAX_FRAME)
        .expect("shed response")
        .expect("a frame, not a bare close");
    let (_, outcome) = proto::decode_response(&frame).expect("decodes");
    let err = outcome.expect_err("overloaded frame");
    assert_eq!(err.kind, ErrorKind::Overloaded);
    assert!(err.retry_after_ms.is_some(), "shed carries a retry hint");

    // A retrying client gets through once the idle occupiers are
    // disconnected by the io timeout.
    let mut c = Client::new(
        handle.endpoint.clone(),
        RetryPolicy {
            attempts: 10,
            base_ms: 50,
            cap_ms: 400,
            seed: 11,
        },
    );
    let (pong, _) = c.simple("ping").expect("backoff rides out the overload");
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));
    drop((hold_a, hold_b));

    let report = shutdown_and_join(handle);
    assert!(report.shed >= 1, "the shed connection is counted");
}

#[test]
fn per_connection_pipelining_preserves_order_and_survives_bad_json() {
    // Drive the raw protocol: several frames on one connection, including
    // a malformed one mid-stream; each gets exactly one response, in
    // order, and the bad JSON poisons nothing.
    let handle = spawn_tcp(|_| {});
    let Endpoint::Tcp(addr) = handle.endpoint.clone() else {
        panic!("tcp endpoint")
    };
    let mut conn = std::net::TcpStream::connect(&addr).expect("connect");
    let reqs = [
        "{\"schema\":\"rfhd-v1\",\"id\":1,\"op\":\"ping\"}".to_string(),
        "{this is not json".to_string(),
        "{\"schema\":\"rfhd-v1\",\"id\":3,\"op\":\"ping\"}".to_string(),
    ];
    for r in &reqs {
        proto::write_frame(&mut conn, r).expect("send");
    }
    let mut ids = Vec::new();
    let mut oks = Vec::new();
    for _ in 0..reqs.len() {
        let frame = proto::read_frame(&mut conn, proto::DEFAULT_MAX_FRAME)
            .expect("read")
            .expect("response");
        let (id, outcome) = proto::decode_response(&frame).expect("decodes");
        ids.push(id);
        oks.push(outcome.is_ok());
    }
    assert_eq!(ids, vec![1, 0, 3], "in order; the bad frame has no id");
    assert_eq!(oks, vec![true, false, true]);
    drop(conn);
    shutdown_and_join(handle);
}

#[test]
fn non_numeric_id_draws_a_usage_frame_over_the_wire() {
    // Regression: a present-but-non-numeric `id` used to be silently
    // coerced to 0 and the request served; it must be refused in-band.
    let handle = spawn_tcp(|_| {});
    let Endpoint::Tcp(addr) = handle.endpoint.clone() else {
        panic!("tcp endpoint")
    };
    let mut conn = std::net::TcpStream::connect(&addr).expect("connect");
    for bad in [
        "{\"schema\":\"rfhd-v1\",\"id\":\"7\",\"op\":\"ping\"}",
        "{\"schema\":\"rfhd-v1\",\"id\":true,\"op\":\"ping\"}",
        "{\"schema\":\"rfhd-v1\",\"id\":-1,\"op\":\"ping\"}",
    ] {
        proto::write_frame(&mut conn, bad).expect("send");
        let frame = proto::read_frame(&mut conn, proto::DEFAULT_MAX_FRAME)
            .expect("read")
            .expect("response");
        let (id, outcome) = proto::decode_response(&frame).expect("decodes");
        assert_eq!(id, 0, "no usable id to echo");
        let err = outcome.expect_err("usage frame");
        assert_eq!(err.kind, ErrorKind::Usage, "{bad}");
        assert!(err.message.contains("id"), "{bad}: {}", err.message);
    }
    // The connection is not poisoned: a well-formed request still works.
    proto::write_frame(
        &mut conn,
        "{\"schema\":\"rfhd-v1\",\"id\":8,\"op\":\"ping\"}",
    )
    .expect("send");
    let frame = proto::read_frame(&mut conn, proto::DEFAULT_MAX_FRAME)
        .expect("read")
        .expect("response");
    let (id, outcome) = proto::decode_response(&frame).expect("decodes");
    assert_eq!(id, 8);
    assert!(outcome.is_ok());
    drop(conn);
    shutdown_and_join(handle);
}

#[test]
fn strand_cache_is_warmed_and_reported_by_stats() {
    let handle = spawn_tcp(|_| {});
    let mut c = client(&handle.endpoint);

    // A cold allocate populates the strand cache.
    let (cold, _) = c.request(op_kernel("allocate", AXPY)).expect("allocate");
    let stats = cold.get("stats").expect("stats");
    let misses = stats
        .get("strand_misses")
        .and_then(Json::as_u64)
        .expect("strand_misses reported");
    assert_eq!(stats.get("strand_hits").and_then(Json::as_u64), Some(0));
    assert!(misses > 0);

    // An edited kernel (same strand structure except one instruction)
    // re-runs allocation for the changed strand only; the result cache
    // misses (different canonical request) but the strand cache hits.
    let edited = AXPY.replace("2.0f", "3.0f");
    let (warm, cached) = c.request(op_kernel("allocate", &edited)).expect("edited");
    assert!(!cached, "an edited kernel is a distinct result-cache entry");
    let wstats = warm.get("stats").expect("stats");
    let hits = wstats
        .get("strand_hits")
        .and_then(Json::as_u64)
        .expect("strand_hits reported");
    assert!(hits > 0, "unchanged strands splice from the strand cache");

    // The server-level stats op reports the strand cache alongside the
    // result cache.
    let (server_stats, _) = c.simple("stats").expect("stats op");
    let sc = server_stats
        .get("strand_cache")
        .expect("strand_cache block");
    assert!(sc.get("hits").and_then(Json::as_u64) >= Some(1));
    assert!(sc.get("entries").and_then(Json::as_u64) >= Some(1));
    assert!(sc.get("capacity").and_then(Json::as_u64).is_some());

    shutdown_and_join(handle);
}
