//! Bounded mutation corpus for the parser: `parse_kernel` must return
//! `Ok` or a structured `IsaError` on arbitrary corruptions of valid
//! kernel text — never panic, never slice off a char boundary, never
//! overflow on overlong numeric fields. A mutation can also yield a
//! grammatically well-formed kernel that fails semantic validation
//! (e.g. a truncated final block), so `IsaError::Validate` counts as a
//! controlled rejection too.
//!
//! Set `RFH_TESTKIT_SEED` to replay a specific corpus.

use rfh_isa::{parse_kernel, IsaError};
use rfh_testkit::prelude::*;

/// The corpus lives in `rfh_testkit::corpus` so the lint golden report
/// covers exactly the same shapes this fuzzer mutates.
const CORPUS: &[&str] = rfh_testkit::corpus::KERNELS;

fn mutate(bytes: &mut Vec<u8>, rng: &mut SmallRng) {
    if bytes.is_empty() {
        bytes.push(rng.gen::<u8>());
        return;
    }
    match rng.gen_range(0u32..5) {
        0 => {
            let at = rng.gen_range(0..bytes.len());
            bytes.truncate(at);
        }
        1 => {
            let at = rng.gen_range(0..=bytes.len());
            let garbage: Vec<u8> = (0..rng.gen_range(1usize..=8))
                .map(|_| rng.gen::<u8>())
                .collect();
            bytes.splice(at..at, garbage);
        }
        2 => {
            let at = rng.gen_range(0..bytes.len());
            bytes[at] ^= 1 << rng.gen_range(0u32..8);
        }
        3 => {
            let a = rng.gen_range(0..bytes.len());
            let b = (a + rng.gen_range(1usize..=16)).min(bytes.len());
            bytes.drain(a..b);
        }
        // Overlong numeric fields: blow up a digit run so `r4294967296`-
        // style registers and immediates exercise the integer parsers.
        _ => {
            if let Some(at) = bytes.iter().position(|b| b.is_ascii_digit()) {
                let digits: Vec<u8> = (0..rng.gen_range(8usize..=24))
                    .map(|_| b'0' + rng.gen_range(0u32..10) as u8)
                    .collect();
                bytes.splice(at..at, digits);
            }
        }
    }
}

#[test]
fn parser_never_panics_on_mutated_corpus() {
    let base_seed: u64 = rfh_testkit::env::u64_knob("RFH_TESTKIT_SEED").unwrap_or(0x15A_F022);
    let mut seeder = SplitMix64::new(base_seed);
    let mut rejected = 0usize;
    let mut accepted = 0usize;
    let mut cases = 0usize;
    for text in CORPUS {
        for _ in 0..500 {
            let seed = seeder.next_u64();
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut bytes = text.as_bytes().to_vec();
            for _ in 0..rng.gen_range(1usize..=3) {
                mutate(&mut bytes, &mut rng);
            }
            let mutated = String::from_utf8_lossy(&bytes).into_owned();
            cases += 1;
            match parse_kernel(&mutated) {
                Ok(_) => accepted += 1,
                Err(IsaError::Parse { .. } | IsaError::Validate { .. }) => rejected += 1,
            }
        }
    }
    assert_eq!(cases, CORPUS.len() * 500);
    assert!(
        rejected > cases / 4,
        "suspiciously few rejections ({rejected}/{cases}) — mutator broken?"
    );
    assert!(
        accepted > 0,
        "no mutant parsed ({rejected}/{cases} rejected) — mutator too destructive?"
    );
}

#[test]
fn parser_handles_degenerate_inputs_structurally() {
    // Hand-picked degenerate shapes that historically trip parsers.
    let cases = [
        "\u{FFFD}\u{FFFD}",                                     // lossy-decode artifacts
        ";",                                                    // comment char only
        ".kernel",                                              // header missing a name
        ".kernel a\nBB0:\n  iadd r99999999999 r0, 1\n  exit\n", // overlong reg
        ".kernel a\nBB0:\n  iadd r1 r0, 99999999999999999999\n  exit\n", // overlong imm
        &format!(".kernel a\nBB0:\n  {}\n  exit\n", "x".repeat(1 << 16)), // overlong line
        &"BB0:\n".repeat(500),                                  // many labels, no kernel
        ".kernel a\n@p9999 bra BB0\n",                          // overlong predicate
    ];
    for text in cases {
        match parse_kernel(text) {
            Ok(_) => {}
            Err(IsaError::Parse { .. } | IsaError::Validate { .. }) => {}
        }
    }
}
