//! Property tests for the ISA layer: instruction construction, validation,
//! and text round-tripping over randomly assembled instructions.

use rfh_testkit::prelude::*;

use rfh_isa::{ops, CmpOp, Operand, PredReg, Reg, SfuOp, Special};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u16..40).prop_map(Reg::new)
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_reg().prop_map(Operand::Reg),
        (-100_000i32..100_000).prop_map(Operand::Imm),
        // Finite floats that survive `{:?}` text round-tripping.
        (-1000i32..1000).prop_map(|v| Operand::f32(v as f32 / 8.0)),
        (0usize..6).prop_map(|i| Operand::Special(Special::ALL[i])),
    ]
}

fn arb_instruction() -> impl Strategy<Value = rfh_isa::Instruction> {
    let binary =
        (0usize..10, arb_reg(), arb_operand(), arb_operand()).prop_map(|(k, d, a, b)| match k {
            0 => ops::iadd(d, a, b),
            1 => ops::isub(d, a, b),
            2 => ops::imul(d, a, b),
            3 => ops::fadd(d, a, b),
            4 => ops::fmul(d, a, b),
            5 => ops::xor(d, a, b),
            6 => ops::shl(d, a, b),
            7 => ops::imin(d, a, b),
            8 => ops::fmax(d, a, b),
            _ => ops::fsub(d, a, b),
        });
    let ternary = (arb_reg(), arb_operand(), arb_operand(), arb_operand())
        .prop_map(|(d, a, b, c)| ops::ffma(d, a, b, c));
    let unary =
        (0usize..7, arb_reg(), arb_operand()).prop_map(|(k, d, a)| ops::sfu(SfuOp::ALL[k], d, a));
    let setp = (0usize..6, 0u8..4, arb_operand(), arb_operand())
        .prop_map(|(c, p, a, b)| ops::setp(CmpOp::ALL[c], PredReg::new(p), a, b));
    let sel = (arb_reg(), arb_operand(), arb_operand(), 0u8..4)
        .prop_map(|(d, a, b, p)| ops::sel(d, a, b, PredReg::new(p)));
    let mem = (0usize..3, arb_reg(), arb_operand()).prop_map(|(k, d, a)| match k {
        0 => ops::ld_global(d, a),
        1 => ops::ld_shared(d, a),
        _ => ops::tex(d, a),
    });
    prop_oneof![binary, ternary, unary, setp, sel, mem]
}

fn with_guard(i: rfh_isa::Instruction, g: Option<(u8, bool)>) -> rfh_isa::Instruction {
    match g {
        Some((p, neg)) => i.guarded(PredReg::new(p), neg),
        None => i,
    }
}

prop! {
    /// Every constructed instruction is structurally valid.
    fn constructed_instructions_validate(i in arb_instruction(), g in rfh_testkit::option::of((0u8..4, any::<bool>()))) {
        let i = with_guard(i, g);
        rfh_isa::validate::validate_instruction(&i).unwrap();
    }

    /// Kernels of random instructions round-trip through text exactly,
    /// including guards and strand-end bits.
    fn kernels_round_trip(
        instrs in rfh_testkit::collection::vec(
            (arb_instruction(), rfh_testkit::option::of((0u8..4, any::<bool>())), any::<bool>()),
            1..40,
        )
    ) {
        let mut b = rfh_isa::KernelBuilder::new("prop");
        for (i, g, ends) in instrs {
            let mut i = with_guard(i, g);
            i.ends_strand = ends;
            b.push(i);
        }
        b.push(ops::exit());
        let kernel = b.finish();
        rfh_isa::validate(&kernel).unwrap();
        let text = rfh_isa::printer::print_kernel(&kernel);
        let parsed = rfh_isa::parse_kernel(&text).unwrap();
        prop_assert_eq!(parsed, kernel);
    }

    /// `num_regs`/`num_preds` bound every register the kernel mentions.
    fn register_counts_are_upper_bounds(instrs in rfh_testkit::collection::vec(arb_instruction(), 1..30)) {
        let mut b = rfh_isa::KernelBuilder::new("bounds");
        for i in instrs {
            b.push(i);
        }
        b.push(ops::exit());
        let kernel = b.finish();
        let nr = kernel.num_regs();
        let np = kernel.num_preds();
        for (_, i) in kernel.iter_instrs() {
            for r in i.def_regs() {
                prop_assert!(r.index() < nr);
            }
            for (_, r) in i.reg_srcs() {
                prop_assert!(r.index() < nr);
            }
            for p in i.pdst.into_iter().chain(i.psrc).chain(i.guard.map(|g| g.reg)) {
                prop_assert!(p.index() < np);
            }
        }
    }
}
