//! Canonical access resolution: one `Instruction` → one [`AccessPlan`].
//!
//! The paper's methodology is a single instruction trace feeding several
//! analyses (access counting, RFC modeling, energy accounting — §5.1), and
//! every one of those analyses needs the same answer to the same question:
//! *which register-file accesses does this instruction perform?* That
//! answer folds together four rules that are easy to drift apart when
//! re-derived at each consumer:
//!
//! * a [`ReadLoc`] names the level serving each register source operand;
//! * a [`ReadLoc::MrfFillOrf`] read additionally *fills* an ORF entry (the
//!   read-operand allocation of §4.4) — one MRF read plus one ORF write on
//!   the private MRF→ORF path;
//! * a 64-bit value costs one access **per 32-bit word** at every level it
//!   is written to, and its words occupy `entry` and `entry + 1` in the
//!   ORF (the double-cost rule, [`AccessPlan::width_words`]);
//! * accesses are attributed to the private or shared datapath by the
//!   executing unit, which prices the ORF wire runs (Table 4).
//!
//! [`AccessPlan::resolve`] is the single home of those rules. The counting
//! models (`rfh-sim`), the dynamic placement validator (`rfh-alloc`), the
//! static analyzer (`rfh-lint`), and the trace/profiling sinks all consume
//! the resolved plan instead of hand-matching `read_locs` / `write_loc`.

use std::fmt;

use crate::instr::Instruction;
use crate::operand::Slot;
use crate::placement::{Level, ReadLoc, WriteLoc};
use crate::reg::{Reg, Width};

/// What an access does to the level it touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A source operand read.
    Read,
    /// The ORF deposit of a read-operand fill (§4.4): the paired MRF read
    /// appears as a separate [`AccessKind::Read`] access.
    Fill,
    /// A destination write (one per 32-bit word of the value).
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Fill => write!(f, "fill"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// The datapath an access interacts with (prices the ORF wire run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Datapath {
    /// The per-lane ALU datapath (can reach the LRF).
    Private,
    /// The shared SFU/MEM/TEX datapath (ORF and MRF only).
    Shared,
}

impl fmt::Display for Datapath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datapath::Private => write!(f, "private"),
            Datapath::Shared => write!(f, "shared"),
        }
    }
}

/// The physical location of one 32-bit access, with storage indices
/// resolved per word.
///
/// Unlike [`ReadLoc`] / [`WriteLoc`] annotations, a wide write is already
/// expanded here: the high word of a 64-bit ORF write shows up as its own
/// access at `entry + 1`. The entry is widened to `u16` so a corrupted
/// `entry = 255` annotation on a wide value resolves to 256 instead of
/// wrapping — range checks stay sound under fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Place {
    /// The main register file.
    Mrf,
    /// The given ORF entry.
    Orf(u16),
    /// The LRF (`Some(bank)` under the split design, `None` unified).
    Lrf(Option<Slot>),
}

impl Place {
    /// The hierarchy level of this place.
    pub const fn level(self) -> Level {
        match self {
            Place::Mrf => Level::Mrf,
            Place::Orf(_) => Level::Orf,
            Place::Lrf(_) => Level::Lrf,
        }
    }

    /// The ORF entry index, if this is an ORF place.
    pub const fn orf_entry(self) -> Option<u16> {
        match self {
            Place::Orf(e) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for Place {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Place::Mrf => write!(f, "MRF"),
            Place::Orf(e) => write!(f, "ORF{e}"),
            Place::Lrf(None) => write!(f, "LRF"),
            Place::Lrf(Some(s)) => write!(f, "LRF.{s}"),
        }
    }
}

/// Which operand of the instruction an access belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessSlot {
    /// Source operand slot index (0 = A, 1 = B, 2 = C).
    Src(u8),
    /// Destination word index (0 = low word, 1 = high word of a pair).
    DstWord(u8),
}

impl fmt::Display for AccessSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessSlot::Src(i) => write!(f, "src{i}"),
            AccessSlot::DstWord(i) => write!(f, "dst{i}"),
        }
    }
}

/// One resolved 32-bit register-file access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegAccess {
    /// Read, fill, or write.
    pub kind: AccessKind,
    /// The level and storage index touched.
    pub place: Place,
    /// The datapath side (fills always travel the private MRF→ORF path).
    pub datapath: Datapath,
    /// The architectural register word involved.
    pub reg: Reg,
    /// The operand this access belongs to.
    pub slot: AccessSlot,
    /// The width of the *value* the access is part of (reads name the
    /// value, so they are always `W32`; a wide write carries `W64` on both
    /// of its per-word accesses).
    pub width: Width,
}

/// The complete list of register-file accesses one instruction performs,
/// as resolved by [`AccessPlan::resolve`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessPlan {
    accesses: Vec<RegAccess>,
    dst_words: Vec<Reg>,
    orphan_upper_write: bool,
}

impl AccessPlan {
    /// An empty plan, for use as a reusable scratch buffer with
    /// [`AccessPlan::resolve_into`] (per-event consumers avoid one
    /// allocation per executed instruction this way).
    pub const fn new() -> Self {
        AccessPlan {
            accesses: Vec::new(),
            dst_words: Vec::new(),
            orphan_upper_write: false,
        }
    }

    /// Resolves the accesses of `instr`.
    pub fn resolve(instr: &Instruction) -> Self {
        let mut plan = AccessPlan::new();
        plan.resolve_into(instr);
        plan
    }

    /// The number of per-word accesses a write of `width` performs at each
    /// level it touches — the single home of the 64-bit double-cost rule.
    pub const fn width_words(width: Width) -> u64 {
        width.regs() as u64
    }

    /// [`AccessPlan::resolve`] into `self`, reusing its buffers.
    pub fn resolve_into(&mut self, instr: &Instruction) {
        self.accesses.clear();
        self.dst_words.clear();
        self.orphan_upper_write = false;

        let dp = if instr.op.unit().is_shared() {
            Datapath::Shared
        } else {
            Datapath::Private
        };

        for (i, src) in instr.srcs.iter().enumerate() {
            let Some(reg) = src.as_reg() else { continue };
            let slot = AccessSlot::Src(i as u8);
            let push = |accesses: &mut Vec<RegAccess>, kind, place, datapath| {
                accesses.push(RegAccess {
                    kind,
                    place,
                    datapath,
                    reg,
                    slot,
                    width: Width::W32,
                });
            };
            match instr.read_locs[i] {
                ReadLoc::Mrf => push(&mut self.accesses, AccessKind::Read, Place::Mrf, dp),
                ReadLoc::MrfFillOrf(e) => {
                    push(&mut self.accesses, AccessKind::Read, Place::Mrf, dp);
                    // The fill deposit travels the private MRF→ORF path
                    // regardless of which datapath consumes the read.
                    push(
                        &mut self.accesses,
                        AccessKind::Fill,
                        Place::Orf(e as u16),
                        Datapath::Private,
                    );
                }
                ReadLoc::Orf(e) => push(
                    &mut self.accesses,
                    AccessKind::Read,
                    Place::Orf(e as u16),
                    dp,
                ),
                ReadLoc::Lrf(bank) => {
                    push(&mut self.accesses, AccessKind::Read, Place::Lrf(bank), dp)
                }
            }
        }

        if let Some(dst) = instr.dst {
            for (word, reg) in dst.regs().enumerate() {
                let word = word as u16;
                self.dst_words.push(reg);
                let slot = AccessSlot::DstWord(word as u8);
                let mut push = |place| {
                    self.accesses.push(RegAccess {
                        kind: AccessKind::Write,
                        place,
                        datapath: dp,
                        reg,
                        slot,
                        width: dst.width,
                    });
                };
                match instr.write_loc {
                    WriteLoc::Mrf => push(Place::Mrf),
                    WriteLoc::Orf { entry, also_mrf } => {
                        push(Place::Orf(entry as u16 + word));
                        if also_mrf {
                            push(Place::Mrf);
                        }
                    }
                    WriteLoc::Lrf { bank, also_mrf } => {
                        push(Place::Lrf(bank));
                        if also_mrf {
                            push(Place::Mrf);
                        }
                    }
                }
            }
        } else {
            self.orphan_upper_write = instr.write_loc.upper_level().is_some();
        }
    }

    /// Every access, in deterministic order: source operands in slot
    /// order (each fill directly after its MRF read), then destination
    /// words low-to-high (each `also_mrf` copy directly after its
    /// upper-level write).
    pub fn accesses(&self) -> &[RegAccess] {
        &self.accesses
    }

    /// The source operand reads (one per register source, including the
    /// MRF read of a fill).
    pub fn reads(&self) -> impl Iterator<Item = &RegAccess> {
        self.accesses.iter().filter(|a| a.kind == AccessKind::Read)
    }

    /// The ORF deposits of read-operand fills.
    pub fn fills(&self) -> impl Iterator<Item = &RegAccess> {
        self.accesses.iter().filter(|a| a.kind == AccessKind::Fill)
    }

    /// The destination writes (per word, per level written).
    pub fn writes(&self) -> impl Iterator<Item = &RegAccess> {
        self.accesses.iter().filter(|a| a.kind == AccessKind::Write)
    }

    /// The architectural register words the destination writes, low word
    /// first (empty when the instruction produces nothing).
    pub fn written_words(&self) -> &[Reg] {
        &self.dst_words
    }

    /// Whether any destination write touches the MRF (mirrors
    /// [`WriteLoc::writes_mrf`] for instructions that have a destination).
    pub fn writes_mrf(&self) -> bool {
        self.writes().any(|a| a.place == Place::Mrf)
    }

    /// Whether the instruction carries an upper-level write annotation but
    /// produces no value — always a corrupted annotation.
    pub const fn orphan_upper_write(&self) -> bool {
        self.orphan_upper_write
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::{Opcode, Space};
    use crate::ops;

    fn r(i: u16) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn baseline_instruction_is_all_mrf() {
        let i = ops::iadd(r(2), r(0).into(), r(1).into());
        let plan = AccessPlan::resolve(&i);
        assert_eq!(plan.accesses().len(), 3);
        assert_eq!(plan.reads().count(), 2);
        assert_eq!(plan.writes().count(), 1);
        assert_eq!(plan.fills().count(), 0);
        assert!(plan.writes_mrf());
        assert_eq!(plan.written_words(), &[r(2)]);
        for a in plan.accesses() {
            assert_eq!(a.place, Place::Mrf);
            assert_eq!(a.datapath, Datapath::Private);
        }
    }

    #[test]
    fn immediates_produce_no_accesses() {
        let i = ops::iadd(r(1), r(0).into(), 5.into());
        let plan = AccessPlan::resolve(&i);
        assert_eq!(plan.reads().count(), 1);
        assert_eq!(
            plan.reads().next().map(|a| a.slot),
            Some(AccessSlot::Src(0))
        );
    }

    #[test]
    fn fill_emits_mrf_read_plus_private_orf_fill() {
        let mut i = crate::Instruction::new(Opcode::Ld(Space::Shared))
            .with_dst(r(2))
            .with_src(r(0));
        i.read_locs[0] = ReadLoc::MrfFillOrf(1);
        let plan = AccessPlan::resolve(&i);
        let src: Vec<_> = plan
            .accesses()
            .iter()
            .filter(|a| matches!(a.slot, AccessSlot::Src(_)))
            .collect();
        assert_eq!(src.len(), 2);
        assert_eq!(src[0].kind, AccessKind::Read);
        assert_eq!(src[0].place, Place::Mrf);
        assert_eq!(src[0].datapath, Datapath::Shared, "consumed by a load");
        assert_eq!(src[1].kind, AccessKind::Fill);
        assert_eq!(src[1].place, Place::Orf(1));
        assert_eq!(
            src[1].datapath,
            Datapath::Private,
            "the fill deposit travels the private MRF→ORF path"
        );
        assert_eq!(src[1].reg, r(0));
    }

    #[test]
    fn wide_write_expands_per_word() {
        let mut i = crate::Instruction::new(Opcode::Ld(Space::Shared))
            .with_dst64(r(4))
            .with_src(r(0));
        i.write_loc = WriteLoc::Orf {
            entry: 2,
            also_mrf: true,
        };
        let plan = AccessPlan::resolve(&i);
        let writes: Vec<_> = plan.writes().collect();
        assert_eq!(writes.len(), 4, "two words × (ORF + MRF)");
        assert_eq!(writes[0].place, Place::Orf(2));
        assert_eq!(writes[0].reg, r(4));
        assert_eq!(writes[1].place, Place::Mrf);
        assert_eq!(writes[2].place, Place::Orf(3));
        assert_eq!(writes[2].reg, r(5));
        assert_eq!(writes[3].place, Place::Mrf);
        assert_eq!(plan.written_words(), &[r(4), r(5)]);
        assert!(writes.iter().all(|a| a.width == Width::W64));
        assert_eq!(AccessPlan::width_words(Width::W64), 2);
        assert_eq!(AccessPlan::width_words(Width::W32), 1);
    }

    #[test]
    fn corrupted_wide_entry_does_not_wrap() {
        let mut i = ops::iadd(r(2), r(0).into(), r(1).into());
        i.dst = Some(crate::Dst::w64(r(2)));
        i.write_loc = WriteLoc::Orf {
            entry: 255,
            also_mrf: false,
        };
        let plan = AccessPlan::resolve(&i);
        let entries: Vec<_> = plan.writes().filter_map(|a| a.place.orf_entry()).collect();
        assert_eq!(entries, vec![255, 256], "entry + 1 must not wrap to 0");
    }

    #[test]
    fn shared_unit_attribution() {
        let mut i = crate::Instruction::new(Opcode::Ld(Space::Global))
            .with_dst(r(1))
            .with_src(r(0));
        i.read_locs[0] = ReadLoc::Orf(0);
        i.write_loc = WriteLoc::Orf {
            entry: 1,
            also_mrf: false,
        };
        let plan = AccessPlan::resolve(&i);
        assert!(plan
            .accesses()
            .iter()
            .filter(|a| a.kind != AccessKind::Fill)
            .all(|a| a.datapath == Datapath::Shared));
    }

    #[test]
    fn orphan_upper_write_detected() {
        let mut i = ops::st_global(r(0).into(), r(1).into());
        assert!(!AccessPlan::resolve(&i).orphan_upper_write());
        i.write_loc = WriteLoc::Orf {
            entry: 0,
            also_mrf: false,
        };
        let plan = AccessPlan::resolve(&i);
        assert!(plan.orphan_upper_write());
        assert!(plan.written_words().is_empty());
        assert_eq!(plan.writes().count(), 0);
    }

    #[test]
    fn resolve_into_reuses_buffers() {
        let a = ops::iadd(r(1), r(0).into(), 1.into());
        let b = ops::mov(r(0), 7.into());
        let mut plan = AccessPlan::new();
        plan.resolve_into(&a);
        assert_eq!(plan.accesses().len(), 2);
        plan.resolve_into(&b);
        assert_eq!(plan, AccessPlan::resolve(&b));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Place::Orf(3).to_string(), "ORF3");
        assert_eq!(Place::Lrf(Some(Slot::A)).to_string(), "LRF.A");
        assert_eq!(Place::Mrf.to_string(), "MRF");
        assert_eq!(AccessKind::Fill.to_string(), "fill");
        assert_eq!(Datapath::Shared.to_string(), "shared");
        assert_eq!(AccessSlot::Src(1).to_string(), "src1");
        assert_eq!(AccessSlot::DstWord(1).to_string(), "dst1");
        assert_eq!(Place::Orf(2).level(), Level::Orf);
        assert_eq!(Place::Lrf(None).level(), Level::Lrf);
        assert_eq!(Place::Mrf.orf_entry(), None);
    }
}
