//! Error types for kernel parsing and validation.

use std::error::Error;
use std::fmt;

/// An error produced while parsing or validating a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// The textual assembly could not be parsed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
    /// The kernel structure is invalid.
    Validate {
        /// Location of the problem (block or instruction position).
        at: String,
        /// Description of the problem.
        msg: String,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            IsaError::Validate { at, msg } => write!(f, "invalid kernel at {at}: {msg}"),
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = IsaError::Parse {
            line: 3,
            msg: "bad operand".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 3: bad operand");
        let v = IsaError::Validate {
            at: "BB1[2]".into(),
            msg: "missing dst".into(),
        };
        assert!(v.to_string().contains("BB1[2]"));
    }
}
