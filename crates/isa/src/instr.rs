//! Instructions: the unit of execution and of allocation annotation.

use std::fmt;

use crate::kernel::BlockId;
use crate::opcode::Opcode;
use crate::operand::{Operand, Slot};
use crate::placement::{ReadLoc, WriteLoc};
use crate::reg::{PredReg, Reg, Width};

/// A destination register together with the width of the produced value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dst {
    /// The destination register (root of the pair for 64-bit values).
    pub reg: Reg,
    /// The produced value's width.
    pub width: Width,
}

impl Dst {
    /// A 32-bit destination.
    pub const fn w32(reg: Reg) -> Self {
        Dst {
            reg,
            width: Width::W32,
        }
    }

    /// A 64-bit destination occupying `(reg, reg+1)`.
    pub const fn w64(reg: Reg) -> Self {
        Dst {
            reg,
            width: Width::W64,
        }
    }

    /// The registers written: one for 32-bit values, two for 64-bit.
    pub fn regs(self) -> impl Iterator<Item = Reg> {
        let n = self.width.regs();
        (0..n).map(move |i| Reg::new(self.reg.index() + i))
    }
}

/// A predicate guard, `@p` or `@!p`, making an instruction conditional.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PredGuard {
    /// The guarding predicate register.
    pub reg: PredReg,
    /// Whether the guard is negated (`@!p`).
    pub negated: bool,
}

/// A single instruction.
///
/// Instructions carry the two kinds of compiler annotations central to the
/// paper:
///
/// * `ends_strand` — the extra bit (§4.1) marking strand endpoints, set by
///   `rfh-analysis::strand`;
/// * `write_loc` / `read_locs` — the hierarchy placements (§4.2–4.6), set by
///   `rfh-alloc` (all-MRF by default, which is the single-level baseline);
/// * `dead_after` — static liveness flags (one per source operand) marking
///   the last read of a value, used by the *hardware* RFC baseline to elide
///   writebacks of dead values (§2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// The opcode.
    pub op: Opcode,
    /// Destination register, for opcodes with [`Opcode::has_dst`].
    pub dst: Option<Dst>,
    /// Destination predicate, for `setp`/`fsetp`.
    pub pdst: Option<PredReg>,
    /// Source operands in slot order A, B, C.
    pub srcs: Vec<Operand>,
    /// Source predicate register (read by `sel`).
    pub psrc: Option<PredReg>,
    /// Predicate guard making the instruction conditional.
    pub guard: Option<PredGuard>,
    /// Branch target, for `bra`.
    pub target: Option<BlockId>,
    /// Compiler-set strand endpoint marker (paper §4.1).
    pub ends_strand: bool,
    /// Where the produced value is written (paper §3.1).
    pub write_loc: WriteLoc,
    /// Where each source operand is read from; parallel to `srcs` (entries
    /// for non-register operands are ignored).
    pub read_locs: Vec<ReadLoc>,
    /// Liveness flags parallel to `srcs`: `true` when this is statically the
    /// last read of the register's current value.
    pub dead_after: Vec<bool>,
}

impl Instruction {
    /// Creates an instruction with no operands; callers fill in fields via
    /// the `with_*` methods or the constructors in [`crate::ops`].
    pub fn new(op: Opcode) -> Self {
        Instruction {
            op,
            dst: None,
            pdst: None,
            srcs: Vec::new(),
            psrc: None,
            guard: None,
            target: None,
            ends_strand: false,
            write_loc: WriteLoc::default(),
            read_locs: Vec::new(),
            dead_after: Vec::new(),
        }
    }

    /// Sets the destination register (32-bit).
    pub fn with_dst(mut self, reg: Reg) -> Self {
        self.dst = Some(Dst::w32(reg));
        self
    }

    /// Sets a 64-bit destination register pair.
    pub fn with_dst64(mut self, reg: Reg) -> Self {
        self.dst = Some(Dst::w64(reg));
        self
    }

    /// Appends a source operand (and its default MRF read placement).
    pub fn with_src(mut self, src: impl Into<Operand>) -> Self {
        self.srcs.push(src.into());
        self.read_locs.push(ReadLoc::default());
        self.dead_after.push(false);
        self
    }

    /// Sets the destination predicate register.
    pub fn with_pdst(mut self, p: PredReg) -> Self {
        self.pdst = Some(p);
        self
    }

    /// Sets the source predicate register.
    pub fn with_psrc(mut self, p: PredReg) -> Self {
        self.psrc = Some(p);
        self
    }

    /// Guards the instruction with `@p` (or `@!p` when `negated`).
    pub fn guarded(mut self, reg: PredReg, negated: bool) -> Self {
        self.guard = Some(PredGuard { reg, negated });
        self
    }

    /// Sets the branch target.
    pub fn with_target(mut self, target: BlockId) -> Self {
        self.target = Some(target);
        self
    }

    /// Iterates over the register source operands as `(slot, reg)` pairs.
    ///
    /// Only register operands access the register file hierarchy; immediates
    /// and special registers are skipped.
    pub fn reg_srcs(&self) -> impl Iterator<Item = (Slot, Reg)> + '_ {
        self.srcs
            .iter()
            .enumerate()
            .filter_map(|(i, op)| op.as_reg().map(|r| (Slot::from_index(i), r)))
    }

    /// The general-purpose registers written by this instruction (two for
    /// 64-bit destinations).
    pub fn def_regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.dst.into_iter().flat_map(|d| d.regs())
    }

    /// Whether this instruction both has a destination and produces its
    /// result on the shared datapath (which cannot write the LRF).
    pub fn produces_on_shared(&self) -> bool {
        self.dst.is_some() && self.op.unit().is_shared()
    }

    /// Number of register-file read accesses this instruction performs
    /// (register source operands, counting 64-bit reads once: operands name
    /// the value, not its words; the energy model scales by width).
    pub fn num_reg_reads(&self) -> usize {
        self.srcs.iter().filter(|s| s.is_reg()).count()
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(g) = &self.guard {
            write!(f, "@{}{} ", if g.negated { "!" } else { "" }, g.reg)?;
        }
        write!(f, "{}", self.op)?;
        if let Some(d) = &self.dst {
            write!(f, " {}", d.reg)?;
            if d.width == Width::W64 {
                write!(f, ".w64")?;
            }
        }
        if let Some(p) = &self.pdst {
            write!(f, " {p}")?;
        }
        let mut first = true;
        for s in &self.srcs {
            if first {
                write!(f, " {s}")?;
                first = false;
            } else {
                write!(f, ", {s}")?;
            }
        }
        if let Some(p) = &self.psrc {
            write!(f, ", {p}")?;
        }
        if let Some(t) = &self.target {
            if self.srcs.is_empty() && self.dst.is_none() && self.pdst.is_none() {
                write!(f, " {t}")?;
            } else {
                write!(f, ", {t}")?;
            }
        }
        if self.ends_strand {
            write!(f, " ;end")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::{CmpOp, Space};

    #[test]
    fn with_src_keeps_annotations_parallel() {
        let i = Instruction::new(Opcode::IAdd)
            .with_dst(Reg::new(0))
            .with_src(Reg::new(1))
            .with_src(2);
        assert_eq!(i.srcs.len(), 2);
        assert_eq!(i.read_locs.len(), 2);
        assert_eq!(i.dead_after.len(), 2);
        assert_eq!(i.num_reg_reads(), 1);
    }

    #[test]
    fn reg_srcs_skips_immediates() {
        let i = Instruction::new(Opcode::IMad)
            .with_dst(Reg::new(0))
            .with_src(Reg::new(1))
            .with_src(5)
            .with_src(Reg::new(3));
        let srcs: Vec<_> = i.reg_srcs().collect();
        assert_eq!(srcs, vec![(Slot::A, Reg::new(1)), (Slot::C, Reg::new(3))]);
    }

    #[test]
    fn def_regs_expands_pairs() {
        let i = Instruction::new(Opcode::Ld(Space::Global))
            .with_dst64(Reg::new(4))
            .with_src(Reg::new(0));
        let defs: Vec<_> = i.def_regs().collect();
        assert_eq!(defs, vec![Reg::new(4), Reg::new(5)]);
    }

    #[test]
    fn shared_production_detection() {
        let ld = Instruction::new(Opcode::Ld(Space::Global))
            .with_dst(Reg::new(1))
            .with_src(Reg::new(0));
        assert!(ld.produces_on_shared());
        let add = Instruction::new(Opcode::IAdd)
            .with_dst(Reg::new(1))
            .with_src(Reg::new(0))
            .with_src(1);
        assert!(!add.produces_on_shared());
        let st = Instruction::new(Opcode::St(Space::Global))
            .with_src(Reg::new(0))
            .with_src(Reg::new(1));
        assert!(!st.produces_on_shared());
    }

    #[test]
    fn display_smoke() {
        let i = Instruction::new(Opcode::Setp(CmpOp::Lt))
            .with_pdst(PredReg::new(0))
            .with_src(Reg::new(1))
            .with_src(10);
        assert_eq!(i.to_string(), "setp.lt p0 r1, 10");

        let g = Instruction::new(Opcode::Bra)
            .with_target(BlockId::new(3))
            .guarded(PredReg::new(1), true);
        assert_eq!(g.to_string(), "@!p1 bra BB3");
    }
}
