//! Textual assembly output for kernels.

use std::fmt::Write as _;

use crate::kernel::Kernel;

/// Renders a kernel in the textual assembly format accepted by
/// [`crate::parse_kernel`].
///
/// Placement annotations are *not* part of the plain format (they are
/// compiler output, not input); use [`print_kernel_annotated`] to inspect
/// them. The strand-end bit *is* printed (`;end`), mirroring the single
/// extra instruction bit the paper's encoding adds (§6.5).
///
/// # Examples
///
/// ```
/// use rfh_isa::{KernelBuilder, ops, printer::print_kernel};
/// let mut b = KernelBuilder::new("nop");
/// b.push(ops::exit());
/// let text = print_kernel(&b.finish());
/// assert!(text.starts_with(".kernel nop"));
/// ```
pub fn print_kernel(kernel: &Kernel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".kernel {}", kernel.name);
    let _ = writeln!(out, ".params {}", kernel.num_params);
    for block in &kernel.blocks {
        let _ = writeln!(out, "{}:", block.id);
        for instr in &block.instrs {
            let _ = writeln!(out, "  {instr}");
        }
    }
    out
}

/// Renders a kernel with per-instruction placement annotations appended as
/// comments, for debugging allocator output.
pub fn print_kernel_annotated(kernel: &Kernel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".kernel {}", kernel.name);
    let _ = writeln!(out, ".params {}", kernel.num_params);
    for block in &kernel.blocks {
        let _ = writeln!(out, "{}:", block.id);
        for instr in &block.instrs {
            let _ = write!(out, "  {instr}");
            let mut notes = Vec::new();
            if instr.dst.is_some() {
                notes.push(format!("w={}", instr.write_loc));
            }
            if instr.srcs.iter().any(|s| s.is_reg()) {
                let reads: Vec<String> = instr
                    .srcs
                    .iter()
                    .zip(&instr.read_locs)
                    .filter(|(s, _)| s.is_reg())
                    .map(|(_, l)| l.to_string())
                    .collect();
                notes.push(format!("r=[{}]", reads.join(",")));
            }
            if !notes.is_empty() {
                let _ = write!(out, " ; {}", notes.join(" "));
            }
            let _ = writeln!(out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::placement::WriteLoc;
    use crate::{KernelBuilder, Reg};

    #[test]
    fn plain_print_has_blocks_and_instrs() {
        let mut b = KernelBuilder::new("k");
        b.push(ops::mov(Reg::new(0), 3.into()));
        b.push(ops::exit());
        let text = print_kernel(&b.finish());
        assert!(text.contains("BB0:"));
        assert!(text.contains("mov r0 3"));
        assert!(text.contains("exit"));
    }

    #[test]
    fn annotated_print_shows_placements() {
        let mut b = KernelBuilder::new("k");
        let mut i = ops::mov(Reg::new(0), 3.into());
        i.write_loc = WriteLoc::Orf {
            entry: 1,
            also_mrf: true,
        };
        b.push(i);
        b.push(ops::exit());
        let text = print_kernel_annotated(&b.finish());
        assert!(text.contains("w=ORF1+MRF"), "{text}");
    }

    #[test]
    fn strand_end_marker_printed() {
        let mut b = KernelBuilder::new("k");
        let mut i = ops::mov(Reg::new(0), 3.into());
        i.ends_strand = true;
        b.push(i);
        b.push(ops::exit());
        let text = print_kernel(&b.finish());
        assert!(text.contains(";end"));
    }
}
