//! Register names and value widths.

use std::fmt;

/// A general-purpose (architectural) register name, `r0`, `r1`, ….
///
/// Registers are 32 bits wide. A 64-bit value occupies the register pair
/// `(rN, rN+1)`; see [`Width`]. The MRF provides up to 32 registers per
/// thread in the baseline machine; the IR type itself accepts any `u16`
/// index, but [`crate::validate`] rejects indices above
/// [`crate::validate::MAX_REG_INDEX`] (so downstream counters like
/// `Kernel::num_regs` cannot overflow), and validation against a machine
/// configuration happens in `rfh-sim`.
///
/// # Examples
///
/// ```
/// use rfh_isa::Reg;
/// let r5 = Reg::new(5);
/// assert_eq!(r5.index(), 5);
/// assert_eq!(r5.to_string(), "r5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u16);

impl Reg {
    /// Creates a register name from its index.
    pub const fn new(index: u16) -> Self {
        Reg(index)
    }

    /// The register's index within the per-thread register space.
    pub const fn index(self) -> u16 {
        self.0
    }

    /// The second register of a 64-bit pair rooted at `self`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rfh_isa::Reg;
    /// assert_eq!(Reg::new(4).pair_hi(), Reg::new(5));
    /// ```
    pub const fn pair_hi(self) -> Self {
        Reg(self.0 + 1)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u16> for Reg {
    fn from(index: u16) -> Self {
        Reg(index)
    }
}

/// A predicate register name, `p0`, `p1`, ….
///
/// Predicate registers hold one bit per thread and live in a separate
/// predicate register file outside the LRF/ORF/MRF hierarchy (as on real
/// GPUs); their accesses are excluded from register file energy accounting,
/// matching the paper's scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredReg(u8);

impl PredReg {
    /// Creates a predicate register name from its index.
    pub const fn new(index: u8) -> Self {
        PredReg(index)
    }

    /// The predicate register's index.
    pub const fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for PredReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u8> for PredReg {
    fn from(index: u8) -> Self {
        PredReg(index)
    }
}

/// The width of a value produced by an instruction.
///
/// The paper (§3.2): values wider than 32 bits are stored across multiple
/// 32-bit registers and the compiler allocates multiple LRF/ORF entries for
/// them; 99.5% of instructions in the studied workloads operate on 32-bit
/// values only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Width {
    /// A 32-bit value occupying a single register.
    #[default]
    W32,
    /// A 64-bit value occupying the register pair `(rN, rN+1)`.
    W64,
}

impl Width {
    /// Number of 32-bit registers a value of this width occupies.
    ///
    /// # Examples
    ///
    /// ```
    /// use rfh_isa::Width;
    /// assert_eq!(Width::W32.regs(), 1);
    /// assert_eq!(Width::W64.regs(), 2);
    /// ```
    pub const fn regs(self) -> u16 {
        match self {
            Width::W32 => 1,
            Width::W64 => 2,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Width::W32 => write!(f, "32"),
            Width::W64 => write!(f, "64"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_display_and_index() {
        assert_eq!(Reg::new(0).to_string(), "r0");
        assert_eq!(Reg::new(31).to_string(), "r31");
        assert_eq!(Reg::new(31).index(), 31);
    }

    #[test]
    fn reg_ordering_follows_index() {
        assert!(Reg::new(3) < Reg::new(4));
        assert_eq!(Reg::from(7u16), Reg::new(7));
    }

    #[test]
    fn pair_hi_is_next_register() {
        assert_eq!(Reg::new(10).pair_hi().index(), 11);
    }

    #[test]
    fn pred_display() {
        assert_eq!(PredReg::new(2).to_string(), "p2");
        assert_eq!(PredReg::from(1u8).index(), 1);
    }

    #[test]
    fn width_reg_counts() {
        assert_eq!(Width::W32.regs(), 1);
        assert_eq!(Width::W64.regs(), 2);
        assert_eq!(Width::default(), Width::W32);
    }
}
