//! Free constructor functions for every opcode, for ergonomic kernel
//! construction.
//!
//! ```
//! use rfh_isa::{ops, Reg};
//! let r = Reg::new;
//! let fma = ops::ffma(r(3), r(0).into(), r(1).into(), r(2).into());
//! assert_eq!(fma.to_string(), "ffma r3 r0, r1, r2");
//! ```

use crate::instr::Instruction;
use crate::kernel::BlockId;
use crate::opcode::{CmpOp, Opcode, SfuOp, Space};
use crate::operand::Operand;
use crate::reg::{PredReg, Reg};

macro_rules! binary_op {
    ($(#[$doc:meta])* $name:ident, $op:expr) => {
        $(#[$doc])*
        pub fn $name(d: Reg, a: Operand, b: Operand) -> Instruction {
            Instruction::new($op).with_dst(d).with_src(a).with_src(b)
        }
    };
}

macro_rules! unary_op {
    ($(#[$doc:meta])* $name:ident, $op:expr) => {
        $(#[$doc])*
        pub fn $name(d: Reg, a: Operand) -> Instruction {
            Instruction::new($op).with_dst(d).with_src(a)
        }
    };
}

binary_op!(
    /// Integer add, `d = a + b`.
    iadd, Opcode::IAdd
);
binary_op!(
    /// Integer subtract, `d = a - b`.
    isub, Opcode::ISub
);
binary_op!(
    /// Integer multiply, `d = a * b`.
    imul, Opcode::IMul
);
binary_op!(
    /// Integer minimum.
    imin, Opcode::IMin
);
binary_op!(
    /// Integer maximum.
    imax, Opcode::IMax
);
binary_op!(
    /// Bitwise and.
    and, Opcode::And
);
binary_op!(
    /// Bitwise or.
    or, Opcode::Or
);
binary_op!(
    /// Bitwise xor.
    xor, Opcode::Xor
);
binary_op!(
    /// Shift left.
    shl, Opcode::Shl
);
binary_op!(
    /// Shift right (logical).
    shr, Opcode::Shr
);
binary_op!(
    /// Float add.
    fadd, Opcode::FAdd
);
binary_op!(
    /// Float subtract.
    fsub, Opcode::FSub
);
binary_op!(
    /// Float multiply.
    fmul, Opcode::FMul
);
binary_op!(
    /// Float minimum.
    fmin, Opcode::FMin
);
binary_op!(
    /// Float maximum.
    fmax, Opcode::FMax
);

unary_op!(
    /// Move, `d = a`.
    mov, Opcode::Mov
);
unary_op!(
    /// Signed int → float conversion.
    i2f, Opcode::I2F
);
unary_op!(
    /// Float → signed int conversion (truncating).
    f2i, Opcode::F2I
);

/// Integer multiply-add, `d = a * b + c`.
pub fn imad(d: Reg, a: Operand, b: Operand, c: Operand) -> Instruction {
    Instruction::new(Opcode::IMad)
        .with_dst(d)
        .with_src(a)
        .with_src(b)
        .with_src(c)
}

/// Fused multiply-add, `d = a * b + c`.
pub fn ffma(d: Reg, a: Operand, b: Operand, c: Operand) -> Instruction {
    Instruction::new(Opcode::FFma)
        .with_dst(d)
        .with_src(a)
        .with_src(b)
        .with_src(c)
}

/// Predicated select, `d = p ? a : b`.
pub fn sel(d: Reg, a: Operand, b: Operand, p: PredReg) -> Instruction {
    Instruction::new(Opcode::Sel)
        .with_dst(d)
        .with_src(a)
        .with_src(b)
        .with_psrc(p)
}

/// Integer compare, `p = a <cmp> b`.
pub fn setp(cmp: CmpOp, p: PredReg, a: Operand, b: Operand) -> Instruction {
    Instruction::new(Opcode::Setp(cmp))
        .with_pdst(p)
        .with_src(a)
        .with_src(b)
}

/// Float compare, `p = a <cmp> b`.
pub fn fsetp(cmp: CmpOp, p: PredReg, a: Operand, b: Operand) -> Instruction {
    Instruction::new(Opcode::FSetp(cmp))
        .with_pdst(p)
        .with_src(a)
        .with_src(b)
}

/// Special-function-unit operation, `d = f(a)`.
pub fn sfu(f: SfuOp, d: Reg, a: Operand) -> Instruction {
    Instruction::new(Opcode::Sfu(f)).with_dst(d).with_src(a)
}

/// Reciprocal, `d = 1/a` (SFU).
pub fn rcp(d: Reg, a: Operand) -> Instruction {
    sfu(SfuOp::Rcp, d, a)
}

/// Reciprocal square root (SFU).
pub fn rsqrt(d: Reg, a: Operand) -> Instruction {
    sfu(SfuOp::Rsqrt, d, a)
}

/// Square root (SFU).
pub fn sqrt(d: Reg, a: Operand) -> Instruction {
    sfu(SfuOp::Sqrt, d, a)
}

/// Sine (SFU).
pub fn sin(d: Reg, a: Operand) -> Instruction {
    sfu(SfuOp::Sin, d, a)
}

/// Cosine (SFU).
pub fn cos(d: Reg, a: Operand) -> Instruction {
    sfu(SfuOp::Cos, d, a)
}

/// Base-2 exponential (SFU).
pub fn ex2(d: Reg, a: Operand) -> Instruction {
    sfu(SfuOp::Ex2, d, a)
}

/// Base-2 logarithm (SFU).
pub fn lg2(d: Reg, a: Operand) -> Instruction {
    sfu(SfuOp::Lg2, d, a)
}

/// Load from global memory (long latency), `d = global[a]`.
pub fn ld_global(d: Reg, addr: Operand) -> Instruction {
    Instruction::new(Opcode::Ld(Space::Global))
        .with_dst(d)
        .with_src(addr)
}

/// 64-bit load from global memory into the pair `(d, d+1)`.
pub fn ld_global_w64(d: Reg, addr: Operand) -> Instruction {
    Instruction::new(Opcode::Ld(Space::Global))
        .with_dst64(d)
        .with_src(addr)
}

/// Load from shared memory (short latency), `d = shared[a]`.
pub fn ld_shared(d: Reg, addr: Operand) -> Instruction {
    Instruction::new(Opcode::Ld(Space::Shared))
        .with_dst(d)
        .with_src(addr)
}

/// Load kernel parameter `index` into `d`.
pub fn ld_param(d: Reg, index: i32) -> Instruction {
    Instruction::new(Opcode::Ld(Space::Param))
        .with_dst(d)
        .with_src(index)
}

/// Load from per-thread local memory (long latency).
pub fn ld_local(d: Reg, addr: Operand) -> Instruction {
    Instruction::new(Opcode::Ld(Space::Local))
        .with_dst(d)
        .with_src(addr)
}

/// Store to global memory, `global[a] = b`.
pub fn st_global(addr: Operand, value: Operand) -> Instruction {
    Instruction::new(Opcode::St(Space::Global))
        .with_src(addr)
        .with_src(value)
}

/// Store to shared memory, `shared[a] = b`.
pub fn st_shared(addr: Operand, value: Operand) -> Instruction {
    Instruction::new(Opcode::St(Space::Shared))
        .with_src(addr)
        .with_src(value)
}

/// Store to per-thread local memory.
pub fn st_local(addr: Operand, value: Operand) -> Instruction {
    Instruction::new(Opcode::St(Space::Local))
        .with_src(addr)
        .with_src(value)
}

/// Texture fetch (long latency), `d = tex[a]`.
pub fn tex(d: Reg, coord: Operand) -> Instruction {
    Instruction::new(Opcode::Tex).with_dst(d).with_src(coord)
}

/// Unconditional branch to `target`.
pub fn bra(target: BlockId) -> Instruction {
    Instruction::new(Opcode::Bra).with_target(target)
}

/// Conditional branch to `target` when `p` (or `!p` when `negated`) holds.
pub fn bra_if(p: PredReg, negated: bool, target: BlockId) -> Instruction {
    Instruction::new(Opcode::Bra)
        .with_target(target)
        .guarded(p, negated)
}

/// CTA-wide barrier.
pub fn bar() -> Instruction {
    Instruction::new(Opcode::Bar)
}

/// Thread exit.
pub fn exit() -> Instruction {
    Instruction::new(Opcode::Exit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_instruction;

    #[test]
    fn constructors_produce_valid_instructions() {
        let r = Reg::new;
        let instrs = vec![
            iadd(r(0), r(1).into(), Operand::Imm(4)),
            imad(r(0), r(1).into(), r(2).into(), r(3).into()),
            ffma(r(0), r(1).into(), r(2).into(), r(3).into()),
            sel(r(0), r(1).into(), r(2).into(), PredReg::new(0)),
            setp(CmpOp::Lt, PredReg::new(1), r(0).into(), Operand::Imm(3)),
            rcp(r(2), r(3).into()),
            ld_global(r(1), r(0).into()),
            ld_param(r(1), 2),
            st_shared(r(0).into(), r(1).into()),
            tex(r(4), r(5).into()),
            bra(BlockId::new(0)),
            bra_if(PredReg::new(0), true, BlockId::new(1)),
            bar(),
            exit(),
        ];
        for i in &instrs {
            validate_instruction(i).unwrap_or_else(|e| panic!("{i}: {e}"));
        }
    }

    #[test]
    fn wide_load_has_w64_dst() {
        let i = ld_global_w64(Reg::new(6), Reg::new(0).into());
        assert_eq!(i.dst.unwrap().width, crate::reg::Width::W64);
        assert_eq!(i.def_regs().count(), 2);
    }
}
