#![warn(missing_docs)]

//! # rfh-isa — SIMT instruction set and kernel IR
//!
//! This crate defines the compact SIMT instruction set and kernel
//! intermediate representation used throughout the RFH toolchain, playing the
//! role that PTX 2.3 plays in the original paper (Gebhart, Keckler, Dally,
//! *A Compile-Time Managed Multi-Level Register File Hierarchy*, MICRO 2011).
//!
//! The IR deliberately preserves exactly the properties the paper's
//! allocation algorithms depend on:
//!
//! * **pseudo-SSA register use** — most values are defined once, but
//!   registers *may* be redefined (e.g. on both sides of a hammock) and
//!   there are no phi nodes;
//! * **explicit operand slots** — source operands occupy slots A, B, C,
//!   which matters for the *split LRF* design where each slot has a private
//!   bank;
//! * **private vs. shared datapath opcodes** — ALU instructions execute on
//!   the per-lane private datapath (which can reach the LRF), while SFU,
//!   memory, and texture instructions execute on the shared datapath (which
//!   can only reach the ORF and MRF);
//! * **long-latency operations** — global loads and texture fetches, whose
//!   consumers terminate *strands* and cause warp descheduling;
//! * **predication and branches** — including backward branches, which also
//!   terminate strands.
//!
//! ## Layout
//!
//! * [`Reg`], [`PredReg`], [`Width`] — register names ([`reg`])
//! * [`Operand`], [`Special`], [`Slot`] — instruction inputs ([`operand`])
//! * [`Opcode`], [`Unit`], [`Space`], [`SfuOp`], [`CmpOp`] — the instruction
//!   set ([`opcode`])
//! * [`Instruction`] and free constructor functions in [`ops`]
//! * [`Level`], [`ReadLoc`], [`WriteLoc`] — register file hierarchy
//!   placement annotations produced by the allocator ([`placement`])
//! * [`AccessPlan`], [`RegAccess`] — canonical resolution of one
//!   instruction's placements into its explicit list of register-file
//!   accesses ([`access`])
//! * [`BasicBlock`], [`Kernel`] — the CFG container ([`kernel`])
//! * [`KernelBuilder`] — an ergonomic DSL for writing kernels ([`builder`])
//! * [`parse_kernel`] / [`printer::print_kernel`] — a textual assembly format
//! * [`validate()`] — structural validation
//!
//! ## Example
//!
//! ```
//! use rfh_isa::{KernelBuilder, ops, Operand, Special};
//!
//! let mut b = KernelBuilder::new("axpy");
//! let r = |i| rfh_isa::Reg::new(i);
//! b.push(ops::mov(r(0), Operand::Special(Special::TidX)));
//! b.push(ops::ld_param(r(1), 0));
//! b.push(ops::iadd(r(2), r(0).into(), r(1).into()));
//! b.push(ops::exit());
//! let kernel = b.finish();
//! assert_eq!(kernel.blocks.len(), 1);
//! rfh_isa::validate(&kernel).unwrap();
//! ```

pub mod access;
pub mod builder;
pub mod error;
pub mod instr;
pub mod kernel;
pub mod opcode;
pub mod operand;
pub mod ops;
pub mod parser;
pub mod placement;
pub mod printer;
pub mod reg;
pub mod validate;

pub use access::{AccessKind, AccessPlan, AccessSlot, Datapath, Place, RegAccess};
pub use builder::KernelBuilder;
pub use error::IsaError;
pub use instr::{Dst, Instruction, PredGuard};
pub use kernel::{BasicBlock, BlockId, InstrRef, Kernel};
pub use opcode::{CmpOp, Opcode, SfuOp, Space, Unit};
pub use operand::{Operand, Slot, Special};
pub use parser::parse_kernel;
pub use placement::{Level, ReadLoc, WriteLoc};
pub use reg::{PredReg, Reg, Width};
pub use validate::{validate, MAX_PRED_INDEX, MAX_REG_INDEX};
