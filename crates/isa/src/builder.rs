//! An ergonomic builder DSL for writing kernels by hand.

use crate::instr::Instruction;
use crate::kernel::{BasicBlock, BlockId, Kernel};
use crate::opcode::{Opcode, Space};
use crate::operand::Operand;
use crate::reg::{PredReg, Reg};

/// Builds a [`Kernel`] block by block.
///
/// The builder starts with an empty entry block (`BB0`) selected. Blocks
/// must be created in layout order with [`KernelBuilder::add_block`]; they
/// can be created up front (to serve as forward branch targets) and filled
/// later via [`KernelBuilder::switch_to`].
///
/// # Examples
///
/// A two-block kernel with a forward branch:
///
/// ```
/// use rfh_isa::{KernelBuilder, ops, CmpOp, PredReg, Reg};
/// let r = Reg::new;
/// let p0 = PredReg::new(0);
///
/// let mut b = KernelBuilder::new("clamp");
/// let done = b.add_block();
/// b.switch_to(b.entry());
/// b.push(ops::setp(CmpOp::Lt, p0, r(0).into(), 0.into()));
/// b.push(ops::bra_if(p0, true, done));
/// // ... fallthrough work elided: entry falls through to `done`
/// b.switch_to(done);
/// b.push(ops::exit());
///
/// let k = b.finish();
/// rfh_isa::validate(&k).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    kernel: Kernel,
    current: BlockId,
    next_reg: u16,
    next_pred: u8,
}

impl KernelBuilder {
    /// Creates a builder with an empty entry block selected.
    pub fn new(name: impl Into<String>) -> Self {
        let mut kernel = Kernel::new(name);
        kernel.blocks.push(BasicBlock::new(BlockId::new(0)));
        KernelBuilder {
            kernel,
            current: BlockId::new(0),
            next_reg: 0,
            next_pred: 0,
        }
    }

    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId::new(0)
    }

    /// The currently selected block id.
    pub fn current(&self) -> BlockId {
        self.current
    }

    /// Appends a new empty block (in layout order) and returns its id. The
    /// selection moves to the new block.
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId::new(self.kernel.blocks.len() as u32);
        self.kernel.blocks.push(BasicBlock::new(id));
        self.current = id;
        id
    }

    /// Selects an existing block to append instructions to.
    ///
    /// # Panics
    ///
    /// Panics if `id` names a block that has not been created.
    pub fn switch_to(&mut self, id: BlockId) {
        assert!(id.index() < self.kernel.blocks.len(), "unknown block {id}");
        self.current = id;
    }

    /// Appends an instruction to the selected block.
    pub fn push(&mut self, instr: Instruction) -> &mut Self {
        self.track_regs(&instr);
        self.kernel.blocks[self.current.index()].instrs.push(instr);
        self
    }

    /// Returns a fresh, previously unused general-purpose register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg::new(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Returns a fresh pair of registers for a 64-bit value, yielding the
    /// root register.
    pub fn reg_pair(&mut self) -> Reg {
        let r = Reg::new(self.next_reg);
        self.next_reg += 2;
        r
    }

    /// Returns a fresh, previously unused predicate register.
    pub fn pred(&mut self) -> PredReg {
        let p = PredReg::new(self.next_pred);
        self.next_pred += 1;
        p
    }

    /// Declares the number of kernel parameters explicitly (otherwise
    /// inferred from the highest `ld.param` index seen).
    pub fn set_num_params(&mut self, n: usize) -> &mut Self {
        self.kernel.num_params = self.kernel.num_params.max(n);
        self
    }

    /// Finishes the kernel.
    ///
    /// The parameter count is the maximum of any explicit declaration and
    /// the highest `ld.param` immediate index used plus one.
    pub fn finish(mut self) -> Kernel {
        let inferred = self
            .kernel
            .iter_instrs()
            .filter(|(_, i)| i.op == Opcode::Ld(Space::Param))
            .filter_map(|(_, i)| match i.srcs.first() {
                Some(Operand::Imm(v)) if *v >= 0 => Some(*v as usize + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        self.kernel.num_params = self.kernel.num_params.max(inferred);
        self.kernel
    }

    fn track_regs(&mut self, instr: &Instruction) {
        for r in instr.def_regs() {
            self.next_reg = self.next_reg.max(r.index() + 1);
        }
        for (_, r) in instr.reg_srcs() {
            self.next_reg = self.next_reg.max(r.index() + 1);
        }
        for p in instr
            .pdst
            .into_iter()
            .chain(instr.psrc)
            .chain(instr.guard.map(|g| g.reg))
        {
            self.next_pred = self.next_pred.max(p.index() + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::validate::validate;

    #[test]
    fn builds_entry_block_by_default() {
        let mut b = KernelBuilder::new("k");
        b.push(ops::exit());
        let k = b.finish();
        assert_eq!(k.blocks.len(), 1);
        assert_eq!(k.blocks[0].instrs.len(), 1);
        validate(&k).unwrap();
    }

    #[test]
    fn add_block_selects_new_block() {
        let mut b = KernelBuilder::new("k");
        let bb1 = b.add_block();
        assert_eq!(b.current(), bb1);
        b.push(ops::exit());
        b.switch_to(b.entry());
        b.push(ops::mov(Reg::new(0), 1.into()));
        let k = b.finish();
        assert_eq!(k.blocks[0].instrs.len(), 1);
        assert_eq!(k.blocks[1].instrs.len(), 1);
        validate(&k).unwrap();
    }

    #[test]
    fn fresh_registers_do_not_collide_with_pushed_code() {
        let mut b = KernelBuilder::new("k");
        b.push(ops::mov(Reg::new(7), 1.into()));
        assert_eq!(b.reg(), Reg::new(8));
        assert_eq!(b.reg(), Reg::new(9));
        let pair = b.reg_pair();
        assert_eq!(pair, Reg::new(10));
        assert_eq!(b.reg(), Reg::new(12));
    }

    #[test]
    fn fresh_predicates_track_guards() {
        let mut b = KernelBuilder::new("k");
        b.push(ops::exit().guarded(PredReg::new(2), false));
        assert_eq!(b.pred(), PredReg::new(3));
    }

    #[test]
    fn param_count_inferred_from_ld_param() {
        let mut b = KernelBuilder::new("k");
        b.push(ops::ld_param(Reg::new(0), 3));
        b.push(ops::exit());
        assert_eq!(b.finish().num_params, 4);
    }

    #[test]
    fn explicit_param_count_wins_when_larger() {
        let mut b = KernelBuilder::new("k");
        b.set_num_params(6);
        b.push(ops::ld_param(Reg::new(0), 1));
        b.push(ops::exit());
        assert_eq!(b.finish().num_params, 6);
    }

    #[test]
    #[should_panic]
    fn switch_to_unknown_block_panics() {
        let mut b = KernelBuilder::new("k");
        b.switch_to(BlockId::new(4));
    }
}
