//! Structural validation of kernels and instructions.

use crate::error::IsaError;
use crate::instr::Instruction;
use crate::kernel::{BlockId, Kernel};
use crate::opcode::Opcode;

/// Highest general-purpose register index a valid kernel may name.
///
/// The IR stores indices in `u16` and derives per-thread register demand as
/// `highest + 1` (with 64-bit pairs occupying `rN, rN+1`), so an uncapped
/// index would overflow the counters and let a hostile kernel demand
/// arbitrarily large per-warp state from the simulator. 4094 leaves room
/// for the pair high half and the `+ 1` in [`Kernel::num_regs`].
pub const MAX_REG_INDEX: u16 = 4094;

/// Highest predicate register index a valid kernel may name (same
/// overflow/resource argument as [`MAX_REG_INDEX`], for `u8` counters).
pub const MAX_PRED_INDEX: u8 = 127;

fn err(at: impl Into<String>, msg: impl Into<String>) -> IsaError {
    IsaError::Validate {
        at: at.into(),
        msg: msg.into(),
    }
}

/// Validates a single instruction's operand shape against its opcode.
///
/// # Errors
///
/// Returns [`IsaError::Validate`] when destination/predicate/source operand
/// presence or count does not match the opcode signature, or when the
/// placement/liveness annotation vectors are not parallel to the sources.
pub fn validate_instruction(i: &Instruction) -> Result<(), IsaError> {
    let at = i.to_string();
    if i.dst.is_some() != i.op.has_dst() {
        return Err(err(
            &at,
            "destination register presence does not match opcode",
        ));
    }
    if i.pdst.is_some() != i.op.has_pdst() {
        return Err(err(
            &at,
            "destination predicate presence does not match opcode",
        ));
    }
    if i.srcs.len() != i.op.num_srcs() {
        return Err(err(
            &at,
            format!(
                "expected {} source operands, found {}",
                i.op.num_srcs(),
                i.srcs.len()
            ),
        ));
    }
    if i.psrc.is_some() != i.op.reads_pred_src() {
        return Err(err(&at, "source predicate presence does not match opcode"));
    }
    if i.target.is_some() != i.op.is_branch() {
        return Err(err(&at, "branch target presence does not match opcode"));
    }
    if i.read_locs.len() != i.srcs.len() {
        return Err(err(
            &at,
            "read placement annotations not parallel to sources",
        ));
    }
    if i.dead_after.len() != i.srcs.len() {
        return Err(err(&at, "liveness annotations not parallel to sources"));
    }
    // Check the raw dst index before expanding pairs: `Dst::regs` computes
    // `index + 1` for 64-bit values, which must not be reachable with an
    // index near `u16::MAX`.
    if let Some(d) = i.dst {
        if d.reg.index() > MAX_REG_INDEX {
            return Err(err(
                &at,
                format!(
                    "register {} exceeds the maximum index {MAX_REG_INDEX}",
                    d.reg
                ),
            ));
        }
    }
    for (_, r) in i.reg_srcs() {
        if r.index() > MAX_REG_INDEX {
            return Err(err(
                &at,
                format!("register {r} exceeds the maximum index {MAX_REG_INDEX}"),
            ));
        }
    }
    for p in [i.pdst, i.psrc, i.guard.map(|g| g.reg)]
        .into_iter()
        .flatten()
    {
        if p.index() > MAX_PRED_INDEX {
            return Err(err(
                &at,
                format!("predicate {p} exceeds the maximum index {MAX_PRED_INDEX}"),
            ));
        }
    }
    Ok(())
}

/// Validates a kernel's structure.
///
/// Checks, beyond per-instruction shape:
///
/// * block ids equal their indices and there is at least one block;
/// * control transfers (`bra`, unguarded `exit`) appear only as block
///   terminators;
/// * branch targets are in range;
/// * no block falls through past the end of the kernel.
///
/// # Errors
///
/// Returns the first [`IsaError::Validate`] found.
///
/// # Examples
///
/// ```
/// use rfh_isa::{KernelBuilder, ops, validate};
/// let mut b = KernelBuilder::new("ok");
/// b.push(ops::exit());
/// assert!(validate(&b.finish()).is_ok());
/// ```
pub fn validate(kernel: &Kernel) -> Result<(), IsaError> {
    if kernel.blocks.is_empty() {
        return Err(err(&kernel.name, "kernel has no blocks"));
    }
    for (i, b) in kernel.blocks.iter().enumerate() {
        if b.id != BlockId::new(i as u32) {
            return Err(err(
                format!("{}", b.id),
                "block id does not match its index",
            ));
        }
    }
    let n_blocks = kernel.blocks.len();
    for b in &kernel.blocks {
        if b.instrs.is_empty() {
            return Err(err(format!("{}", b.id), "block has no instructions"));
        }
        let last = b.instrs.len() - 1;
        for (idx, ins) in b.instrs.iter().enumerate() {
            validate_instruction(ins).map_err(|e| match e {
                IsaError::Validate { at, msg } => err(format!("{}[{idx}]: {at}", b.id), msg),
                other => other,
            })?;
            let is_terminator_op =
                ins.op == Opcode::Bra || (ins.op == Opcode::Exit && ins.guard.is_none());
            if is_terminator_op && idx != last {
                return Err(err(
                    format!("{}[{idx}]", b.id),
                    "control transfer before end of block",
                ));
            }
            if let Some(t) = ins.target {
                if t.index() >= n_blocks {
                    return Err(err(
                        format!("{}[{idx}]", b.id),
                        format!("branch target {t} out of range"),
                    ));
                }
            }
        }
        // A block may not fall through past the end of the kernel.
        let falls_through = match b.terminator() {
            Some(t) if t.op == Opcode::Bra && t.guard.is_none() => false,
            Some(t) if t.op == Opcode::Exit && t.guard.is_none() => false,
            _ => true,
        };
        if falls_through && b.id.index() + 1 >= n_blocks {
            return Err(err(
                format!("{}", b.id),
                "final block must end in exit or an unconditional branch",
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::BasicBlock;
    use crate::ops;
    use crate::reg::Reg;

    fn single_block(instrs: Vec<Instruction>) -> Kernel {
        let mut k = Kernel::new("t");
        let mut b = BasicBlock::new(BlockId::new(0));
        b.instrs = instrs;
        k.blocks.push(b);
        k
    }

    #[test]
    fn accepts_minimal_kernel() {
        let k = single_block(vec![ops::exit()]);
        assert!(validate(&k).is_ok());
    }

    #[test]
    fn rejects_empty_kernel() {
        let k = Kernel::new("empty");
        assert!(validate(&k).is_err());
    }

    #[test]
    fn rejects_empty_block() {
        let mut k = single_block(vec![ops::exit()]);
        k.blocks.insert(0, BasicBlock::new(BlockId::new(0)));
        k.blocks[1].id = BlockId::new(1);
        let e = validate(&k).unwrap_err();
        assert!(e.to_string().contains("no instructions"));
    }

    #[test]
    fn rejects_wrong_arity() {
        let bad = Instruction::new(Opcode::IAdd)
            .with_dst(Reg::new(0))
            .with_src(1);
        assert!(validate_instruction(&bad).is_err());
    }

    #[test]
    fn rejects_missing_dst() {
        let bad = Instruction::new(Opcode::IAdd).with_src(1).with_src(2);
        assert!(validate_instruction(&bad).is_err());
    }

    #[test]
    fn rejects_mid_block_branch() {
        let k = single_block(vec![ops::bra(BlockId::new(0)), ops::exit()]);
        let e = validate(&k).unwrap_err();
        assert!(e.to_string().contains("control transfer"));
    }

    #[test]
    fn rejects_out_of_range_target() {
        let k = single_block(vec![ops::bra(BlockId::new(9))]);
        assert!(validate(&k).is_err());
    }

    #[test]
    fn rejects_fallthrough_off_end() {
        let k = single_block(vec![ops::mov(Reg::new(0), 1.into())]);
        let e = validate(&k).unwrap_err();
        assert!(e.to_string().contains("final block"));
    }

    #[test]
    fn guarded_exit_allowed_mid_block() {
        let mut i = ops::exit();
        i = i.guarded(crate::PredReg::new(0), false);
        let k = single_block(vec![i, ops::exit()]);
        assert!(validate(&k).is_ok());
    }

    #[test]
    fn rejects_register_index_above_cap() {
        let bad = Instruction::new(Opcode::IAdd)
            .with_dst(Reg::new(MAX_REG_INDEX + 1))
            .with_src(1)
            .with_src(2);
        let e = validate_instruction(&bad).unwrap_err();
        assert!(e.to_string().contains("maximum index"));
        let bad_src = Instruction::new(Opcode::IAdd)
            .with_dst(Reg::new(0))
            .with_src(Reg::new(u16::MAX))
            .with_src(2);
        assert!(validate_instruction(&bad_src).is_err());
    }

    #[test]
    fn rejects_wide_pair_at_u16_max_without_overflow() {
        // A 64-bit destination rooted at u16::MAX must be rejected before
        // anything computes `index + 1`.
        let bad = crate::ops::ld_global_w64(Reg::new(u16::MAX), Reg::new(0).into());
        assert!(validate_instruction(&bad).is_err());
    }

    #[test]
    fn rejects_predicate_index_above_cap() {
        let bad = ops::exit().guarded(crate::PredReg::new(MAX_PRED_INDEX + 1), false);
        assert!(validate_instruction(&bad).is_err());
        let at_cap = ops::exit().guarded(crate::PredReg::new(MAX_PRED_INDEX), false);
        assert!(validate_instruction(&at_cap).is_ok());
    }

    #[test]
    fn accepts_register_index_at_cap() {
        let ok = Instruction::new(Opcode::IAdd)
            .with_dst(Reg::new(MAX_REG_INDEX))
            .with_src(1)
            .with_src(2);
        assert!(validate_instruction(&ok).is_ok());
    }

    #[test]
    fn rejects_mismatched_block_id() {
        let mut k = Kernel::new("t");
        let mut b = BasicBlock::new(BlockId::new(5));
        b.instrs.push(ops::exit());
        k.blocks.push(b);
        assert!(validate(&k).is_err());
    }
}
