//! The instruction set: opcodes and their static properties.

use std::fmt;

/// The function unit class an opcode executes on.
///
/// The 4-wide SIMT cluster (paper Figure 1c) gives each lane a *private* ALU
/// while the SFU, memory port, and texture unit are *shared* across the
/// cluster and run at reduced throughput. Only the private datapath can read
/// the LRF (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    /// Per-lane private ALU (full warp-wide throughput).
    Alu,
    /// Shared special function unit (transcendentals).
    Sfu,
    /// Shared memory port (loads/stores to all spaces).
    Mem,
    /// Shared texture unit.
    Tex,
    /// Control flow (branches, exit, barriers) — reads no register values
    /// other than its guard predicate.
    Control,
}

impl Unit {
    /// Whether this unit belongs to the shared datapath, which cannot access
    /// the LRF.
    ///
    /// # Examples
    ///
    /// ```
    /// use rfh_isa::Unit;
    /// assert!(!Unit::Alu.is_shared());
    /// assert!(Unit::Sfu.is_shared());
    /// ```
    pub const fn is_shared(self) -> bool {
        matches!(self, Unit::Sfu | Unit::Mem | Unit::Tex)
    }
}

/// Memory spaces addressable by loads and stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Off-chip DRAM (long latency: 400 cycles).
    Global,
    /// On-chip software-managed shared memory (short latency: 20 cycles).
    Shared,
    /// Kernel parameter space (constant-cache latency, read-only).
    Param,
    /// Per-thread local memory, backed by DRAM (long latency).
    Local,
}

impl Space {
    /// The mnemonic suffix, e.g. `global` in `ld.global`.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            Space::Global => "global",
            Space::Shared => "shared",
            Space::Param => "param",
            Space::Local => "local",
        }
    }
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Special-function-unit operations (transcendental and other functions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SfuOp {
    /// Reciprocal, `1/x`.
    Rcp,
    /// Reciprocal square root.
    Rsqrt,
    /// Square root.
    Sqrt,
    /// Sine (argument in radians).
    Sin,
    /// Cosine (argument in radians).
    Cos,
    /// Base-2 exponential.
    Ex2,
    /// Base-2 logarithm.
    Lg2,
}

impl SfuOp {
    /// All SFU operations, for enumeration.
    pub const ALL: [SfuOp; 7] = [
        SfuOp::Rcp,
        SfuOp::Rsqrt,
        SfuOp::Sqrt,
        SfuOp::Sin,
        SfuOp::Cos,
        SfuOp::Ex2,
        SfuOp::Lg2,
    ];

    /// The assembly mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            SfuOp::Rcp => "rcp",
            SfuOp::Rsqrt => "rsqrt",
            SfuOp::Sqrt => "sqrt",
            SfuOp::Sin => "sin",
            SfuOp::Cos => "cos",
            SfuOp::Ex2 => "ex2",
            SfuOp::Lg2 => "lg2",
        }
    }
}

impl fmt::Display for SfuOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Comparison operators for `setp` / `fsetp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// All comparison operators, for enumeration.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];

    /// The mnemonic suffix, e.g. `lt` in `setp.lt`.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// An instruction opcode.
///
/// Private-ALU opcodes execute at full warp throughput and may read the LRF;
/// SFU/memory/texture opcodes execute on the shared datapath and may not
/// (paper §3.2). Global loads, local loads, and texture fetches are
/// *long-latency* operations: an instruction depending on one terminates a
/// strand and forces the warp to be descheduled (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    // ---- private ALU: integer ----
    /// Integer add, `d = a + b`.
    IAdd,
    /// Integer subtract, `d = a - b`.
    ISub,
    /// Integer multiply (low 32 bits), `d = a * b`.
    IMul,
    /// Integer multiply-add, `d = a * b + c`.
    IMad,
    /// Integer minimum.
    IMin,
    /// Integer maximum.
    IMax,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left, `d = a << (b & 31)`.
    Shl,
    /// Logical shift right, `d = a >> (b & 31)`.
    Shr,
    // ---- private ALU: floating point ----
    /// Float add.
    FAdd,
    /// Float subtract.
    FSub,
    /// Float multiply.
    FMul,
    /// Fused multiply-add, `d = a * b + c`.
    FFma,
    /// Float minimum.
    FMin,
    /// Float maximum.
    FMax,
    // ---- private ALU: data movement & conversion ----
    /// Register/immediate/special move.
    Mov,
    /// Predicated select, `d = psrc ? a : b`.
    Sel,
    /// Signed integer to float conversion.
    I2F,
    /// Float to signed integer conversion (truncating).
    F2I,
    /// Integer compare, writes a predicate.
    Setp(CmpOp),
    /// Float compare, writes a predicate.
    FSetp(CmpOp),
    // ---- shared datapath ----
    /// Special function unit operation.
    Sfu(SfuOp),
    /// Load from a memory space, `d = [a]`.
    Ld(Space),
    /// Store to a memory space, `[a] = b`.
    St(Space),
    /// Texture fetch (modeled as a long-latency gather), `d = tex[a]`.
    Tex,
    // ---- control ----
    /// Branch to a block (conditional when guarded by a predicate).
    Bra,
    /// CTA-wide barrier; the warp is descheduled while waiting.
    Bar,
    /// Thread exit.
    Exit,
}

impl Opcode {
    /// The function unit class this opcode executes on.
    pub const fn unit(self) -> Unit {
        match self {
            Opcode::IAdd
            | Opcode::ISub
            | Opcode::IMul
            | Opcode::IMad
            | Opcode::IMin
            | Opcode::IMax
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Shl
            | Opcode::Shr
            | Opcode::FAdd
            | Opcode::FSub
            | Opcode::FMul
            | Opcode::FFma
            | Opcode::FMin
            | Opcode::FMax
            | Opcode::Mov
            | Opcode::Sel
            | Opcode::I2F
            | Opcode::F2I
            | Opcode::Setp(_)
            | Opcode::FSetp(_) => Unit::Alu,
            Opcode::Sfu(_) => Unit::Sfu,
            Opcode::Ld(_) | Opcode::St(_) => Unit::Mem,
            Opcode::Tex => Unit::Tex,
            Opcode::Bra | Opcode::Bar | Opcode::Exit => Unit::Control,
        }
    }

    /// Whether the result of this opcode arrives after a long latency
    /// (hundreds of cycles). Consumers of long-latency results terminate
    /// strands (paper §4.1).
    pub const fn is_long_latency(self) -> bool {
        matches!(
            self,
            Opcode::Ld(Space::Global) | Opcode::Ld(Space::Local) | Opcode::Tex
        )
    }

    /// Whether this opcode unconditionally suspends the warp (barriers).
    pub const fn is_barrier(self) -> bool {
        matches!(self, Opcode::Bar)
    }

    /// Whether this opcode is a branch.
    pub const fn is_branch(self) -> bool {
        matches!(self, Opcode::Bra)
    }

    /// Whether this opcode ends the thread.
    pub const fn is_exit(self) -> bool {
        matches!(self, Opcode::Exit)
    }

    /// Whether instructions with this opcode write a general-purpose
    /// destination register.
    pub const fn has_dst(self) -> bool {
        !matches!(
            self,
            Opcode::St(_)
                | Opcode::Bra
                | Opcode::Bar
                | Opcode::Exit
                | Opcode::Setp(_)
                | Opcode::FSetp(_)
        )
    }

    /// Whether instructions with this opcode write a predicate register.
    pub const fn has_pdst(self) -> bool {
        matches!(self, Opcode::Setp(_) | Opcode::FSetp(_))
    }

    /// The required number of source operands.
    pub const fn num_srcs(self) -> usize {
        match self {
            Opcode::IAdd
            | Opcode::ISub
            | Opcode::IMul
            | Opcode::IMin
            | Opcode::IMax
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Shl
            | Opcode::Shr
            | Opcode::FAdd
            | Opcode::FSub
            | Opcode::FMul
            | Opcode::FMin
            | Opcode::FMax
            | Opcode::Sel
            | Opcode::Setp(_)
            | Opcode::FSetp(_)
            | Opcode::St(_) => 2,
            Opcode::IMad | Opcode::FFma => 3,
            Opcode::Mov
            | Opcode::I2F
            | Opcode::F2I
            | Opcode::Sfu(_)
            | Opcode::Ld(_)
            | Opcode::Tex => 1,
            Opcode::Bra | Opcode::Bar | Opcode::Exit => 0,
        }
    }

    /// Whether this opcode reads a source predicate register (`sel`).
    pub const fn reads_pred_src(self) -> bool {
        matches!(self, Opcode::Sel)
    }

    /// The assembly mnemonic (without predicate guard or operands).
    pub fn mnemonic(self) -> String {
        match self {
            Opcode::IAdd => "iadd".into(),
            Opcode::ISub => "isub".into(),
            Opcode::IMul => "imul".into(),
            Opcode::IMad => "imad".into(),
            Opcode::IMin => "imin".into(),
            Opcode::IMax => "imax".into(),
            Opcode::And => "and".into(),
            Opcode::Or => "or".into(),
            Opcode::Xor => "xor".into(),
            Opcode::Shl => "shl".into(),
            Opcode::Shr => "shr".into(),
            Opcode::FAdd => "fadd".into(),
            Opcode::FSub => "fsub".into(),
            Opcode::FMul => "fmul".into(),
            Opcode::FFma => "ffma".into(),
            Opcode::FMin => "fmin".into(),
            Opcode::FMax => "fmax".into(),
            Opcode::Mov => "mov".into(),
            Opcode::Sel => "sel".into(),
            Opcode::I2F => "i2f".into(),
            Opcode::F2I => "f2i".into(),
            Opcode::Setp(c) => format!("setp.{c}"),
            Opcode::FSetp(c) => format!("fsetp.{c}"),
            Opcode::Sfu(s) => s.mnemonic().into(),
            Opcode::Ld(sp) => format!("ld.{sp}"),
            Opcode::St(sp) => format!("st.{sp}"),
            Opcode::Tex => "tex".into(),
            Opcode::Bra => "bra".into(),
            Opcode::Bar => "bar".into(),
            Opcode::Exit => "exit".into(),
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_ops_are_private() {
        for op in [
            Opcode::IAdd,
            Opcode::FFma,
            Opcode::Mov,
            Opcode::Setp(CmpOp::Lt),
        ] {
            assert_eq!(op.unit(), Unit::Alu);
            assert!(!op.unit().is_shared());
        }
    }

    #[test]
    fn shared_datapath_ops() {
        assert!(Opcode::Sfu(SfuOp::Rcp).unit().is_shared());
        assert!(Opcode::Ld(Space::Global).unit().is_shared());
        assert!(Opcode::St(Space::Shared).unit().is_shared());
        assert!(Opcode::Tex.unit().is_shared());
        assert!(!Opcode::Bra.unit().is_shared());
    }

    #[test]
    fn long_latency_classification() {
        assert!(Opcode::Ld(Space::Global).is_long_latency());
        assert!(Opcode::Ld(Space::Local).is_long_latency());
        assert!(Opcode::Tex.is_long_latency());
        assert!(!Opcode::Ld(Space::Shared).is_long_latency());
        assert!(!Opcode::Ld(Space::Param).is_long_latency());
        assert!(!Opcode::Sfu(SfuOp::Sqrt).is_long_latency());
        assert!(!Opcode::St(Space::Global).is_long_latency());
    }

    #[test]
    fn dst_classification() {
        assert!(Opcode::IAdd.has_dst());
        assert!(Opcode::Ld(Space::Global).has_dst());
        assert!(!Opcode::St(Space::Global).has_dst());
        assert!(!Opcode::Setp(CmpOp::Eq).has_dst());
        assert!(Opcode::Setp(CmpOp::Eq).has_pdst());
        assert!(!Opcode::Bra.has_dst());
    }

    #[test]
    fn src_arity() {
        assert_eq!(Opcode::FFma.num_srcs(), 3);
        assert_eq!(Opcode::IAdd.num_srcs(), 2);
        assert_eq!(Opcode::Mov.num_srcs(), 1);
        assert_eq!(Opcode::St(Space::Global).num_srcs(), 2);
        assert_eq!(Opcode::Exit.num_srcs(), 0);
    }

    #[test]
    fn mnemonics_render() {
        assert_eq!(Opcode::Setp(CmpOp::Lt).to_string(), "setp.lt");
        assert_eq!(Opcode::Ld(Space::Global).to_string(), "ld.global");
        assert_eq!(Opcode::Sfu(SfuOp::Rsqrt).to_string(), "rsqrt");
        assert_eq!(Opcode::FFma.to_string(), "ffma");
    }

    #[test]
    fn control_classification() {
        assert!(Opcode::Bra.is_branch());
        assert!(Opcode::Bar.is_barrier());
        assert!(Opcode::Exit.is_exit());
        assert!(!Opcode::IAdd.is_branch());
    }
}
