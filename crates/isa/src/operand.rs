//! Instruction source operands and operand slots.

use std::fmt;

use crate::reg::Reg;

/// A source operand of an instruction.
///
/// All values are 32-bit words; floating-point immediates are stored as
/// their IEEE-754 bit pattern so that `Operand` can be `Eq` and `Hash`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A general-purpose register read.
    Reg(Reg),
    /// A signed integer immediate (sign-extended / truncated to 32 bits at
    /// execution).
    Imm(i32),
    /// A 32-bit float immediate, stored as its bit pattern.
    FBits(u32),
    /// A read-only special register (thread/CTA geometry). These live in a
    /// tiny special register file outside the LRF/ORF/MRF hierarchy.
    Special(Special),
}

impl Operand {
    /// Constructs a float immediate operand.
    ///
    /// # Examples
    ///
    /// ```
    /// use rfh_isa::Operand;
    /// let half = Operand::f32(0.5);
    /// assert_eq!(half.as_f32(), Some(0.5));
    /// ```
    pub fn f32(value: f32) -> Self {
        Operand::FBits(value.to_bits())
    }

    /// Returns the float value if this is a float immediate.
    pub fn as_f32(self) -> Option<f32> {
        match self {
            Operand::FBits(bits) => Some(f32::from_bits(bits)),
            _ => None,
        }
    }

    /// Returns the register if this operand reads a general-purpose register.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            _ => None,
        }
    }

    /// Whether this operand reads a general-purpose register (and therefore
    /// accesses the register file hierarchy).
    pub fn is_reg(self) -> bool {
        matches!(self, Operand::Reg(_))
    }

    /// The 32-bit word a constant operand contributes to the datapath —
    /// an integer immediate as its two's-complement bits, a float
    /// immediate as its IEEE-754 bits — or `None` for operands whose value
    /// is only known per lane at execution (registers, specials). This is
    /// what lets an instruction decoder fold both immediate forms into one
    /// pre-computed constant slot.
    ///
    /// # Examples
    ///
    /// ```
    /// use rfh_isa::Operand;
    /// assert_eq!(Operand::Imm(-1).const_bits(), Some(u32::MAX));
    /// assert_eq!(Operand::f32(1.0).const_bits(), Some(1.0f32.to_bits()));
    /// assert_eq!(Operand::Reg(rfh_isa::Reg::new(0)).const_bits(), None);
    /// ```
    pub const fn const_bits(self) -> Option<u32> {
        match self {
            Operand::Imm(v) => Some(v as u32),
            Operand::FBits(bits) => Some(bits),
            Operand::Reg(_) | Operand::Special(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
            Operand::FBits(bits) => write!(f, "{:?}f", f32::from_bits(*bits)),
            Operand::Special(s) => write!(f, "{s}"),
        }
    }
}

/// Read-only special registers (a subset of PTX's `%tid`, `%ctaid`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Special {
    /// Thread index within the CTA (x dimension).
    TidX,
    /// CTA index within the grid (x dimension).
    CtaIdX,
    /// Number of threads per CTA (x dimension).
    NTidX,
    /// Number of CTAs in the grid (x dimension).
    NCtaIdX,
    /// Lane index within the warp (0..32).
    LaneId,
    /// Warp index within the CTA.
    WarpId,
}

impl Special {
    /// All special registers, for enumeration in tests and parsers.
    pub const ALL: [Special; 6] = [
        Special::TidX,
        Special::CtaIdX,
        Special::NTidX,
        Special::NCtaIdX,
        Special::LaneId,
        Special::WarpId,
    ];

    /// The assembly spelling, e.g. `%tid.x`.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            Special::TidX => "%tid.x",
            Special::CtaIdX => "%ctaid.x",
            Special::NTidX => "%ntid.x",
            Special::NCtaIdX => "%nctaid.x",
            Special::LaneId => "%laneid",
            Special::WarpId => "%warpid",
        }
    }
}

impl fmt::Display for Special {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// An operand slot: the position of a source operand within an instruction.
///
/// A fused multiply-add `d = a * b + c` reads its sources from slots A, B
/// and C. The *split LRF* design (paper §3.2) gives each slot a private LRF
/// bank, so the allocator must know which slot(s) read a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Slot {
    /// First source operand.
    A,
    /// Second source operand.
    B,
    /// Third source operand.
    C,
}

impl Slot {
    /// All slots in order.
    pub const ALL: [Slot; 3] = [Slot::A, Slot::B, Slot::C];

    /// The slot for the `index`-th source operand.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 3`; instructions have at most three register
    /// source operands.
    pub fn from_index(index: usize) -> Self {
        Slot::ALL[index]
    }

    /// The source-operand index of this slot (A → 0, B → 1, C → 2).
    pub const fn index(self) -> usize {
        match self {
            Slot::A => 0,
            Slot::B => 1,
            Slot::C => 2,
        }
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Slot::A => write!(f, "A"),
            Slot::B => write!(f, "B"),
            Slot::C => write!(f, "C"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_immediates_round_trip() {
        let op = Operand::f32(1.25);
        assert_eq!(op.as_f32(), Some(1.25));
        assert_eq!(Operand::Imm(3).as_f32(), None);
    }

    #[test]
    fn reg_operand_accessors() {
        let op: Operand = Reg::new(4).into();
        assert!(op.is_reg());
        assert_eq!(op.as_reg(), Some(Reg::new(4)));
        assert!(!Operand::Imm(1).is_reg());
        assert_eq!(Operand::Special(Special::TidX).as_reg(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Operand::Reg(Reg::new(2)).to_string(), "r2");
        assert_eq!(Operand::Imm(-7).to_string(), "-7");
        assert_eq!(Operand::Special(Special::TidX).to_string(), "%tid.x");
        assert_eq!(Operand::f32(0.5).to_string(), "0.5f");
    }

    #[test]
    fn slot_round_trips_through_index() {
        for (i, slot) in Slot::ALL.iter().enumerate() {
            assert_eq!(Slot::from_index(i), *slot);
            assert_eq!(slot.index(), i);
        }
    }

    #[test]
    #[should_panic]
    fn slot_from_large_index_panics() {
        let _ = Slot::from_index(3);
    }

    #[test]
    fn special_mnemonics_are_unique() {
        let mut names: Vec<_> = Special::ALL.iter().map(|s| s.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Special::ALL.len());
    }
}
