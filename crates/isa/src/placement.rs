//! Register file hierarchy placement annotations.
//!
//! The compiler encodes, in each instruction, whether the value produced
//! should be written to the LRF, ORF, MRF, or a combination, and which level
//! each read operand should come from (paper §3.1, §4.2). In hardware this
//! is expressed by partitioning the architectural register namespace; in the
//! IR we carry explicit annotations, which is equivalent and keeps the
//! namespace question orthogonal (see paper §6.5 for the encoding-cost
//! analysis, reproduced by `rfh-experiments::encoding`).

use std::fmt;

use crate::operand::Slot;

/// A level of the register file hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Last result file: 1 entry/thread, private-datapath only, cheapest.
    Lrf,
    /// Operand register file: a few entries/thread, reachable from both
    /// datapaths.
    Orf,
    /// Main register file: large banked SRAM holding all thread context.
    Mrf,
}

impl Level {
    /// All levels, upper (cheapest) first.
    pub const ALL: [Level; 3] = [Level::Lrf, Level::Orf, Level::Mrf];
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Level::Lrf => write!(f, "LRF"),
            Level::Orf => write!(f, "ORF"),
            Level::Mrf => write!(f, "MRF"),
        }
    }
}

/// Where a source operand is read from.
///
/// Produced by the allocator in `rfh-alloc`; the default for every register
/// operand is the MRF (the single-level baseline).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ReadLoc {
    /// Read from the main register file.
    #[default]
    Mrf,
    /// Read from the given ORF entry (64-bit values also occupy
    /// `entry + 1`).
    Orf(u8),
    /// Read from the LRF. `bank` is `None` for a unified LRF and names the
    /// per-operand-slot bank in the split LRF design.
    Lrf(Option<Slot>),
    /// Read from the MRF *and* deposit the value into the given ORF entry:
    /// the first read of a read-operand allocation (paper §4.4, Figure 9).
    /// Costs one MRF read plus one ORF write.
    MrfFillOrf(u8),
}

impl ReadLoc {
    /// The hierarchy level this read is served from.
    pub const fn level(self) -> Level {
        match self {
            ReadLoc::Mrf | ReadLoc::MrfFillOrf(_) => Level::Mrf,
            ReadLoc::Orf(_) => Level::Orf,
            ReadLoc::Lrf(_) => Level::Lrf,
        }
    }

    /// The ORF entry this read fills, if it is a read-operand fill.
    pub const fn orf_fill(self) -> Option<u8> {
        match self {
            ReadLoc::MrfFillOrf(e) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for ReadLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadLoc::Mrf => write!(f, "MRF"),
            ReadLoc::Orf(e) => write!(f, "ORF{e}"),
            ReadLoc::Lrf(None) => write!(f, "LRF"),
            ReadLoc::Lrf(Some(s)) => write!(f, "LRF.{s}"),
            ReadLoc::MrfFillOrf(e) => write!(f, "MRF>ORF{e}"),
        }
    }
}

/// Where a produced value is written.
///
/// A value goes to the LRF *or* the ORF but never both (paper §4.6), and
/// optionally *also* to the MRF — either because it is live out of the
/// strand, or because only a partial range of its reads was allocated to
/// the upper level (paper §4.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum WriteLoc {
    /// Write only to the main register file (the baseline).
    #[default]
    Mrf,
    /// Write to the given ORF entry; `also_mrf` additionally writes the MRF
    /// in the same instruction (no writeback ever occurs later).
    Orf {
        /// Physical ORF entry index (64-bit values also occupy `entry + 1`).
        entry: u8,
        /// Whether the MRF copy is written simultaneously.
        also_mrf: bool,
    },
    /// Write to the LRF (`bank` as in [`ReadLoc::Lrf`]); `also_mrf` as for
    /// ORF writes.
    Lrf {
        /// Split-LRF bank, or `None` for a unified LRF.
        bank: Option<Slot>,
        /// Whether the MRF copy is written simultaneously.
        also_mrf: bool,
    },
}

impl WriteLoc {
    /// Whether this write touches the MRF.
    pub const fn writes_mrf(self) -> bool {
        matches!(
            self,
            WriteLoc::Mrf
                | WriteLoc::Orf { also_mrf: true, .. }
                | WriteLoc::Lrf { also_mrf: true, .. }
        )
    }

    /// The upper hierarchy level written, if any.
    pub const fn upper_level(self) -> Option<Level> {
        match self {
            WriteLoc::Mrf => None,
            WriteLoc::Orf { .. } => Some(Level::Orf),
            WriteLoc::Lrf { .. } => Some(Level::Lrf),
        }
    }

    /// The ORF entry written, if any.
    pub const fn orf_entry(self) -> Option<u8> {
        match self {
            WriteLoc::Orf { entry, .. } => Some(entry),
            _ => None,
        }
    }

    /// The split-LRF bank written (`Some(None)` means the unified LRF).
    pub const fn lrf_bank(self) -> Option<Option<Slot>> {
        match self {
            WriteLoc::Lrf { bank, .. } => Some(bank),
            _ => None,
        }
    }
}

impl fmt::Display for WriteLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteLoc::Mrf => write!(f, "MRF"),
            WriteLoc::Orf { entry, also_mrf } => {
                write!(f, "ORF{entry}")?;
                if *also_mrf {
                    write!(f, "+MRF")?;
                }
                Ok(())
            }
            WriteLoc::Lrf { bank, also_mrf } => {
                match bank {
                    None => write!(f, "LRF")?,
                    Some(s) => write!(f, "LRF.{s}")?,
                }
                if *also_mrf {
                    write!(f, "+MRF")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_loc_levels() {
        assert_eq!(ReadLoc::Mrf.level(), Level::Mrf);
        assert_eq!(ReadLoc::Orf(2).level(), Level::Orf);
        assert_eq!(ReadLoc::Lrf(None).level(), Level::Lrf);
        assert_eq!(ReadLoc::Lrf(Some(Slot::B)).level(), Level::Lrf);
        assert_eq!(ReadLoc::MrfFillOrf(1).level(), Level::Mrf);
    }

    #[test]
    fn orf_fill_accessor() {
        assert_eq!(ReadLoc::MrfFillOrf(4).orf_fill(), Some(4));
        assert_eq!(ReadLoc::Orf(4).orf_fill(), None);
        assert_eq!(ReadLoc::MrfFillOrf(4).to_string(), "MRF>ORF4");
    }

    #[test]
    fn write_loc_mrf_participation() {
        assert!(WriteLoc::Mrf.writes_mrf());
        assert!(!WriteLoc::Orf {
            entry: 0,
            also_mrf: false
        }
        .writes_mrf());
        assert!(WriteLoc::Orf {
            entry: 0,
            also_mrf: true
        }
        .writes_mrf());
        assert!(WriteLoc::Lrf {
            bank: None,
            also_mrf: true
        }
        .writes_mrf());
    }

    #[test]
    fn write_loc_accessors() {
        let w = WriteLoc::Orf {
            entry: 3,
            also_mrf: false,
        };
        assert_eq!(w.orf_entry(), Some(3));
        assert_eq!(w.upper_level(), Some(Level::Orf));
        assert_eq!(w.lrf_bank(), None);

        let l = WriteLoc::Lrf {
            bank: Some(Slot::C),
            also_mrf: true,
        };
        assert_eq!(l.lrf_bank(), Some(Some(Slot::C)));
        assert_eq!(l.upper_level(), Some(Level::Lrf));
        assert_eq!(WriteLoc::Mrf.upper_level(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ReadLoc::Orf(1).to_string(), "ORF1");
        assert_eq!(ReadLoc::Lrf(Some(Slot::A)).to_string(), "LRF.A");
        assert_eq!(
            WriteLoc::Orf {
                entry: 2,
                also_mrf: true
            }
            .to_string(),
            "ORF2+MRF"
        );
        assert_eq!(
            WriteLoc::Lrf {
                bank: None,
                also_mrf: false
            }
            .to_string(),
            "LRF"
        );
    }

    #[test]
    fn defaults_are_mrf() {
        assert_eq!(ReadLoc::default(), ReadLoc::Mrf);
        assert_eq!(WriteLoc::default(), WriteLoc::Mrf);
    }
}
