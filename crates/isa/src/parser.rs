//! Parser for the textual assembly format produced by
//! [`crate::printer::print_kernel`].

use crate::error::IsaError;
use crate::instr::Instruction;
use crate::kernel::{BasicBlock, BlockId, Kernel};
use crate::opcode::{CmpOp, Opcode, SfuOp, Space};
use crate::operand::{Operand, Special};
use crate::reg::{PredReg, Reg};
use crate::validate::validate;

fn perr(line: usize, msg: impl Into<String>) -> IsaError {
    IsaError::Parse {
        line,
        msg: msg.into(),
    }
}

fn parse_opcode(m: &str) -> Option<Opcode> {
    let simple = match m {
        "iadd" => Some(Opcode::IAdd),
        "isub" => Some(Opcode::ISub),
        "imul" => Some(Opcode::IMul),
        "imad" => Some(Opcode::IMad),
        "imin" => Some(Opcode::IMin),
        "imax" => Some(Opcode::IMax),
        "and" => Some(Opcode::And),
        "or" => Some(Opcode::Or),
        "xor" => Some(Opcode::Xor),
        "shl" => Some(Opcode::Shl),
        "shr" => Some(Opcode::Shr),
        "fadd" => Some(Opcode::FAdd),
        "fsub" => Some(Opcode::FSub),
        "fmul" => Some(Opcode::FMul),
        "ffma" => Some(Opcode::FFma),
        "fmin" => Some(Opcode::FMin),
        "fmax" => Some(Opcode::FMax),
        "mov" => Some(Opcode::Mov),
        "sel" => Some(Opcode::Sel),
        "i2f" => Some(Opcode::I2F),
        "f2i" => Some(Opcode::F2I),
        "tex" => Some(Opcode::Tex),
        "bra" => Some(Opcode::Bra),
        "bar" => Some(Opcode::Bar),
        "exit" => Some(Opcode::Exit),
        _ => None,
    };
    if simple.is_some() {
        return simple;
    }
    for f in SfuOp::ALL {
        if m == f.mnemonic() {
            return Some(Opcode::Sfu(f));
        }
    }
    if let Some(cmp) = m.strip_prefix("setp.") {
        return CmpOp::ALL
            .into_iter()
            .find(|c| c.mnemonic() == cmp)
            .map(Opcode::Setp);
    }
    if let Some(cmp) = m.strip_prefix("fsetp.") {
        return CmpOp::ALL
            .into_iter()
            .find(|c| c.mnemonic() == cmp)
            .map(Opcode::FSetp);
    }
    let space = |s: &str| match s {
        "global" => Some(Space::Global),
        "shared" => Some(Space::Shared),
        "param" => Some(Space::Param),
        "local" => Some(Space::Local),
        _ => None,
    };
    if let Some(sp) = m.strip_prefix("ld.") {
        return space(sp).map(Opcode::Ld);
    }
    if let Some(sp) = m.strip_prefix("st.") {
        return space(sp).map(Opcode::St);
    }
    None
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, IsaError> {
    tok.strip_prefix('r')
        .and_then(|n| n.parse::<u16>().ok())
        .map(Reg::new)
        .ok_or_else(|| perr(line, format!("expected register, found `{tok}`")))
}

fn parse_pred(tok: &str, line: usize) -> Result<PredReg, IsaError> {
    tok.strip_prefix('p')
        .and_then(|n| n.parse::<u8>().ok())
        .map(PredReg::new)
        .ok_or_else(|| perr(line, format!("expected predicate register, found `{tok}`")))
}

fn parse_block_ref(tok: &str, line: usize) -> Result<BlockId, IsaError> {
    tok.strip_prefix("BB")
        .and_then(|n| n.parse::<u32>().ok())
        .map(BlockId::new)
        .ok_or_else(|| perr(line, format!("expected block label, found `{tok}`")))
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, IsaError> {
    if let Some(rest) = tok.strip_prefix('r') {
        if let Ok(n) = rest.parse::<u16>() {
            return Ok(Operand::Reg(Reg::new(n)));
        }
    }
    if tok.starts_with('%') {
        return Special::ALL
            .into_iter()
            .find(|s| s.mnemonic() == tok)
            .map(Operand::Special)
            .ok_or_else(|| perr(line, format!("unknown special register `{tok}`")));
    }
    if let Some(float) = tok.strip_suffix('f') {
        if let Ok(v) = float.parse::<f32>() {
            return Ok(Operand::f32(v));
        }
    }
    if let Ok(v) = tok.parse::<i32>() {
        return Ok(Operand::Imm(v));
    }
    Err(perr(line, format!("cannot parse operand `{tok}`")))
}

fn parse_instruction(text: &str, line: usize) -> Result<Instruction, IsaError> {
    // Split off comments; the strand-end marker is the comment `;end`.
    let (code, comment) = match text.find(';') {
        Some(pos) => (&text[..pos], Some(text[pos + 1..].trim())),
        None => (text, None),
    };
    let ends_strand = comment.is_some_and(|c| c == "end" || c.starts_with("end "));

    let mut tokens: Vec<&str> = code
        .split(|c: char| c == ',' || c.is_whitespace())
        .filter(|t| !t.is_empty())
        .collect();
    if tokens.is_empty() {
        return Err(perr(line, "empty instruction"));
    }

    // Optional guard.
    let mut guard = None;
    if let Some(g) = tokens[0].strip_prefix('@') {
        let (neg, preg) = match g.strip_prefix('!') {
            Some(p) => (true, p),
            None => (false, g),
        };
        let reg = parse_pred(preg, line)?;
        guard = Some((reg, neg));
        tokens.remove(0);
    }
    if tokens.is_empty() {
        return Err(perr(line, "guard without instruction"));
    }

    let op = parse_opcode(tokens[0])
        .ok_or_else(|| perr(line, format!("unknown opcode `{}`", tokens[0])))?;
    let mut rest = tokens[1..].iter();

    let mut instr = Instruction::new(op);
    if op.has_dst() {
        let tok = rest
            .next()
            .ok_or_else(|| perr(line, "missing destination"))?;
        if let Some(base) = tok.strip_suffix(".w64") {
            instr = instr.with_dst64(parse_reg(base, line)?);
        } else {
            instr = instr.with_dst(parse_reg(tok, line)?);
        }
    }
    if op.has_pdst() {
        let tok = rest
            .next()
            .ok_or_else(|| perr(line, "missing destination predicate"))?;
        instr = instr.with_pdst(parse_pred(tok, line)?);
    }
    for _ in 0..op.num_srcs() {
        let tok = rest
            .next()
            .ok_or_else(|| perr(line, "missing source operand"))?;
        instr = instr.with_src(parse_operand(tok, line)?);
    }
    if op.reads_pred_src() {
        let tok = rest
            .next()
            .ok_or_else(|| perr(line, "missing source predicate"))?;
        instr = instr.with_psrc(parse_pred(tok, line)?);
    }
    if op.is_branch() {
        let tok = rest
            .next()
            .ok_or_else(|| perr(line, "missing branch target"))?;
        instr = instr.with_target(parse_block_ref(tok, line)?);
    }
    if let Some(extra) = rest.next() {
        return Err(perr(line, format!("unexpected trailing token `{extra}`")));
    }
    if let Some((reg, neg)) = guard {
        instr = instr.guarded(reg, neg);
    }
    instr.ends_strand = ends_strand;
    Ok(instr)
}

/// Parses a kernel from the textual assembly format.
///
/// The format is line oriented:
///
/// ```text
/// .kernel <name>
/// .params <count>        (optional)
/// BB0:
///   <instructions>
/// BB1:
///   ...
/// ```
///
/// Block labels must appear in order (`BB0`, `BB1`, …). Comments start with
/// `;`; the special comment `;end` marks a strand endpoint. The parsed
/// kernel is validated before being returned.
///
/// # Errors
///
/// Returns [`IsaError::Parse`] for malformed input and [`IsaError::Validate`]
/// if the parsed kernel is structurally invalid.
///
/// # Examples
///
/// ```
/// let text = "
/// .kernel double
/// BB0:
///   mov r0, %tid.x
///   iadd r1 r0, r0
///   exit
/// ";
/// let k = rfh_isa::parse_kernel(text)?;
/// assert_eq!(k.name, "double");
/// assert_eq!(k.instr_count(), 3);
/// # Ok::<(), rfh_isa::IsaError>(())
/// ```
pub fn parse_kernel(text: &str) -> Result<Kernel, IsaError> {
    let mut kernel: Option<Kernel> = None;
    let mut current: Option<usize> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        // Full-line comments (not the `;end` marker, which follows code).
        if line.starts_with(';') || line.starts_with("//") {
            continue;
        }
        if let Some(name) = line.strip_prefix(".kernel") {
            if kernel.is_some() {
                return Err(perr(line_no, "duplicate .kernel directive"));
            }
            let name = name.trim();
            if name.is_empty() {
                return Err(perr(line_no, "missing kernel name"));
            }
            kernel = Some(Kernel::new(name));
            continue;
        }
        let k = kernel
            .as_mut()
            .ok_or_else(|| perr(line_no, "expected .kernel before content"))?;
        if let Some(n) = line.strip_prefix(".params") {
            k.num_params = n
                .trim()
                .parse()
                .map_err(|_| perr(line_no, "malformed .params count"))?;
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let id = parse_block_ref(label.trim(), line_no)?;
            if id.index() != k.blocks.len() {
                return Err(perr(
                    line_no,
                    format!(
                        "block label {id} out of order (expected BB{})",
                        k.blocks.len()
                    ),
                ));
            }
            k.blocks.push(BasicBlock::new(id));
            current = Some(id.index());
            continue;
        }
        // An instruction line; an implicit BB0 is opened if none exists yet.
        let cur = match current {
            Some(cur) => cur,
            None => {
                if !k.blocks.is_empty() {
                    return Err(perr(line_no, "instruction outside any block"));
                }
                k.blocks.push(BasicBlock::new(BlockId::new(0)));
                current = Some(0);
                0
            }
        };
        let instr = parse_instruction(line, line_no)?;
        k.blocks[cur].instrs.push(instr);
    }

    let kernel = kernel.ok_or_else(|| perr(text.lines().count(), "no .kernel directive"))?;
    validate(&kernel)?;
    Ok(kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_kernel;
    use crate::{ops, KernelBuilder};

    #[test]
    fn parses_minimal_kernel() {
        let k = parse_kernel(".kernel k\nBB0:\n  exit\n").unwrap();
        assert_eq!(k.name, "k");
        assert_eq!(k.blocks.len(), 1);
    }

    #[test]
    fn implicit_entry_block() {
        let k = parse_kernel(".kernel k\n  exit\n").unwrap();
        assert_eq!(k.blocks.len(), 1);
    }

    #[test]
    fn parses_guards_and_strand_ends() {
        let text = "
.kernel g
BB0:
  setp.lt p0 r0, 5
  @!p0 bra BB2
BB1:
  ld.global r1 r0 ;end
BB2:
  exit
";
        let k = parse_kernel(text).unwrap();
        let bra = &k.blocks[0].instrs[1];
        assert!(bra.guard.unwrap().negated);
        assert_eq!(bra.target, Some(BlockId::new(2)));
        assert!(k.blocks[1].instrs[0].ends_strand);
    }

    #[test]
    fn parses_floats_and_specials() {
        let text = ".kernel f\nBB0:\n  mov r0, %ctaid.x\n  fmul r1 r0, 2.5f\n  exit\n";
        let k = parse_kernel(text).unwrap();
        assert_eq!(k.blocks[0].instrs[1].srcs[1], Operand::f32(2.5));
        assert_eq!(
            k.blocks[0].instrs[0].srcs[0],
            Operand::Special(Special::CtaIdX)
        );
    }

    #[test]
    fn parses_wide_dst() {
        let text = ".kernel w\nBB0:\n  ld.global r4.w64 r0\n  exit\n";
        let k = parse_kernel(text).unwrap();
        assert_eq!(k.blocks[0].instrs[0].dst.unwrap().width, crate::Width::W64);
    }

    #[test]
    fn rejects_unknown_opcode() {
        let e = parse_kernel(".kernel k\nBB0:\n  frobnicate r0\n  exit\n").unwrap_err();
        assert!(e.to_string().contains("unknown opcode"));
    }

    #[test]
    fn rejects_out_of_order_labels() {
        let e = parse_kernel(".kernel k\nBB1:\n  exit\n").unwrap_err();
        assert!(e.to_string().contains("out of order"));
    }

    #[test]
    fn rejects_trailing_tokens() {
        let e = parse_kernel(".kernel k\nBB0:\n  mov r0, 1, 2\n  exit\n").unwrap_err();
        assert!(e.to_string().contains("trailing"));
    }

    #[test]
    fn round_trips_through_printer() {
        let mut b = KernelBuilder::new("rt");
        let r = crate::Reg::new;
        let p0 = crate::PredReg::new(0);
        let loop_hdr = b.add_block();
        let done = b.add_block();
        b.switch_to(b.entry());
        b.push(ops::mov(r(0), Operand::Special(Special::TidX)));
        b.push(ops::ld_param(r(1), 0));
        b.switch_to(loop_hdr);
        b.push(ops::ld_global(r(2), r(0).into()));
        let mut dep = ops::ffma(r(3), r(2).into(), r(1).into(), r(3).into());
        dep.ends_strand = true;
        b.push(dep);
        b.push(ops::setp(CmpOp::Lt, p0, r(0).into(), 64.into()));
        b.push(ops::bra_if(p0, false, loop_hdr));
        b.switch_to(done);
        b.push(ops::st_global(r(0).into(), r(3).into()));
        b.push(ops::exit());
        let k = b.finish();

        let text = print_kernel(&k);
        let parsed = parse_kernel(&text).unwrap();
        assert_eq!(parsed, k);
    }
}
