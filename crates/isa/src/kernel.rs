//! Kernels: basic blocks and the control flow graph.

use std::fmt;

use crate::instr::Instruction;
use crate::opcode::Opcode;

/// Identifier of a basic block within a kernel.
///
/// Blocks are numbered in source (layout) order; a branch to a block with an
/// id less than or equal to the branching block's id is a *backward branch*,
/// which terminates a strand (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a block id from its index.
    pub const fn new(index: u32) -> Self {
        BlockId(index)
    }

    /// The block's index in [`Kernel::blocks`].
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BB{}", self.0)
    }
}

/// A reference to one instruction inside a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstrRef {
    /// The containing block.
    pub block: BlockId,
    /// The instruction's index within the block.
    pub index: usize,
}

impl fmt::Display for InstrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.block, self.index)
    }
}

/// A basic block: a straight-line instruction sequence.
///
/// Control transfer instructions (`bra`, unguarded `exit`) may only appear
/// as the last instruction (enforced by [`crate::validate()`]); guarded `exit`
/// may appear anywhere, since it does not alter block-level control flow.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// This block's id (equal to its index in [`Kernel::blocks`]).
    pub id: BlockId,
    /// The instructions.
    pub instrs: Vec<Instruction>,
}

impl BasicBlock {
    /// Creates an empty block.
    pub fn new(id: BlockId) -> Self {
        BasicBlock {
            id,
            instrs: Vec::new(),
        }
    }

    /// The block's terminator, if it has any instructions.
    pub fn terminator(&self) -> Option<&Instruction> {
        self.instrs.last()
    }
}

/// A kernel: a named CFG of basic blocks plus parameter metadata.
///
/// The entry block is always `BB0`. Register and predicate counts are
/// derived from the instructions; kernels carry no symbol tables.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// The kernel's name.
    pub name: String,
    /// Basic blocks in layout order; `blocks[i].id == BlockId(i)`.
    pub blocks: Vec<BasicBlock>,
    /// Number of kernel parameters (accessed via `ld.param`).
    pub num_params: usize,
}

impl Kernel {
    /// Creates an empty kernel with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Kernel {
            name: name.into(),
            blocks: Vec::new(),
            num_params: 0,
        }
    }

    /// The entry block id (`BB0`).
    pub fn entry(&self) -> BlockId {
        BlockId::new(0)
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Mutable access to the block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.index()]
    }

    /// The instruction at `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn instr(&self, r: InstrRef) -> &Instruction {
        &self.blocks[r.block.index()].instrs[r.index]
    }

    /// Mutable access to the instruction at `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn instr_mut(&mut self, r: InstrRef) -> &mut Instruction {
        &mut self.blocks[r.block.index()].instrs[r.index]
    }

    /// Iterates over all instructions in layout order with their positions.
    pub fn iter_instrs(&self) -> impl Iterator<Item = (InstrRef, &Instruction)> {
        self.blocks.iter().flat_map(|b| {
            b.instrs.iter().enumerate().map(move |(i, ins)| {
                (
                    InstrRef {
                        block: b.id,
                        index: i,
                    },
                    ins,
                )
            })
        })
    }

    /// Total static instruction count.
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// The CFG successors of `id`, derived from its terminator:
    ///
    /// * unguarded `bra` → `[target]`
    /// * guarded `bra` → `[target, fallthrough]`
    /// * unguarded `exit` → `[]`
    /// * anything else → `[fallthrough]`
    pub fn successors(&self, id: BlockId) -> Vec<BlockId> {
        let block = self.block(id);
        let next = BlockId::new(id.0 + 1);
        let has_next = next.index() < self.blocks.len();
        match block.terminator() {
            Some(t) if t.op == Opcode::Bra => {
                let target = t.target.expect("validated branch has a target");
                if t.guard.is_some() {
                    let mut succ = vec![target];
                    if has_next {
                        succ.push(next);
                    }
                    succ
                } else {
                    vec![target]
                }
            }
            Some(t) if t.op == Opcode::Exit && t.guard.is_none() => vec![],
            _ => {
                if has_next {
                    vec![next]
                } else {
                    vec![]
                }
            }
        }
    }

    /// Predecessor lists for every block, indexed by block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in &self.blocks {
            for s in self.successors(b.id) {
                preds[s.index()].push(b.id);
            }
        }
        preds
    }

    /// Whether the edge `from → to` is a backward branch (layout order).
    pub fn is_backward_edge(&self, from: BlockId, to: BlockId) -> bool {
        to <= from
    }

    /// One past the highest general-purpose register index used (i.e. the
    /// per-thread register demand).
    pub fn num_regs(&self) -> u16 {
        self.iter_instrs()
            .flat_map(|(_, i)| {
                i.def_regs()
                    .chain(i.reg_srcs().map(|(_, r)| r))
                    .map(|r| r.index() + 1)
            })
            .max()
            .unwrap_or(0)
    }

    /// One past the highest predicate register index used.
    pub fn num_preds(&self) -> u8 {
        self.iter_instrs()
            .flat_map(|(_, i)| {
                i.pdst
                    .into_iter()
                    .chain(i.psrc)
                    .chain(i.guard.map(|g| g.reg))
                    .map(|p| p.index() + 1)
            })
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::printer::print_kernel(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::reg::Reg;
    use crate::PredReg;

    /// BB0 → BB1 (cond) → BB1 (loop) / BB2.
    fn loop_kernel() -> Kernel {
        let mut k = Kernel::new("loop");
        let r = Reg::new;
        let mut bb0 = BasicBlock::new(BlockId::new(0));
        bb0.instrs.push(ops::mov(r(0), 0.into()));
        let mut bb1 = BasicBlock::new(BlockId::new(1));
        bb1.instrs.push(ops::iadd(r(0), r(0).into(), 1.into()));
        bb1.instrs.push(ops::setp(
            crate::CmpOp::Lt,
            PredReg::new(0),
            r(0).into(),
            10.into(),
        ));
        bb1.instrs
            .push(ops::bra_if(PredReg::new(0), false, BlockId::new(1)));
        let mut bb2 = BasicBlock::new(BlockId::new(2));
        bb2.instrs.push(ops::exit());
        k.blocks = vec![bb0, bb1, bb2];
        k
    }

    #[test]
    fn successors_of_loop() {
        let k = loop_kernel();
        assert_eq!(k.successors(BlockId::new(0)), vec![BlockId::new(1)]);
        assert_eq!(
            k.successors(BlockId::new(1)),
            vec![BlockId::new(1), BlockId::new(2)]
        );
        assert_eq!(k.successors(BlockId::new(2)), Vec::<BlockId>::new());
    }

    #[test]
    fn predecessors_inverse_of_successors() {
        let k = loop_kernel();
        let preds = k.predecessors();
        assert_eq!(preds[0], vec![]);
        assert_eq!(preds[1], vec![BlockId::new(0), BlockId::new(1)]);
        assert_eq!(preds[2], vec![BlockId::new(1)]);
    }

    #[test]
    fn backward_edge_detection() {
        let k = loop_kernel();
        assert!(k.is_backward_edge(BlockId::new(1), BlockId::new(1)));
        assert!(!k.is_backward_edge(BlockId::new(1), BlockId::new(2)));
        assert!(k.is_backward_edge(BlockId::new(2), BlockId::new(0)));
    }

    #[test]
    fn register_counts() {
        let k = loop_kernel();
        assert_eq!(k.num_regs(), 1);
        assert_eq!(k.num_preds(), 1);
        assert_eq!(k.instr_count(), 5);
    }

    #[test]
    fn iter_instrs_positions() {
        let k = loop_kernel();
        let refs: Vec<_> = k.iter_instrs().map(|(r, _)| r).collect();
        assert_eq!(refs.len(), 5);
        assert_eq!(
            refs[0],
            InstrRef {
                block: BlockId::new(0),
                index: 0
            }
        );
        assert_eq!(
            refs[3],
            InstrRef {
                block: BlockId::new(1),
                index: 2
            }
        );
    }
}
