//! Figure 14: energy breakdown (bank access vs wire, per level) of the
//! most energy-efficient design — SW split-LRF — as the ORF size sweeps
//! 1–8 entries, normalized to the single-level baseline.
//!
//! Paper §6.4: roughly two thirds of the remaining energy is MRF (split
//! evenly between access and wire); the LRF, despite serving ~1/3 of
//! reads, costs almost nothing; LRF wire is under 1% of baseline energy.

use rfh_alloc::AllocConfig;
use rfh_energy::EnergyBreakdown;
use rfh_testkit::pool::par_map;

use crate::ctx::ExperimentCtx;
use crate::report::{norm, Table};
use crate::runner::mean;

/// One stacked bar: normalized components at a given ORF size.
#[derive(Debug, Clone, Copy)]
pub struct Fig14Point {
    /// ORF entries per thread.
    pub entries: usize,
    /// The normalized breakdown (components sum to the normalized total).
    pub breakdown: EnergyBreakdown,
}

/// Runs the breakdown sweep for the SW split-LRF design. The
/// (entries × workload) cells run in parallel over the `RFH_JOBS` pool
/// with a fixed fold order.
///
/// # Panics
///
/// Panics if any workload fails to execute or verify.
pub fn run(ctx: &ExperimentCtx) -> Vec<Fig14Point> {
    let n = ctx.workloads().len();
    let cells: Vec<(usize, usize)> = (1..=8usize)
        .flat_map(|entries| (0..n).map(move |i| (entries, i)))
        .collect();
    let comps: Vec<EnergyBreakdown> = par_map(&cells, |&(entries, i)| {
        let b = ctx.baseline(i);
        let model = ctx.model();
        let c = ctx.sw_counts(i, &AllocConfig::three_level(entries, true));
        let base = model
            .baseline_energy(b.total_reads(), b.total_writes())
            .total();
        model.energy(&c, entries).normalized_to(base)
    });
    comps
        .chunks(n)
        .enumerate()
        .map(|(e, per_entry)| {
            let avg = EnergyBreakdown {
                mrf_access: mean(&per_entry.iter().map(|c| c.mrf_access).collect::<Vec<_>>()),
                mrf_wire: mean(&per_entry.iter().map(|c| c.mrf_wire).collect::<Vec<_>>()),
                orf_access: mean(&per_entry.iter().map(|c| c.orf_access).collect::<Vec<_>>()),
                orf_wire: mean(&per_entry.iter().map(|c| c.orf_wire).collect::<Vec<_>>()),
                lrf_access: mean(&per_entry.iter().map(|c| c.lrf_access).collect::<Vec<_>>()),
                lrf_wire: mean(&per_entry.iter().map(|c| c.lrf_wire).collect::<Vec<_>>()),
            };
            Fig14Point {
                entries: e + 1,
                breakdown: avg,
            }
        })
        .collect()
}

/// Renders the stacked components.
pub fn print(points: &[Fig14Point]) -> String {
    let mut t = Table::new(&[
        "entries",
        "MRF wire",
        "MRF access",
        "ORF wire",
        "ORF access",
        "LRF wire",
        "LRF access",
        "total",
    ]);
    for p in points {
        let b = p.breakdown;
        t.row(&[
            p.entries.to_string(),
            norm(b.mrf_wire),
            norm(b.mrf_access),
            norm(b.orf_wire),
            norm(b.orf_access),
            norm(b.lrf_wire),
            norm(b.lrf_access),
            norm(b.total()),
        ]);
    }
    format!(
        "Figure 14 — energy breakdown of the SW split-LRF design\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subset() -> Vec<rfh_workloads::Workload> {
        ["matrixmul", "nbody", "sad"]
            .iter()
            .map(|n| rfh_workloads::by_name(n).unwrap())
            .collect()
    }

    #[test]
    fn mrf_dominates_and_lrf_wire_is_negligible() {
        let ws = subset();
        let points = run(&ExperimentCtx::new(&ws));
        let p3 = &points[2];
        let b = p3.breakdown;
        let mrf = b.mrf_access + b.mrf_wire;
        assert!(
            mrf / b.total() > 0.4,
            "MRF should dominate remaining energy: {} of {}",
            mrf,
            b.total()
        );
        assert!(
            b.lrf_wire < 0.01,
            "LRF wire under 1% of baseline (paper §6.4)"
        );
        assert!(b.total() < 1.0, "the design saves energy");
    }
}
