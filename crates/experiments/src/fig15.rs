//! Figure 15: per-benchmark normalized energy of the most efficient
//! configuration (3-entry ORF, split LRF, partial ranges + read operands),
//! sorted by savings.
//!
//! Paper §6.4 singles out `Reduction` and `ScalarProd` as the weakest
//! cases (25–30% savings): tight load/FMA loops whose frequent
//! descheduling keeps invalidating the LRF/ORF.

use rfh_alloc::AllocConfig;
use rfh_testkit::pool::par_map;

use crate::ctx::ExperimentCtx;
use crate::report::{norm, Table};

/// One per-benchmark bar.
#[derive(Debug, Clone)]
pub struct BenchEnergy {
    /// Workload name.
    pub name: String,
    /// Suite label.
    pub suite: String,
    /// Normalized energy (lower is better).
    pub energy: f64,
}

/// Runs the best configuration on every workload, in parallel over the
/// `RFH_JOBS` pool. Baselines and the best-configuration cells come from
/// the shared context cache, so a benchmark already counted by another
/// experiment is never executed twice.
///
/// # Panics
///
/// Panics if any workload fails to execute or verify.
pub fn run(ctx: &ExperimentCtx) -> Vec<BenchEnergy> {
    let cfg = AllocConfig::three_level(3, true);
    let idx: Vec<usize> = (0..ctx.workloads().len()).collect();
    let mut rows: Vec<BenchEnergy> = par_map(&idx, |&i| {
        let w = &ctx.workloads()[i];
        BenchEnergy {
            name: w.name.clone(),
            suite: w.suite.to_string(),
            energy: ctx.sw_normalized(i, &cfg),
        }
    });
    // total_cmp: a NaN energy (degenerate ratio) must sort, not panic.
    rows.sort_by(|a, b| a.energy.total_cmp(&b.energy));
    rows
}

/// Renders the sorted bars.
pub fn print(rows: &[BenchEnergy]) -> String {
    let mut t = Table::new(&["benchmark", "suite", "normalized energy", "savings"]);
    for r in rows {
        t.row(&[
            r.name.clone(),
            r.suite.clone(),
            norm(r.energy),
            format!("{:.1}%", (1.0 - r.energy) * 100.0),
        ]);
    }
    format!(
        "Figure 15 — per-benchmark energy, best configuration\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_saves_energy_and_worst_cases_match() {
        let ws = rfh_workloads::all();
        let rows = run(&ExperimentCtx::new(&ws));
        assert!(rows.len() >= 15);
        for r in &rows {
            assert!(
                r.energy < 1.0,
                "{} should save energy, got {}",
                r.name,
                r.energy
            );
        }
        assert!(
            rows.windows(2).all(|w| w[0].energy <= w[1].energy),
            "sorted"
        );
        // The paper's weakest benchmarks sit in the worst third for us too.
        let worst_third: Vec<&str> = rows[rows.len() * 2 / 3..]
            .iter()
            .map(|r| r.name.as_str())
            .collect();
        assert!(
            worst_third.contains(&"scalarprod") || worst_third.contains(&"reduction"),
            "paper's worst cases should rank poorly, got {worst_third:?}"
        );
    }
}
