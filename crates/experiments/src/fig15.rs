//! Figure 15: per-benchmark normalized energy of the most efficient
//! configuration (3-entry ORF, split LRF, partial ranges + read operands),
//! sorted by savings.
//!
//! Paper §6.4 singles out `Reduction` and `ScalarProd` as the weakest
//! cases (25–30% savings): tight load/FMA loops whose frequent
//! descheduling keeps invalidating the LRF/ORF.

use rfh_alloc::AllocConfig;
use rfh_energy::EnergyModel;
use rfh_workloads::Workload;

use crate::report::{norm, Table};
use crate::runner::{baseline_counts, normalized_energy, sw_counts};

/// One per-benchmark bar.
#[derive(Debug, Clone)]
pub struct BenchEnergy {
    /// Workload name.
    pub name: String,
    /// Suite label.
    pub suite: String,
    /// Normalized energy (lower is better).
    pub energy: f64,
}

/// Runs the best configuration on every workload.
///
/// # Panics
///
/// Panics if any workload fails to execute or verify.
pub fn run(workloads: &[Workload]) -> Vec<BenchEnergy> {
    let model = EnergyModel::paper();
    let cfg = AllocConfig::three_level(3, true);
    let mut rows: Vec<BenchEnergy> = workloads
        .iter()
        .map(|w| {
            let b = baseline_counts(w);
            let c = sw_counts(w, &cfg, &model);
            BenchEnergy {
                name: w.name.clone(),
                suite: w.suite.to_string(),
                energy: normalized_energy(&c, &b, &model, 3),
            }
        })
        .collect();
    rows.sort_by(|a, b| a.energy.partial_cmp(&b.energy).unwrap());
    rows
}

/// Renders the sorted bars.
pub fn print(rows: &[BenchEnergy]) -> String {
    let mut t = Table::new(&["benchmark", "suite", "normalized energy", "savings"]);
    for r in rows {
        t.row(&[
            r.name.clone(),
            r.suite.clone(),
            norm(r.energy),
            format!("{:.1}%", (1.0 - r.energy) * 100.0),
        ]);
    }
    format!(
        "Figure 15 — per-benchmark energy, best configuration\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_saves_energy_and_worst_cases_match() {
        let rows = run(&rfh_workloads::all());
        assert!(rows.len() >= 15);
        for r in &rows {
            assert!(
                r.energy < 1.0,
                "{} should save energy, got {}",
                r.name,
                r.energy
            );
        }
        assert!(
            rows.windows(2).all(|w| w[0].energy <= w[1].energy),
            "sorted"
        );
        // The paper's weakest benchmarks sit in the worst third for us too.
        let worst_third: Vec<&str> = rows[rows.len() * 2 / 3..]
            .iter()
            .map(|r| r.name.as_str())
            .collect();
        assert!(
            worst_third.contains(&"scalarprod") || worst_third.contains(&"reduction"),
            "paper's worst cases should rank poorly, got {worst_third:?}"
        );
    }
}
