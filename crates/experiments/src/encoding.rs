//! §6.5: instruction encoding overhead.
//!
//! The SW scheme adds, at best, one bit per instruction (the strand-end
//! bit; hierarchy levels ride in unused register-namespace encodings), and
//! at worst five bits (4 operand-namespace bits + 1 strand bit). Using the
//! paper's high-level power model —
//!
//! * fetch/decode/schedule ≈ 15% of chip-wide dynamic power, of which
//!   fetch+decode ≈ 10%;
//! * bit growth scales fetch+decode energy linearly over a 32-bit
//!   instruction;
//! * register file savings of fraction `s` are worth `s × 10.7%` of chip
//!   dynamic power (the paper's 54% ↦ 5.8% chip-wide figure)
//!
//! — this module computes the net chip-wide savings for both encodings.

/// The encoding-overhead analysis results (chip-wide fractions).
#[derive(Debug, Clone, Copy)]
pub struct Encoding {
    /// Measured register file energy savings fraction (e.g. 0.54).
    pub rf_savings: f64,
    /// Gross chip-wide dynamic power savings.
    pub chip_savings: f64,
    /// Overhead of the 1-bit encoding.
    pub best_case_overhead: f64,
    /// Net chip-wide savings with the 1-bit encoding.
    pub best_case_net: f64,
    /// Overhead of the pessimistic 5-bit encoding.
    pub worst_case_overhead: f64,
    /// Net chip-wide savings with the 5-bit encoding.
    pub worst_case_net: f64,
}

/// Fraction of chip dynamic power spent on instruction fetch + decode.
const FETCH_DECODE_CHIP: f64 = 0.10;
/// Instruction width assumed by the linear bit-growth model.
const INSTR_BITS: f64 = 32.0;
/// Chip-wide power per unit of register-file savings: the paper maps 54%
/// RF savings to 5.8% chip-wide.
const RF_TO_CHIP: f64 = 0.058 / 0.54;

/// Computes the §6.5 analysis for a measured register-file savings
/// fraction.
pub fn run(rf_savings: f64) -> Encoding {
    let chip_savings = rf_savings * RF_TO_CHIP;
    let best_case_overhead = FETCH_DECODE_CHIP * (1.0 / INSTR_BITS);
    let worst_case_overhead = FETCH_DECODE_CHIP * (5.0 / INSTR_BITS);
    Encoding {
        rf_savings,
        chip_savings,
        best_case_overhead,
        best_case_net: chip_savings - best_case_overhead,
        worst_case_overhead,
        worst_case_net: chip_savings - worst_case_overhead,
    }
}

/// Renders the analysis.
pub fn print(e: &Encoding) -> String {
    format!(
        "§6.5 — instruction encoding overhead\n\
         register file savings          {:.1}%\n\
         chip-wide gross savings        {:.1}%\n\
         1-bit encoding overhead        {:.2}% → net {:.1}%\n\
         5-bit encoding overhead        {:.2}% → net {:.1}%\n",
        e.rf_savings * 100.0,
        e.chip_savings * 100.0,
        e.best_case_overhead * 100.0,
        e.best_case_net * 100.0,
        e.worst_case_overhead * 100.0,
        e.worst_case_net * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_reproduce() {
        // With the paper's 54% savings: ~5.8% gross, ~0.3% best-case
        // overhead → ~5.5% net, ~1.5% worst-case overhead → ~4.3% net.
        let e = run(0.54);
        assert!((e.chip_savings - 0.058).abs() < 0.002);
        assert!((e.best_case_overhead - 0.003).abs() < 0.001);
        assert!((e.best_case_net - 0.055).abs() < 0.002);
        assert!((e.worst_case_overhead - 0.015).abs() < 0.002);
        assert!((e.worst_case_net - 0.043).abs() < 0.002);
        assert!(
            e.worst_case_net > 0.0,
            "saves energy even in the worst case"
        );
    }
}
