#![warn(missing_docs)]

//! # rfh-experiments — regenerating every table and figure
//!
//! One module per experiment of the paper's evaluation (§6) and limit
//! study (§7). Each module exposes a `run(...)` function returning plain
//! data (so tests and benches can assert on it) plus a `print` helper used
//! by the `repro` binary:
//!
//! | module | reproduces |
//! |--------|------------|
//! | [`fig2`] | Figure 2: register value usage patterns per suite |
//! | [`fig11`] | Figure 11: 2-level read/write breakdowns, HW vs SW, 1–8 entries |
//! | [`fig12`] | Figure 12: 3-level read/write breakdowns |
//! | [`fig13`] | Figure 13: normalized energy of HW / HW-LRF / SW / SW-LRF-split |
//! | [`fig14`] | Figure 14: access vs wire energy breakdown of the best design |
//! | [`fig15`] | Figure 15: per-benchmark energy of the best design |
//! | [`tables`] | Tables 1–4 (inputs, printed for reference) |
//! | [`encoding`] | §6.5 instruction-encoding overhead analysis |
//! | [`perf`] | §6: two-level scheduler performance vs active warps |
//! | [`limit`] | §7: ideal bounds, variable ORF, backward branches, scheduling |
//! | [`ablation`] | design-choice ablations (optimizations, LRF shape, priority, RFC policy) |
//! | [`characterize`] | workload characterization (instruction mix, divergence, strands) |
//! | [`exec_bench`] | executor throughput: SoA engine vs reference oracle (not in `repro all`) |
//! | [`timing_bench`] | timing-model throughput: staged vs reference, multi-SM scaling (not in `repro all`) |
//! | [`hints`] | last-use allocation hints: accesses/energy, `--hints` off vs on (not in `repro all`) |
//!
//! All experiments execute every workload to completion (the paper's
//! methodology, §5.1) and *verify each run against the workload's host
//! reference*, so a counting result is never produced from a mis-executed
//! program.
//!
//! The experiment engine is **parallel and memoized**: each `run` takes a
//! shared [`ctx::ExperimentCtx`] that caches baseline counts, allocated
//! kernels, and counted executions per (workload, config), and fans the
//! remaining independent sweep cells out over `rfh_testkit::pool::par_map`
//! (`RFH_JOBS` controls the worker count). Results are folded in input
//! order, so output is byte-identical for any `RFH_JOBS` value.

pub mod ablation;
pub mod characterize;
pub mod csv;
pub mod ctx;
pub mod encoding;
pub mod exec_bench;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig2;
pub mod hints;
pub mod limit;
pub mod perf;
pub mod report;
pub mod runner;
pub mod tables;
pub mod timing_bench;

pub use ctx::ExperimentCtx;
pub use runner::{baseline_counts, hw_counts, sw_counts};
