//! Figure 2: register value usage patterns, per suite.
//!
//! (a) the fraction of produced values read 0 / 1 / 2 / >2 times;
//! (b) the lifetime (in instructions) of values read exactly once.
//!
//! Paper headline: "Up to 70% of values are only read once and 50% of all
//! values produced are only read once, within three instructions of being
//! produced."

use rfh_sim::exec::ExecMode;
use rfh_sim::usage::UsageStats;
use rfh_workloads::{suite_of, Suite};

use crate::report::{pct, Table};

/// Figure 2 distributions for one suite.
#[derive(Debug, Clone, Copy)]
pub struct SuiteUsage {
    /// The suite.
    pub suite: Suite,
    /// Fractions of values read 0 / 1 / 2 / more times.
    pub read_fracs: [f64; 4],
    /// Fractions of read-once values with lifetime 1 / 2 / 3 / longer.
    pub life_fracs: [f64; 4],
    /// Fraction of all values read exactly once within three instructions.
    pub read_once_within3: f64,
}

/// Runs the usage analysis for every suite.
///
/// # Panics
///
/// Panics if any workload fails to execute or verify.
pub fn run() -> Vec<SuiteUsage> {
    Suite::ALL
        .iter()
        .map(|&suite| {
            let mut stats = UsageStats::default();
            for w in suite_of(suite) {
                w.run_and_verify(ExecMode::Baseline, &w.kernel, &mut [&mut stats])
                    .unwrap_or_else(|e| panic!("{e}"));
            }
            let total = stats.reads.total().max(1) as f64;
            let read_fracs = [
                stats.reads.read0 as f64 / total,
                stats.reads.read1 as f64 / total,
                stats.reads.read2 as f64 / total,
                stats.reads.read_more as f64 / total,
            ];
            let lt = stats.lifetimes.total().max(1) as f64;
            let life_fracs = [
                stats.lifetimes.life1 as f64 / lt,
                stats.lifetimes.life2 as f64 / lt,
                stats.lifetimes.life3 as f64 / lt,
                stats.lifetimes.life_more as f64 / lt,
            ];
            let within3 = (stats.lifetimes.life1 + stats.lifetimes.life2 + stats.lifetimes.life3)
                as f64
                / total;
            SuiteUsage {
                suite,
                read_fracs,
                life_fracs,
                read_once_within3: within3,
            }
        })
        .collect()
}

/// Renders both panels of the figure as tables.
pub fn print(results: &[SuiteUsage]) -> String {
    let mut a = Table::new(&["suite", "read 0", "read 1", "read 2", "read >2"]);
    for r in results {
        a.row(&[
            r.suite.to_string(),
            pct(r.read_fracs[0]),
            pct(r.read_fracs[1]),
            pct(r.read_fracs[2]),
            pct(r.read_fracs[3]),
        ]);
    }
    let mut b = Table::new(&[
        "suite",
        "life 1",
        "life 2",
        "life 3",
        "life >3",
        "once&<=3 (all)",
    ]);
    for r in results {
        b.row(&[
            r.suite.to_string(),
            pct(r.life_fracs[0]),
            pct(r.life_fracs[1]),
            pct(r.life_fracs[2]),
            pct(r.life_fracs[3]),
            pct(r.read_once_within3),
        ]);
    }
    format!(
        "Figure 2a — percent of values by read count\n{}\nFigure 2b — lifetime of read-once values\n{}",
        a.render(),
        b.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_matches_paper_regime() {
        let results = run();
        assert_eq!(results.len(), 3);
        for r in &results {
            let sum: f64 = r.read_fracs.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "read fractions sum to 1");
            // Paper: a large share of values is read exactly once…
            assert!(
                r.read_fracs[1] > 0.35,
                "{}: read-once fraction {} too low for the GPU regime",
                r.suite,
                r.read_fracs[1]
            );
            // …and most read-once values die within three instructions.
            assert!(
                r.life_fracs[0] + r.life_fracs[1] + r.life_fracs[2] > 0.5,
                "{}: short lifetimes expected",
                r.suite
            );
        }
        let text = print(&results);
        assert!(text.contains("Figure 2a"));
        assert!(text.contains("CUDA SDK"));
    }
}
