//! Figure 12: reads and writes of the three-level hierarchy (LRF + ORF/RFC
//! + MRF), normalized to the single-level baseline, for 1–8 ORF entries.
//!
//! Paper §6.2 headlines: the SW LRF captures ~30% of all reads despite its
//! single entry, and SW overhead writes drop from ~40% (HW) to under 10%.

use rfh_alloc::AllocConfig;
use rfh_energy::AccessCounts;
use rfh_sim::rfc::RfcConfig;
use rfh_testkit::pool::par_map;

use crate::ctx::ExperimentCtx;
use crate::report::{pct, Table};
use crate::runner::mean;

/// Per-level read/write fractions for one scheme and size.
#[derive(Debug, Clone, Copy)]
pub struct Breakdown3 {
    /// ORF entries per thread.
    pub entries: usize,
    /// LRF reads / baseline reads.
    pub lrf_reads: f64,
    /// ORF (or RFC) reads / baseline reads.
    pub orf_reads: f64,
    /// MRF reads / baseline reads.
    pub mrf_reads: f64,
    /// LRF writes / baseline writes.
    pub lrf_writes: f64,
    /// ORF writes / baseline writes.
    pub orf_writes: f64,
    /// MRF writes / baseline writes.
    pub mrf_writes: f64,
}

impl Breakdown3 {
    /// Total write traffic relative to baseline (values > 1 are overhead).
    pub fn total_writes(&self) -> f64 {
        self.lrf_writes + self.orf_writes + self.mrf_writes
    }
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// Hardware LRF+RFC+MRF results.
    pub hw: Vec<Breakdown3>,
    /// Software LRF+ORF+MRF results (split LRF).
    pub sw: Vec<Breakdown3>,
}

fn fold(per_bench: &[(AccessCounts, AccessCounts)], entries: usize) -> Breakdown3 {
    let f = |g: &dyn Fn(&AccessCounts, &AccessCounts) -> f64| -> f64 {
        mean(&per_bench.iter().map(|(c, b)| g(c, b)).collect::<Vec<_>>())
    };
    Breakdown3 {
        entries,
        lrf_reads: f(&|c, b| c.lrf_read as f64 / b.total_reads().max(1) as f64),
        orf_reads: f(&|c, b| {
            (c.orf_read_private + c.orf_read_shared) as f64 / b.total_reads().max(1) as f64
        }),
        mrf_reads: f(&|c, b| c.mrf_read as f64 / b.total_reads().max(1) as f64),
        lrf_writes: f(&|c, b| c.lrf_write as f64 / b.total_writes().max(1) as f64),
        orf_writes: f(&|c, b| {
            (c.orf_write_private + c.orf_write_shared) as f64 / b.total_writes().max(1) as f64
        }),
        mrf_writes: f(&|c, b| c.mrf_write as f64 / b.total_writes().max(1) as f64),
    }
}

/// Runs the three-level sweep. The (entries × workload) cells run in
/// parallel over the `RFH_JOBS` pool with a fixed fold order.
///
/// # Panics
///
/// Panics if any workload fails to execute or verify.
pub fn run(ctx: &ExperimentCtx) -> Fig12 {
    let n = ctx.workloads().len();
    let cells: Vec<(usize, usize)> = (1..=8usize)
        .flat_map(|entries| (0..n).map(move |i| (entries, i)))
        .collect();
    let counted: Vec<(AccessCounts, AccessCounts, AccessCounts)> =
        par_map(&cells, |&(entries, i)| {
            let b = ctx.baseline(i);
            let hw = ctx.hw_counts(i, &RfcConfig::three_level(entries));
            let sw = ctx.sw_counts(i, &AllocConfig::three_level(entries, true));
            (hw, sw, b)
        });
    let mut hw = Vec::new();
    let mut sw = Vec::new();
    for (e, per_entry) in counted.chunks(n).enumerate() {
        let entries = e + 1;
        let hwc: Vec<(AccessCounts, AccessCounts)> =
            per_entry.iter().map(|(h, _, b)| (*h, *b)).collect();
        hw.push(fold(&hwc, entries));
        let swc: Vec<(AccessCounts, AccessCounts)> =
            per_entry.iter().map(|(_, s, b)| (*s, *b)).collect();
        sw.push(fold(&swc, entries));
    }
    Fig12 { hw, sw }
}

/// Renders both panels.
pub fn print(f: &Fig12) -> String {
    let mut t = Table::new(&[
        "entries", "scheme", "LRF rd", "ORF rd", "MRF rd", "LRF wr", "ORF wr", "MRF wr",
    ]);
    for (h, s) in f.hw.iter().zip(&f.sw) {
        t.row(&[
            h.entries.to_string(),
            "HW".into(),
            pct(h.lrf_reads),
            pct(h.orf_reads),
            pct(h.mrf_reads),
            pct(h.lrf_writes),
            pct(h.orf_writes),
            pct(h.mrf_writes),
        ]);
        t.row(&[
            s.entries.to_string(),
            "SW".into(),
            pct(s.lrf_reads),
            pct(s.orf_reads),
            pct(s.mrf_reads),
            pct(s.lrf_writes),
            pct(s.orf_writes),
            pct(s.mrf_writes),
        ]);
    }
    format!(
        "Figure 12 — three-level reads/writes (normalized to baseline)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subset() -> Vec<rfh_workloads::Workload> {
        ["matrixmul", "backprop", "dct8x8", "sortingnetworks", "srad"]
            .iter()
            .map(|n| rfh_workloads::by_name(n).unwrap())
            .collect()
    }

    #[test]
    fn lrf_captures_substantial_reads() {
        let ws = subset();
        let f = run(&ExperimentCtx::new(&ws));
        let s3 = &f.sw[2];
        assert!(
            s3.lrf_reads > 0.15,
            "SW LRF should capture a large read share, got {}",
            s3.lrf_reads
        );
        // SW write overhead (sum over levels minus 1) stays small compared
        // to the HW scheme's cache-everything behaviour.
        let h3 = &f.hw[2];
        assert!(s3.total_writes() < h3.total_writes());
    }

    #[test]
    fn read_totals_conserved_for_sw() {
        let ws = subset();
        let f = run(&ExperimentCtx::new(&ws));
        for s in &f.sw {
            let total = s.lrf_reads + s.orf_reads + s.mrf_reads;
            assert!((total - 1.0).abs() < 1e-9, "total = {total}");
        }
    }
}
