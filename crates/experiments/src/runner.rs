//! Shared machinery: run workloads under a configuration and count
//! hierarchy accesses, verifying every run against the host reference.

use rfh_alloc::AllocConfig;
use rfh_energy::{AccessCounts, EnergyModel};
use rfh_sim::counts::SwCounter;
use rfh_sim::exec::ExecMode;
use rfh_sim::rfc::{HwCounter, RfcConfig};
use rfh_workloads::Workload;

/// Access counts of the single-level baseline (every operand in the MRF).
///
/// # Panics
///
/// Panics if the workload fails to execute or verify — that is a bug in
/// the toolchain, not a recoverable condition for an experiment.
pub fn baseline_counts(w: &Workload) -> AccessCounts {
    let mut counter = SwCounter::default();
    w.run_and_verify(ExecMode::Baseline, &w.kernel, &mut [&mut counter])
        .unwrap_or_else(|e| panic!("baseline run failed: {e}"));
    counter.counts()
}

/// Allocates the workload's kernel under `cfg` and counts accesses with
/// hierarchy-faithful execution (operands actually flow through the
/// modeled ORF/LRF and the run is verified end-to-end).
///
/// # Panics
///
/// As for [`baseline_counts`].
pub fn sw_counts(w: &Workload, cfg: &AllocConfig, model: &EnergyModel) -> AccessCounts {
    let mut kernel = w.kernel.clone();
    rfh_alloc::allocate(&mut kernel, cfg, model)
        .unwrap_or_else(|e| panic!("allocation failed: {e}"));
    let mut counter = SwCounter::default();
    w.run_and_verify(ExecMode::Hierarchy(*cfg), &kernel, &mut [&mut counter])
        .unwrap_or_else(|e| panic!("sw run failed: {e}"));
    counter.counts()
}

/// Counts accesses under the hardware-managed cache baseline (with the
/// static-liveness annotations the HW scheme requires).
///
/// # Panics
///
/// As for [`baseline_counts`].
pub fn hw_counts(w: &Workload, cfg: &RfcConfig) -> AccessCounts {
    let mut kernel = w.kernel.clone();
    let lv = rfh_analysis::Liveness::compute(&kernel);
    rfh_analysis::liveness::annotate_dead(&mut kernel, &lv);
    let mut counter = HwCounter::new(*cfg, &kernel);
    w.run_and_verify(ExecMode::Baseline, &kernel, &mut [&mut counter])
        .unwrap_or_else(|e| panic!("hw run failed: {e}"));
    counter.counts()
}

/// Per-benchmark normalized energy: `energy(scheme) / energy(baseline)`.
///
/// # Panics
///
/// Panics if `orf_entries` is outside the energy model's ORF table
/// (1–8 for the paper's Table 3). This surfaces
/// [`EnergyModel::orf_access`]'s contract instead of silently clamping
/// an out-of-range configuration onto the nearest table row, which would
/// misprice it without any indication.
pub fn normalized_energy(
    counts: &AccessCounts,
    base: &AccessCounts,
    model: &EnergyModel,
    orf_entries: usize,
) -> f64 {
    let e = model.energy(counts, orf_entries).total();
    let b = model
        .baseline_energy(base.total_reads(), base.total_writes())
        .total();
    e / b
}

/// Arithmetic mean over per-benchmark normalized values (the paper reports
/// averages over its benchmark set).
pub fn mean(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Workload {
        rfh_workloads::by_name("vectoradd").unwrap()
    }

    #[test]
    fn baseline_counts_are_all_mrf() {
        let c = baseline_counts(&small());
        assert!(c.mrf_read > 0);
        assert_eq!(c.orf_read_private + c.orf_read_shared + c.lrf_read, 0);
    }

    #[test]
    fn sw_counts_preserve_read_totals() {
        let model = EnergyModel::paper();
        let w = small();
        let base = baseline_counts(&w);
        let sw = sw_counts(&w, &AllocConfig::three_level(3, true), &model);
        assert_eq!(
            sw.total_reads(),
            base.total_reads(),
            "SW adds no overhead reads"
        );
        assert!(sw.mrf_read < base.mrf_read);
    }

    #[test]
    fn hw_counts_add_writeback_reads() {
        let w = rfh_workloads::by_name("scalarprod").unwrap();
        let base = baseline_counts(&w);
        let hw = hw_counts(&w, &RfcConfig::two_level(6));
        assert!(
            hw.total_reads() >= base.total_reads(),
            "RFC writebacks add reads"
        );
    }

    #[test]
    fn normalized_energy_below_one_for_sw() {
        let model = EnergyModel::paper();
        let w = small();
        let base = baseline_counts(&w);
        let sw = sw_counts(&w, &AllocConfig::three_level(3, true), &model);
        let n = normalized_energy(&sw, &base, &model, 3);
        assert!(n < 1.0 && n > 0.1, "normalized = {n}");
    }

    #[test]
    #[should_panic(expected = "ORF size out of range")]
    fn normalized_energy_rejects_oversized_orf() {
        // Regression: this used to clamp 9 down to 8 and silently price
        // the configuration with the wrong Table 3 row.
        let model = EnergyModel::paper();
        let base = baseline_counts(&small());
        normalized_energy(&base, &base, &model, 9);
    }

    #[test]
    #[should_panic(expected = "ORF size out of range")]
    fn normalized_energy_rejects_zero_entries() {
        let model = EnergyModel::paper();
        let base = baseline_counts(&small());
        normalized_energy(&base, &base, &model, 0);
    }

    #[test]
    fn mean_is_arithmetic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
