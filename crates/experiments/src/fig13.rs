//! Figure 13: normalized register file access + wire energy for the four
//! organizations — HW (RFC), HW LRF (3-level), SW (ORF), SW LRF Split —
//! across 1–8 upper-level entries per thread.
//!
//! Paper §6.4 headlines: HW best ≈ 34% savings (3 entries), SW two-level ≈
//! 45% (3 entries), HW LRF ≈ 41% (6 entries), SW LRF split ≈ 54% (3
//! entries); the SW three-level design is the overall winner.

use rfh_alloc::AllocConfig;
use rfh_sim::rfc::RfcConfig;
use rfh_testkit::pool::par_map;

use crate::ctx::ExperimentCtx;
use crate::report::{norm, Table};
use crate::runner::{mean, normalized_energy};

/// Normalized energies for one entry count.
#[derive(Debug, Clone, Copy)]
pub struct EnergyPoint {
    /// Entries per thread.
    pub entries: usize,
    /// Hardware RFC (two-level).
    pub hw: f64,
    /// Hardware LRF + RFC (three-level).
    pub hw_lrf: f64,
    /// Software ORF (two-level, all optimizations).
    pub sw: f64,
    /// Software split-LRF + ORF (three-level).
    pub sw_lrf_split: f64,
}

/// The figure data plus the best configuration per scheme.
#[derive(Debug, Clone)]
pub struct Fig13 {
    /// One point per entry count, 1–8.
    pub points: Vec<EnergyPoint>,
}

impl Fig13 {
    /// `(entries, normalized energy)` of the best point for a selector.
    pub fn best(&self, f: impl Fn(&EnergyPoint) -> f64) -> (usize, f64) {
        self.points
            .iter()
            .map(|p| (p.entries, f(p)))
            // total_cmp: a NaN cell (degenerate energy ratio) must sort,
            // not panic the whole sweep.
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("Fig13 has at least one point")
    }
}

/// Runs the energy sweep. The (entries × workload) cells — each covering
/// all four schemes — run in parallel over the `RFH_JOBS` pool with a
/// fixed fold order.
///
/// # Panics
///
/// Panics if any workload fails to execute or verify.
pub fn run(ctx: &ExperimentCtx) -> Fig13 {
    let n = ctx.workloads().len();
    let cells: Vec<(usize, usize)> = (1..=8usize)
        .flat_map(|entries| (0..n).map(move |i| (entries, i)))
        .collect();
    let norms: Vec<[f64; 4]> = par_map(&cells, |&(entries, i)| {
        let b = ctx.baseline(i);
        let model = ctx.model();
        let hw = ctx.hw_counts(i, &RfcConfig::two_level(entries));
        let hw3 = ctx.hw_counts(i, &RfcConfig::three_level(entries));
        [
            normalized_energy(&hw, &b, model, entries),
            normalized_energy(&hw3, &b, model, entries),
            ctx.sw_normalized(i, &AllocConfig::two_level(entries)),
            ctx.sw_normalized(i, &AllocConfig::three_level(entries, true)),
        ]
    });
    let points = norms
        .chunks(n)
        .enumerate()
        .map(|(e, per_entry)| {
            let col = |c: usize| mean(&per_entry.iter().map(|v| v[c]).collect::<Vec<_>>());
            EnergyPoint {
                entries: e + 1,
                hw: col(0),
                hw_lrf: col(1),
                sw: col(2),
                sw_lrf_split: col(3),
            }
        })
        .collect();
    Fig13 { points }
}

/// Also used by §6.4: the split-vs-unified LRF comparison at one size.
/// Baselines and the split-LRF cells come from the shared context cache,
/// so nothing already computed by [`run`] executes again.
///
/// # Panics
///
/// Panics if any workload fails to execute or verify.
pub fn split_vs_unified(ctx: &ExperimentCtx, entries: usize) -> (f64, f64) {
    let idx: Vec<usize> = (0..ctx.workloads().len()).collect();
    let pairs: Vec<(f64, f64)> = par_map(&idx, |&i| {
        (
            ctx.sw_normalized(i, &AllocConfig::three_level(entries, true)),
            ctx.sw_normalized(i, &AllocConfig::three_level(entries, false)),
        )
    });
    let split: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let unified: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    (mean(&split), mean(&unified))
}

/// Renders the figure.
pub fn print(f: &Fig13) -> String {
    let mut t = Table::new(&["entries", "HW", "HW LRF", "SW", "SW LRF Split"]);
    for p in &f.points {
        t.row(&[
            p.entries.to_string(),
            norm(p.hw),
            norm(p.hw_lrf),
            norm(p.sw),
            norm(p.sw_lrf_split),
        ]);
    }
    let (he, hv) = f.best(|p| p.hw);
    let (se, sv) = f.best(|p| p.sw);
    let (h3e, h3v) = f.best(|p| p.hw_lrf);
    let (s3e, s3v) = f.best(|p| p.sw_lrf_split);
    format!(
        "Figure 13 — normalized access+wire energy\n{}\nbest: HW {:.1}% @{he} | HW LRF {:.1}% @{h3e} | SW {:.1}% @{se} | SW LRF Split {:.1}% @{s3e} (savings)\n",
        t.render(),
        (1.0 - hv) * 100.0,
        (1.0 - h3v) * 100.0,
        (1.0 - sv) * 100.0,
        (1.0 - s3v) * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subset() -> Vec<rfh_workloads::Workload> {
        ["vectoradd", "matrixmul", "nbody", "hotspot"]
            .iter()
            .map(|n| rfh_workloads::by_name(n).unwrap())
            .collect()
    }

    #[test]
    fn orderings_match_the_paper() {
        let ws = subset();
        let f = run(&ExperimentCtx::new(&ws));
        assert_eq!(f.points.len(), 8);
        // At every size, SW beats HW and three levels beat two for SW.
        for p in &f.points {
            assert!(
                p.sw < p.hw + 0.02,
                "entries {}: SW {} vs HW {}",
                p.entries,
                p.sw,
                p.hw
            );
            assert!(p.sw_lrf_split <= p.sw + 0.02);
        }
        // All schemes save energy at their best point.
        assert!(f.best(|p| p.hw).1 < 1.0);
        assert!(f.best(|p| p.sw_lrf_split).1 < f.best(|p| p.hw).1);
    }

    #[test]
    fn split_lrf_not_worse_than_unified() {
        let ws = subset();
        let (split, unified) = split_vs_unified(&ExperimentCtx::new(&ws), 3);
        assert!(
            split <= unified + 0.01,
            "split {split} vs unified {unified}"
        );
    }
}
