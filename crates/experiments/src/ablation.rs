//! Ablations of the design choices DESIGN.md calls out.
//!
//! Each row removes or swaps one mechanism of the best configuration
//! (3-entry ORF, split LRF, partial ranges + read operands, Figure 7
//! savings-per-slot priority) and reports the normalized energy:
//!
//! * the §4.3/§4.4 allocation optimizations, individually and together;
//! * split vs unified vs no LRF (§3.2 / §6.3);
//! * Figure 7's savings-per-occupied-slot priority vs raw savings;
//! * the HW cache's allocation policy (write-allocate per §2.2 vs also
//!   allocating read misses).

use rfh_alloc::AllocConfig;
use rfh_sim::rfc::RfcConfig;
use rfh_testkit::pool::par_map;

use crate::ctx::ExperimentCtx;
use crate::report::{norm, pct, Table};
use crate::runner::{mean, normalized_energy};

/// One ablation row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// What was changed relative to the best configuration.
    pub name: String,
    /// Mean normalized energy across workloads.
    pub energy: f64,
}

/// One cell of the ablation matrix: a variant × workload pair.
#[derive(Clone, Copy)]
enum Cell {
    Sw(AllocConfig, usize),
    Hw(RfcConfig, usize),
}

/// Runs the ablation matrix. The (variant × workload) cells run in
/// parallel over the `RFH_JOBS` pool; the best configuration and the HW
/// baseline come from the shared context cache.
///
/// # Panics
///
/// Panics if any workload fails to execute or verify.
pub fn run(ctx: &ExperimentCtx) -> Vec<AblationRow> {
    let n = ctx.workloads().len();
    let best = AllocConfig::three_level(3, true);

    let sw_variants: Vec<(&str, AllocConfig)> = vec![
        ("best (split LRF, both opts, Fig.7 priority)", best),
        (
            "no partial ranges",
            AllocConfig {
                partial_ranges: false,
                ..best
            },
        ),
        (
            "no read operands",
            AllocConfig {
                read_operands: false,
                ..best
            },
        ),
        (
            "neither optimization",
            AllocConfig {
                partial_ranges: false,
                read_operands: false,
                ..best
            },
        ),
        ("unified LRF", AllocConfig::three_level(3, false)),
        ("no LRF (two-level)", AllocConfig::two_level(3)),
        (
            "raw-savings priority",
            AllocConfig {
                occupancy_priority: false,
                ..best
            },
        ),
    ];

    let hw_variants: Vec<(&str, RfcConfig)> = vec![
        ("HW RFC(6), write-allocate (§2.2)", RfcConfig::two_level(6)),
        (
            "HW RFC(6), also allocate read misses",
            RfcConfig {
                allocate_on_read_miss: true,
                ..RfcConfig::two_level(6)
            },
        ),
    ];

    let names: Vec<&str> = sw_variants
        .iter()
        .map(|(n, _)| *n)
        .chain(hw_variants.iter().map(|(n, _)| *n))
        .collect();
    let cells: Vec<Cell> = sw_variants
        .iter()
        .flat_map(|&(_, cfg)| (0..n).map(move |i| Cell::Sw(cfg, i)))
        .chain(
            hw_variants
                .iter()
                .flat_map(|&(_, cfg)| (0..n).map(move |i| Cell::Hw(cfg, i))),
        )
        .collect();
    let energies: Vec<f64> = par_map(&cells, |cell| match *cell {
        Cell::Sw(cfg, i) => ctx.sw_normalized(i, &cfg),
        Cell::Hw(cfg, i) => {
            normalized_energy(&ctx.hw_counts(i, &cfg), &ctx.baseline(i), ctx.model(), 6)
        }
    });
    names
        .iter()
        .zip(energies.chunks(n))
        .map(|(name, per_variant)| AblationRow {
            name: (*name).into(),
            energy: mean(per_variant),
        })
        .collect()
}

/// Renders the ablation table, with deltas against the best configuration.
pub fn print(rows: &[AblationRow]) -> String {
    let best = rows.first().map(|r| r.energy).unwrap_or(1.0);
    let mut t = Table::new(&["variant", "normalized energy", "Δ vs best"]);
    for r in rows {
        t.row(&[r.name.clone(), norm(r.energy), pct(r.energy - best)]);
    }
    format!("Ablations of the best configuration\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removing_mechanisms_never_helps() {
        let workloads: Vec<rfh_workloads::Workload> =
            ["matrixmul", "mandelbrot", "dct8x8", "cp", "needle"]
                .iter()
                .map(|n| rfh_workloads::by_name(n).unwrap())
                .collect();
        let rows = run(&ExperimentCtx::new(&workloads));
        let best = rows[0].energy;
        // Partial ranges can very slightly hurt (the §4.3 greedy
        // sub-optimality the paper acknowledges); everything else must
        // not beat the full design by more than noise.
        for r in &rows[1..7] {
            assert!(
                r.energy >= best - 0.005,
                "{} ({}) beat the full design ({best})",
                r.name,
                r.energy
            );
        }
        // Read operands and the LRF are the load-bearing mechanisms.
        let no_ro = rows
            .iter()
            .find(|r| r.name.contains("read operands"))
            .unwrap();
        assert!(no_ro.energy > best + 0.005);
        let no_lrf = rows.iter().find(|r| r.name.contains("two-level")).unwrap();
        assert!(no_lrf.energy > best + 0.01);
    }
}
