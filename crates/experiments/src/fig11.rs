//! Figure 11: reads and writes of the two-level hierarchy, normalized to
//! the single-level baseline, for 1–8 upper-level entries per thread.
//!
//! Compares the hardware register file cache (HW RFC/MRF) against the
//! software ORF (SW ORF/MRF). Paper §6.1 headlines:
//!
//! * the RFC performs ~20% more reads than baseline traffic at the upper
//!   level (writeback reads);
//! * the SW scheme reduces ORF writes by ~20% relative to the RFC
//!   (no dead-value writes);
//! * SW reduces MRF reads relative to HW for realistic sizes.

use rfh_alloc::AllocConfig;
use rfh_energy::AccessCounts;
use rfh_sim::rfc::RfcConfig;
use rfh_testkit::pool::par_map;

use crate::ctx::ExperimentCtx;
use crate::report::{pct, Table};
use crate::runner::mean;

/// Read/write fractions (of baseline totals) at each level for one scheme
/// and size.
#[derive(Debug, Clone, Copy)]
pub struct Breakdown {
    /// Entries per thread (1–8).
    pub entries: usize,
    /// Upper-level (RFC/ORF) reads over baseline reads.
    pub upper_reads: f64,
    /// MRF reads over baseline reads.
    pub mrf_reads: f64,
    /// Upper-level writes over baseline writes.
    pub upper_writes: f64,
    /// MRF writes over baseline writes.
    pub mrf_writes: f64,
}

impl Breakdown {
    /// Total read traffic relative to baseline (1.0 = no overhead).
    pub fn total_reads(&self) -> f64 {
        self.upper_reads + self.mrf_reads
    }
}

/// The full figure: HW and SW sweeps.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// Hardware RFC results per entry count.
    pub hw: Vec<Breakdown>,
    /// Software ORF results per entry count.
    pub sw: Vec<Breakdown>,
}

fn fold(per_bench: &[(AccessCounts, AccessCounts)], entries: usize) -> Breakdown {
    let upper_reads: Vec<f64> = per_bench
        .iter()
        .map(|(c, b)| {
            (c.orf_read_private + c.orf_read_shared + c.lrf_read) as f64
                / b.total_reads().max(1) as f64
        })
        .collect();
    let mrf_reads: Vec<f64> = per_bench
        .iter()
        .map(|(c, b)| c.mrf_read as f64 / b.total_reads().max(1) as f64)
        .collect();
    let upper_writes: Vec<f64> = per_bench
        .iter()
        .map(|(c, b)| {
            (c.orf_write_private + c.orf_write_shared + c.lrf_write) as f64
                / b.total_writes().max(1) as f64
        })
        .collect();
    let mrf_writes: Vec<f64> = per_bench
        .iter()
        .map(|(c, b)| c.mrf_write as f64 / b.total_writes().max(1) as f64)
        .collect();
    Breakdown {
        entries,
        upper_reads: mean(&upper_reads),
        mrf_reads: mean(&mrf_reads),
        upper_writes: mean(&upper_writes),
        mrf_writes: mean(&mrf_writes),
    }
}

/// Runs the sweep over the context's workloads (use
/// `ExperimentCtx::new(&rfh_workloads::all())` to reproduce the figure).
/// The (entries × workload) cells run in parallel over the `RFH_JOBS`
/// pool; the fold order is fixed, so output is identical at any job count.
///
/// # Panics
///
/// Panics if any workload fails to execute or verify.
pub fn run(ctx: &ExperimentCtx) -> Fig11 {
    let n = ctx.workloads().len();
    let cells: Vec<(usize, usize)> = (1..=8usize)
        .flat_map(|entries| (0..n).map(move |i| (entries, i)))
        .collect();
    let counted: Vec<(AccessCounts, AccessCounts, AccessCounts)> =
        par_map(&cells, |&(entries, i)| {
            let b = ctx.baseline(i);
            let hw = ctx.hw_counts(i, &RfcConfig::two_level(entries));
            let sw = ctx.sw_counts(i, &AllocConfig::two_level(entries));
            (hw, sw, b)
        });
    let mut hw = Vec::new();
    let mut sw = Vec::new();
    for (e, per_entry) in counted.chunks(n).enumerate() {
        let entries = e + 1;
        let hwc: Vec<(AccessCounts, AccessCounts)> =
            per_entry.iter().map(|(h, _, b)| (*h, *b)).collect();
        hw.push(fold(&hwc, entries));
        let swc: Vec<(AccessCounts, AccessCounts)> =
            per_entry.iter().map(|(_, s, b)| (*s, *b)).collect();
        sw.push(fold(&swc, entries));
    }
    Fig11 { hw, sw }
}

/// Renders both panels.
pub fn print(f: &Fig11) -> String {
    let mut t = Table::new(&[
        "entries",
        "HW RFC rd",
        "HW MRF rd",
        "SW ORF rd",
        "SW MRF rd",
        "HW RFC wr",
        "HW MRF wr",
        "SW ORF wr",
        "SW MRF wr",
    ]);
    for (h, s) in f.hw.iter().zip(&f.sw) {
        t.row(&[
            h.entries.to_string(),
            pct(h.upper_reads),
            pct(h.mrf_reads),
            pct(s.upper_reads),
            pct(s.mrf_reads),
            pct(h.upper_writes),
            pct(h.mrf_writes),
            pct(s.upper_writes),
            pct(s.mrf_writes),
        ]);
    }
    format!(
        "Figure 11 — two-level reads/writes (normalized to baseline)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subset() -> Vec<rfh_workloads::Workload> {
        ["vectoradd", "scalarprod", "mandelbrot", "needle"]
            .iter()
            .map(|n| rfh_workloads::by_name(n).unwrap())
            .collect()
    }

    #[test]
    fn hw_has_overhead_reads_and_sw_does_not() {
        let ws = subset();
        let f = run(&ExperimentCtx::new(&ws));
        assert_eq!(f.hw.len(), 8);
        for (h, s) in f.hw.iter().zip(&f.sw) {
            // SW read traffic is conserved exactly.
            assert!(
                (s.total_reads() - 1.0).abs() < 1e-9,
                "SW total reads = {}",
                s.total_reads()
            );
            // HW adds writeback reads at realistic sizes.
            if h.entries >= 2 {
                assert!(h.total_reads() >= 1.0);
            }
        }
        // At the paper's sizes the SW scheme writes the upper level less
        // than the HW scheme (which caches every produced value) — §6.1
        // quotes ~20% fewer ORF writes.
        let h3 = &f.hw[2];
        let s3 = &f.sw[2];
        assert!(s3.upper_writes < h3.upper_writes);
        // The HW scheme's extra reads are pure writeback overhead; its MRF
        // reads can undercut SW on loop-heavy kernels (the RFC persists
        // through ALU loops where the ORF cannot), but its *total* read
        // energy traffic is strictly larger.
        assert!(
            h3.total_reads() > s3.total_reads(),
            "HW {} vs SW {}",
            h3.total_reads(),
            s3.total_reads()
        );
    }

    #[test]
    fn more_entries_capture_more_reads() {
        let ws = subset();
        let f = run(&ExperimentCtx::new(&ws));
        assert!(f.sw[7].upper_reads >= f.sw[0].upper_reads);
        assert!(f.hw[7].mrf_reads <= f.hw[0].mrf_reads + 1e-9);
    }
}
