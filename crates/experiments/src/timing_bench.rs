//! Timing-model throughput: traces per second of the staged
//! stage-combinator engine against the frozen reference engine, plus the
//! multi-SM scaling curve.
//!
//! Every workload's baseline instruction trace is captured once; the
//! benchmark then replays the whole trace suite through the cycle-level
//! scheduler model. Two measurements:
//!
//! * **engines** — single-SM replays under the paper's two-level(8)
//!   configuration, staged vs reference, reported as warp traces per
//!   second (a trace = one warp's dynamic instruction stream);
//! * **scaling** — the same suite distributed across 1/2/4/8 SM contexts
//!   on the staged engine, SMs fanned out over `rfh_testkit::pool`, so
//!   the curve shows how simulation throughput scales with the worker
//!   pool as the modeled chip grows.
//!
//! One untimed warm-up pass precedes the timed repetitions. Timings are
//! wall-clock and machine-dependent, so this experiment is *not* part of
//! `repro all` (whose stdout is diffed byte-for-byte); it has its own
//! `repro timing-bench` arm and JSON schema (`rfh-timing-bench-v1`),
//! with history committed as `BENCH_timing.json`.

use std::time::Instant;

use rfh_sim::exec::{execute_with, ExecMode};
use rfh_sim::machine::MachineConfig;
use rfh_sim::timing::{
    simulate_multi_sm, simulate_timing_with_engine, Engine, MultiSmConfig, TimingConfig,
    TraceCapture, TraceOp,
};
use rfh_workloads::Workload;

/// One captured workload trace, ready to replay.
struct Case {
    name: String,
    traces: Vec<Vec<TraceOp>>,
    warps_per_cta: usize,
}

/// One timing engine's aggregate single-SM measurement.
#[derive(Debug, Clone, Copy)]
pub struct EngineBench {
    /// Which engine ran.
    pub engine: Engine,
    /// Warp traces replayed across all timed repetitions.
    pub traces: u64,
    /// Warp instructions issued across all timed repetitions.
    pub instructions: u64,
    /// Wall-clock seconds for all timed repetitions.
    pub seconds: f64,
}

impl EngineBench {
    /// Warp traces replayed per second.
    pub fn traces_per_sec(&self) -> f64 {
        self.traces as f64 / self.seconds.max(1e-12)
    }
}

/// One point of the multi-SM scaling curve (staged engine).
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    /// SM contexts instantiated.
    pub sms: usize,
    /// Warp traces replayed across all timed repetitions.
    pub traces: u64,
    /// Sum of chip cycles over the suite (deterministic; pins that the
    /// modeled result is job-count independent while the wall time is
    /// not).
    pub chip_cycles: u64,
    /// Wall-clock seconds for all timed repetitions.
    pub seconds: f64,
}

impl ScalePoint {
    /// Warp traces replayed per second.
    pub fn traces_per_sec(&self) -> f64 {
        self.traces as f64 / self.seconds.max(1e-12)
    }
}

/// The benchmark result.
#[derive(Debug, Clone)]
pub struct TimingBench {
    /// Timed repetitions per measurement (after one warm-up pass).
    pub reps: usize,
    /// Number of workloads in the suite.
    pub workloads: usize,
    /// Single-SM per-engine measurements, in [`Engine::Staged`],
    /// [`Engine::Reference`] order.
    pub engines: Vec<EngineBench>,
    /// The multi-SM scaling curve on the staged engine.
    pub scaling: Vec<ScalePoint>,
}

impl TimingBench {
    /// Staged throughput over reference throughput (single-SM).
    pub fn speedup(&self) -> f64 {
        let tps = |e: Engine| {
            self.engines
                .iter()
                .find(|b| b.engine == e)
                .map(EngineBench::traces_per_sec)
                .unwrap_or(0.0)
        };
        tps(Engine::Staged) / tps(Engine::Reference).max(1e-12)
    }
}

/// Captures every workload's baseline trace once.
fn capture(workloads: &[Workload], machine: &MachineConfig) -> Vec<Case> {
    workloads
        .iter()
        .map(|w| {
            let mut cap = TraceCapture::new(machine.clone(), w.launch.threads_per_cta);
            let mut mem = w.memory.clone();
            execute_with(
                &w.kernel,
                &w.launch,
                &mut mem,
                ExecMode::Baseline,
                machine,
                &mut [&mut cap],
            )
            .unwrap_or_else(|e| panic!("{}: trace capture failed: {e}", w.name));
            let warps_per_cta = cap.warps_per_cta();
            Case {
                name: w.name.clone(),
                traces: cap.traces,
                warps_per_cta,
            }
        })
        .collect()
}

/// One single-SM pass over the suite: (traces, instructions).
fn engine_pass(cases: &[Case], config: &TimingConfig, engine: Engine) -> (u64, u64) {
    let mut traces = 0;
    let mut instructions = 0;
    for c in cases {
        let wpc = c.warps_per_cta;
        let r = simulate_timing_with_engine(&c.traces, &|w| w / wpc, config, engine)
            .unwrap_or_else(|e| panic!("{} on {}: {e}", c.name, engine.name()));
        traces += c.traces.len() as u64;
        instructions += r.instructions;
    }
    (traces, instructions)
}

/// One multi-SM pass over the suite: (traces, chip cycles).
fn scale_pass(cases: &[Case], config: &TimingConfig, sms: usize) -> (u64, u64) {
    let mut traces = 0;
    let mut chip_cycles = 0;
    for c in cases {
        let wpc = c.warps_per_cta;
        let cfg = MultiSmConfig::new(sms, config.clone());
        let r = simulate_multi_sm(&c.traces, &|w| w / wpc, &cfg)
            .unwrap_or_else(|e| panic!("{} at {sms} SM(s): {e}", c.name));
        traces += c.traces.len() as u64;
        chip_cycles += r.cycles();
    }
    (traces, chip_cycles)
}

/// Runs the benchmark: capture once, then for each measurement one
/// warm-up pass and `reps` timed passes.
///
/// # Panics
///
/// Panics if any workload fails to capture or simulate.
pub fn run(workloads: &[Workload], reps: usize) -> TimingBench {
    let machine = MachineConfig::paper();
    let cases = capture(workloads, &machine);
    let config = TimingConfig::two_level(8);

    let engines = [Engine::Staged, Engine::Reference]
        .into_iter()
        .map(|engine| {
            engine_pass(&cases, &config, engine);
            let start = Instant::now();
            let (mut traces, mut instructions) = (0, 0);
            for _ in 0..reps {
                let (t, i) = engine_pass(&cases, &config, engine);
                traces += t;
                instructions += i;
            }
            EngineBench {
                engine,
                traces,
                instructions,
                seconds: start.elapsed().as_secs_f64(),
            }
        })
        .collect();

    let scaling = [1, 2, 4, 8]
        .into_iter()
        .map(|sms| {
            scale_pass(&cases, &config, sms);
            let start = Instant::now();
            let (mut traces, mut chip_cycles) = (0, 0);
            for _ in 0..reps {
                let (t, c) = scale_pass(&cases, &config, sms);
                traces += t;
                chip_cycles = c; // identical every rep; keep one
            }
            ScalePoint {
                sms,
                traces,
                chip_cycles,
                seconds: start.elapsed().as_secs_f64(),
            }
        })
        .collect();

    TimingBench {
        reps,
        workloads: workloads.len(),
        engines,
        scaling,
    }
}

/// Renders the result as small human-readable tables plus the speedup.
pub fn print(b: &TimingBench) -> String {
    let mut out = format!(
        "# timing-model throughput ({} workloads, {} reps, two-level(8))\n\
         engine\ttraces\tinstructions\tseconds\tKtraces/s\n",
        b.workloads, b.reps
    );
    for e in &b.engines {
        out.push_str(&format!(
            "{}\t{}\t{}\t{:.3}\t{:.2}\n",
            e.engine.name(),
            e.traces,
            e.instructions,
            e.seconds,
            e.traces_per_sec() / 1e3
        ));
    }
    out.push_str(&format!(
        "speedup (staged/reference): {:.2}x\n\n\
         # multi-SM scaling (staged engine, RFH_JOBS pool)\n\
         sms\ttraces\tchip cycles\tseconds\tKtraces/s\n",
        b.speedup()
    ));
    for s in &b.scaling {
        out.push_str(&format!(
            "{}\t{}\t{}\t{:.3}\t{:.2}\n",
            s.sms,
            s.traces,
            s.chip_cycles,
            s.seconds,
            s.traces_per_sec() / 1e3
        ));
    }
    out
}

/// Serializes the result in the `rfh-timing-bench-v1` schema.
pub fn json(b: &TimingBench) -> String {
    let engines: Vec<String> = b
        .engines
        .iter()
        .map(|e| {
            format!(
                "    {{\"engine\": \"{}\", \"traces\": {}, \"instructions\": {}, \
                 \"seconds\": {:.3}, \"traces_per_second\": {:.0}}}",
                e.engine.name(),
                e.traces,
                e.instructions,
                e.seconds,
                e.traces_per_sec()
            )
        })
        .collect();
    let scaling: Vec<String> = b
        .scaling
        .iter()
        .map(|s| {
            format!(
                "    {{\"sms\": {}, \"traces\": {}, \"chip_cycles\": {}, \
                 \"seconds\": {:.3}, \"traces_per_second\": {:.0}}}",
                s.sms,
                s.traces,
                s.chip_cycles,
                s.seconds,
                s.traces_per_sec()
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"rfh-timing-bench-v1\",\n  \"workloads\": {},\n  \
         \"reps\": {},\n  \"jobs\": {},\n  \"speedup\": {:.3},\n  \
         \"engines\": [\n{}\n  ],\n  \"scaling\": [\n{}\n  ]\n}}\n",
        b.workloads,
        b.reps,
        rfh_testkit::pool::jobs(),
        b.speedup(),
        engines.join(",\n"),
        scaling.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_serializes() {
        // One reduced-suite rep: checks plumbing, not performance.
        let workloads: Vec<Workload> = ["vectoradd", "reduction"]
            .iter()
            .map(|n| rfh_workloads::by_name(n).expect("known workload"))
            .collect();
        let b = run(&workloads, 1);
        assert_eq!(b.engines.len(), 2);
        assert_eq!(
            b.engines[0].instructions, b.engines[1].instructions,
            "both engines must issue the identical instruction stream"
        );
        assert!(b.engines[0].traces > 0);
        assert_eq!(b.scaling.len(), 4);
        assert_eq!(b.scaling[0].sms, 1);
        assert!(
            b.scaling.iter().all(|s| s.chip_cycles > 0),
            "every SM count must simulate the suite"
        );
        let text = print(&b);
        assert!(text.contains("speedup"));
        assert!(text.contains("multi-SM scaling"));
        let j = json(&b);
        assert!(j.contains("\"schema\": \"rfh-timing-bench-v1\""));
        assert!(j.contains("\"engine\": \"staged\""));
        assert!(j.contains("\"engine\": \"reference\""));
        assert!(j.contains("\"sms\": 8"));
    }
}
