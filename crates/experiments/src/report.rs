//! Fixed-width table rendering for experiment output.

/// A simple fixed-width table printer.
///
/// # Examples
///
/// ```
/// use rfh_experiments::report::Table;
/// let mut t = Table::new(&["name", "value"]);
/// t.row(&["alpha".into(), "1.00".into()]);
/// let s = t.render();
/// assert!(s.contains("alpha"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a normalized value with three decimals.
pub fn norm(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align() {
        let mut t = Table::new(&["a", "longheader"]);
        t.row(&["xxxxxx".into(), "1".into()]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("longheader"));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        Table::new(&["a"]).row(&["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.543), "54.3%");
        assert_eq!(norm(0.4567), "0.457");
    }
}
