//! Workload characterization: the benchmark-property table papers print
//! next to Table 1 — dynamic instruction counts, instruction mix, register
//! demand, strand structure, and divergence.

use rfh_isa::Unit;
use rfh_sim::exec::ExecMode;
use rfh_sim::sink::{InstrEvent, TraceSink};
use rfh_testkit::pool::par_map;

use crate::ctx::ExperimentCtx;
use crate::report::{pct, Table};

/// Dynamic characteristics of one workload.
#[derive(Debug, Clone)]
pub struct Character {
    /// Workload name.
    pub name: String,
    /// Suite label.
    pub suite: String,
    /// Dynamic warp instructions.
    pub warp_instructions: u64,
    /// Fraction executed on the private ALU.
    pub alu_frac: f64,
    /// Fraction on the memory port.
    pub mem_frac: f64,
    /// Fraction on the SFU.
    pub sfu_frac: f64,
    /// Fraction on the texture unit.
    pub tex_frac: f64,
    /// Fraction of warp instructions issued with a partial active mask.
    pub divergent_frac: f64,
    /// Registers per thread (static demand).
    pub registers: u16,
    /// Static strand count.
    pub strands: usize,
    /// Mean dynamic strand length in instructions (distance between
    /// strand-end bits along the executed stream).
    pub mean_strand_len: f64,
}

#[derive(Default)]
struct MixSink {
    total: u64,
    alu: u64,
    mem: u64,
    sfu: u64,
    tex: u64,
    divergent: u64,
    strand_ends: u64,
}

impl TraceSink for MixSink {
    fn on_instr(&mut self, ev: &InstrEvent<'_>) {
        self.total += 1;
        match ev.instr.op.unit() {
            Unit::Alu => self.alu += 1,
            Unit::Mem => self.mem += 1,
            Unit::Sfu => self.sfu += 1,
            Unit::Tex => self.tex += 1,
            Unit::Control => {}
        }
        if ev.active_mask.count_ones() < 32 {
            self.divergent += 1;
        }
        if ev.instr.ends_strand {
            self.strand_ends += 1;
        }
    }
}

/// Characterizes every workload (running each to completion), fanning the
/// workloads out over the `RFH_JOBS` pool.
///
/// # Panics
///
/// Panics if any workload fails to execute or verify.
pub fn run(ctx: &ExperimentCtx) -> Vec<Character> {
    par_map(ctx.workloads(), |w| {
        let mut kernel = w.kernel.clone();
        let info = rfh_analysis::strand::mark_strands(&mut kernel);
        let mut sink = MixSink::default();
        w.run_and_verify(ExecMode::Baseline, &kernel, &mut [&mut sink])
            .unwrap_or_else(|e| panic!("{e}"));
        let t = sink.total.max(1) as f64;
        Character {
            name: w.name.clone(),
            suite: w.suite.to_string(),
            warp_instructions: sink.total,
            alu_frac: sink.alu as f64 / t,
            mem_frac: sink.mem as f64 / t,
            sfu_frac: sink.sfu as f64 / t,
            tex_frac: sink.tex as f64 / t,
            divergent_frac: sink.divergent as f64 / t,
            registers: kernel.num_regs(),
            strands: info.strands.len(),
            mean_strand_len: sink.total as f64 / sink.strand_ends.max(1) as f64,
        }
    })
}

/// Renders the characterization table.
pub fn print(rows: &[Character]) -> String {
    let mut t = Table::new(&[
        "benchmark",
        "suite",
        "warp instrs",
        "ALU",
        "MEM",
        "SFU",
        "TEX",
        "divergent",
        "regs",
        "strands",
        "instrs/strand",
    ]);
    for r in rows {
        t.row(&[
            r.name.clone(),
            r.suite.clone(),
            r.warp_instructions.to_string(),
            pct(r.alu_frac),
            pct(r.mem_frac),
            pct(r.sfu_frac),
            pct(r.tex_frac),
            pct(r.divergent_frac),
            r.registers.to_string(),
            r.strands.to_string(),
            format!("{:.1}", r.mean_strand_len),
        ]);
    }
    format!("Workload characterization\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_are_consistent() {
        let ws: Vec<rfh_workloads::Workload> =
            ["mandelbrot", "mri-q", "sortingnetworks", "bicubictexture"]
                .iter()
                .map(|n| rfh_workloads::by_name(n).unwrap())
                .collect();
        let rows = run(&ExperimentCtx::new(&ws));
        for r in &rows {
            let sum = r.alu_frac + r.mem_frac + r.sfu_frac + r.tex_frac;
            assert!(sum <= 1.0 + 1e-9, "{}: {sum}", r.name);
            assert!(r.warp_instructions > 0);
            assert!(r.registers <= 32);
            assert!(r.mean_strand_len >= 1.0);
        }
        let mandel = rows.iter().find(|r| r.name == "mandelbrot").unwrap();
        assert!(mandel.divergent_frac > 0.1, "mandelbrot diverges");
        let mri = rows.iter().find(|r| r.name == "mri-q").unwrap();
        assert!(mri.sfu_frac > 0.05, "mri-q is SFU-heavy");
        let sorting = rows.iter().find(|r| r.name == "sortingnetworks").unwrap();
        assert!(sorting.alu_frac > 0.7, "sorting networks are ALU-dense");
        let tex = rows.iter().find(|r| r.name == "bicubictexture").unwrap();
        assert!(tex.tex_frac > 0.05, "bicubic uses the texture unit");
    }
}
