//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--csv <dir>] [--bench-json <path>] [--exec-bench-json <path>]
//!       [--timing-bench-json <path>] [--jobs N] [experiment...]
//!
//! experiments:
//!   table1 table2 table3 table4   the paper's input tables
//!   fig2                          register value usage patterns
//!   fig11                         two-level read/write breakdown
//!   fig12                         three-level read/write breakdown
//!   fig13                         normalized energy of the four designs
//!   fig14                         energy breakdown of the best design
//!   fig15                         per-benchmark energy
//!   encoding                      §6.5 encoding overhead
//!   perf                          two-level scheduler performance
//!   limit                         §7 limit study
//!   ablation                      design-choice ablations
//!   characterize                  workload characterization table
//!   exec-bench                    executor throughput, SoA vs reference
//!   timing-bench                  timing-model throughput, staged vs reference + SM scaling
//!   hints                         last-use allocation hints, off vs on
//!   all                           everything except the benches and hints (default)
//! ```
//!
//! All experiments share one [`ExperimentCtx`], so baselines, allocated
//! kernels, and access counts are computed once no matter how many
//! experiments reuse them, and the fig13 sweep feeding `encoding` is the
//! same sweep printed by `fig13`. Cells fan out over the `RFH_JOBS` pool;
//! output (including every CSV) is byte-identical at any job count.
//!
//! `--bench-json <path>` writes per-experiment wall times as JSON
//! (schema `rfh-repro-bench-v1`).
//!
//! `hints` is excluded from `all` because it measures the non-default
//! `--hints` allocation path, and `repro all` must keep regenerating the
//! committed default-path goldens byte-for-byte.
//!
//! `exec-bench` is the other experiment excluded from `all`: it reports
//! wall-clock executor throughput (SoA engine vs the frozen reference
//! oracle), which is machine-dependent, and `repro all` output must stay
//! byte-identical across runs for the determinism tests.
//! `--exec-bench-json <path>` additionally writes its result as JSON
//! (schema `rfh-exec-bench-v1`); `RFH_EXEC_BENCH_REPS` overrides the
//! timed repetition count (default 5).
//!
//! `timing-bench` follows the same rules for the cycle-level timing
//! model: staged vs reference traces/sec plus the multi-SM scaling
//! curve, wall-clock and therefore excluded from `all`.
//! `--timing-bench-json <path>` writes the `rfh-timing-bench-v1`
//! document (committed as `BENCH_timing.json`); `RFH_TIMING_BENCH_REPS`
//! overrides the repetition count (default 5).

use std::time::Instant;

use rfh_experiments::{
    ablation, characterize, encoding, exec_bench, fig11, fig12, fig13, fig14, fig15, fig2, hints,
    limit, perf, tables, timing_bench, ExperimentCtx,
};

/// Reports an I/O failure on a user-supplied path and exits with the
/// toolchain's I/O code (1) — bad `--csv`/`--bench-json` destinations are
/// operator input, not toolchain bugs, so they must not panic.
fn io_fail(what: &str, path: &str, e: std::io::Error) -> ! {
    eprintln!("repro: cannot {what} {path}: {e}");
    std::process::exit(1);
}

/// Extracts `--flag <value>` from `args`, removing both tokens.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        let value = args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        });
        args.drain(i..=i + 1);
        value
    })
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--csv <dir>` additionally writes each experiment's data as CSV.
    let csv_dir = take_flag(&mut args, "--csv");
    // `--bench-json <path>` records per-experiment wall times.
    let bench_json = take_flag(&mut args, "--bench-json");
    // `--exec-bench-json <path>` records the exec-bench result as JSON.
    let exec_bench_json = take_flag(&mut args, "--exec-bench-json");
    // `--timing-bench-json <path>` records the timing-bench result.
    let timing_bench_json = take_flag(&mut args, "--timing-bench-json");
    // `--jobs N` overrides the `RFH_JOBS` pool knob; it shares the knob
    // parser, so a malformed value warns loudly and falls back instead of
    // silently diverging from the env-var behavior.
    if let Some(raw) = take_flag(&mut args, "--jobs") {
        if let Some(n) = rfh_testkit::env::parse_positive_usize("--jobs", &raw) {
            std::env::set_var("RFH_JOBS", n.to_string());
        }
    }
    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            io_fail("create csv dir", dir, e);
        }
    }
    let write_csv = |name: &str, contents: String| {
        if let Some(dir) = &csv_dir {
            let path = format!("{dir}/{name}.csv");
            if let Err(e) = std::fs::write(&path, contents) {
                io_fail("write", &path, e);
            }
            eprintln!("[wrote {path}]");
        }
    };
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "table1",
            "table2",
            "table3",
            "table4",
            "characterize",
            "fig2",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "encoding",
            "perf",
            "limit",
            "ablation",
        ]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };

    let workloads = rfh_workloads::all();
    let ctx = ExperimentCtx::new(&workloads);
    // The fig13 sweep is shared between the `fig13` and `encoding`
    // experiments: whichever runs first computes it.
    let mut fig13_cached: Option<fig13::Fig13> = None;
    let mut fig13_sweep = |ctx: &ExperimentCtx| -> fig13::Fig13 {
        fig13_cached.get_or_insert_with(|| fig13::run(ctx)).clone()
    };
    let mut timings: Vec<(String, f64)> = Vec::new();
    let overall = Instant::now();
    for exp in wanted {
        let start = Instant::now();
        let output = match exp {
            "table1" => tables::table1(&workloads),
            "table2" => tables::table2(),
            "table3" => tables::table3(),
            "table4" => tables::table4(),
            "fig2" => {
                let r = fig2::run();
                write_csv("fig2", rfh_experiments::csv::fig2_csv(&r));
                fig2::print(&r)
            }
            "fig11" => {
                let r = fig11::run(&ctx);
                write_csv("fig11", rfh_experiments::csv::fig11_csv(&r));
                fig11::print(&r)
            }
            "fig12" => {
                let r = fig12::run(&ctx);
                write_csv("fig12", rfh_experiments::csv::fig12_csv(&r));
                fig12::print(&r)
            }
            "fig13" => {
                let f = fig13_sweep(&ctx);
                write_csv("fig13", rfh_experiments::csv::fig13_csv(&f));
                let (split, unified) = fig13::split_vs_unified(&ctx, 3);
                format!(
                    "{}split vs unified LRF @3: {:.3} vs {:.3}\n",
                    fig13::print(&f),
                    split,
                    unified
                )
            }
            "fig14" => {
                let r = fig14::run(&ctx);
                write_csv("fig14", rfh_experiments::csv::fig14_csv(&r));
                fig14::print(&r)
            }
            "fig15" => {
                let r = fig15::run(&ctx);
                write_csv("fig15", rfh_experiments::csv::fig15_csv(&r));
                fig15::print(&r)
            }
            "encoding" => {
                let f = fig13_sweep(&ctx);
                let best = f.best(|p| p.sw_lrf_split).1;
                encoding::print(&encoding::run(1.0 - best))
            }
            "perf" => {
                let r = perf::run(&ctx, &[1, 2, 4, 6, 8, 16, 32]);
                write_csv("perf", rfh_experiments::csv::perf_csv(&r));
                perf::print(&r)
            }
            "limit" => {
                let r = limit::run(&ctx);
                write_csv("limit", rfh_experiments::csv::limit_csv(&r));
                limit::print(&r)
            }
            "ablation" => {
                let r = ablation::run(&ctx);
                write_csv("ablation", rfh_experiments::csv::ablation_csv(&r));
                ablation::print(&r)
            }
            "characterize" => {
                let r = characterize::run(&ctx);
                write_csv("characterize", rfh_experiments::csv::characterize_csv(&r));
                characterize::print(&r)
            }
            "hints" => hints::print(&hints::run(&workloads)),
            "exec-bench" => {
                let reps = rfh_testkit::env::usize_knob("RFH_EXEC_BENCH_REPS")
                    .unwrap_or(5)
                    .max(1);
                let b = exec_bench::run(&workloads, reps);
                if let Some(path) = &exec_bench_json {
                    if let Err(e) = std::fs::write(path, exec_bench::json(&b)) {
                        io_fail("write", path, e);
                    }
                    eprintln!("[wrote {path}]");
                }
                exec_bench::print(&b)
            }
            "timing-bench" => {
                let reps = rfh_testkit::env::usize_knob("RFH_TIMING_BENCH_REPS")
                    .unwrap_or(5)
                    .max(1);
                let b = timing_bench::run(&workloads, reps);
                if let Some(path) = &timing_bench_json {
                    if let Err(e) = std::fs::write(path, timing_bench::json(&b)) {
                        io_fail("write", path, e);
                    }
                    eprintln!("[wrote {path}]");
                }
                timing_bench::print(&b)
            }
            other => {
                eprintln!("unknown experiment `{other}` (try: repro all)");
                std::process::exit(2);
            }
        };
        println!("{output}");
        let secs = start.elapsed().as_secs_f64();
        eprintln!("[{exp} took {secs:.1}s]\n");
        timings.push((exp.to_string(), secs));
    }
    if let Some(path) = &bench_json {
        let total = overall.elapsed().as_secs_f64();
        let experiments: Vec<String> = timings
            .iter()
            .map(|(name, secs)| format!("    {{\"name\": \"{name}\", \"seconds\": {secs:.3}}}"))
            .collect();
        let json = format!(
            "{{\n  \"schema\": \"rfh-repro-bench-v1\",\n  \"jobs\": {},\n  \
             \"total_seconds\": {total:.3},\n  \"experiments\": [\n{}\n  ]\n}}\n",
            rfh_testkit::pool::jobs(),
            experiments.join(",\n")
        );
        if let Err(e) = std::fs::write(path, json) {
            io_fail("write", path, e);
        }
        eprintln!("[wrote {path}]");
    }
}
