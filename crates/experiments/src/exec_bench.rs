//! Executor throughput: warp instructions per second of the warp-batched
//! SoA engine against the frozen reference interpreter.
//!
//! Both engines run the full workload suite — every kernel unallocated in
//! baseline mode and allocated (three-level, 3 entries, split LRF) in
//! hierarchy-faithful mode — with a live [`SwCounter`] sink attached, so
//! the measurement covers the whole per-instruction pipeline each engine
//! actually drives: operand fetch, ALU/memory dispatch, fill deposit, and
//! event emission with a resolved access plan. One untimed warm-up pass
//! precedes the timed repetitions.
//!
//! Timings are wall-clock and machine-dependent, so this experiment is
//! *not* part of `repro all` (whose stdout is diffed byte-for-byte by the
//! determinism tests); it has its own `repro exec-bench` arm and JSON
//! schema (`rfh-exec-bench-v1`), with history committed as
//! `BENCH_exec.json`.

use std::time::Instant;

use rfh_alloc::{allocate, AllocConfig};
use rfh_energy::EnergyModel;
use rfh_isa::Kernel;
use rfh_sim::counts::SwCounter;
use rfh_sim::exec::{execute_with_engine, Engine, ExecMode};
use rfh_sim::machine::MachineConfig;
use rfh_workloads::Workload;

/// One engine's aggregate measurement over all repetitions.
#[derive(Debug, Clone, Copy)]
pub struct EngineBench {
    /// Which engine ran.
    pub engine: Engine,
    /// Warp instructions executed across all timed repetitions.
    pub warp_instructions: u64,
    /// Wall-clock seconds for all timed repetitions.
    pub seconds: f64,
}

impl EngineBench {
    /// Warp instructions per second.
    pub fn instrs_per_sec(&self) -> f64 {
        self.warp_instructions as f64 / self.seconds.max(1e-12)
    }
}

/// The benchmark result: one [`EngineBench`] per engine, SoA first.
#[derive(Debug, Clone)]
pub struct ExecBench {
    /// Timed repetitions per engine (after one warm-up pass).
    pub reps: usize,
    /// Number of workloads in the suite.
    pub workloads: usize,
    /// Per-engine measurements, in [`Engine::Soa`], [`Engine::Reference`]
    /// order.
    pub engines: Vec<EngineBench>,
}

impl ExecBench {
    /// SoA throughput over reference throughput.
    pub fn speedup(&self) -> f64 {
        let ips = |e: Engine| {
            self.engines
                .iter()
                .find(|b| b.engine == e)
                .map(EngineBench::instrs_per_sec)
                .unwrap_or(0.0)
        };
        ips(Engine::Soa) / ips(Engine::Reference).max(1e-12)
    }
}

/// The benchmark's execution matrix: every workload in baseline mode
/// (unallocated) and hierarchy-faithful mode (allocated under the paper's
/// best three-level shape).
fn cases(workloads: &[Workload]) -> Vec<(usize, Kernel, ExecMode)> {
    let cfg = AllocConfig::three_level(3, true);
    let mut v = Vec::with_capacity(2 * workloads.len());
    for (i, w) in workloads.iter().enumerate() {
        v.push((i, w.kernel.clone(), ExecMode::Baseline));
        let mut allocated = w.kernel.clone();
        allocate(&mut allocated, &cfg, &EnergyModel::paper())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        v.push((i, allocated, ExecMode::Hierarchy(cfg)));
    }
    v
}

fn one_pass(
    engine: Engine,
    workloads: &[Workload],
    matrix: &[(usize, Kernel, ExecMode)],
    machine: &MachineConfig,
) -> u64 {
    let mut instrs = 0;
    for (i, kernel, mode) in matrix {
        let w = &workloads[*i];
        let mut mem = w.memory.clone();
        let mut counter = SwCounter::default();
        let report = execute_with_engine(
            kernel,
            &w.launch,
            &mut mem,
            *mode,
            machine,
            engine,
            &mut [&mut counter],
        )
        .unwrap_or_else(|e| panic!("{} on {}: {e}", w.name, engine.name()));
        instrs += report.warp_instructions;
    }
    instrs
}

/// Runs the benchmark: for each engine, one warm-up pass over the matrix,
/// then `reps` timed passes.
///
/// # Panics
///
/// Panics if any workload fails to allocate or execute.
pub fn run(workloads: &[Workload], reps: usize) -> ExecBench {
    let machine = MachineConfig::paper();
    let matrix = cases(workloads);
    let engines = [Engine::Soa, Engine::Reference]
        .into_iter()
        .map(|engine| {
            one_pass(engine, workloads, &matrix, &machine);
            let start = Instant::now();
            let mut warp_instructions = 0;
            for _ in 0..reps {
                warp_instructions += one_pass(engine, workloads, &matrix, &machine);
            }
            EngineBench {
                engine,
                warp_instructions,
                seconds: start.elapsed().as_secs_f64(),
            }
        })
        .collect();
    ExecBench {
        reps,
        workloads: workloads.len(),
        engines,
    }
}

/// Renders the result as a small human-readable table plus the speedup.
pub fn print(b: &ExecBench) -> String {
    let mut out = format!(
        "# executor throughput ({} workloads x 2 modes, {} reps)\n\
         engine\twarp instrs\tseconds\tMinstr/s\n",
        b.workloads, b.reps
    );
    for e in &b.engines {
        out.push_str(&format!(
            "{}\t{}\t{:.3}\t{:.2}\n",
            e.engine.name(),
            e.warp_instructions,
            e.seconds,
            e.instrs_per_sec() / 1e6
        ));
    }
    out.push_str(&format!("speedup (soa/reference): {:.2}x\n", b.speedup()));
    out
}

/// Serializes the result in the `rfh-exec-bench-v1` schema.
pub fn json(b: &ExecBench) -> String {
    let engines: Vec<String> = b
        .engines
        .iter()
        .map(|e| {
            format!(
                "    {{\"engine\": \"{}\", \"warp_instructions\": {}, \
                 \"seconds\": {:.3}, \"instructions_per_second\": {:.0}}}",
                e.engine.name(),
                e.warp_instructions,
                e.seconds,
                e.instrs_per_sec()
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"rfh-exec-bench-v1\",\n  \"workloads\": {},\n  \
         \"reps\": {},\n  \"speedup\": {:.3},\n  \"engines\": [\n{}\n  ]\n}}\n",
        b.workloads,
        b.reps,
        b.speedup(),
        engines.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_serializes() {
        // One reduced-suite rep: checks plumbing, not performance.
        let workloads: Vec<Workload> = ["vectoradd", "reduction"]
            .iter()
            .map(|n| rfh_workloads::by_name(n).expect("known workload"))
            .collect();
        let b = run(&workloads, 1);
        assert_eq!(b.engines.len(), 2);
        assert_eq!(
            b.engines[0].warp_instructions, b.engines[1].warp_instructions,
            "both engines must execute the identical instruction stream"
        );
        assert!(b.engines[0].warp_instructions > 0);
        let text = print(&b);
        assert!(text.contains("speedup"));
        let j = json(&b);
        assert!(j.contains("\"schema\": \"rfh-exec-bench-v1\""));
        assert!(j.contains("\"engine\": \"soa\""));
        assert!(j.contains("\"engine\": \"reference\""));
    }
}
