//! §6 performance verification: the two-level warp scheduler loses no
//! performance with 8 active warps.
//!
//! Captures each workload's dynamic trace once and replays it through the
//! cycle-level scheduler with various active-set sizes, reporting runtime
//! normalized to the single-level (all-warps-schedulable) baseline.

use rfh_sim::exec::{execute_with, ExecMode};
use rfh_sim::machine::MachineConfig;
use rfh_sim::timing::{simulate_timing, TimingConfig, TraceCapture};
use rfh_testkit::pool::par_map;

use crate::ctx::ExperimentCtx;
use crate::report::{norm, Table};
use crate::runner::mean;

/// Normalized runtime at one active-set size.
#[derive(Debug, Clone, Copy)]
pub struct PerfPoint {
    /// Active warps in the two-level scheduler.
    pub active_warps: usize,
    /// Mean runtime over workloads, normalized to the single-level
    /// scheduler (1.0 = no slowdown).
    pub normalized_runtime: f64,
}

/// Runs the scheduler sweep. Trace capture fans out per workload and the
/// timing replays fan out per (active-size × workload) cell over the
/// `RFH_JOBS` pool.
///
/// # Panics
///
/// Panics if any workload fails to execute.
pub fn run(ctx: &ExperimentCtx, active_sizes: &[usize]) -> Vec<PerfPoint> {
    let machine = MachineConfig::paper();
    let captures: Vec<TraceCapture> = par_map(ctx.workloads(), |w| {
        let mut cap = TraceCapture::new(machine.clone(), w.launch.threads_per_cta);
        let mut mem = w.memory.clone();
        execute_with(
            &w.kernel,
            &w.launch,
            &mut mem,
            ExecMode::Baseline,
            &machine,
            &mut [&mut cap],
        )
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        cap
    });
    let baselines: Vec<u64> = par_map(&captures, |c| {
        simulate_timing(&c.traces, &|w| c.cta_of(w), &TimingConfig::single_level())
            .unwrap_or_else(|e| panic!("captured trace replay failed: {e}"))
            .cycles
    });

    let n = captures.len();
    let cells: Vec<(usize, usize)> = active_sizes
        .iter()
        .flat_map(|&a| (0..n).map(move |i| (a, i)))
        .collect();
    let ratios: Vec<f64> = par_map(&cells, |&(a, i)| {
        let c = &captures[i];
        let t = simulate_timing(&c.traces, &|w| c.cta_of(w), &TimingConfig::two_level(a))
            .unwrap_or_else(|e| panic!("captured trace replay failed: {e}"));
        t.cycles as f64 / baselines[i] as f64
    });
    active_sizes
        .iter()
        .zip(ratios.chunks(n.max(1)))
        .map(|(&a, per_size)| PerfPoint {
            active_warps: a,
            normalized_runtime: mean(per_size),
        })
        .collect()
}

/// Renders the sweep.
pub fn print(points: &[PerfPoint]) -> String {
    let mut t = Table::new(&["active warps", "normalized runtime"]);
    for p in points {
        t.row(&[p.active_warps.to_string(), norm(p.normalized_runtime)]);
    }
    format!(
        "Two-level scheduler performance (runtime / single-level baseline)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_active_warps_lose_no_performance() {
        let workloads: Vec<rfh_workloads::Workload> =
            ["scalarprod", "matrixmul", "mandelbrot", "cp"]
                .iter()
                .map(|n| rfh_workloads::by_name(n).unwrap())
                .collect();
        let points = run(&ExperimentCtx::new(&workloads), &[2, 8]);
        let at8 = points.iter().find(|p| p.active_warps == 8).unwrap();
        assert!(
            at8.normalized_runtime < 1.03,
            "paper claims no penalty at 8 active warps, got {}",
            at8.normalized_runtime
        );
        let at2 = points.iter().find(|p| p.active_warps == 2).unwrap();
        assert!(at2.normalized_runtime >= at8.normalized_runtime - 1e-9);
    }
}
