//! §7: the register hierarchy limit study.
//!
//! Idealized upper bounds and design variants, each reported as normalized
//! energy (or savings) next to the realistic 3-entry split-LRF design:
//!
//! * **ideal all-LRF** — every access served by the LRF (paper: 87%
//!   savings bound);
//! * **ideal all-ORF(5)** — every access served by a 5-entry ORF (paper:
//!   61%);
//! * **variable ORF allocation (oracle)** — each strand keeps the ORF
//!   size that minimizes its own energy, as if the scheduler partitioned
//!   the physical ORF per warp exactly as requested (paper: ~6%); plus
//!   the 6-active-warp variant that scales upper-level access energy by
//!   6/8 (paper: ~6% more);
//! * **allocating past backward branches** — the HW cache flushing vs not
//!   flushing at backedges (paper: ~5% difference);
//! * **instruction scheduling bounds** — an 8-entry (resp. 5-entry) ORF
//!   charged at 3-entry access energy (paper: 9% and 6%), and the
//!   never-flush idealization in which LRF/ORF contents survive
//!   descheduling (paper: 8%).

use rfh_alloc::AllocConfig;
use rfh_energy::{AccessCounts, EnergyModel};
use rfh_sim::counts::StrandCounter;
use rfh_sim::exec::ExecMode;
use rfh_sim::rfc::RfcConfig;
use rfh_testkit::pool::par_map;

use crate::ctx::ExperimentCtx;
use crate::report::{pct, Table};
use crate::runner::{mean, normalized_energy};

/// Per-strand oracle (§7 "variable allocation of ORF resources"): allocate
/// the kernel once per ORF size, count accesses per strand, and let every
/// strand keep its cheapest size — charging each strand the access energy
/// of the size it chose, as if the scheduler partitioned the physical ORF
/// per warp exactly as requested.
///
/// Allocation decisions depend on the energy model, so only the context's
/// own model may reuse the shared kernel cache; the 6-warp variant
/// allocates fresh.
fn per_strand_oracle(
    ctx: &ExperimentCtx,
    i: usize,
    base: &AccessCounts,
    model: &EnergyModel,
) -> f64 {
    let w = &ctx.workloads()[i];
    let mut per_k: Vec<Vec<AccessCounts>> = Vec::new();
    for k in 1..=8usize {
        let cfg = AllocConfig::three_level(k, true);
        let kernel = if model == ctx.model() {
            ctx.allocated(i, &cfg)
        } else {
            let mut kernel = w.kernel.clone();
            rfh_alloc::allocate(&mut kernel, &cfg, model)
                .unwrap_or_else(|e| panic!("allocation failed: {e}"));
            std::sync::Arc::new(kernel)
        };
        let mut counter = StrandCounter::new(&kernel);
        w.run_and_verify(ExecMode::Hierarchy(cfg), &kernel, &mut [&mut counter])
            .unwrap_or_else(|e| panic!("{e}"));
        per_k.push(counter.per_strand().to_vec());
    }
    let strands = per_k[0].len();
    debug_assert!(per_k.iter().all(|v| v.len() == strands));
    let total: f64 = (0..strands)
        .map(|strand| {
            (1..=8usize)
                .map(|k| model.energy(&per_k[k - 1][strand], k).total())
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    total
        / model
            .baseline_energy(base.total_reads(), base.total_writes())
            .total()
}

/// All limit-study results (normalized energies; lower is better).
#[derive(Debug, Clone, Copy)]
pub struct LimitStudy {
    /// The realistic SW split-LRF design at 3 entries.
    pub realistic: f64,
    /// Every access from the LRF.
    pub ideal_all_lrf: f64,
    /// Every access from a 5-entry ORF.
    pub ideal_all_orf5: f64,
    /// Oracle per-strand ORF sizing.
    pub variable_orf: f64,
    /// Oracle sizing plus 6 active warps (ORF energy scaled by 6/8).
    pub variable_orf_6warps: f64,
    /// HW cache (6 entries) flushing at backward branches.
    pub hw_flush_backedge: f64,
    /// HW cache (6 entries) persisting across backward branches.
    pub hw_keep_backedge: f64,
    /// 8-entry ORF charged at 3-entry energy (scheduling bound).
    pub sched_8_at_3: f64,
    /// 5-entry ORF charged at 3-entry energy.
    pub sched_5_at_3: f64,
    /// Never-flush idealization (strands end only at backward branches).
    pub never_flush: f64,
}

fn ideal_counts_energy(base: &AccessCounts, model: &EnergyModel, lrf: bool) -> f64 {
    let ideal = if lrf {
        AccessCounts {
            lrf_read: base.total_reads(),
            lrf_write: base.total_writes(),
            ..Default::default()
        }
    } else {
        AccessCounts {
            orf_read_private: base.total_reads(),
            orf_write_private: base.total_writes(),
            ..Default::default()
        }
    };
    let entries = if lrf { 1 } else { 5 };
    model.energy(&ideal, entries).total()
        / model
            .baseline_energy(base.total_reads(), base.total_writes())
            .total()
}

/// Charged-at-3-entries energy: counts from a `k`-entry allocation, access
/// energy from the 3-entry table row.
fn charged_at_3(ctx: &ExperimentCtx, i: usize, base: &AccessCounts, k: usize) -> f64 {
    let c = ctx.sw_counts(i, &AllocConfig::three_level(k, true));
    normalized_energy(&c, base, ctx.model(), 3)
}

/// Runs the limit study. Workloads fan out over the `RFH_JOBS` pool; the
/// realistic design, the charged-at-3 bounds, and the HW backedge
/// variants all come from the shared context cache.
///
/// # Panics
///
/// Panics if any workload fails to execute or verify.
pub fn run(ctx: &ExperimentCtx) -> LimitStudy {
    let model = ctx.model();

    // A 6-active-warp model: the upper-level structures shrink to 6/8 of
    // their size; scale their access energies accordingly (idealized).
    let model6 = {
        let mut m = model.clone();
        for row in m.orf_table.iter_mut() {
            row.read_pj *= 0.75;
            row.write_pj *= 0.75;
        }
        m.lrf_read_pj *= 0.75;
        m.lrf_write_pj *= 0.75;
        m
    };

    let idx: Vec<usize> = (0..ctx.workloads().len()).collect();
    let rows: Vec<[f64; 10]> = par_map(&idx, |&i| {
        let base = ctx.baseline(i);

        // Backward-branch variants of the HW cache.
        let keep = ctx.hw_counts(i, &RfcConfig::two_level(6));
        let flush = ctx.hw_counts(
            i,
            &RfcConfig {
                flush_on_backward_branch: true,
                ..RfcConfig::two_level(6)
            },
        );
        let nf_cfg = AllocConfig {
            ideal_no_deschedule_split: true,
            ..AllocConfig::three_level(3, true)
        };
        [
            ctx.sw_normalized(i, &AllocConfig::three_level(3, true)),
            ideal_counts_energy(&base, model, true),
            ideal_counts_energy(&base, model, false),
            // Per-strand oracle ORF sizing (§7), with the 8-active-warp
            // and 6-active-warp energy tables.
            per_strand_oracle(ctx, i, &base, model),
            per_strand_oracle(ctx, i, &base, &model6),
            normalized_energy(&flush, &base, model, 6),
            normalized_energy(&keep, &base, model, 6),
            // Scheduling bounds.
            charged_at_3(ctx, i, &base, 8),
            charged_at_3(ctx, i, &base, 5),
            normalized_energy(&ctx.sw_counts(i, &nf_cfg), &base, model, 3),
        ]
    });
    let col = |c: usize| mean(&rows.iter().map(|r| r[c]).collect::<Vec<_>>());
    LimitStudy {
        realistic: col(0),
        ideal_all_lrf: col(1),
        ideal_all_orf5: col(2),
        variable_orf: col(3),
        variable_orf_6warps: col(4),
        hw_flush_backedge: col(5),
        hw_keep_backedge: col(6),
        sched_8_at_3: col(7),
        sched_5_at_3: col(8),
        never_flush: col(9),
    }
}

/// Renders the study.
pub fn print(l: &LimitStudy) -> String {
    let mut t = Table::new(&["experiment", "normalized energy", "savings"]);
    let rows: Vec<(&str, f64)> = vec![
        ("realistic SW LRF-split @3", l.realistic),
        ("ideal: every access LRF", l.ideal_all_lrf),
        ("ideal: every access ORF(5)", l.ideal_all_orf5),
        ("oracle per-strand ORF sizing", l.variable_orf),
        ("oracle + 6 active warps", l.variable_orf_6warps),
        ("HW RFC(6), flush at backedges", l.hw_flush_backedge),
        ("HW RFC(6), keep across backedges", l.hw_keep_backedge),
        ("sched bound: 8 entries @3-entry cost", l.sched_8_at_3),
        ("sched bound: 5 entries @3-entry cost", l.sched_5_at_3),
        ("never flush on deschedule (ideal)", l.never_flush),
    ];
    for (name, v) in rows {
        t.row(&[name.into(), format!("{v:.3}"), pct(1.0 - v)]);
    }
    format!("§7 — register hierarchy limit study\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subset() -> Vec<rfh_workloads::Workload> {
        ["vectoradd", "scalarprod", "mandelbrot", "backprop"]
            .iter()
            .map(|n| rfh_workloads::by_name(n).unwrap())
            .collect()
    }

    #[test]
    fn bounds_order_correctly() {
        let ws = subset();
        let l = run(&ExperimentCtx::new(&ws));
        // The all-LRF bound is the floor; all-ORF(5) sits between it and
        // the realistic design; idealizations beat the realistic design.
        assert!(l.ideal_all_lrf < l.ideal_all_orf5);
        assert!(l.ideal_all_lrf < l.realistic);
        assert!(1.0 - l.ideal_all_lrf > 0.8, "paper: ~87% bound");
        assert!(l.variable_orf <= l.realistic + 1e-9);
        assert!(l.variable_orf_6warps <= l.variable_orf + 1e-9);
        assert!(l.never_flush <= l.realistic + 1e-9);
        assert!(l.sched_8_at_3 <= l.sched_5_at_3 + 0.02);
        // Keeping RFC contents across backedges can only help the HW
        // scheme.
        assert!(l.hw_keep_backedge <= l.hw_flush_backedge + 1e-9);
    }
}
