//! §7: the register hierarchy limit study.
//!
//! Idealized upper bounds and design variants, each reported as normalized
//! energy (or savings) next to the realistic 3-entry split-LRF design:
//!
//! * **ideal all-LRF** — every access served by the LRF (paper: 87%
//!   savings bound);
//! * **ideal all-ORF(5)** — every access served by a 5-entry ORF (paper:
//!   61%);
//! * **variable ORF allocation (oracle)** — each strand keeps the ORF
//!   size that minimizes its own energy, as if the scheduler partitioned
//!   the physical ORF per warp exactly as requested (paper: ~6%); plus
//!   the 6-active-warp variant that scales upper-level access energy by
//!   6/8 (paper: ~6% more);
//! * **allocating past backward branches** — the HW cache flushing vs not
//!   flushing at backedges (paper: ~5% difference);
//! * **instruction scheduling bounds** — an 8-entry (resp. 5-entry) ORF
//!   charged at 3-entry access energy (paper: 9% and 6%), and the
//!   never-flush idealization in which LRF/ORF contents survive
//!   descheduling (paper: 8%).

use rfh_alloc::AllocConfig;
use rfh_energy::{AccessCounts, EnergyModel};
use rfh_sim::counts::StrandCounter;
use rfh_sim::exec::ExecMode;
use rfh_sim::rfc::RfcConfig;
use rfh_workloads::Workload;

use crate::report::{pct, Table};
use crate::runner::{baseline_counts, hw_counts, mean, normalized_energy, sw_counts};

/// Per-strand oracle (§7 "variable allocation of ORF resources"): allocate
/// the kernel once per ORF size, count accesses per strand, and let every
/// strand keep its cheapest size — charging each strand the access energy
/// of the size it chose, as if the scheduler partitioned the physical ORF
/// per warp exactly as requested.
fn per_strand_oracle(w: &Workload, base: &AccessCounts, model: &EnergyModel) -> f64 {
    let mut per_k: Vec<Vec<AccessCounts>> = Vec::new();
    for k in 1..=8usize {
        let cfg = AllocConfig::three_level(k, true);
        let mut kernel = w.kernel.clone();
        rfh_alloc::allocate(&mut kernel, &cfg, model)
            .unwrap_or_else(|e| panic!("allocation failed: {e}"));
        let mut counter = StrandCounter::new(&kernel);
        w.run_and_verify(ExecMode::Hierarchy(cfg), &kernel, &mut [&mut counter])
            .unwrap_or_else(|e| panic!("{e}"));
        per_k.push(counter.per_strand().to_vec());
    }
    let strands = per_k[0].len();
    debug_assert!(per_k.iter().all(|v| v.len() == strands));
    let total: f64 = (0..strands)
        .map(|strand| {
            (1..=8usize)
                .map(|k| model.energy(&per_k[k - 1][strand], k).total())
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    total
        / model
            .baseline_energy(base.total_reads(), base.total_writes())
            .total()
}

/// All limit-study results (normalized energies; lower is better).
#[derive(Debug, Clone, Copy)]
pub struct LimitStudy {
    /// The realistic SW split-LRF design at 3 entries.
    pub realistic: f64,
    /// Every access from the LRF.
    pub ideal_all_lrf: f64,
    /// Every access from a 5-entry ORF.
    pub ideal_all_orf5: f64,
    /// Oracle per-strand ORF sizing.
    pub variable_orf: f64,
    /// Oracle sizing plus 6 active warps (ORF energy scaled by 6/8).
    pub variable_orf_6warps: f64,
    /// HW cache (6 entries) flushing at backward branches.
    pub hw_flush_backedge: f64,
    /// HW cache (6 entries) persisting across backward branches.
    pub hw_keep_backedge: f64,
    /// 8-entry ORF charged at 3-entry energy (scheduling bound).
    pub sched_8_at_3: f64,
    /// 5-entry ORF charged at 3-entry energy.
    pub sched_5_at_3: f64,
    /// Never-flush idealization (strands end only at backward branches).
    pub never_flush: f64,
}

fn ideal_counts_energy(base: &AccessCounts, model: &EnergyModel, lrf: bool) -> f64 {
    let ideal = if lrf {
        AccessCounts {
            lrf_read: base.total_reads(),
            lrf_write: base.total_writes(),
            ..Default::default()
        }
    } else {
        AccessCounts {
            orf_read_private: base.total_reads(),
            orf_write_private: base.total_writes(),
            ..Default::default()
        }
    };
    let entries = if lrf { 1 } else { 5 };
    model.energy(&ideal, entries).total()
        / model
            .baseline_energy(base.total_reads(), base.total_writes())
            .total()
}

/// Charged-at-3-entries energy: counts from a `k`-entry allocation, access
/// energy from the 3-entry table row.
fn charged_at_3(w: &Workload, base: &AccessCounts, model: &EnergyModel, k: usize) -> f64 {
    let c = sw_counts(w, &AllocConfig::three_level(k, true), model);
    normalized_energy(&c, base, model, 3)
}

/// Runs the limit study.
///
/// # Panics
///
/// Panics if any workload fails to execute or verify.
pub fn run(workloads: &[Workload]) -> LimitStudy {
    let model = EnergyModel::paper();
    let bases: Vec<AccessCounts> = workloads.iter().map(baseline_counts).collect();

    let mut realistic = Vec::new();
    let mut all_lrf = Vec::new();
    let mut all_orf5 = Vec::new();
    let mut var_orf = Vec::new();
    let mut var_orf6 = Vec::new();
    let mut hw_flush = Vec::new();
    let mut hw_keep = Vec::new();
    let mut s8 = Vec::new();
    let mut s5 = Vec::new();
    let mut nf = Vec::new();

    // A 6-active-warp model: the upper-level structures shrink to 6/8 of
    // their size; scale their access energies accordingly (idealized).
    let model6 = {
        let mut m = model.clone();
        for row in m.orf_table.iter_mut() {
            row.read_pj *= 0.75;
            row.write_pj *= 0.75;
        }
        m.lrf_read_pj *= 0.75;
        m.lrf_write_pj *= 0.75;
        m
    };

    for (w, base) in workloads.iter().zip(&bases) {
        realistic.push(normalized_energy(
            &sw_counts(w, &AllocConfig::three_level(3, true), &model),
            base,
            &model,
            3,
        ));
        all_lrf.push(ideal_counts_energy(base, &model, true));
        all_orf5.push(ideal_counts_energy(base, &model, false));

        // Per-strand oracle ORF sizing (§7), with the 8-active-warp and
        // 6-active-warp energy tables.
        var_orf.push(per_strand_oracle(w, base, &model));
        var_orf6.push(per_strand_oracle(w, base, &model6));

        // Backward-branch variants of the HW cache.
        let keep = hw_counts(w, &RfcConfig::two_level(6));
        hw_keep.push(normalized_energy(&keep, base, &model, 6));
        let flush = hw_counts(
            w,
            &RfcConfig {
                flush_on_backward_branch: true,
                ..RfcConfig::two_level(6)
            },
        );
        hw_flush.push(normalized_energy(&flush, base, &model, 6));

        // Scheduling bounds.
        s8.push(charged_at_3(w, base, &model, 8));
        s5.push(charged_at_3(w, base, &model, 5));
        let nf_cfg = AllocConfig {
            ideal_no_deschedule_split: true,
            ..AllocConfig::three_level(3, true)
        };
        nf.push(normalized_energy(
            &sw_counts(w, &nf_cfg, &model),
            base,
            &model,
            3,
        ));
    }

    LimitStudy {
        realistic: mean(&realistic),
        ideal_all_lrf: mean(&all_lrf),
        ideal_all_orf5: mean(&all_orf5),
        variable_orf: mean(&var_orf),
        variable_orf_6warps: mean(&var_orf6),
        hw_flush_backedge: mean(&hw_flush),
        hw_keep_backedge: mean(&hw_keep),
        sched_8_at_3: mean(&s8),
        sched_5_at_3: mean(&s5),
        never_flush: mean(&nf),
    }
}

/// Renders the study.
pub fn print(l: &LimitStudy) -> String {
    let mut t = Table::new(&["experiment", "normalized energy", "savings"]);
    let rows: Vec<(&str, f64)> = vec![
        ("realistic SW LRF-split @3", l.realistic),
        ("ideal: every access LRF", l.ideal_all_lrf),
        ("ideal: every access ORF(5)", l.ideal_all_orf5),
        ("oracle per-strand ORF sizing", l.variable_orf),
        ("oracle + 6 active warps", l.variable_orf_6warps),
        ("HW RFC(6), flush at backedges", l.hw_flush_backedge),
        ("HW RFC(6), keep across backedges", l.hw_keep_backedge),
        ("sched bound: 8 entries @3-entry cost", l.sched_8_at_3),
        ("sched bound: 5 entries @3-entry cost", l.sched_5_at_3),
        ("never flush on deschedule (ideal)", l.never_flush),
    ];
    for (name, v) in rows {
        t.row(&[name.into(), format!("{v:.3}"), pct(1.0 - v)]);
    }
    format!("§7 — register hierarchy limit study\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subset() -> Vec<Workload> {
        ["vectoradd", "scalarprod", "mandelbrot", "backprop"]
            .iter()
            .map(|n| rfh_workloads::by_name(n).unwrap())
            .collect()
    }

    #[test]
    fn bounds_order_correctly() {
        let l = run(&subset());
        // The all-LRF bound is the floor; all-ORF(5) sits between it and
        // the realistic design; idealizations beat the realistic design.
        assert!(l.ideal_all_lrf < l.ideal_all_orf5);
        assert!(l.ideal_all_lrf < l.realistic);
        assert!(1.0 - l.ideal_all_lrf > 0.8, "paper: ~87% bound");
        assert!(l.variable_orf <= l.realistic + 1e-9);
        assert!(l.variable_orf_6warps <= l.variable_orf + 1e-9);
        assert!(l.never_flush <= l.realistic + 1e-9);
        assert!(l.sched_8_at_3 <= l.sched_5_at_3 + 0.02);
        // Keeping RFC contents across backedges can only help the HW
        // scheme.
        assert!(l.hw_keep_backedge <= l.hw_flush_backedge + 1e-9);
    }
}
