//! CSV serialization of experiment results, for downstream plotting.

use crate::{ablation, characterize, fig11, fig12, fig13, fig14, fig15, fig2, limit, perf};

fn line(cells: &[String]) -> String {
    cells.join(",") + "\n"
}

/// Figure 2 as CSV (one row per suite, both panels).
pub fn fig2_csv(rows: &[fig2::SuiteUsage]) -> String {
    let mut out = line(&[
        "suite".into(),
        "read0".into(),
        "read1".into(),
        "read2".into(),
        "read_more".into(),
        "life1".into(),
        "life2".into(),
        "life3".into(),
        "life_more".into(),
        "read_once_within3".into(),
    ]);
    for r in rows {
        out += &line(&[
            r.suite.to_string(),
            r.read_fracs[0].to_string(),
            r.read_fracs[1].to_string(),
            r.read_fracs[2].to_string(),
            r.read_fracs[3].to_string(),
            r.life_fracs[0].to_string(),
            r.life_fracs[1].to_string(),
            r.life_fracs[2].to_string(),
            r.life_fracs[3].to_string(),
            r.read_once_within3.to_string(),
        ]);
    }
    out
}

/// Figure 11 as CSV.
pub fn fig11_csv(f: &fig11::Fig11) -> String {
    let mut out = line(&[
        "entries".into(),
        "hw_upper_reads".into(),
        "hw_mrf_reads".into(),
        "sw_upper_reads".into(),
        "sw_mrf_reads".into(),
        "hw_upper_writes".into(),
        "hw_mrf_writes".into(),
        "sw_upper_writes".into(),
        "sw_mrf_writes".into(),
    ]);
    for (h, s) in f.hw.iter().zip(&f.sw) {
        out += &line(&[
            h.entries.to_string(),
            h.upper_reads.to_string(),
            h.mrf_reads.to_string(),
            s.upper_reads.to_string(),
            s.mrf_reads.to_string(),
            h.upper_writes.to_string(),
            h.mrf_writes.to_string(),
            s.upper_writes.to_string(),
            s.mrf_writes.to_string(),
        ]);
    }
    out
}

/// Figure 12 as CSV.
pub fn fig12_csv(f: &fig12::Fig12) -> String {
    let mut out = line(&[
        "entries".into(),
        "scheme".into(),
        "lrf_reads".into(),
        "orf_reads".into(),
        "mrf_reads".into(),
        "lrf_writes".into(),
        "orf_writes".into(),
        "mrf_writes".into(),
    ]);
    for (scheme, rows) in [("hw", &f.hw), ("sw", &f.sw)] {
        for r in rows {
            out += &line(&[
                r.entries.to_string(),
                scheme.into(),
                r.lrf_reads.to_string(),
                r.orf_reads.to_string(),
                r.mrf_reads.to_string(),
                r.lrf_writes.to_string(),
                r.orf_writes.to_string(),
                r.mrf_writes.to_string(),
            ]);
        }
    }
    out
}

/// Figure 13 as CSV.
pub fn fig13_csv(f: &fig13::Fig13) -> String {
    let mut out = line(&[
        "entries".into(),
        "hw".into(),
        "hw_lrf".into(),
        "sw".into(),
        "sw_lrf_split".into(),
    ]);
    for p in &f.points {
        out += &line(&[
            p.entries.to_string(),
            p.hw.to_string(),
            p.hw_lrf.to_string(),
            p.sw.to_string(),
            p.sw_lrf_split.to_string(),
        ]);
    }
    out
}

/// Figure 14 as CSV.
pub fn fig14_csv(points: &[fig14::Fig14Point]) -> String {
    let mut out = line(&[
        "entries".into(),
        "mrf_wire".into(),
        "mrf_access".into(),
        "orf_wire".into(),
        "orf_access".into(),
        "lrf_wire".into(),
        "lrf_access".into(),
    ]);
    for p in points {
        let b = p.breakdown;
        out += &line(&[
            p.entries.to_string(),
            b.mrf_wire.to_string(),
            b.mrf_access.to_string(),
            b.orf_wire.to_string(),
            b.orf_access.to_string(),
            b.lrf_wire.to_string(),
            b.lrf_access.to_string(),
        ]);
    }
    out
}

/// Figure 15 as CSV.
pub fn fig15_csv(rows: &[fig15::BenchEnergy]) -> String {
    let mut out = line(&[
        "benchmark".into(),
        "suite".into(),
        "normalized_energy".into(),
    ]);
    for r in rows {
        out += &line(&[r.name.clone(), r.suite.clone(), r.energy.to_string()]);
    }
    out
}

/// Scheduler performance sweep as CSV.
pub fn perf_csv(points: &[perf::PerfPoint]) -> String {
    let mut out = line(&["active_warps".into(), "normalized_runtime".into()]);
    for p in points {
        out += &line(&[p.active_warps.to_string(), p.normalized_runtime.to_string()]);
    }
    out
}

/// Limit study as CSV.
pub fn limit_csv(l: &limit::LimitStudy) -> String {
    let mut out = line(&["experiment".into(), "normalized_energy".into()]);
    for (name, v) in [
        ("realistic", l.realistic),
        ("ideal_all_lrf", l.ideal_all_lrf),
        ("ideal_all_orf5", l.ideal_all_orf5),
        ("variable_orf", l.variable_orf),
        ("variable_orf_6warps", l.variable_orf_6warps),
        ("hw_flush_backedge", l.hw_flush_backedge),
        ("hw_keep_backedge", l.hw_keep_backedge),
        ("sched_8_at_3", l.sched_8_at_3),
        ("sched_5_at_3", l.sched_5_at_3),
        ("never_flush", l.never_flush),
    ] {
        out += &line(&[name.into(), v.to_string()]);
    }
    out
}

/// Ablations as CSV.
pub fn ablation_csv(rows: &[ablation::AblationRow]) -> String {
    let mut out = line(&["variant".into(), "normalized_energy".into()]);
    for r in rows {
        out += &line(&[r.name.replace(',', ";"), r.energy.to_string()]);
    }
    out
}

/// Characterization as CSV.
pub fn characterize_csv(rows: &[characterize::Character]) -> String {
    let mut out = line(&[
        "benchmark".into(),
        "suite".into(),
        "warp_instructions".into(),
        "alu".into(),
        "mem".into(),
        "sfu".into(),
        "tex".into(),
        "divergent".into(),
        "registers".into(),
        "strands".into(),
        "instrs_per_strand".into(),
    ]);
    for r in rows {
        out += &line(&[
            r.name.clone(),
            r.suite.clone(),
            r.warp_instructions.to_string(),
            r.alu_frac.to_string(),
            r.mem_frac.to_string(),
            r.sfu_frac.to_string(),
            r.tex_frac.to_string(),
            r.divergent_frac.to_string(),
            r.registers.to_string(),
            r.strands.to_string(),
            r.mean_strand_len.to_string(),
        ]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_shapes_are_rectangular() {
        let ws: Vec<rfh_workloads::Workload> = ["vectoradd", "needle"]
            .iter()
            .map(|n| rfh_workloads::by_name(n).unwrap())
            .collect();
        let ctx = crate::ExperimentCtx::new(&ws);
        let f13 = fig13::run(&ctx);
        let csv = fig13_csv(&f13);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 9, "header + 8 entries");
        let cols = lines[0].split(',').count();
        assert!(lines.iter().all(|l| l.split(',').count() == cols));

        let rows = characterize::run(&ctx);
        let csv = characterize_csv(&rows);
        assert_eq!(csv.lines().count(), 3);
    }
}
