//! Tables 1–4: the paper's inputs, printed for reference and regression.

use rfh_energy::EnergyModel;
use rfh_sim::machine::MachineConfig;
use rfh_workloads::{Suite, Workload};

use crate::report::Table;

/// Table 1: benchmark suites and members.
pub fn table1(workloads: &[Workload]) -> String {
    let mut t = Table::new(&["suite", "benchmarks"]);
    for suite in Suite::ALL {
        let names: Vec<&str> = workloads
            .iter()
            .filter(|w| w.suite == suite)
            .map(|w| w.name.as_str())
            .collect();
        t.row(&[suite.to_string(), names.join(", ")]);
    }
    format!("Table 1 — benchmarks\n{}", t.render())
}

/// Table 2: simulation parameters.
pub fn table2() -> String {
    let m = MachineConfig::paper();
    let mut t = Table::new(&["parameter", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("Execution model", "in-order".into()),
        ("Execution width", format!("{} wide SIMT", m.warp_width)),
        (
            "Register file capacity",
            format!("{} KB", m.register_file_bytes / 1024),
        ),
        (
            "Register bank capacity",
            format!("{} KB", m.register_bank_bytes / 1024),
        ),
        (
            "Shared memory capacity",
            format!("{} KB", m.shared_memory_bytes / 1024),
        ),
        ("ALU latency", format!("{} cycles", m.alu_latency)),
        (
            "Special function latency",
            format!("{} cycles", m.sfu_latency),
        ),
        (
            "Shared memory latency",
            format!("{} cycles", m.shared_mem_latency),
        ),
        (
            "Texture instruction latency",
            format!("{} cycles", m.tex_latency),
        ),
        ("DRAM latency", format!("{} cycles", m.dram_latency)),
    ];
    for (k, v) in rows {
        t.row(&[k.into(), v]);
    }
    format!("Table 2 — simulation parameters\n{}", t.render())
}

/// Table 3: ORF access energy by size.
pub fn table3() -> String {
    let m = EnergyModel::paper();
    let mut t = Table::new(&["entries", "read (pJ)", "write (pJ)"]);
    for row in &m.orf_table {
        t.row(&[
            row.entries.to_string(),
            format!("{:.1}", row.read_pj),
            format!("{:.1}", row.write_pj),
        ]);
    }
    format!(
        "Table 3 — ORF access energy (128-bit, 8 active warps)\n{}",
        t.render()
    )
}

/// Table 4: the remaining model parameters.
pub fn table4() -> String {
    let m = EnergyModel::paper();
    let mut t = Table::new(&["parameter", "value"]);
    let rows: Vec<(&str, String)> = vec![
        (
            "MRF read/write energy",
            format!("{} / {} pJ", m.mrf_read_pj, m.mrf_write_pj),
        ),
        (
            "LRF read/write energy",
            format!("{} / {} pJ", m.lrf_read_pj, m.lrf_write_pj),
        ),
        (
            "MRF distance to private",
            format!("{} mm", m.mrf_to_private_mm),
        ),
        (
            "ORF distance to private",
            format!("{} mm", m.orf_to_private_mm),
        ),
        (
            "LRF distance to private",
            format!("{} mm", m.lrf_to_private_mm),
        ),
        (
            "MRF distance to shared",
            format!("{} mm", m.mrf_to_shared_mm),
        ),
        (
            "ORF distance to shared",
            format!("{} mm", m.orf_to_shared_mm),
        ),
        (
            "Wire capacitance",
            format!("{} fF/mm", m.wire.capacitance_ff_per_mm),
        ),
        ("Voltage", format!("{} V", m.wire.voltage)),
        (
            "Wire energy (32 bits)",
            format!("{:.1} pJ/mm", m.wire.energy_pj(32, 1.0)),
        ),
    ];
    for (k, v) in rows {
        t.row(&[k.into(), v]);
    }
    format!("Table 4 — modeling parameters\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_expected_values() {
        let t2 = table2();
        assert!(t2.contains("128 KB"));
        assert!(t2.contains("400 cycles"));
        let t3 = table3();
        assert!(t3.contains("10.9"));
        let t4 = table4();
        assert!(t4.contains("1.9 pJ/mm"));
        let t1 = table1(&rfh_workloads::all());
        assert!(t1.contains("Rodinia"));
        assert!(t1.contains("vectoradd"));
    }
}
