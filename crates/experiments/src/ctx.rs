//! The shared experiment context: one workload set, one energy model, and
//! memoized per-cell results, so no baseline run, allocation, or counted
//! execution is ever performed twice in one process.
//!
//! Every figure of the evaluation sweeps some cross-product of
//! (workload × configuration), and the cross-products overlap heavily —
//! `fig12`, `fig13`, `fig14`, `fig15`, `limit`, and `ablation` all visit
//! `AllocConfig::three_level(k, true)` cells, and every experiment needs
//! each workload's single-level baseline. [`ExperimentCtx`] caches
//!
//! * baseline access counts per workload,
//! * allocated kernels per (workload, [`AllocConfig`]),
//! * hierarchy-faithful SW access counts per (workload, [`AllocConfig`]),
//! * HW cache access counts per (workload, [`RfcConfig`]),
//!
//! in unbounded [`rfh_rfhd::cache::Store`]s — the same memoization
//! component behind the daemon's kernel cache — so the experiment modules
//! can fan cells out across [`rfh_testkit::pool::par_map`] workers and
//! share one cache with hit/miss statistics for free. All cached
//! quantities are deterministic functions of their key; concurrent
//! computation of the same key is benign (first writer wins, results are
//! identical).

use std::sync::{Arc, OnceLock};

use rfh_alloc::AllocConfig;
use rfh_energy::{AccessCounts, EnergyModel};
use rfh_isa::Kernel;
use rfh_rfhd::cache::{CacheStats, Store};
use rfh_sim::counts::SwCounter;
use rfh_sim::exec::ExecMode;
use rfh_sim::rfc::RfcConfig;
use rfh_workloads::Workload;

use crate::runner;

/// Memoized experiment state over one workload set (see module docs).
pub struct ExperimentCtx<'w> {
    workloads: &'w [Workload],
    model: EnergyModel,
    baselines: Vec<OnceLock<AccessCounts>>,
    kernels: Store<(usize, AllocConfig), Arc<Kernel>>,
    sw: Store<(usize, AllocConfig), AccessCounts>,
    hw: Store<(usize, RfcConfig), AccessCounts>,
}

impl<'w> ExperimentCtx<'w> {
    /// A fresh context over `workloads` with the paper's energy model.
    pub fn new(workloads: &'w [Workload]) -> Self {
        ExperimentCtx {
            workloads,
            model: EnergyModel::paper(),
            baselines: workloads.iter().map(|_| OnceLock::new()).collect(),
            kernels: Store::unbounded(),
            sw: Store::unbounded(),
            hw: Store::unbounded(),
        }
    }

    /// The workload set this context memoizes over.
    pub fn workloads(&self) -> &'w [Workload] {
        self.workloads
    }

    /// The energy model shared by every experiment.
    pub fn model(&self) -> &EnergyModel {
        &self.model
    }

    /// Single-level baseline access counts of workload `i`, computed on
    /// first use and shared by every subsequent caller (and thread).
    ///
    /// # Panics
    ///
    /// As for [`runner::baseline_counts`]; also if `i` is out of range.
    pub fn baseline(&self, i: usize) -> AccessCounts {
        *self.baselines[i].get_or_init(|| runner::baseline_counts(&self.workloads[i]))
    }

    /// The kernel of workload `i` allocated under `cfg` (with this
    /// context's model), memoized per (workload, config).
    ///
    /// # Panics
    ///
    /// Panics if allocation fails — a toolchain bug, as for
    /// [`runner::sw_counts`].
    pub fn allocated(&self, i: usize, cfg: &AllocConfig) -> Arc<Kernel> {
        // The store runs the computation outside its lock, so a slow
        // allocation does not serialize the pool; a concurrent duplicate
        // is benign (the allocator is deterministic, first insert wins).
        self.kernels.get_or_insert_with((i, *cfg), || {
            let mut kernel = self.workloads[i].kernel.clone();
            rfh_alloc::allocate(&mut kernel, cfg, &self.model)
                .unwrap_or_else(|e| panic!("allocation failed: {e}"));
            Arc::new(kernel)
        })
    }

    /// Hierarchy-faithful SW access counts of workload `i` under `cfg`,
    /// memoized per (workload, config). Uses [`Self::allocated`], so the
    /// allocation itself is also shared.
    ///
    /// # Panics
    ///
    /// As for [`runner::sw_counts`].
    pub fn sw_counts(&self, i: usize, cfg: &AllocConfig) -> AccessCounts {
        self.sw.get_or_insert_with((i, *cfg), || {
            let kernel = self.allocated(i, cfg);
            let w = &self.workloads[i];
            let mut counter = SwCounter::default();
            w.run_and_verify(ExecMode::Hierarchy(*cfg), &kernel, &mut [&mut counter])
                .unwrap_or_else(|e| panic!("sw run failed: {e}"));
            counter.counts()
        })
    }

    /// Hardware-cache access counts of workload `i` under `cfg`, memoized
    /// per (workload, config).
    ///
    /// # Panics
    ///
    /// As for [`runner::hw_counts`].
    pub fn hw_counts(&self, i: usize, cfg: &RfcConfig) -> AccessCounts {
        self.hw
            .get_or_insert_with((i, *cfg), || runner::hw_counts(&self.workloads[i], cfg))
    }

    /// Per-benchmark normalized energy of SW counts against the memoized
    /// baseline: `energy(sw(i, cfg)) / energy(baseline(i))`.
    ///
    /// # Panics
    ///
    /// As for [`runner::normalized_energy`] (the ORF size contract) and
    /// [`Self::sw_counts`].
    pub fn sw_normalized(&self, i: usize, cfg: &AllocConfig) -> f64 {
        runner::normalized_energy(
            &self.sw_counts(i, cfg),
            &self.baseline(i),
            &self.model,
            cfg.orf_entries,
        )
    }

    /// Snapshots of the three cell caches' counters, in the order
    /// (allocated kernels, SW counts, HW counts) — observability into how
    /// much sharing a sweep actually got.
    pub fn cache_stats(&self) -> [CacheStats; 3] {
        [self.kernels.stats(), self.sw.stats(), self.hw.stats()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfh_testkit::pool::par_map;

    fn workloads() -> Vec<Workload> {
        ["vectoradd", "scalarprod"]
            .iter()
            .map(|n| rfh_workloads::by_name(n).unwrap())
            .collect()
    }

    #[test]
    fn memoized_results_match_direct_computation() {
        let ws = workloads();
        let ctx = ExperimentCtx::new(&ws);
        let cfg = AllocConfig::three_level(3, true);
        let rfc = RfcConfig::two_level(6);
        for (i, w) in ws.iter().enumerate() {
            assert_eq!(ctx.baseline(i), runner::baseline_counts(w));
            assert_eq!(
                ctx.sw_counts(i, &cfg),
                runner::sw_counts(w, &cfg, ctx.model())
            );
            assert_eq!(ctx.hw_counts(i, &rfc), runner::hw_counts(w, &rfc));
            // Second lookups hit the caches and agree exactly.
            assert_eq!(ctx.baseline(i), ctx.baseline(i));
            assert_eq!(ctx.sw_counts(i, &cfg), ctx.sw_counts(i, &cfg));
        }
        let [kernels, sw, _hw] = ctx.cache_stats();
        assert_eq!(kernels.entries, ws.len(), "one allocation per workload");
        assert!(sw.hits >= ws.len() as u64, "second lookups hit the cache");
        assert_eq!(sw.entries, ws.len());
    }

    #[test]
    fn concurrent_lookups_of_one_cell_agree() {
        let ws = workloads();
        let ctx = ExperimentCtx::new(&ws);
        let cfg = AllocConfig::two_level(3);
        let hits: Vec<(AccessCounts, AccessCounts)> =
            par_map(&[0usize; 16], |_| (ctx.baseline(0), ctx.sw_counts(0, &cfg)));
        assert!(hits.windows(2).all(|p| p[0] == p[1]));
        let [_, sw, _] = ctx.cache_stats();
        assert_eq!(sw.entries, 1, "sixteen lookups share one cell");
    }

    #[test]
    fn allocated_kernels_are_shared() {
        let ws = workloads();
        let ctx = ExperimentCtx::new(&ws);
        let cfg = AllocConfig::three_level(3, true);
        let a = ctx.allocated(0, &cfg);
        let b = ctx.allocated(0, &cfg);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must share the kernel");
    }
}
