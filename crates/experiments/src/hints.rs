//! Compiler-assisted last-use allocation hints (`rfhc --hints`): SW
//! hierarchy accesses and normalized energy with the abstract-interpreter
//! hint pass off vs. on, per workload.
//!
//! The hint pass (`rfh_analysis::absint::last_use`) proves some reads
//! final, so the allocator can release ORF/LRF entries at the last read
//! instead of carrying them to the strand boundary — fewer MRF
//! write-backs on guarded chains the default liveness must keep alive.
//!
//! Deliberately **not** part of `repro all`: the default pipeline must
//! stay byte-identical to the committed goldens, and this arm exists
//! precisely to measure the non-default `--hints` path against it.

use rfh_alloc::AllocConfig;
use rfh_energy::{AccessCounts, EnergyModel};
use rfh_sim::counts::SwCounter;
use rfh_sim::exec::ExecMode;
use rfh_testkit::pool::par_map;
use rfh_workloads::Workload;

use crate::report::{norm, Table};
use crate::runner::{baseline_counts, normalized_energy};

/// One workload's hints-off vs. hints-on comparison.
#[derive(Debug, Clone)]
pub struct HintsRow {
    /// Workload name.
    pub name: String,
    /// Hierarchy access counts with the default allocator.
    pub off: AccessCounts,
    /// Hierarchy access counts with last-use hints enabled.
    pub on: AccessCounts,
    /// Normalized energy with the default allocator.
    pub energy_off: f64,
    /// Normalized energy with last-use hints enabled.
    pub energy_on: f64,
}

impl HintsRow {
    /// MRF accesses (reads + writes) with hints off.
    pub fn mrf_off(&self) -> u64 {
        self.off.mrf_read + self.off.mrf_write
    }

    /// MRF accesses (reads + writes) with hints on.
    pub fn mrf_on(&self) -> u64 {
        self.on.mrf_read + self.on.mrf_write
    }
}

fn counted(w: &Workload, cfg: &AllocConfig, model: &EnergyModel, hints: bool) -> AccessCounts {
    let mut kernel = w.kernel.clone();
    rfh_alloc::allocate_with_hints(&mut kernel, cfg, model, hints)
        .unwrap_or_else(|e| panic!("{}: allocation failed: {e}", w.name));
    let mut counter = SwCounter::default();
    w.run_and_verify(ExecMode::Hierarchy(*cfg), &kernel, &mut [&mut counter])
        .unwrap_or_else(|e| panic!("hinted run failed: {e}"));
    counter.counts()
}

/// Runs every workload under the paper's best configuration twice —
/// default allocation and hint-guided allocation — verifying both runs
/// against the host reference. Cells fan out over the `RFH_JOBS` pool.
///
/// # Panics
///
/// Panics if any workload fails to allocate, execute, or verify — in
/// either mode; the hinted pipeline is held to the same bar as the
/// default one.
pub fn run(workloads: &[Workload]) -> Vec<HintsRow> {
    let cfg = AllocConfig::three_level(3, true);
    let model = EnergyModel::paper();
    let idx: Vec<usize> = (0..workloads.len()).collect();
    par_map(&idx, |&i| {
        let w = &workloads[i];
        let base = baseline_counts(w);
        let off = counted(w, &cfg, &model, false);
        let on = counted(w, &cfg, &model, true);
        HintsRow {
            name: w.name.clone(),
            energy_off: normalized_energy(&off, &base, &model, cfg.orf_entries),
            energy_on: normalized_energy(&on, &base, &model, cfg.orf_entries),
            off,
            on,
        }
    })
}

/// Renders the comparison, one row per workload plus a mean row.
pub fn print(rows: &[HintsRow]) -> String {
    let mut t = Table::new(&[
        "benchmark",
        "MRF accesses off",
        "MRF accesses on",
        "MRF delta",
        "energy off",
        "energy on",
        "energy delta",
    ]);
    for r in rows {
        let (m_off, m_on) = (r.mrf_off(), r.mrf_on());
        t.row(&[
            r.name.clone(),
            m_off.to_string(),
            m_on.to_string(),
            format!("{:+}", m_on as i64 - m_off as i64),
            norm(r.energy_off),
            norm(r.energy_on),
            format!("{:+.2}%", (r.energy_on - r.energy_off) * 100.0),
        ]);
    }
    let mean_off = crate::runner::mean(&rows.iter().map(|r| r.energy_off).collect::<Vec<_>>());
    let mean_on = crate::runner::mean(&rows.iter().map(|r| r.energy_on).collect::<Vec<_>>());
    format!(
        "Last-use hints — hierarchy accesses and energy, `--hints` off vs on\n{}\
         mean normalized energy: {:.4} off, {:.4} on ({:+.2}%)\n",
        t.render(),
        mean_off,
        mean_on,
        (mean_on - mean_off) * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hints_never_hurt_and_help_somewhere() {
        let ws = rfh_workloads::all();
        let rows = run(&ws);
        assert!(rows.len() >= 15);
        for r in &rows {
            assert!(
                r.mrf_on() <= r.mrf_off(),
                "{}: hints must never add MRF accesses ({} -> {})",
                r.name,
                r.mrf_off(),
                r.mrf_on()
            );
            assert!(
                r.energy_on <= r.energy_off + 1e-12,
                "{}: hints must never cost energy ({} -> {})",
                r.name,
                r.energy_off,
                r.energy_on
            );
        }
        assert!(
            rows.iter().any(|r| r.mrf_on() < r.mrf_off()),
            "at least one workload should shed MRF accesses under hints"
        );
    }
}
