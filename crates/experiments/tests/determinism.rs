//! Parallelism must not change results: `repro --csv` output is
//! byte-identical whether the pool runs one worker or eight.
//!
//! This drives the real `repro` binary twice as subprocesses (so each run
//! gets its own `RFH_JOBS` without racing other tests' environment) and
//! compares stdout and every emitted CSV byte-for-byte.

use std::path::PathBuf;
use std::process::Command;

/// Runs `repro --csv <dir> <experiments...>` under `RFH_JOBS=<jobs>` and
/// returns its stdout.
fn run_repro(jobs: &str, dir: &PathBuf, experiments: &[&str]) -> String {
    std::fs::create_dir_all(dir).expect("create csv dir");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("--csv")
        .arg(dir)
        .args(experiments)
        .env("RFH_JOBS", jobs)
        .output()
        .expect("spawn repro");
    assert!(
        out.status.success(),
        "repro failed under RFH_JOBS={jobs}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("repro stdout is UTF-8")
}

#[test]
fn csv_output_is_byte_identical_across_job_counts() {
    // A cross-section of the engine: a (entries × workload) sweep, the
    // breakdown fold, and the shared fig13 sweep feeding `encoding`.
    let experiments = ["fig11", "fig14", "encoding"];
    let base = std::env::temp_dir().join(format!("rfh-determinism-{}", std::process::id()));
    let dir1 = base.join("jobs1");
    let dir8 = base.join("jobs8");

    let stdout1 = run_repro("1", &dir1, &experiments);
    let stdout8 = run_repro("8", &dir8, &experiments);
    assert_eq!(stdout1, stdout8, "stdout differs between RFH_JOBS=1 and 8");

    let mut compared = 0;
    for entry in std::fs::read_dir(&dir1).expect("read csv dir") {
        let name = entry.expect("dir entry").file_name();
        let a = std::fs::read(dir1.join(&name)).expect("read jobs1 csv");
        let b = std::fs::read(dir8.join(&name)).expect("read jobs8 csv");
        assert_eq!(
            a,
            b,
            "{} differs between RFH_JOBS=1 and 8",
            name.to_string_lossy()
        );
        compared += 1;
    }
    assert!(compared >= 2, "expected at least two CSVs, got {compared}");
    std::fs::remove_dir_all(&base).ok();
}
