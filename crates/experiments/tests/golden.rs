//! Golden-file regression tests: regenerate the headline figure CSVs and
//! diff them against the committed `results/*.csv`.
//!
//! Any intentional change to the workloads, the allocator, the energy
//! model, or the (deterministic) data generator shows up here first;
//! refresh the goldens with
//!
//! ```sh
//! cargo run --release -p rfh-experiments --bin repro -- --csv results all
//! ```
//!
//! and review the diff (EXPERIMENTS.md quotes several of these numbers).

use std::path::PathBuf;

use rfh_experiments::{csv, fig11, fig12, fig2, ExperimentCtx};

fn golden(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {}: {e}\n\
             regenerate with: cargo run --release -p rfh-experiments --bin repro -- --csv results all",
            path.display()
        )
    })
}

/// Tolerance-aware CSV comparison: identical shape, text cells equal,
/// numeric cells within a relative tolerance (regeneration is expected to
/// be bit-identical on one platform; the tolerance absorbs cross-platform
/// float formatting noise without letting real regressions through).
fn assert_csv_matches(name: &str, regenerated: &str) {
    let expected = golden(name);
    let exp_lines: Vec<&str> = expected.lines().collect();
    let got_lines: Vec<&str> = regenerated.lines().collect();
    assert_eq!(
        exp_lines.len(),
        got_lines.len(),
        "{name}: row count changed"
    );
    for (row, (e, g)) in exp_lines.iter().zip(&got_lines).enumerate() {
        let ec: Vec<&str> = e.split(',').collect();
        let gc: Vec<&str> = g.split(',').collect();
        assert_eq!(ec.len(), gc.len(), "{name} row {row}: column count changed");
        for (col, (ev, gv)) in ec.iter().zip(&gc).enumerate() {
            match (ev.parse::<f64>(), gv.parse::<f64>()) {
                (Ok(x), Ok(y)) => {
                    let tol = 1e-9 * x.abs().max(1.0);
                    assert!(
                        (x - y).abs() <= tol,
                        "{name} row {row} col {col}: golden {ev} vs regenerated {gv}"
                    );
                }
                _ => assert_eq!(ev, gv, "{name} row {row} col {col}: text cell changed"),
            }
        }
    }
}

#[test]
fn fig2_usage_patterns_match_golden() {
    assert_csv_matches("fig2.csv", &csv::fig2_csv(&fig2::run()));
}

#[test]
fn fig11_two_level_breakdown_matches_golden() {
    let ws = rfh_workloads::all();
    let ctx = ExperimentCtx::new(&ws);
    assert_csv_matches("fig11.csv", &csv::fig11_csv(&fig11::run(&ctx)));
}

#[test]
fn fig12_three_level_breakdown_matches_golden() {
    let ws = rfh_workloads::all();
    let ctx = ExperimentCtx::new(&ws);
    assert_csv_matches("fig12.csv", &csv::fig12_csv(&fig12::run(&ctx)));
}
