//! The headline robustness property: over ≥1000 seeded mutants per
//! corruption layer, every case lands in the trichotomy — *rejected with
//! a structured error*, *validated and architecturally identical*, or
//! *flagged by the placement validator* — with zero panics and zero
//! hangs. Unflagged placement corruptions are executed differentially to
//! prove the validator catches everything that changes results.
//!
//! `RFH_CHAOS_CASES` scales the per-layer budget (CI smoke uses a small
//! value); `RFH_TESTKIT_SEED` replays a specific run.

use rfh_alloc::AllocConfig;
use rfh_chaos::{
    cases_from_env, run_absint_layer, run_byte_layer, run_exec_differential_layer, run_ir_layer,
    run_lint_layer, run_place_layer, seed_from_env,
};
use rfh_workloads::Workload;

fn workload(name: &str) -> Workload {
    rfh_workloads::by_name(name).expect("known workload")
}

fn cfg() -> AllocConfig {
    AllocConfig::three_level(3, true)
}

#[test]
fn byte_layer_trichotomy_holds() {
    let cases = cases_from_env(1000);
    let report = run_byte_layer(
        &workload("vectoradd"),
        &cfg(),
        cases,
        seed_from_env(0xB17E_0001),
    )
    .expect("byte-layer trichotomy violated");
    assert_eq!(
        report.cases, cases,
        "all cases classified — zero panics, zero hangs ({report})"
    );
    assert!(
        report.rejected > cases / 10,
        "byte corruption should often break the syntax: {report}"
    );
    assert!(
        report.identical + report.structured > 0,
        "some mutants should survive to differential execution: {report}"
    );
}

#[test]
fn ir_layer_trichotomy_holds() {
    let cases = cases_from_env(1000);
    let report = run_ir_layer(
        &workload("vectoradd"),
        &cfg(),
        cases,
        seed_from_env(0x12_0002),
    )
    .expect("IR-layer trichotomy violated");
    assert_eq!(report.cases, cases, "{report}");
    assert!(
        report.rejected > 0,
        "structural damage should trip the validator: {report}"
    );
    assert!(
        report.identical > 0,
        "some valid mutants should run identically across modes: {report}"
    );
}

#[test]
fn placement_layer_trichotomy_holds() {
    let cases = cases_from_env(1000);
    let report = run_place_layer(
        &workload("vectoradd"),
        &cfg(),
        cases,
        seed_from_env(0x97AC_0003),
    )
    .expect("placement validator failed to catch a result-changing corruption");
    assert_eq!(report.cases, cases, "{report}");
    assert!(
        report.flagged > cases / 10,
        "placement corruption should usually be flagged: {report}"
    );
}

#[test]
fn placement_layer_holds_under_a_two_level_config_with_loops() {
    // A second hierarchy shape and a loop-heavy kernel: backedges are
    // where cross-strand staleness lives.
    let cases = cases_from_env(1000).min(500);
    let report = run_place_layer(
        &workload("scalarprod"),
        &AllocConfig::two_level(3),
        cases,
        seed_from_env(0x97AC_0004),
    )
    .expect("placement validator failed on the two-level config");
    assert_eq!(report.cases, cases, "{report}");
    assert!(report.flagged > 0, "{report}");
}

#[test]
fn lint_layer_soundness_holds() {
    let cases = cases_from_env(1000);
    let report = run_lint_layer(
        &workload("vectoradd"),
        &cfg(),
        cases,
        seed_from_env(0x117_0005),
    )
    .expect("lint soundness violated: an unflagged mutant misbehaved");
    assert_eq!(report.cases, cases, "{report}");
    assert!(
        report.flagged > 0,
        "IR damage should often be lint-visible: {report}"
    );
    assert!(
        report.identical > 0,
        "benign mutants should stay lint-clean and run identically: {report}"
    );
}

#[test]
fn lint_layer_soundness_holds_on_a_barrier_kernel() {
    // The only barrier-using workload: exercises the divergence and race
    // checks against mutants that perturb guards and control flow.
    let cases = cases_from_env(1000).min(500);
    let report = run_lint_layer(
        &workload("reduction"),
        &cfg(),
        cases,
        seed_from_env(0x117_0006),
    )
    .expect("lint soundness violated on the barrier kernel");
    assert_eq!(report.cases, cases, "{report}");
    assert!(report.flagged > 0, "{report}");
}

#[test]
fn exec_differential_layer_holds() {
    let cases = cases_from_env(1000);
    let report = run_exec_differential_layer(
        &workload("vectoradd"),
        &cfg(),
        cases,
        seed_from_env(0xE7EC_0007),
    )
    .expect("executor engines diverged on a mutant");
    assert_eq!(report.cases, cases, "{report}");
    assert!(
        report.identical > 0,
        "benign mutants should run identically on both engines: {report}"
    );
    assert!(
        report.rejected > 0,
        "structural damage should trip the shared validator: {report}"
    );
}

#[test]
fn exec_differential_layer_holds_on_a_divergent_kernel() {
    // Mandelbrot's data-dependent loop exit is the hardest control-flow
    // shape: mutants perturb reconvergence and guard structure directly.
    let cases = cases_from_env(1000).min(500);
    let report = run_exec_differential_layer(
        &workload("mandelbrot"),
        &AllocConfig::two_level(3),
        cases,
        seed_from_env(0xE7EC_0008),
    )
    .expect("executor engines diverged on a divergent-kernel mutant");
    assert_eq!(report.cases, cases, "{report}");
    assert!(report.identical + report.structured > 0, "{report}");
}

#[test]
fn protocol_layer_trichotomy_holds() {
    // The wire-protocol layer: seeded socket faults against a live
    // in-process daemon. Every case ends in the service trichotomy —
    // well-formed requests succeed, malformed traffic draws a structured
    // error frame or a clean teardown — and after each fault a fresh
    // probe proves the daemon is neither dead nor poisoned. The layer
    // itself also drains the daemon and checks for leaked connections
    // and absorbed panics.
    let cases = cases_from_env(1000);
    let report = rfh_chaos::run_protocol_layer(cases, seed_from_env(0x3070_0009))
        .expect("protocol trichotomy violated — the daemon died, hung, or leaked");
    assert_eq!(
        report.cases, cases,
        "all cases classified — zero daemon deaths ({report})"
    );
    assert!(
        report.identical > 0,
        "well-formed requests should succeed amid the chaos: {report}"
    );
    assert!(
        report.structured > 0,
        "malformed traffic should draw structured error frames: {report}"
    );
    assert!(
        report.rejected > 0,
        "abandoned connections should be torn down cleanly: {report}"
    );
}

#[test]
fn absint_layer_soundness_holds() {
    // Every claim of the abstract interpreter — value intervals, affine
    // forms, warp uniformity, predicate knowledge, reachability, and the
    // last-use read protocol — is checked per lane against the concrete
    // execution of every surviving mutant, and hint-guided allocation
    // must preserve each mutant's semantics exactly.
    let cases = cases_from_env(1000);
    let report = run_absint_layer(
        &workload("vectoradd"),
        &cfg(),
        cases,
        seed_from_env(0xAB51_000A),
    )
    .expect("absint soundness violated: a claim failed on a concrete execution");
    assert_eq!(
        report.cases, cases,
        "all cases classified — zero panics, zero escaped claims ({report})"
    );
    assert!(
        report.identical > 0,
        "benign mutants should execute under the checker and match hinted allocation: {report}"
    );
    assert!(
        report.rejected > 0,
        "structural damage should trip the validator: {report}"
    );
}

#[test]
fn absint_layer_soundness_holds_on_a_divergent_kernel() {
    // Mandelbrot's data-dependent loop exit stresses the widening and
    // divergence tracking hardest: guards flip per lane and per
    // iteration, so over-eager uniformity or interval claims die here.
    let cases = cases_from_env(1000).min(500);
    let report = run_absint_layer(
        &workload("mandelbrot"),
        &AllocConfig::two_level(3),
        cases,
        seed_from_env(0xAB51_000B),
    )
    .expect("absint soundness violated on a divergent-kernel mutant");
    assert_eq!(report.cases, cases, "{report}");
    assert!(report.identical + report.structured > 0, "{report}");
}

#[test]
fn timing_layer_trichotomy_holds() {
    // The timing layer: seeded trace and config mutants replayed through
    // both timing engines. Surviving mutants must agree exactly on the
    // result; malformed ones (unbalanced barriers, starved budgets,
    // degenerate configs) must draw field-for-field identical structured
    // errors, deadlock snapshots included.
    let cases = cases_from_env(1000);
    let report =
        rfh_chaos::run_timing_layer(&workload("vectoradd"), cases, seed_from_env(0x7131_000C))
            .expect("timing engines diverged on a mutant trace");
    assert_eq!(
        report.cases, cases,
        "all cases classified — zero panics, zero hangs ({report})"
    );
    assert!(
        report.identical > 0,
        "benign mutants should replay identically on both engines: {report}"
    );
    assert!(
        report.structured > 0,
        "barrier and budget damage should draw identical runtime errors: {report}"
    );
    assert!(
        report.rejected > 0,
        "degenerate configs should be rejected up front by validation: {report}"
    );
}

#[test]
fn timing_layer_holds_on_a_barrier_kernel() {
    // The barrier-using workload: inserted/removed barriers land in
    // streams that already synchronize, so the mutants probe partial
    // arrival states rather than only all-or-nothing deadlocks.
    let cases = cases_from_env(1000).min(500);
    let report =
        rfh_chaos::run_timing_layer(&workload("reduction"), cases, seed_from_env(0x7131_000D))
            .expect("timing engines diverged on a barrier-kernel mutant");
    assert_eq!(report.cases, cases, "{report}");
    assert!(report.identical + report.structured > 0, "{report}");
}

#[test]
fn chaos_runs_are_deterministic_per_seed() {
    let w = workload("vectoradd");
    let a = run_byte_layer(&w, &cfg(), 50, 7).expect("run a");
    let b = run_byte_layer(&w, &cfg(), 50, 7).expect("run b");
    assert_eq!(a, b, "same seed must reproduce the same classification");
    let c = run_byte_layer(&w, &cfg(), 50, 8).expect("run c");
    assert_ne!(a, c, "different seeds should explore different mutants");
}
