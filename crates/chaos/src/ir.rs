//! Structural IR mutators.
//!
//! These model corruption *between* the parser and the allocator: a
//! structurally damaged kernel object (from a buggy front-end pass, say).
//! The contract is that `rfh_isa::validate` — and therefore
//! `rfh_alloc::allocate` — either rejects the kernel with a structured
//! error or the kernel is genuinely valid, in which case allocation and
//! hierarchy-faithful execution must preserve its (new) semantics
//! exactly.

use rfh_isa::{BlockId, Kernel};
use rfh_testkit::prelude::*;

/// Applies 1–2 random structural corruptions to `kernel` in place.
pub fn mutate_kernel(kernel: &mut Kernel, rng: &mut SmallRng) {
    let rounds = rng.gen_range(1usize..=2);
    for _ in 0..rounds {
        mutate_once(kernel, rng);
    }
}

/// Picks a uniformly random instruction position, or `None` for an empty
/// kernel.
fn pick_instr(kernel: &Kernel, rng: &mut SmallRng) -> Option<(usize, usize)> {
    let total = kernel.instr_count();
    if total == 0 {
        return None;
    }
    let mut n = rng.gen_range(0..total);
    for (b, block) in kernel.blocks.iter().enumerate() {
        if n < block.instrs.len() {
            return Some((b, n));
        }
        n -= block.instrs.len();
    }
    None
}

fn mutate_once(kernel: &mut Kernel, rng: &mut SmallRng) {
    let Some((b, i)) = pick_instr(kernel, rng) else {
        return;
    };
    match rng.gen_range(0u32..5) {
        // Drop an instruction (may remove a terminator or a definition
        // another instruction depends on).
        0 => {
            kernel.blocks[b].instrs.remove(i);
        }
        // Duplicate an instruction in place (duplicated terminators put
        // code after an `exit`/`bra`; duplicated ALU ops are often
        // harmless).
        1 => {
            let instr = kernel.blocks[b].instrs[i].clone();
            kernel.blocks[b].instrs.insert(i, instr);
        }
        // Retarget a branch to a random block — occasionally out of
        // range, which validation must reject rather than index past the
        // block list.
        2 => {
            let n_blocks = kernel.blocks.len() as u32;
            let branches: Vec<(usize, usize)> = kernel
                .blocks
                .iter()
                .enumerate()
                .flat_map(|(bb, blk)| {
                    blk.instrs
                        .iter()
                        .enumerate()
                        .filter(|(_, ins)| ins.target.is_some())
                        .map(move |(ii, _)| (bb, ii))
                })
                .collect();
            if let Some(&(bb, ii)) = branches.get(rng.gen_range(0..branches.len().max(1))) {
                let t = rng.gen_range(0..n_blocks + 2);
                kernel.blocks[bb].instrs[ii].target = Some(BlockId::new(t));
            }
        }
        // Swap the first two source operands (annotation arrays stay
        // parallel, so this is structurally valid but semantically
        // different for non-commutative ops).
        3 => {
            let instr = &mut kernel.blocks[b].instrs[i];
            if instr.srcs.len() >= 2 {
                instr.srcs.swap(0, 1);
            }
        }
        // Toggle a strand-end bit (stale strand markings from a buggy
        // pass; the allocator re-marks strands, so this must never change
        // results).
        _ => {
            let instr = &mut kernel.blocks[b].instrs[i];
            instr.ends_strand = !instr.ends_strand;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_is_deterministic_and_usually_changes_the_kernel() {
        let kernel = rfh_isa::parse_kernel(
            ".kernel t\nBB0:\n  mov r0, %tid.x\n  iadd r1 r0, 1\n  st.global r0, r1\n  exit\n",
        )
        .unwrap();
        let mut changed = 0;
        for seed in 0..50u64 {
            let mut a = kernel.clone();
            let mut b = kernel.clone();
            mutate_kernel(&mut a, &mut SmallRng::seed_from_u64(seed));
            mutate_kernel(&mut b, &mut SmallRng::seed_from_u64(seed));
            assert_eq!(a, b, "seed {seed} not deterministic");
            if a != kernel {
                changed += 1;
            }
        }
        assert!(changed > 30, "only {changed}/50 mutants differed");
    }
}
