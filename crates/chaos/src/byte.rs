//! Byte-level mutators over the textual assembly format.
//!
//! These model corruption *below* the parser: truncated files, garbage
//! bytes (including sequences that are not valid UTF-8 — the harness
//! passes them through the same lossy decode a file reader would),
//! bit flips, deleted spans, duplicated lines, and spliced tokens. The
//! parser's contract is that any such input produces `IsaError::Parse`
//! or a kernel that survives validation — never a panic.

use rfh_testkit::prelude::*;

/// Applies 1–3 random byte-level corruptions to `text` and returns the
/// result decoded back to a string (lossily, since mutations can destroy
/// UTF-8 validity — exactly what a file reader would hand the parser).
pub fn mutate_text(text: &str, rng: &mut SmallRng) -> String {
    let mut bytes = text.as_bytes().to_vec();
    let rounds = rng.gen_range(1usize..=3);
    for _ in 0..rounds {
        mutate_once(&mut bytes, rng);
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

fn mutate_once(bytes: &mut Vec<u8>, rng: &mut SmallRng) {
    if bytes.is_empty() {
        bytes.push(rng.gen::<u8>());
        return;
    }
    match rng.gen_range(0u32..6) {
        // Truncation: cut the tail at an arbitrary byte (possibly inside
        // a UTF-8 sequence or mid-token).
        0 => {
            let at = rng.gen_range(0..bytes.len());
            bytes.truncate(at);
        }
        // Garbage splice: insert 1–8 arbitrary bytes anywhere.
        1 => {
            let at = rng.gen_range(0..=bytes.len());
            let len = rng.gen_range(1usize..=8);
            let garbage: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
            bytes.splice(at..at, garbage);
        }
        // Bit flip in place.
        2 => {
            let at = rng.gen_range(0..bytes.len());
            bytes[at] ^= 1 << rng.gen_range(0u32..8);
        }
        // Delete a short span.
        3 => {
            let a = rng.gen_range(0..bytes.len());
            let b = (a + rng.gen_range(1usize..=16)).min(bytes.len());
            bytes.drain(a..b);
        }
        // Duplicate one line after itself (e.g. a second `.kernel` header
        // or a repeated label).
        4 => {
            let starts: Vec<usize> = std::iter::once(0)
                .chain(
                    bytes
                        .iter()
                        .enumerate()
                        .filter(|(_, b)| **b == b'\n')
                        .map(|(i, _)| i + 1),
                )
                .filter(|&s| s < bytes.len())
                .collect();
            if let Some(&start) = starts.get(rng.gen_range(0..starts.len().max(1))) {
                let end = bytes[start..]
                    .iter()
                    .position(|b| *b == b'\n')
                    .map(|p| start + p + 1)
                    .unwrap_or(bytes.len());
                let line: Vec<u8> = bytes[start..end].to_vec();
                bytes.splice(end..end, line);
            }
        }
        // Token splice: copy a short span to a random position, stitching
        // together fragments of valid syntax.
        _ => {
            let a = rng.gen_range(0..bytes.len());
            let b = (a + rng.gen_range(1usize..=12)).min(bytes.len());
            let tok: Vec<u8> = bytes[a..b].to_vec();
            let at = rng.gen_range(0..=bytes.len());
            bytes.splice(at..at, tok);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let text = ".kernel t\nBB0:\n  iadd r1 r0, 1\n  exit\n";
        let a = mutate_text(text, &mut SmallRng::seed_from_u64(42));
        let b = mutate_text(text, &mut SmallRng::seed_from_u64(42));
        let c = mutate_text(text, &mut SmallRng::seed_from_u64(43));
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should (almost always) differ");
    }

    #[test]
    fn mutations_cover_non_utf8_garbage() {
        // Over many seeds, at least one splice must have produced bytes
        // that required lossy decoding (replacement character present).
        let text = ".kernel t\nBB0:\n  iadd r1 r0, 1\n  exit\n";
        let found = (0..200u64)
            .any(|s| mutate_text(text, &mut SmallRng::seed_from_u64(s)).contains('\u{FFFD}'));
        assert!(found, "garbage splices never produced invalid UTF-8");
    }
}
