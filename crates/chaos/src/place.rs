//! Placement-annotation mutators.
//!
//! These model corruption *after* allocation: a bug in the allocator (or
//! a bit flip in a stored kernel) that changes where operands are claimed
//! to live without changing the program. The contract is soundness of
//! `rfh_alloc::validate_placements`: any placement corruption that would
//! change execution results must be flagged; corruptions it accepts must
//! be semantically transparent (the hierarchy only moves values around).

use rfh_isa::{Kernel, ReadLoc, Slot, WriteLoc};
use rfh_testkit::prelude::*;

/// Applies 1–2 random placement corruptions to an allocated `kernel`,
/// staying within (or one past) `orf_entries` so both in-range and
/// out-of-range annotations are exercised.
pub fn mutate_placements(kernel: &mut Kernel, orf_entries: usize, rng: &mut SmallRng) {
    let rounds = rng.gen_range(1usize..=2);
    for _ in 0..rounds {
        mutate_once(kernel, orf_entries, rng);
    }
}

fn random_entry(orf_entries: usize, rng: &mut SmallRng) -> u8 {
    // Mostly in range, occasionally one past the end.
    rng.gen_range(0..=orf_entries.min(254)) as u8
}

fn random_bank(rng: &mut SmallRng) -> Option<Slot> {
    match rng.gen_range(0u32..4) {
        0 => None,
        1 => Some(Slot::A),
        2 => Some(Slot::B),
        _ => Some(Slot::C),
    }
}

fn random_read_loc(orf_entries: usize, rng: &mut SmallRng) -> ReadLoc {
    match rng.gen_range(0u32..4) {
        0 => ReadLoc::Mrf,
        1 => ReadLoc::Orf(random_entry(orf_entries, rng)),
        2 => ReadLoc::Lrf(random_bank(rng)),
        _ => ReadLoc::MrfFillOrf(random_entry(orf_entries, rng)),
    }
}

fn random_write_loc(orf_entries: usize, rng: &mut SmallRng) -> WriteLoc {
    match rng.gen_range(0u32..3) {
        0 => WriteLoc::Mrf,
        1 => WriteLoc::Orf {
            entry: random_entry(orf_entries, rng),
            also_mrf: rng.gen::<bool>(),
        },
        _ => WriteLoc::Lrf {
            bank: random_bank(rng),
            also_mrf: rng.gen::<bool>(),
        },
    }
}

fn pick_instr(kernel: &Kernel, rng: &mut SmallRng) -> Option<(usize, usize)> {
    let total = kernel.instr_count();
    if total == 0 {
        return None;
    }
    let mut n = rng.gen_range(0..total);
    for (b, block) in kernel.blocks.iter().enumerate() {
        if n < block.instrs.len() {
            return Some((b, n));
        }
        n -= block.instrs.len();
    }
    None
}

fn mutate_once(kernel: &mut Kernel, orf_entries: usize, rng: &mut SmallRng) {
    match rng.gen_range(0u32..5) {
        // Flip the write location of one instruction.
        0 => {
            if let Some((b, i)) = pick_instr(kernel, rng) {
                kernel.blocks[b].instrs[i].write_loc = random_write_loc(orf_entries, rng);
            }
        }
        // Drop the dual-MRF bit on one upper-level write (a live-out value
        // silently loses its MRF copy).
        1 => {
            let sites: Vec<(usize, usize)> = kernel
                .blocks
                .iter()
                .enumerate()
                .flat_map(|(b, blk)| {
                    blk.instrs
                        .iter()
                        .enumerate()
                        .filter(|(_, ins)| {
                            matches!(
                                ins.write_loc,
                                WriteLoc::Orf { also_mrf: true, .. }
                                    | WriteLoc::Lrf { also_mrf: true, .. }
                            )
                        })
                        .map(move |(i, _)| (b, i))
                })
                .collect();
            if let Some(&(b, i)) = sites.get(rng.gen_range(0..sites.len().max(1))) {
                match &mut kernel.blocks[b].instrs[i].write_loc {
                    WriteLoc::Orf { also_mrf, .. } | WriteLoc::Lrf { also_mrf, .. } => {
                        *also_mrf = false
                    }
                    WriteLoc::Mrf => {}
                }
            }
        }
        // Flip one read location.
        2 => {
            if let Some((b, i)) = pick_instr(kernel, rng) {
                let instr = &mut kernel.blocks[b].instrs[i];
                if !instr.read_locs.is_empty() {
                    let slot = rng.gen_range(0..instr.read_locs.len());
                    instr.read_locs[slot] = random_read_loc(orf_entries, rng);
                }
            }
        }
        // Shift every ORF index by one (wholesale mis-indexing; reads and
        // writes shift together, so values land in — and are sought at —
        // the wrong entries).
        3 => {
            for block in &mut kernel.blocks {
                for instr in &mut block.instrs {
                    if let WriteLoc::Orf { entry, .. } = &mut instr.write_loc {
                        *entry = entry.saturating_add(1);
                    }
                    for rl in &mut instr.read_locs {
                        match rl {
                            ReadLoc::Orf(e) | ReadLoc::MrfFillOrf(e) => *e = e.saturating_add(1),
                            ReadLoc::Mrf | ReadLoc::Lrf(_) => {}
                        }
                    }
                }
            }
        }
        // Swap the read locations of two operand slots.
        _ => {
            if let Some((b, i)) = pick_instr(kernel, rng) {
                let instr = &mut kernel.blocks[b].instrs[i];
                if instr.read_locs.len() >= 2 {
                    let a = rng.gen_range(0..instr.read_locs.len());
                    let c = rng.gen_range(0..instr.read_locs.len());
                    instr.read_locs.swap(a, c);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let mut kernel = rfh_isa::parse_kernel(
            ".kernel t\nBB0:\n  mov r0, %tid.x\n  iadd r1 r0, 1\n  iadd r2 r1, r1\n  st.global r0, r2\n  exit\n",
        )
        .unwrap();
        rfh_alloc::allocate(
            &mut kernel,
            &rfh_alloc::AllocConfig::two_level(3),
            &rfh_energy::EnergyModel::paper(),
        )
        .unwrap();
        for seed in 0..20u64 {
            let mut a = kernel.clone();
            let mut b = kernel.clone();
            mutate_placements(&mut a, 3, &mut SmallRng::seed_from_u64(seed));
            mutate_placements(&mut b, 3, &mut SmallRng::seed_from_u64(seed));
            assert_eq!(a, b, "seed {seed} not deterministic");
        }
    }
}
