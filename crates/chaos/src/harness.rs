//! The trichotomy driver.
//!
//! Each `run_*_layer` function fuzzes one pipeline layer with seeded
//! mutants of a workload's kernel and classifies every case:
//!
//! * **rejected** — a structured error from parse/validate/allocate;
//! * **identical** — the mutant passed validation and differential
//!   execution (baseline vs. hierarchy-faithful, or mutant vs. reference
//!   for placements) produced bit-identical memory images;
//! * **structured** — the mutant executes to a structured runtime error
//!   (out-of-bounds access, instruction budget) *in both modes*;
//! * **flagged** — placement layer only: `validate_placements` caught the
//!   corruption;
//! * **unchanged** — the mutation happened to be a no-op.
//!
//! Anything else — a panic, an execution-mode asymmetry, or an unflagged
//! placement corruption that changes results — aborts the run with a
//! message naming the case seed, replayable via `RFH_TESTKIT_SEED`.
//!
//! Cases fan out over the `RFH_JOBS` worker pool. Each case's seed is
//! derived up front from the base seed, and outcomes are folded in case
//! order, so reports and failure messages are identical at any job count.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use rfh_alloc::{allocate, allocate_with_hints, validate_placements, AllocConfig};
use rfh_analysis::absint::{self, last_use};
use rfh_analysis::strand::mark_strands;
use rfh_energy::EnergyModel;
use rfh_isa::{InstrRef, Kernel, Operand};
use rfh_sim::counts::SwCounter;
use rfh_sim::exec::{execute_with, execute_with_engine, Engine, ExecMode};
use rfh_sim::machine::MachineConfig;
use rfh_sim::sink::{InstrEvent, TraceSink};
use rfh_testkit::pool::{par_map, par_map_with_jobs};
use rfh_testkit::prelude::*;
use rfh_workloads::Workload;

use crate::{byte, ir, place, trace, wire};

/// Aggregate classification of one layer's mutant population.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ChaosReport {
    /// Total mutants generated.
    pub cases: usize,
    /// Rejected with a structured error before execution.
    pub rejected: usize,
    /// Validated and differentially identical.
    pub identical: usize,
    /// Structured runtime error, symmetric across execution modes.
    pub structured: usize,
    /// Caught by `validate_placements` (placement layer only).
    pub flagged: usize,
    /// The mutation was a no-op on the artifact.
    pub unchanged: usize,
}

impl std::fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cases: {} rejected, {} identical, {} structured, {} flagged, {} unchanged",
            self.cases,
            self.rejected,
            self.identical,
            self.structured,
            self.flagged,
            self.unchanged
        )
    }
}

enum CaseOutcome {
    Rejected,
    Identical,
    Structured,
    Flagged,
    Unchanged,
}

/// Per-layer case budget: `RFH_CHAOS_CASES` if set, else `default_cases`.
/// A malformed value warns loudly (see `rfh_testkit::env`) and falls back.
pub fn cases_from_env(default_cases: usize) -> usize {
    rfh_testkit::env::usize_knob("RFH_CHAOS_CASES").unwrap_or(default_cases)
}

/// Base seed: `RFH_TESTKIT_SEED` if set, else `default_seed`. Accepts the
/// `0x…` hex form that failure reports print, so seeds paste back in
/// verbatim.
pub fn seed_from_env(default_seed: u64) -> u64 {
    rfh_testkit::env::u64_knob("RFH_TESTKIT_SEED").unwrap_or(default_seed)
}

/// Derives the per-case seed stream: every case's seed is a deterministic
/// function of the base seed alone, so cases can run in parallel over the
/// `RFH_JOBS` pool and still replay individually via `RFH_TESTKIT_SEED`.
fn case_seeds(base_seed: u64, cases: usize) -> Vec<u64> {
    let mut seeder = SplitMix64::new(base_seed);
    (0..cases).map(|_| seeder.next_u64()).collect()
}

/// Folds parallel case outcomes into a report in case order, so the first
/// violation reported is always the lowest-numbered case regardless of
/// which worker found it.
fn fold_cases(
    seeds: &[u64],
    outcomes: Vec<std::thread::Result<Result<CaseOutcome, String>>>,
    layer: &str,
) -> Result<ChaosReport, String> {
    let mut report = ChaosReport::default();
    for (case, caught) in outcomes.into_iter().enumerate() {
        record(&mut report, caught, layer, case, seeds[case])?;
    }
    Ok(report)
}

/// Mutant executions are bounded: a corrupted kernel may loop forever, and
/// the contract is a structured `InstructionBudget` error, not a hang.
fn bounded_machine() -> MachineConfig {
    let mut m = MachineConfig::paper();
    m.max_warp_instructions = 50_000;
    m
}

/// Invariant check on the canonical access resolver: for every
/// instruction of a (possibly corrupted) kernel, `AccessPlan::resolve`
/// must be panic-free and self-consistent with the raw annotations —
/// one read per register source, one written word per destination
/// register, and MRF-write parity with the `WriteLoc` annotation. Every
/// counting and validation layer now consumes the plan, so a resolver
/// that drifts under corruption would silently skew all of them at once.
fn check_plan_sanity(kernel: &Kernel) -> Result<(), String> {
    let mut plan = rfh_isa::AccessPlan::new();
    for (at, instr) in kernel.iter_instrs() {
        plan.resolve_into(instr);
        let dst_words = instr.dst.map(|d| d.regs().count()).unwrap_or(0);
        if plan.written_words().len() != dst_words {
            return Err(format!(
                "access plan at {at}: {} written words but the destination has {dst_words}",
                plan.written_words().len()
            ));
        }
        let reg_srcs = instr.srcs.iter().filter(|s| s.as_reg().is_some()).count();
        let reads = plan.reads().count();
        if reads != reg_srcs {
            return Err(format!(
                "access plan at {at}: {reads} reads but {reg_srcs} register sources"
            ));
        }
        if dst_words > 0 && plan.writes_mrf() != instr.write_loc.writes_mrf() {
            return Err(format!(
                "access plan at {at}: writes_mrf disagrees with the WriteLoc annotation"
            ));
        }
    }
    Ok(())
}

/// Differential check for a structurally *validated* mutant kernel: run it
/// unallocated in baseline mode and allocated in hierarchy-faithful mode.
/// Allocation must preserve the mutant's semantics exactly — identical
/// final memory, or the same structured-failure fate in both modes.
fn differential(mutant: &Kernel, cfg: &AllocConfig, w: &Workload) -> Result<CaseOutcome, String> {
    let mut allocated = mutant.clone();
    if allocate(&mut allocated, cfg, &EnergyModel::paper()).is_err() {
        return Ok(CaseOutcome::Rejected);
    }
    let machine = bounded_machine();
    let mut base_mem = w.memory.clone();
    let base = execute_with(
        mutant,
        &w.launch,
        &mut base_mem,
        ExecMode::Baseline,
        &machine,
        &mut [],
    );
    let mut hier_mem = w.memory.clone();
    let hier = execute_with(
        &allocated,
        &w.launch,
        &mut hier_mem,
        ExecMode::Hierarchy(*cfg),
        &machine,
        &mut [],
    );
    match (base, hier) {
        (Ok(_), Ok(_)) => {
            if base_mem.words() == hier_mem.words() {
                Ok(CaseOutcome::Identical)
            } else {
                Err("allocated mutant diverged from its own baseline execution".into())
            }
        }
        (Err(_), Err(_)) => Ok(CaseOutcome::Structured),
        (Ok(_), Err(e)) => Err(format!("hierarchy-only failure on a validated mutant: {e}")),
        (Err(e), Ok(_)) => Err(format!("baseline-only failure on a validated mutant: {e}")),
    }
}

/// Differential check between the two *executor engines* on the same
/// (possibly corrupted) kernel: the warp-batched SoA engine and the frozen
/// reference interpreter must meet exactly the same fate — identical
/// report, access counts, and memory image on acceptance, or the very same
/// structured error on rejection. Any asymmetry is an engine bug, not a
/// property of the mutant.
fn engine_differential(
    mutant: &Kernel,
    mode: ExecMode,
    w: &Workload,
    machine: &MachineConfig,
) -> Result<CaseOutcome, String> {
    let run = |engine: Engine| {
        let mut mem = w.memory.clone();
        let mut counter = SwCounter::default();
        let result = execute_with_engine(
            mutant,
            &w.launch,
            &mut mem,
            mode,
            machine,
            engine,
            &mut [&mut counter],
        );
        (result, counter.counts(), mem)
    };
    let (soa, soa_counts, soa_mem) = run(Engine::Soa);
    let (oracle, oracle_counts, oracle_mem) = run(Engine::Reference);
    match (soa, oracle) {
        (Ok(a), Ok(b)) => {
            if a != b {
                Err(format!(
                    "engines accepted the mutant with different reports: soa {a:?} vs reference {b:?}"
                ))
            } else if soa_counts != oracle_counts {
                Err(format!(
                    "engines accepted the mutant with different access counts: \
                     soa {soa_counts:?} vs reference {oracle_counts:?}"
                ))
            } else if soa_mem.words() != oracle_mem.words() {
                Err("engines accepted the mutant with different memory images".into())
            } else {
                Ok(CaseOutcome::Identical)
            }
        }
        (Err(a), Err(b)) => {
            if a == b {
                Ok(CaseOutcome::Structured)
            } else {
                Err(format!(
                    "engines rejected the mutant with different errors: soa `{a}` vs reference `{b}`"
                ))
            }
        }
        (Ok(_), Err(e)) => Err(format!(
            "reference-only failure on a mutant the SoA engine accepted: {e}"
        )),
        (Err(e), Ok(_)) => Err(format!(
            "SoA-only failure on a mutant the reference engine accepted: {e}"
        )),
    }
}

fn record(
    report: &mut ChaosReport,
    caught: std::thread::Result<Result<CaseOutcome, String>>,
    layer: &str,
    case: usize,
    seed: u64,
) -> Result<(), String> {
    report.cases += 1;
    match caught {
        Ok(Ok(outcome)) => {
            match outcome {
                CaseOutcome::Rejected => report.rejected += 1,
                CaseOutcome::Identical => report.identical += 1,
                CaseOutcome::Structured => report.structured += 1,
                CaseOutcome::Flagged => report.flagged += 1,
                CaseOutcome::Unchanged => report.unchanged += 1,
            }
            Ok(())
        }
        Ok(Err(violation)) => Err(format!(
            "{layer} layer, case {case} (seed {seed:#018x}): {violation}"
        )),
        Err(_) => Err(format!(
            "{layer} layer, case {case} (seed {seed:#018x}): PANIC escaped the pipeline"
        )),
    }
}

/// Fuzzes the parser (and everything behind it) with byte-level
/// corruptions of the workload kernel's textual form.
///
/// # Errors
///
/// Returns a replayable description of the first trichotomy violation:
/// a panic, or a validated mutant whose baseline and hierarchy executions
/// disagree.
pub fn run_byte_layer(
    w: &Workload,
    cfg: &AllocConfig,
    cases: usize,
    base_seed: u64,
) -> Result<ChaosReport, String> {
    let text = rfh_isa::printer::print_kernel(&w.kernel);
    let seeds = case_seeds(base_seed, cases);
    let outcomes = par_map(&seeds, |&seed| {
        catch_unwind(AssertUnwindSafe(|| -> Result<CaseOutcome, String> {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mutated = byte::mutate_text(&text, &mut rng);
            if mutated == text {
                return Ok(CaseOutcome::Unchanged);
            }
            match rfh_isa::parse_kernel(&mutated) {
                Err(_) => Ok(CaseOutcome::Rejected),
                Ok(kernel) => differential(&kernel, cfg, w),
            }
        }))
    });
    fold_cases(&seeds, outcomes, "byte")
}

/// Fuzzes the validator/allocator with structural IR corruptions.
///
/// # Errors
///
/// As for [`run_byte_layer`].
pub fn run_ir_layer(
    w: &Workload,
    cfg: &AllocConfig,
    cases: usize,
    base_seed: u64,
) -> Result<ChaosReport, String> {
    let seeds = case_seeds(base_seed, cases);
    let outcomes = par_map(&seeds, |&seed| {
        catch_unwind(AssertUnwindSafe(|| -> Result<CaseOutcome, String> {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut mutant = w.kernel.clone();
            ir::mutate_kernel(&mut mutant, &mut rng);
            if mutant == w.kernel {
                return Ok(CaseOutcome::Unchanged);
            }
            match rfh_isa::validate(&mutant) {
                Err(_) => Ok(CaseOutcome::Rejected),
                Ok(()) => {
                    check_plan_sanity(&mutant)?;
                    differential(&mutant, cfg, w)
                }
            }
        }))
    });
    fold_cases(&seeds, outcomes, "IR")
}

/// Fuzzes the static analyzer (`rfh-lint`) with structural IR corruptions
/// and proves its **soundness** one-directionally: every mutant that lint
/// does *not* flag with an error must execute and validate cleanly (the
/// same differential contract as [`run_ir_layer`]). Mutants flagged by
/// lint count as **flagged**; since the executor zero-initializes
/// registers, lint is deliberately stricter than execution, so flagged
/// mutants that would also have executed cleanly are not violations.
///
/// # Errors
///
/// Returns a replayable description of the first soundness violation: a
/// panic, or a lint-clean validated mutant whose baseline and hierarchy
/// executions disagree.
pub fn run_lint_layer(
    w: &Workload,
    cfg: &AllocConfig,
    cases: usize,
    base_seed: u64,
) -> Result<ChaosReport, String> {
    let options = rfh_lint::LintOptions {
        alloc: *cfg,
        ..Default::default()
    };
    let seeds = case_seeds(base_seed, cases);
    let outcomes = par_map(&seeds, |&seed| {
        catch_unwind(AssertUnwindSafe(|| -> Result<CaseOutcome, String> {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut mutant = w.kernel.clone();
            ir::mutate_kernel(&mut mutant, &mut rng);
            if mutant == w.kernel {
                return Ok(CaseOutcome::Unchanged);
            }
            match rfh_isa::validate(&mutant) {
                Err(_) => Ok(CaseOutcome::Rejected),
                Ok(()) => {
                    let diags = rfh_lint::lint_kernel(&mutant, &options);
                    if rfh_lint::has_errors(&diags) {
                        return Ok(CaseOutcome::Flagged);
                    }
                    differential(&mutant, cfg, w)
                }
            }
        }))
    });
    fold_cases(&seeds, outcomes, "lint")
}

/// Fuzzes the placement validator with corrupted placements on a
/// correctly allocated kernel, and proves its **soundness** by
/// differential execution: any corruption it does **not** flag must
/// execute to exactly the reference memory image.
///
/// # Errors
///
/// Returns a replayable description of the first violation: a panic, an
/// unflagged corruption that fails to execute, or — the critical case —
/// an unflagged corruption that changes results.
pub fn run_place_layer(
    w: &Workload,
    cfg: &AllocConfig,
    cases: usize,
    base_seed: u64,
) -> Result<ChaosReport, String> {
    let mut allocated = w.kernel.clone();
    allocate(&mut allocated, cfg, &EnergyModel::paper())
        .map_err(|e| format!("seed kernel failed to allocate: {e}"))?;
    let machine = bounded_machine();
    let mut ref_mem = w.memory.clone();
    execute_with(
        &w.kernel,
        &w.launch,
        &mut ref_mem,
        ExecMode::Baseline,
        &machine,
        &mut [],
    )
    .map_err(|e| format!("seed kernel failed to execute: {e}"))?;

    let seeds = case_seeds(base_seed, cases);
    let outcomes = par_map(&seeds, |&seed| {
        catch_unwind(AssertUnwindSafe(|| -> Result<CaseOutcome, String> {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut mutant = allocated.clone();
            place::mutate_placements(&mut mutant, cfg.orf_entries, &mut rng);
            if mutant == allocated {
                return Ok(CaseOutcome::Unchanged);
            }
            // Placement mutations never touch operand structure, so the
            // access resolver's invariants must hold on *every* mutant,
            // flagged or not.
            check_plan_sanity(&mutant)?;
            if validate_placements(&mutant, cfg).is_err() {
                return Ok(CaseOutcome::Flagged);
            }
            // Unflagged: the corruption must be semantically transparent.
            let mut mem = w.memory.clone();
            match execute_with(
                &mutant,
                &w.launch,
                &mut mem,
                ExecMode::Hierarchy(*cfg),
                &machine,
                &mut [],
            ) {
                Err(e) => Err(format!("unflagged placement mutant failed to execute: {e}")),
                Ok(_) if mem.words() == ref_mem.words() => Ok(CaseOutcome::Identical),
                Ok(_) => Err(
                    "unflagged placement corruption changed results — validator unsoundness".into(),
                ),
            }
        }))
    });
    fold_cases(&seeds, outcomes, "placement")
}

/// Fuzzes the `rfhd` wire protocol against a **live in-process daemon**:
/// seeded raw-socket faults (truncated frames, garbage bytes, oversized
/// length prefixes, mid-request disconnects, stalled slow writers)
/// interleaved with well-formed requests, each followed by a fresh
/// well-formed probe. The trichotomy here: well-formed requests succeed
/// (**identical**), malformed traffic draws a structured error frame
/// (**structured**) or a clean teardown (**rejected**), and the daemon
/// keeps serving throughout — no deaths, no poisoned workers, no leaked
/// queue slots. After the last case the daemon is drained and its exit
/// report is checked for leaks and absorbed panics.
///
/// # Errors
///
/// Returns a replayable description of the first violation: a failed
/// probe (daemon dead or poisoned), a fault answered with success, a
/// well-formed request answered with failure, an undecodable response,
/// a silent daemon, or a drain that leaks connections.
pub fn run_protocol_layer(cases: usize, base_seed: u64) -> Result<ChaosReport, String> {
    use rfh_rfhd::server::{Endpoint, Server, ServerConfig};

    // Small socket read timeout so the slow-writer flavor resolves
    // quickly; enough workers and queue depth that concurrent chaos
    // cases mostly ride out each other's stalls via the queue, with the
    // occasional shed absorbed by probe retries.
    const IO_TIMEOUT_MS: u64 = 100;
    let mut cfg = ServerConfig::new(Endpoint::Tcp("127.0.0.1:0".to_string()));
    cfg.workers = 4;
    cfg.queue_depth = 32;
    cfg.io_timeout_ms = IO_TIMEOUT_MS;
    cfg.timeout_ms = 2_000;
    let handle = Server::spawn(cfg).map_err(|e| format!("daemon failed to start: {e}"))?;
    let endpoint = handle.endpoint.clone();
    let addr = match &endpoint {
        Endpoint::Tcp(a) => a.clone(),
        Endpoint::Unix(p) => format!("{}", p.display()),
    };

    // Protocol cases are I/O-bound (socket timeouts, deliberate stalls),
    // not CPU-bound, so fan out wider than the core count; outcomes are
    // still folded in case order, so the report stays deterministic.
    let seeds = case_seeds(base_seed, cases);
    let outcomes = par_map_with_jobs(8, &seeds, |&seed| {
        catch_unwind(AssertUnwindSafe(|| -> Result<CaseOutcome, String> {
            let mut rng = SmallRng::seed_from_u64(seed);
            let observed = wire::inject(&addr, IO_TIMEOUT_MS, &mut rng)?;
            // Whatever the fault did, the daemon must still serve.
            wire::probe(&endpoint, seed)?;
            Ok(match observed {
                wire::Observation::Succeeded => CaseOutcome::Identical,
                wire::Observation::ErrorFrame => CaseOutcome::Structured,
                wire::Observation::Closed => CaseOutcome::Rejected,
            })
        }))
    });
    let folded = fold_cases(&seeds, outcomes, "protocol");
    // Drain even on a violation so the listener thread never outlives
    // the layer; a drain failure is itself a violation.
    let drained = wire::drain(handle);
    let report = folded?;
    drained?;
    Ok(report)
}

/// Fuzzes the *executor pair* with structural IR corruptions (executed
/// unallocated in baseline mode) and placement corruptions on an
/// allocated clone (executed hierarchy-faithfully): every structurally
/// valid mutant must land in the same accept/reject class on the SoA
/// engine and the frozen reference oracle, with bit-identical state
/// (report, access counts, memory image) on acceptance and the identical
/// structured error on rejection.
///
/// # Errors
///
/// Returns a replayable description of the first engine asymmetry: a
/// panic, a mutant one engine accepts and the other rejects, or an
/// accepted mutant whose observable state differs between engines.
pub fn run_exec_differential_layer(
    w: &Workload,
    cfg: &AllocConfig,
    cases: usize,
    base_seed: u64,
) -> Result<ChaosReport, String> {
    let mut allocated = w.kernel.clone();
    allocate(&mut allocated, cfg, &EnergyModel::paper())
        .map_err(|e| format!("seed kernel failed to allocate: {e}"))?;
    let machine = bounded_machine();
    let seeds = case_seeds(base_seed, cases);
    let outcomes = par_map(&seeds, |&seed| {
        catch_unwind(AssertUnwindSafe(|| -> Result<CaseOutcome, String> {
            let mut rng = SmallRng::seed_from_u64(seed);
            // Alternate mutant flavors so both engine frontends get
            // exercised: raw IR damage on the unallocated kernel, and
            // placement damage on the allocated one.
            let (mutant, mode, pristine) = if rng.gen() {
                let mut m = w.kernel.clone();
                ir::mutate_kernel(&mut m, &mut rng);
                (m, ExecMode::Baseline, &w.kernel)
            } else {
                let mut m = allocated.clone();
                place::mutate_placements(&mut m, cfg.orf_entries, &mut rng);
                (m, ExecMode::Hierarchy(*cfg), &allocated)
            };
            if mutant == *pristine {
                return Ok(CaseOutcome::Unchanged);
            }
            if rfh_isa::validate(&mutant).is_err() {
                return Ok(CaseOutcome::Rejected);
            }
            engine_differential(&mutant, mode, w, &machine)
        }))
    });
    fold_cases(&seeds, outcomes, "exec-differential")
}

/// A [`TraceSink`] that checks every claim of the abstract interpreter
/// against the concrete execution, per instruction and per lane:
///
/// * written register values stay inside the predicted interval;
/// * affine claims (`coef·tid + off`) match bit-exactly;
/// * uniform-marked writes never diverge across the executing lanes;
/// * known/uniform predicate claims hold on written predicate bits;
/// * a guard with a known truth value masks exactly as predicted;
/// * no executing lane reaches an instruction proved unreachable;
/// * a read marked as a proven last use really is final: no later read
///   of that register executes on the same lane before a redefinition.
///
/// The first violated claim is recorded in `violation` and checking stops.
struct CheckSink<'a> {
    kernel: &'a Kernel,
    res: &'a absint::AbsResults,
    hints: &'a last_use::LastUseHints,
    warps_per_cta: usize,
    warp_width: usize,
    /// Per `(warp, register index)`: lane mask armed by a proven last use,
    /// cleared by redefinition or warp completion.
    armed: HashMap<(usize, usize), u32>,
    violation: Option<String>,
}

impl<'a> CheckSink<'a> {
    fn new(
        kernel: &'a Kernel,
        res: &'a absint::AbsResults,
        hints: &'a last_use::LastUseHints,
        warps_per_cta: usize,
        warp_width: usize,
    ) -> Self {
        CheckSink {
            kernel,
            res,
            hints,
            warps_per_cta,
            warp_width,
            armed: HashMap::new(),
            violation: None,
        }
    }

    fn lane_tid(&self, warp: usize, lane: usize) -> i32 {
        ((warp % self.warps_per_cta) * self.warp_width + lane) as i32
    }

    fn check_reg_claim(
        &mut self,
        claim: &absint::AbsVal,
        warp: usize,
        at: InstrRef,
        reg: rfh_isa::Reg,
        lanes: &[u32],
        exec_mask: u32,
    ) {
        let mut first_exec: Option<u32> = None;
        for (lane, &v) in lanes.iter().enumerate() {
            if exec_mask & (1 << lane) == 0 {
                continue;
            }
            let signed = v as i32;
            if signed < claim.lo || signed > claim.hi {
                self.violation = Some(format!(
                    "absint interval violated at {at}: warp {warp} lane {lane} wrote \
                     {signed} to {reg}, outside the predicted [{}, {}]",
                    claim.lo, claim.hi
                ));
                return;
            }
            if let Some((coef, off)) = claim.affine {
                let expect = coef
                    .wrapping_mul(self.lane_tid(warp, lane))
                    .wrapping_add(off) as u32;
                if v != expect {
                    self.violation = Some(format!(
                        "absint affine claim violated at {at}: warp {warp} lane {lane} wrote \
                         {v:#x} to {reg}, expected {coef}·tid + {off} = {expect:#x}"
                    ));
                    return;
                }
            }
            match first_exec {
                None => first_exec = Some(v),
                Some(w0) if claim.uniform && v != w0 => {
                    self.violation = Some(format!(
                        "absint uniformity violated at {at}: warp {warp} wrote divergent \
                         values {w0:#x} and {v:#x} to uniform-marked {reg}"
                    ));
                    return;
                }
                Some(_) => {}
            }
        }
    }
}

impl TraceSink for CheckSink<'_> {
    fn on_instr(&mut self, event: &InstrEvent<'_>) {
        if self.violation.is_some() {
            return;
        }
        let f = self.res.fact(event.at);
        if event.exec_mask != 0 && !f.reachable {
            self.violation = Some(format!(
                "absint reachability violated: lanes executed {} (warp {}) though the \
                 analysis proved no lane can reach it",
                event.at, event.warp
            ));
            return;
        }
        // A guard with a known truth value must mask exactly as predicted.
        if let (Some(g), Some(ga)) = (&event.instr.guard, &f.guard) {
            if let Some(v) = ga.known {
                let expect = if v != g.negated { event.active_mask } else { 0 };
                if event.exec_mask != expect {
                    self.violation = Some(format!(
                        "absint guard claim violated at {}: predicate known {v} but warp {} \
                         executed with mask {:#x} (active {:#x})",
                        event.at, event.warp, event.exec_mask, event.active_mask
                    ));
                    return;
                }
            } else if ga.uniform && event.exec_mask != 0 && event.exec_mask != event.active_mask {
                self.violation = Some(format!(
                    "absint guard uniformity violated at {}: warp {} split over a \
                     uniform-marked guard (exec {:#x} of active {:#x})",
                    event.at, event.warp, event.exec_mask, event.active_mask
                ));
                return;
            }
        }
        // Last-use protocol: check reads against armed lanes, then arm this
        // instruction's own proven last uses, then let its definitions
        // disarm (a read+write of the same register starts a new value).
        for (slot, src) in event.instr.srcs.iter().enumerate() {
            let Operand::Reg(r) = src else { continue };
            let key = (event.warp, r.index() as usize);
            let armed = self.armed.get(&key).copied().unwrap_or(0);
            if armed & event.exec_mask != 0 {
                self.violation = Some(format!(
                    "last-use hint violated: {r} read again at {} (warp {}, lanes {:#x}) \
                     after a read the analysis proved final",
                    event.at,
                    event.warp,
                    armed & event.exec_mask
                ));
                return;
            }
            if self.hints.excluded.contains(&(event.at, slot)) {
                *self.armed.entry(key).or_insert(0) |= event.exec_mask;
            }
        }
        for r in event.instr.def_regs() {
            if let Some(mask) = self.armed.get_mut(&(event.warp, r.index() as usize)) {
                *mask &= !event.exec_mask;
            }
        }
    }

    fn on_warp_done(&mut self, warp: usize) {
        self.armed.retain(|&(w, _), _| w != warp);
    }

    fn on_reg_write(
        &mut self,
        warp: usize,
        at: InstrRef,
        reg: rfh_isa::Reg,
        lanes: &[u32],
        exec_mask: u32,
    ) {
        if self.violation.is_some() {
            return;
        }
        let Some(d) = self.kernel.instr(at).dst else {
            return;
        };
        let f = self.res.fact(at);
        let claim = if reg == d.reg { &f.dst } else { &f.dst_hi };
        if let Some(claim) = *claim {
            self.check_reg_claim(&claim, warp, at, reg, lanes, exec_mask);
        }
    }

    fn on_pred_write(
        &mut self,
        warp: usize,
        at: InstrRef,
        pred: rfh_isa::PredReg,
        bits: u32,
        exec_mask: u32,
    ) {
        if self.violation.is_some() {
            return;
        }
        let Some(claim) = &self.res.fact(at).pdst else {
            return;
        };
        let exec_bits = bits & exec_mask;
        if let Some(v) = claim.known {
            let expect = if v { exec_mask } else { 0 };
            if exec_bits != expect {
                self.violation = Some(format!(
                    "absint predicate claim violated at {at}: warp {warp} wrote bits {bits:#x} \
                     to {pred} (exec {exec_mask:#x}) but the analysis proved every lane \
                     writes {v}"
                ));
            }
        } else if claim.uniform && exec_bits != 0 && exec_bits != exec_mask {
            self.violation = Some(format!(
                "absint predicate uniformity violated at {at}: warp {warp} wrote mixed bits \
                 {bits:#x} to uniform-marked {pred} (exec {exec_mask:#x})"
            ));
        }
    }
}

/// Fuzzes the abstract interpreter (`rfh_analysis::absint`) and its
/// last-use hint pass with structural IR corruptions and proves their
/// **soundness on every surviving mutant**: the analyses must be
/// panic-free on any validated kernel, every claim they derive must hold
/// on the concrete baseline execution ([`CheckSink`] — intervals, affine
/// forms, warp uniformity, predicate knowledge, reachability, and the
/// last-use read protocol, checked per lane), and hint-guided allocation
/// ([`allocate_with_hints`]) must preserve the mutant's semantics exactly
/// under the usual differential contract.
///
/// # Errors
///
/// Returns a replayable description of the first violation: a panic in
/// analysis, a concrete value escaping its predicted range, a divergent
/// uniform-marked register, a read after a proven last use, or a
/// hint-allocated mutant whose execution differs from its own baseline.
pub fn run_absint_layer(
    w: &Workload,
    cfg: &AllocConfig,
    cases: usize,
    base_seed: u64,
) -> Result<ChaosReport, String> {
    let machine = bounded_machine();
    let ctx = absint::AbsCtx {
        threads_per_cta: Some(w.launch.threads_per_cta as u32),
        ctas: Some(w.launch.ctas as u32),
    };
    let warps_per_cta = w.launch.threads_per_cta.div_ceil(machine.warp_width);
    let seeds = case_seeds(base_seed, cases);
    let outcomes = par_map(&seeds, |&seed| {
        catch_unwind(AssertUnwindSafe(|| -> Result<CaseOutcome, String> {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut mutant = w.kernel.clone();
            ir::mutate_kernel(&mut mutant, &mut rng);
            if mutant == w.kernel {
                return Ok(CaseOutcome::Unchanged);
            }
            if rfh_isa::validate(&mutant).is_err() {
                return Ok(CaseOutcome::Rejected);
            }
            // The analyses must be panic-free and sound on any kernel that
            // passed validation — mutants included.
            let mut marked = mutant.clone();
            mark_strands(&mut marked);
            let res = absint::analyze(&marked, ctx);
            let hints = last_use::analyze(&marked);
            let mut sink = CheckSink::new(&marked, &res, &hints, warps_per_cta, machine.warp_width);
            let mut base_mem = w.memory.clone();
            let base = execute_with(
                &marked,
                &w.launch,
                &mut base_mem,
                ExecMode::Baseline,
                &machine,
                &mut [&mut sink],
            );
            // Claims checked before a structured abort are still claims.
            if let Some(v) = sink.violation {
                return Err(v);
            }
            // Hint-guided allocation must preserve the mutant's semantics.
            let mut hinted = mutant.clone();
            if allocate_with_hints(&mut hinted, cfg, &EnergyModel::paper(), true).is_err() {
                return Ok(CaseOutcome::Rejected);
            }
            let mut hier_mem = w.memory.clone();
            let hier = execute_with(
                &hinted,
                &w.launch,
                &mut hier_mem,
                ExecMode::Hierarchy(*cfg),
                &machine,
                &mut [],
            );
            match (base, hier) {
                (Ok(_), Ok(_)) => {
                    if base_mem.words() == hier_mem.words() {
                        Ok(CaseOutcome::Identical)
                    } else {
                        Err("hint-allocated mutant diverged from its own baseline execution".into())
                    }
                }
                (Err(_), Err(_)) => Ok(CaseOutcome::Structured),
                (Ok(_), Err(e)) => Err(format!(
                    "hierarchy-only failure on a hint-allocated mutant: {e}"
                )),
                (Err(e), Ok(_)) => Err(format!("baseline-only failure on a validated mutant: {e}")),
            }
        }))
    });
    fold_cases(&seeds, outcomes, "absint")
}

/// Fuzzes the *timing-engine pair* with seeded corruptions of a captured
/// trace set and its scheduler config ([`crate::trace`]): reordered ops,
/// perturbed latency classes, scrambled dependences, truncated warp
/// streams, unbalanced barriers, and degenerate configs. Every mutant
/// replays through both the staged engine and the frozen reference
/// oracle; the contract is exact agreement on the full `Result` —
/// identical `TimingResult`s on survivors (**identical**), identical
/// structured errors on malformed inputs (**rejected** for up-front
/// config errors, **structured** for deadlocks and budget trips), and no
/// panics or hangs anywhere.
///
/// # Errors
///
/// Returns a replayable description of the first violation: a panic, an
/// accept/reject asymmetry between the engines, or any divergence in
/// results or error values (the deadlock snapshot included).
pub fn run_timing_layer(w: &Workload, cases: usize, base_seed: u64) -> Result<ChaosReport, String> {
    use rfh_sim::timing::{
        simulate_timing_with_engine, Engine as TimingEngine, TimingConfig, TimingError,
        TraceCapture,
    };

    // Capture the workload's trace once; every case mutates a clone.
    let machine = MachineConfig::paper();
    let mut cap = TraceCapture::new(machine.clone(), w.launch.threads_per_cta);
    let mut mem = w.memory.clone();
    execute_with(
        &w.kernel,
        &w.launch,
        &mut mem,
        ExecMode::Baseline,
        &machine,
        &mut [&mut cap],
    )
    .map_err(|e| format!("timing layer: trace capture failed for {}: {e}", w.name))?;
    let warps_per_cta = cap.warps_per_cta();
    let base_config = TimingConfig::two_level(8);

    let seeds = case_seeds(base_seed, cases);
    let outcomes = par_map(&seeds, |&seed| {
        catch_unwind(AssertUnwindSafe(|| -> Result<CaseOutcome, String> {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut traces = cap.traces.clone();
            let mut config = base_config.clone();
            trace::mutate_timing(&mut traces, &mut config, &mut rng);
            if traces == cap.traces && config == base_config {
                return Ok(CaseOutcome::Unchanged);
            }
            let cta_of = |wi: usize| wi / warps_per_cta;
            let staged =
                simulate_timing_with_engine(&traces, &cta_of, &config, TimingEngine::Staged);
            let reference =
                simulate_timing_with_engine(&traces, &cta_of, &config, TimingEngine::Reference);
            match (staged, reference) {
                (Ok(s), Ok(r)) => {
                    if s == r {
                        Ok(CaseOutcome::Identical)
                    } else {
                        Err(format!(
                            "engines accepted the mutant with different results: \
                             staged {s:?} vs reference {r:?}"
                        ))
                    }
                }
                (Err(a), Err(b)) => {
                    if a != b {
                        Err(format!(
                            "engines rejected the mutant with different errors: \
                             staged `{a}` vs reference `{b}`"
                        ))
                    } else if matches!(a, TimingError::Config(_)) {
                        Ok(CaseOutcome::Rejected)
                    } else {
                        Ok(CaseOutcome::Structured)
                    }
                }
                (Ok(s), Err(e)) => Err(format!(
                    "reference-only failure on a mutant the staged engine \
                     accepted ({s:?}): {e}"
                )),
                (Err(e), Ok(r)) => Err(format!(
                    "staged-only failure on a mutant the reference engine \
                     accepted ({r:?}): {e}"
                )),
            }
        }))
    });
    fold_cases(&seeds, outcomes, "timing")
}
