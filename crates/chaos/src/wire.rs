//! Wire-protocol mutators for the `rfhd` compile-service daemon.
//!
//! These model corruption *below* the request layer: the bytes a hostile
//! or broken client puts on the socket. Each fault flavor drives a live
//! daemon through one raw connection and reports what the daemon did
//! about it:
//!
//! * **well-formed** — a valid `rfhd-v1` request; must round-trip to a
//!   success payload (an `overloaded` shed under concurrent load is the
//!   one legal error);
//! * **garbage JSON** — a correctly framed payload that is not a valid
//!   request; must draw a structured `protocol`/`usage` frame *and leave
//!   the connection usable* (the framing layer resynchronizes);
//! * **truncated frame** — a length prefix promising more bytes than are
//!   ever sent, then a half-close;
//! * **garbage bytes** — raw junk where a frame should be, so the length
//!   prefix itself is hostile;
//! * **oversized prefix** — a length prefix beyond the daemon's frame
//!   cap;
//! * **mid-request disconnect** — a partial frame followed by a full
//!   close, modelling a client that dies mid-write;
//! * **slow writer** — a frame stalled mid-payload past the daemon's
//!   socket read timeout, modelling a wedged client that would otherwise
//!   pin a worker forever;
//! * **edit storm** — repeated re-submissions of one kernel with seeded
//!   single-immediate edits, interleaved with the pristine original: the
//!   daemon's incremental strand cache must never change an answer (zero
//!   divergence on the semantic fields — the `strand_hits` /
//!   `strand_misses` counters legitimately vary with cache warmth), and
//!   the strand cache must stay within its configured capacity (bounded
//!   memory).
//!
//! The contract (asserted by `harness::run_protocol_layer`): every fault
//! is answered with a structured error frame or a connection teardown —
//! never a daemon death, a hung worker, or a leaked queue slot — and a
//! fresh well-formed probe succeeds immediately afterwards.

use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use rfh_rfhd::client::{Client, RetryPolicy};
use rfh_rfhd::json::Json;
use rfh_rfhd::proto::{self, ErrorKind, FrameError};
use rfh_rfhd::server::{Endpoint, ServerHandle};
use rfh_testkit::prelude::*;

/// What the daemon did about one injected fault, as observed from the
/// faulty connection itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observation {
    /// A well-formed request round-tripped to a success payload.
    Succeeded,
    /// The fault drew a structured error frame.
    ErrorFrame,
    /// The connection ended without a decodable frame — the daemon tore
    /// it down, or the fault itself abandoned it.
    Closed,
}

/// Guard timeout for the harness's own socket reads: far above anything
/// the daemon legitimately takes, so a silent daemon fails the case fast
/// instead of hanging the suite.
const HARNESS_GUARD_MS: u64 = 5_000;

/// The well-formed request kernel (kept tiny — protocol chaos is about
/// the transport, not the pipeline).
const AXPY: &str = "
.kernel axpy
BB0:
  mov r0, %tid.x
  ld.global r1 r0
  ffma r2 r1, 2.0f, r1
  st.global r0, r2
  exit
";

/// Opens one raw connection to `addr`, injects one seeded fault flavor,
/// and reports the daemon's observable reaction.
///
/// `io_timeout_ms` must be the daemon's configured socket read timeout;
/// the slow-writer flavor stalls just past it.
///
/// # Errors
///
/// A replayable description of a contract violation: a well-formed
/// request that failed, a fault answered with a success payload, an
/// undecodable response frame, or a daemon that went silent.
pub fn inject(addr: &str, io_timeout_ms: u64, rng: &mut SmallRng) -> Result<Observation, String> {
    let conn = TcpStream::connect(addr).map_err(|e| format!("chaos dial failed: {e}"))?;
    let guard = Duration::from_millis(HARNESS_GUARD_MS);
    conn.set_read_timeout(Some(guard)).ok();
    conn.set_write_timeout(Some(guard)).ok();
    match rng.gen_range(0u32..8) {
        0 => well_formed(conn, rng),
        1 => garbage_json(conn, rng),
        2 => truncated_frame(conn, rng),
        3 => garbage_bytes(conn, rng),
        4 => oversized_prefix(conn, rng),
        5 => mid_request_disconnect(conn, rng),
        6 => slow_writer(conn, io_timeout_ms, rng),
        _ => edit_storm(conn, rng),
    }
}

/// A fresh, retrying well-formed probe: proves the daemon still serves
/// after a fault. Retries ride out transient sheds from concurrently
/// running chaos cases.
///
/// # Errors
///
/// When the probe cannot get a pong — the daemon is poisoned or dead.
pub fn probe(endpoint: &Endpoint, seed: u64) -> Result<(), String> {
    let mut c = Client::new(
        endpoint.clone(),
        RetryPolicy {
            attempts: 8,
            base_ms: 5,
            cap_ms: 200,
            seed,
        },
    );
    match c.simple("ping") {
        Ok(_) => Ok(()),
        Err(e) => Err(format!(
            "post-fault probe failed — the daemon is poisoned or dead: {e}"
        )),
    }
}

/// Drains the daemon and checks the leak invariants: every admitted
/// connection finished, and no panic reached either isolation boundary.
///
/// # Errors
///
/// When shutdown fails, the server thread exited uncleanly, or the final
/// report shows leaked connections or absorbed panics.
pub fn drain(handle: ServerHandle) -> Result<(), String> {
    let mut c = Client::new(
        handle.endpoint.clone(),
        RetryPolicy {
            attempts: 8,
            base_ms: 5,
            cap_ms: 200,
            seed: 0xD7A1,
        },
    );
    c.simple("shutdown")
        .map_err(|e| format!("shutdown request failed: {e}"))?;
    let report = handle
        .join()
        .map_err(|e| format!("daemon exited uncleanly: {e}"))?;
    if report.in_flight_at_exit != 0 {
        return Err(format!(
            "drain leaked {} in-flight connection(s)",
            report.in_flight_at_exit
        ));
    }
    if report.pool_panics != 0 || report.compute_panics != 0 {
        return Err(format!(
            "daemon absorbed panics: {} pool, {} compute",
            report.pool_panics, report.compute_panics
        ));
    }
    Ok(())
}

/// One decoded response (or its absence) from the faulty connection.
enum Reply {
    Ok,
    Frame(ErrorKind),
    Closed,
}

fn read_one(conn: &mut TcpStream) -> Result<Reply, String> {
    match proto::read_frame(conn, proto::DEFAULT_MAX_FRAME) {
        Ok(Some(frame)) => {
            let (_, outcome) = proto::decode_response(&frame)
                .map_err(|e| format!("daemon sent an undecodable frame: {e}"))?;
            Ok(match outcome {
                Ok(_) => Reply::Ok,
                Err(f) => Reply::Frame(f.kind),
            })
        }
        Ok(None) => Ok(Reply::Closed),
        Err(FrameError::Io(e))
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            Err("daemon went silent: no frame and no close within the harness guard".into())
        }
        // A reset mid-read is a teardown, not a violation: the daemon may
        // drop a hopeless connection while our read is in flight.
        Err(FrameError::Io(_)) => Ok(Reply::Closed),
        Err(e) => Err(format!("daemon sent a malformed frame: {e}")),
    }
}

/// Renders a valid `rfhd-v1` request (seeded choice of a trivial op or a
/// kernel-carrying one, so both dispatch paths see chaos-adjacent load).
fn render_request(rng: &mut SmallRng) -> String {
    let id = rng.gen_range(1u64..1_000_000);
    let mut fields = vec![
        ("schema".to_string(), Json::str(proto::SCHEMA)),
        ("id".to_string(), Json::u64(id)),
    ];
    if rng.gen() {
        fields.push(("op".to_string(), Json::str("ping")));
    } else {
        fields.push(("op".to_string(), Json::str("assemble")));
        fields.push(("kernel".to_string(), Json::str(AXPY)));
    }
    Json::Obj(fields).render()
}

fn well_formed(mut conn: TcpStream, rng: &mut SmallRng) -> Result<Observation, String> {
    let payload = render_request(rng);
    proto::write_frame(&mut conn, &payload).map_err(|e| format!("well-formed write: {e}"))?;
    match read_one(&mut conn)? {
        Reply::Ok => Ok(Observation::Succeeded),
        // Being shed under concurrent chaos load is the one legal error.
        Reply::Frame(ErrorKind::Overloaded) => Ok(Observation::ErrorFrame),
        Reply::Frame(kind) => Err(format!("well-formed request drew a {} frame", kind.name())),
        Reply::Closed => Err("well-formed request: closed without a response".into()),
    }
}

fn garbage_json(mut conn: TcpStream, rng: &mut SmallRng) -> Result<Observation, String> {
    // Printable junk in a correctly framed payload: the framing layer
    // must survive, answer a structured frame, and keep the connection.
    const CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789{}[]\":,.+-% ";
    let len = rng.gen_range(1usize..=64);
    let junk: String = (0..len)
        .map(|_| CHARSET[rng.gen_range(0..CHARSET.len())] as char)
        .collect();
    proto::write_frame(&mut conn, &junk).map_err(|e| format!("garbage-json write: {e}"))?;
    match read_one(&mut conn)? {
        Reply::Frame(ErrorKind::Overloaded) => Ok(Observation::ErrorFrame),
        Reply::Frame(_) => {
            // The framing layer resynchronized: a well-formed request on
            // the SAME connection must still succeed.
            let payload = render_request(rng);
            proto::write_frame(&mut conn, &payload)
                .map_err(|e| format!("follow-up write after garbage JSON: {e}"))?;
            match read_one(&mut conn)? {
                Reply::Ok => Ok(Observation::ErrorFrame),
                Reply::Frame(kind) => Err(format!(
                    "connection poisoned: follow-up after garbage JSON drew a {} frame",
                    kind.name()
                )),
                Reply::Closed => {
                    Err("connection poisoned: closed after a framed-garbage error".into())
                }
            }
        }
        Reply::Ok => Err("garbage JSON produced a success response".into()),
        Reply::Closed => Err("garbage JSON answered with a bare close, not a frame".into()),
    }
}

fn truncated_frame(mut conn: TcpStream, rng: &mut SmallRng) -> Result<Observation, String> {
    let payload = render_request(rng);
    let bytes = payload.as_bytes();
    let keep = rng.gen_range(0..bytes.len());
    let _ = conn.write_all(&(bytes.len() as u32).to_be_bytes());
    let _ = conn.write_all(&bytes[..keep]);
    let _ = conn.shutdown(Shutdown::Write);
    match read_one(&mut conn)? {
        Reply::Frame(_) => Ok(Observation::ErrorFrame),
        Reply::Closed => Ok(Observation::Closed),
        Reply::Ok => Err("truncated frame produced a success response".into()),
    }
}

fn garbage_bytes(mut conn: TcpStream, rng: &mut SmallRng) -> Result<Observation, String> {
    // Raw junk where a frame should be: the length prefix itself is
    // hostile (usually wildly oversized, sometimes zero or short).
    let len = rng.gen_range(1usize..=32);
    let junk: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
    let _ = conn.write_all(&junk);
    let _ = conn.shutdown(Shutdown::Write);
    match read_one(&mut conn)? {
        Reply::Frame(_) => Ok(Observation::ErrorFrame),
        Reply::Closed => Ok(Observation::Closed),
        Reply::Ok => Err("garbage bytes produced a success response".into()),
    }
}

fn oversized_prefix(mut conn: TcpStream, rng: &mut SmallRng) -> Result<Observation, String> {
    let max = proto::DEFAULT_MAX_FRAME as u32;
    let declared = rng.gen_range(max + 1..=u32::MAX);
    let _ = conn.write_all(&declared.to_be_bytes());
    // A few bytes of payload prove the daemon rejects on the prefix
    // alone instead of trying to buffer the advertised length.
    let _ = conn.write_all(b"{}");
    match read_one(&mut conn)? {
        Reply::Frame(_) => Ok(Observation::ErrorFrame),
        Reply::Closed => Ok(Observation::Closed),
        Reply::Ok => Err("oversized length prefix produced a success response".into()),
    }
}

fn mid_request_disconnect(mut conn: TcpStream, rng: &mut SmallRng) -> Result<Observation, String> {
    // A client that dies mid-write: partial frame, then a full close with
    // no read — the daemon's answer (if any) hits a dead socket.
    let payload = render_request(rng);
    let bytes = payload.as_bytes();
    let keep = rng.gen_range(0..bytes.len());
    let _ = conn.write_all(&(bytes.len() as u32).to_be_bytes());
    let _ = conn.write_all(&bytes[..keep]);
    drop(conn);
    Ok(Observation::Closed)
}

fn slow_writer(
    mut conn: TcpStream,
    io_timeout_ms: u64,
    rng: &mut SmallRng,
) -> Result<Observation, String> {
    // Stall mid-payload past the daemon's socket read timeout: the daemon
    // must disconnect the wedged writer (timeout frame or teardown)
    // rather than pin a worker forever.
    let payload = render_request(rng);
    let bytes = payload.as_bytes();
    let keep = rng.gen_range(1..bytes.len());
    let _ = conn.write_all(&(bytes.len() as u32).to_be_bytes());
    let _ = conn.write_all(&bytes[..keep]);
    let _ = conn.flush();
    std::thread::sleep(Duration::from_millis(io_timeout_ms * 2 + 50));
    // The late remainder races the daemon's teardown; either fate is
    // legal for these bytes.
    let _ = conn.write_all(&bytes[keep..]);
    match read_one(&mut conn)? {
        Reply::Frame(_) => Ok(Observation::ErrorFrame),
        Reply::Closed => Ok(Observation::Closed),
        // The connection sat queued through the stall and a worker got
        // the complete frame — a legal outcome, not a violation.
        Reply::Ok => Ok(Observation::Succeeded),
    }
}

/// Renders the edit-storm kernel with its editable immediate: the second
/// `iadd`'s constant is the single strand-local edit knob.
fn storm_kernel(k: i32) -> String {
    format!(
        "
.kernel storm
BB0:
  mov r0, %tid.x
  ld.global r1 r0
  iadd r2 r1, 1
  iadd r3 r2, {k}
  st.global r0, r3
  exit
"
    )
}

/// Sends one request on the raw connection and decodes the reply payload.
fn storm_roundtrip(conn: &mut TcpStream, payload: &str) -> Result<Result<Json, ErrorKind>, String> {
    proto::write_frame(conn, payload).map_err(|e| format!("edit-storm write: {e}"))?;
    match proto::read_frame(conn, proto::DEFAULT_MAX_FRAME) {
        Ok(Some(frame)) => {
            let (_, outcome) = proto::decode_response(&frame)
                .map_err(|e| format!("daemon sent an undecodable frame: {e}"))?;
            Ok(outcome
                .map(|(payload, _cached)| payload)
                .map_err(|f| f.kind))
        }
        Ok(None) => Err("edit storm: connection closed mid-storm".into()),
        Err(e) => Err(format!("edit storm: read failed: {e}")),
    }
}

/// The semantic view of an `allocate` response: everything except the
/// cache-warmth-dependent `strand_hits` / `strand_misses` counters, which
/// legitimately differ between a cold and a warm strand cache.
fn semantic_view(payload: &Json) -> Json {
    match payload {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| k != "strand_hits" && k != "strand_misses")
                .map(|(k, v)| (k.clone(), semantic_view(v)))
                .collect(),
        ),
        other => other.clone(),
    }
}

fn edit_storm(mut conn: TcpStream, rng: &mut SmallRng) -> Result<Observation, String> {
    // Repeated mutated re-submissions of one kernel through the daemon's
    // incremental allocation path. Divergence oracle: the pristine
    // original, re-submitted after every edit, must keep drawing a
    // semantically identical response no matter what the strand cache
    // has absorbed in between. Memory oracle: the strand cache never
    // exceeds its configured capacity.
    let mut id = rng.gen_range(1u64..1_000_000);
    let mut next_id = || {
        id += 1;
        id
    };
    let request = |id: u64, kernel: &str| {
        Json::Obj(vec![
            ("schema".to_string(), Json::str(proto::SCHEMA)),
            ("id".to_string(), Json::u64(id)),
            ("op".to_string(), Json::str("allocate")),
            ("kernel".to_string(), Json::str(kernel)),
        ])
        .render()
    };

    let original = storm_kernel(1);
    let reference = match storm_roundtrip(&mut conn, &request(next_id(), &original))? {
        Ok(payload) => semantic_view(&payload),
        // Being shed at admission under concurrent chaos load is the one
        // legal error; the storm never starts.
        Err(ErrorKind::Overloaded) => return Ok(Observation::ErrorFrame),
        Err(kind) => return Err(format!("edit storm: seed allocate drew {}", kind.name())),
    };

    let rounds = rng.gen_range(3usize..=8);
    for round in 0..rounds {
        // A seeded single-immediate edit: one strand's text changes, the
        // rest of the kernel is byte-identical.
        let edited = storm_kernel(rng.gen_range(2i32..1_000));
        let mutated = match storm_roundtrip(&mut conn, &request(next_id(), &edited))? {
            Ok(payload) => semantic_view(&payload),
            Err(kind) => {
                return Err(format!(
                    "edit storm round {round}: edited allocate drew {}",
                    kind.name()
                ))
            }
        };
        // The edit must not change what allocation *is* for this kernel
        // shape: same placements text modulo the edited constant, same
        // stats. Cheap structural check: the semantic stats of the
        // edited kernel match the original's (the edit touches an
        // immediate, not the value structure).
        if mutated.get("stats").map(semantic_view) != reference.get("stats").map(semantic_view) {
            return Err(format!(
                "edit storm round {round}: an immediate edit changed the allocation stats"
            ));
        }
        // Zero divergence: the pristine original answers identically
        // regardless of how warm the strand cache now is.
        match storm_roundtrip(&mut conn, &request(next_id(), &original))? {
            Ok(payload) => {
                if semantic_view(&payload) != reference {
                    return Err(format!(
                        "edit storm round {round}: the original kernel's response diverged \
                         after mutated re-submissions"
                    ));
                }
            }
            Err(kind) => {
                return Err(format!(
                    "edit storm round {round}: original re-submit drew {}",
                    kind.name()
                ))
            }
        }
    }

    // Bounded memory: the strand cache reports itself and stays within
    // its configured capacity even under the storm.
    let stats_req = Json::Obj(vec![
        ("schema".to_string(), Json::str(proto::SCHEMA)),
        ("id".to_string(), Json::u64(next_id())),
        ("op".to_string(), Json::str("stats")),
    ])
    .render();
    match storm_roundtrip(&mut conn, &stats_req)? {
        Ok(payload) => {
            let sc = payload
                .get("strand_cache")
                .ok_or("edit storm: stats response lacks a strand_cache block")?;
            let entries = sc
                .get("entries")
                .and_then(Json::as_u64)
                .ok_or("edit storm: strand_cache lacks an entries count")?;
            let capacity = sc
                .get("capacity")
                .and_then(Json::as_u64)
                .ok_or("edit storm: strand_cache lacks a capacity")?;
            if entries > capacity {
                return Err(format!(
                    "edit storm: strand cache grew past its capacity ({entries} > {capacity})"
                ));
            }
        }
        Err(kind) => return Err(format!("edit storm: stats drew {}", kind.name())),
    }
    Ok(Observation::Succeeded)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendered_requests_are_valid_and_seed_deterministic() {
        let a = render_request(&mut SmallRng::seed_from_u64(7));
        let b = render_request(&mut SmallRng::seed_from_u64(7));
        assert_eq!(a, b);
        let doc = rfh_rfhd::json::parse(&a).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(proto::SCHEMA)
        );
        assert!(doc.get("op").is_some());
    }
}
