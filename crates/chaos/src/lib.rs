#![warn(missing_docs)]

//! # rfh-chaos — fault injection for the RFH pipeline
//!
//! Seeded mutators that corrupt kernels at several layers of the
//! toolchain, plus a driver asserting the robustness contract at each
//! layer:
//!
//! * [`byte`] — raw assembly-text corruption (truncation, garbage bytes
//!   including non-UTF-8, bit flips, token splices) fed to the parser;
//! * [`ir`] — structural IR corruption (drop/duplicate instructions,
//!   retarget branches, swap operands, toggle strand ends) fed to the
//!   validator and allocator;
//! * [`place`] — placement-annotation corruption on an allocated kernel
//!   (flip `ReadLoc`/`WriteLoc`, drop `also_mrf`, shift ORF indices) fed
//!   to `rfh_alloc::validate_placements`.
//!
//! [`harness`] runs thousands of seeded mutants per layer and asserts the
//! **trichotomy**: every mutant is either *rejected with a structured
//! error*, or *validated and architecturally identical* (differential
//! execution against the baseline agrees exactly), or — placements only —
//! *flagged by the placement validator*. A panic or a hang anywhere is a
//! bug; so is an unflagged placement corruption that changes results
//! (validator unsoundness) or a validated mutant whose baseline and
//! hierarchy executions disagree.
//!
//! A fourth layer ([`harness::run_lint_layer`]) turns the same IR mutants
//! on the `rfh-lint` static analyzer and asserts its one-directional
//! soundness: every mutant lint does **not** flag with an error must
//! execute and validate cleanly under the differential contract.
//!
//! A fifth layer ([`harness::run_exec_differential_layer`]) points the
//! same IR and placement mutants at the *executor pair*: the warp-batched
//! SoA engine and the frozen reference interpreter must land every
//! structurally valid mutant in the same accept/reject class, with
//! bit-identical state on acceptance and the identical structured error
//! on rejection — so engine conformance is fuzzed with hostile inputs,
//! not just well-formed programs.
//!
//! A sixth layer ([`harness::run_protocol_layer`]) aims seeded
//! *wire-protocol* faults ([`wire`]) — truncated frames, garbage bytes,
//! oversized length prefixes, mid-request disconnects, stalled slow
//! writers — at a live in-process `rfhd` daemon and asserts the service
//! trichotomy: well-formed requests succeed, malformed traffic draws a
//! structured error frame or a clean teardown, and the daemon keeps
//! serving throughout — no deaths, no poisoned workers, no leaked queue
//! slots.
//!
//! A seventh layer ([`harness::run_absint_layer`]) turns the IR mutants
//! on the *abstract interpreter* (`rfh_analysis::absint`) and its
//! last-use hint pass: on every surviving mutant, the analyses must be
//! panic-free, every derived claim must hold on the concrete execution —
//! written values inside predicted intervals, affine forms bit-exact,
//! uniform-marked registers never divergent across a warp, predicate
//! knowledge and reachability respected, and no read ever following a
//! read the analysis proved final — and hint-guided allocation must be
//! semantics-preserving under the differential contract.
//!
//! An eighth layer ([`harness::run_timing_layer`]) corrupts *captured
//! timing traces* and their scheduler configs ([`trace`]) — reordered
//! ops, perturbed latency classes, scrambled dependences, truncated warp
//! streams, unbalanced barriers, degenerate configs — and replays every
//! mutant through both timing engines (the staged combinator engine and
//! the frozen reference oracle): surviving traces must agree exactly on
//! the `TimingResult`, malformed ones must produce field-for-field
//! identical structured errors, deadlock snapshots included.
//!
//! Every case derives its RNG seed from a base seed via SplitMix64, so a
//! failure report pinpoints one replayable case. Set `RFH_TESTKIT_SEED`
//! to override the base seed and `RFH_CHAOS_CASES` to scale the case
//! budget (CI smoke runs use a small budget; the defaults exercise at
//! least 1000 mutants per layer).

pub mod byte;
pub mod harness;
pub mod ir;
pub mod place;
pub mod trace;
pub mod wire;

pub use harness::{
    cases_from_env, run_absint_layer, run_byte_layer, run_exec_differential_layer, run_ir_layer,
    run_lint_layer, run_place_layer, run_protocol_layer, run_timing_layer, seed_from_env,
    ChaosReport,
};
