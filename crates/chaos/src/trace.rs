//! Seeded mutators for captured timing traces and scheduler configs.
//!
//! These corrupt the *input of the timing model* — the per-warp dynamic
//! instruction streams a [`rfh_sim::timing::TraceCapture`] produces, and
//! the [`TimingConfig`] they replay under — the way [`crate::ir`]
//! corrupts kernels. The timing chaos layer
//! ([`crate::harness::run_timing_layer`]) drives every mutant through
//! *both* timing engines: surviving traces must produce identical
//! results, malformed ones (unbalanced barriers, degenerate configs,
//! starved budgets) must produce identical structured errors.
//!
//! Mutation kinds: reordered ops, perturbed latency classes (including
//! long-flag flips that move an op between the deschedule and
//! wait-in-place paths), scrambled operand registers, duplicated and
//! dropped ops, truncated and emptied warp streams, inserted and removed
//! barriers, and config corruptions (zero/oversized active sets, zeroed
//! latency classes, starved cycle budgets, policy and bank-geometry
//! flips).

use rfh_sim::timing::{BankPolicy, SchedPolicy, TimingConfig, TraceOp};
use rfh_testkit::prelude::*;

use rfh_isa::Unit;

/// Applies 1–3 random mutations to a trace set and its config.
///
/// Mutations can be no-ops on degenerate inputs (an empty trace set has
/// nothing to reorder); the harness classifies those as *unchanged* by
/// comparing against the originals.
pub fn mutate_timing(traces: &mut [Vec<TraceOp>], config: &mut TimingConfig, rng: &mut SmallRng) {
    for _ in 0..rng.gen_range(1..=3usize) {
        match rng.gen_range(0..12u32) {
            0 => reorder_ops(traces, rng),
            1 => perturb_latency(traces, rng),
            2 => flip_long(traces, rng),
            3 => swap_unit(traces, rng),
            4 => scramble_operands(traces, rng),
            5 => duplicate_op(traces, rng),
            6 => drop_op(traces, rng),
            7 => truncate_warp(traces, rng),
            8 => insert_barrier(traces, rng),
            9 => remove_barrier(traces, rng),
            10 => corrupt_active_set(config, rng),
            _ => corrupt_config(config, rng),
        }
    }
}

/// A random warp index with a nonempty trace, if any.
fn nonempty_warp(traces: &[Vec<TraceOp>], rng: &mut SmallRng) -> Option<usize> {
    let candidates: Vec<usize> = (0..traces.len())
        .filter(|&w| !traces[w].is_empty())
        .collect();
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.gen_range(0..candidates.len())])
    }
}

/// Swaps two ops within one warp's stream (a hazard-reordering fault).
fn reorder_ops(traces: &mut [Vec<TraceOp>], rng: &mut SmallRng) {
    if let Some(w) = nonempty_warp(traces, rng) {
        let t = &mut traces[w];
        let a = rng.gen_range(0..t.len());
        let b = rng.gen_range(0..t.len());
        t.swap(a, b);
    }
}

/// Rewrites one op's latency to another class's value (or an arbitrary
/// one), desynchronizing latency from unit.
fn perturb_latency(traces: &mut [Vec<TraceOp>], rng: &mut SmallRng) {
    if let Some(w) = nonempty_warp(traces, rng) {
        let t = &mut traces[w];
        let i = rng.gen_range(0..t.len());
        t[i].latency = match rng.gen_range(0..6u32) {
            0 => 1,
            1 => 8,
            2 => 20,
            3 => 400,
            4 => rng.gen_range(1..=997),
            // Latency 0 would mean a result ready the cycle it issues;
            // the engines must still terminate and agree.
            _ => rng.gen_range(0..=1),
        };
    }
}

/// Flips one op's long-latency flag, moving it between the
/// deschedule-on-dependence and wait-in-place scheduler paths.
fn flip_long(traces: &mut [Vec<TraceOp>], rng: &mut SmallRng) {
    if let Some(w) = nonempty_warp(traces, rng) {
        let t = &mut traces[w];
        let i = rng.gen_range(0..t.len());
        t[i].long = !t[i].long;
    }
}

/// Reassigns one op to a different execution unit (shared-datapath
/// pressure appears or disappears).
fn swap_unit(traces: &mut [Vec<TraceOp>], rng: &mut SmallRng) {
    if let Some(w) = nonempty_warp(traces, rng) {
        let t = &mut traces[w];
        let i = rng.gen_range(0..t.len());
        t[i].unit = [Unit::Alu, Unit::Sfu, Unit::Mem, Unit::Tex][rng.gen_range(0..4)];
    }
}

/// Rewrites one op's register operands (dependence edges move).
fn scramble_operands(traces: &mut [Vec<TraceOp>], rng: &mut SmallRng) {
    if let Some(w) = nonempty_warp(traces, rng) {
        let t = &mut traces[w];
        let i = rng.gen_range(0..t.len());
        for d in t[i].dsts.iter_mut() {
            if rng.gen::<bool>() {
                *d = if rng.gen_range(0..4u32) == 0 {
                    None
                } else {
                    Some(rng.gen_range(0..64u16))
                };
            }
        }
        for s in t[i].srcs.iter_mut() {
            if rng.gen::<bool>() {
                *s = if rng.gen_range(0..4u32) == 0 {
                    None
                } else {
                    Some(rng.gen_range(0..64u16))
                };
            }
        }
    }
}

/// Duplicates one op in place (double-issue fault; duplicating a barrier
/// unbalances the CTA).
fn duplicate_op(traces: &mut [Vec<TraceOp>], rng: &mut SmallRng) {
    if let Some(w) = nonempty_warp(traces, rng) {
        let t = &mut traces[w];
        let i = rng.gen_range(0..t.len());
        let op = t[i];
        t.insert(i, op);
    }
}

/// Drops one op (dropping a barrier unbalances the CTA).
fn drop_op(traces: &mut [Vec<TraceOp>], rng: &mut SmallRng) {
    if let Some(w) = nonempty_warp(traces, rng) {
        let t = &mut traces[w];
        let i = rng.gen_range(0..t.len());
        t.remove(i);
    }
}

/// Truncates one warp's stream — possibly to empty — as if the capture
/// was cut short mid-kernel.
fn truncate_warp(traces: &mut [Vec<TraceOp>], rng: &mut SmallRng) {
    if let Some(w) = nonempty_warp(traces, rng) {
        let t = &mut traces[w];
        let keep = rng.gen_range(0..t.len());
        t.truncate(keep);
    }
}

/// Inserts a barrier into one warp (its CTA peers never arrive).
fn insert_barrier(traces: &mut [Vec<TraceOp>], rng: &mut SmallRng) {
    if let Some(w) = nonempty_warp(traces, rng) {
        let t = &mut traces[w];
        let i = rng.gen_range(0..=t.len());
        t.insert(
            i,
            TraceOp {
                latency: 1,
                unit: Unit::Alu,
                long: false,
                barrier: true,
                dsts: [None, None],
                srcs: [None, None, None],
            },
        );
    }
}

/// Strips the barrier flag from one barrier op, if the chosen warp has
/// any (its CTA peers wait forever).
fn remove_barrier(traces: &mut [Vec<TraceOp>], rng: &mut SmallRng) {
    if let Some(w) = nonempty_warp(traces, rng) {
        let t = &mut traces[w];
        let barriers: Vec<usize> = (0..t.len()).filter(|&i| t[i].barrier).collect();
        if !barriers.is_empty() {
            t[barriers[rng.gen_range(0..barriers.len())]].barrier = false;
        }
    }
}

/// Corrupts the active-set size: zero, over-resident, or a random size
/// (the first two must be rejected up front by config validation).
fn corrupt_active_set(config: &mut TimingConfig, rng: &mut SmallRng) {
    config.two_level = true;
    config.active_warps = match rng.gen_range(0..3u32) {
        0 => 0,
        1 => config.machine.resident_warps + rng.gen_range(1..=8),
        _ => rng.gen_range(1..=config.machine.resident_warps),
    };
}

/// Corrupts other config knobs: zeroed latency classes (rejected),
/// starved cycle budgets (structured budget errors), policy flips and
/// bank-geometry faults.
fn corrupt_config(config: &mut TimingConfig, rng: &mut SmallRng) {
    match rng.gen_range(0..8u32) {
        0 => config.machine.alu_latency = 0,
        1 => config.machine.dram_latency = 0,
        2 => config.machine.shared_mem_latency = 0,
        3 => config.max_cycles = rng.gen_range(0..=200),
        4 => config.policy = SchedPolicy::Greedy,
        5 => config.policy = SchedPolicy::RoundRobin,
        6 => {
            // Degenerate bank geometry: both engines reject it with the
            // same structured error. (A *valid* arbitrated MRF is a
            // staged-only feature and deliberately out of scope for the
            // cross-engine layer — the reference oracle predates banks.)
            let (banks, depth) = if rng.gen::<bool>() {
                (0, rng.gen_range(0..=4))
            } else {
                (rng.gen_range(1..=8), 0)
            };
            config.bank_policy = BankPolicy::Arbitrated { banks, depth };
        }
        _ => config.machine.shared_issue_cycles = rng.gen_range(0..=16),
    }
}
