//! Deterministic pseudo-random number generation.
//!
//! A self-contained replacement for the slice of the `rand` crate this
//! workspace uses: [`SmallRng`] (xoshiro256++ seeded through SplitMix64),
//! the [`SeedableRng`]/[`Rng`] traits, uniform ranges via
//! [`Rng::gen_range`], and standard-distribution sampling via [`Rng::gen`].
//!
//! The generator and its sampling algorithms reproduce the value streams of
//! `rand` 0.8's `SmallRng` on 64-bit targets (same seed expansion, same
//! engine, same Lemire widening-multiply range reduction, same `[1, 2)`
//! mantissa trick for floats), so data baked into the committed
//! `results/*.csv` golden files — all of which flows through
//! `seed_from_u64` + `gen_range` — is unchanged by the migration off the
//! external crate.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 (Steele, Lea, Flood 2014): a tiny 64-bit generator with a
/// trivially seedable single word of state.
///
/// Used to expand one-word seeds into [`SmallRng`] state, and as the
/// harness's internal stream-splitting mixer; also usable directly.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A new stream starting from `seed`.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

/// One SplitMix64 output step (also the finalizer used for seed mixing).
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

/// xoshiro256++ (Blackman, Vigna 2018): the workspace's workhorse
/// generator. Fast, 256 bits of state, passes BigCrush.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    /// Expands `seed` into full state with SplitMix64, per the xoshiro
    /// authors' recommendation (and bit-identically to `rand 0.8`).
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut state);
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A type samplable from raw bits with no further parameters (the `rand`
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> bool {
        // High bit of a u32 draw (matches `rand`'s choice of an
        // arbitrary-but-high-quality bit).
        (rng.next_u32() as i32) < 0
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard(rng: &mut dyn RngCore) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard(rng: &mut dyn RngCore) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}
standard_int!(
    u8 => next_u32, i8 => next_u32, u16 => next_u32, i16 => next_u32,
    u32 => next_u32, i32 => next_u32,
    u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64,
);

/// A type with a uniform sampler over half-open and inclusive ranges.
pub trait SampleUniform: Sized {
    /// Uniform draw from `lo..hi` (panics if empty).
    fn sample_range(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
    /// Uniform draw from `lo..=hi` (panics if empty).
    fn sample_range_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if it is empty.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range_inclusive(lo, hi, rng)
    }
}

// Uniform integers via Lemire's widening-multiply reduction with rejection
// (identical acceptance zones to `rand` 0.8's `sample_single` /
// `sample_single_inclusive`, so streams line up).
macro_rules! int_uniform {
    ($($t:ty => $u:ty, $large:ty, $wide:ty, $draw:ident, $widened:expr);* $(;)?) => {$(
        impl SampleUniform for $t {
            fn sample_range(lo: $t, hi: $t, rng: &mut dyn RngCore) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let range = (hi as $u).wrapping_sub(lo as $u) as $large;
                let zone = if $widened {
                    let ints_to_reject = (<$large>::MAX - range + 1) % range;
                    <$large>::MAX - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v = rng.$draw() as $large;
                    let m = v as $wide * range as $wide;
                    let (hi_w, lo_w) = ((m >> <$large>::BITS) as $large, m as $large);
                    if lo_w <= zone {
                        return lo.wrapping_add(hi_w as $t);
                    }
                }
            }
            fn sample_range_inclusive(lo: $t, hi: $t, rng: &mut dyn RngCore) -> $t {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let range = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1) as $large;
                if range == 0 {
                    // Span covers the whole type.
                    return <$t>::sample_standard(rng);
                }
                let zone = if $widened {
                    let ints_to_reject = (<$large>::MAX - range + 1) % range;
                    <$large>::MAX - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v = rng.$draw() as $large;
                    let m = v as $wide * range as $wide;
                    let (hi_w, lo_w) = ((m >> <$large>::BITS) as $large, m as $large);
                    if lo_w <= zone {
                        return lo.wrapping_add(hi_w as $t);
                    }
                }
            }
        }
    )*};
}
int_uniform!(
    u8 => u8, u32, u64, next_u32, true;
    i8 => u8, u32, u64, next_u32, true;
    u16 => u16, u32, u64, next_u32, true;
    i16 => u16, u32, u64, next_u32, true;
    u32 => u32, u32, u64, next_u32, false;
    i32 => u32, u32, u64, next_u32, false;
    u64 => u64, u64, u128, next_u64, false;
    i64 => u64, u64, u128, next_u64, false;
    usize => usize, u64, u128, next_u64, false;
    isize => usize, u64, u128, next_u64, false;
);

macro_rules! float_uniform {
    ($($t:ty => $draw:ident, $discard:expr, $one_exp:expr);* $(;)?) => {$(
        impl SampleUniform for $t {
            fn sample_range(lo: $t, hi: $t, rng: &mut dyn RngCore) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let mut scale = hi - lo;
                loop {
                    // Mantissa bits with the exponent of 1.0 give a uniform
                    // value in [1, 2); shift down to [0, 1).
                    let value1_2 =
                        <$t>::from_bits((rng.$draw() >> $discard) | $one_exp);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + lo;
                    if res < hi {
                        return res;
                    }
                    // `res` rounded up to `hi`: retry with the next
                    // smaller scale.
                    scale = <$t>::from_bits(scale.to_bits() - 1);
                }
            }
            fn sample_range_inclusive(lo: $t, hi: $t, rng: &mut dyn RngCore) -> $t {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let scale = hi - lo;
                let value1_2 = <$t>::from_bits((rng.$draw() >> $discard) | $one_exp);
                let res = (value1_2 - 1.0) * scale + lo;
                if res > hi { hi } else { res }
            }
        }
    )*};
}
float_uniform!(
    f32 => next_u32, 9u32, 0x3f80_0000u32;
    f64 => next_u64, 12u64, 0x3ff0_0000_0000_0000u64;
);

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A draw from the standard distribution of `T` (full integer range,
    /// fair `bool`, `[0, 1)` floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vectors() {
        // Reference outputs for seed 0 from the public-domain
        // splitmix64.c reference implementation.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(rng.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(rng.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn small_rng_is_deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = rng.gen_range(-17i32..53);
            assert!((-17..53).contains(&v));
            let u = rng.gen_range(3u16..=9);
            assert!((3..=9).contains(&u));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let s = rng.gen_range(0usize..5);
            assert!(s < 5);
        }
    }

    #[test]
    fn full_span_inclusive_range_works() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10 {
            let _: u8 = rng.gen_range(0u8..=u8::MAX);
            let _: u64 = rng.gen_range(0u64..=u64::MAX);
        }
    }

    #[test]
    fn ranges_cover_their_support() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(4);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4000..6000).contains(&trues), "{trues}");
    }

    #[test]
    fn unit_floats_stay_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }
}
