//! Shared kernel-text corpus.
//!
//! One canonical list of `.rfasm` sources used by both the parser fuzz
//! tests (`crates/isa/tests/parse_fuzz.rs`) and the lint golden report
//! (`src/bin/lint_report.rs`), so the two stay in sync: every shape the
//! parser is fuzzed over is also linted, and the golden diagnostics file
//! covers exactly the fuzz corpus.

/// Kernel sources the parser fuzzers mutate and the lint report covers:
/// a straight-line kernel, a branchy/predicated kernel, and degenerate
/// inputs that must be rejected structurally rather than by panicking.
pub const KERNELS: &[&str] = &[
    // A straight-line kernel.
    "
.kernel axpy
BB0:
  mov r0, %tid.x
  ld.param r1 0
  iadd r2 r1, r0
  ld.global r3 r2
  ffma r4 r3, 2.5f, r3
  st.global r2, r4
  exit
",
    // Branches, predicates, wide loads, strand-end markers.
    "
.kernel loopy
BB0:
  mov r7, 0
BB1:
  ld.shared r4.w64 r7
  fmul r8 r5, r5 !
  fadd r5 r8, 1.0f
  iadd r7 r7, 1
  setp.lt p0 r7, 4
  @p0 bra BB1
BB2:
  st.global r0, r5
  exit
",
    // Degenerate inputs.
    "",
    "\n\n\n",
    ".kernel x\n",
    "BB0:\n  exit\n",
];
