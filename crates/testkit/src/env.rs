//! Environment-variable knob parsing, in one place.
//!
//! Every runtime knob of the test/experiment infrastructure (`RFH_JOBS`,
//! `RFH_CHAOS_CASES`, `RFH_TESTKIT_SEED`, `RFH_BENCH_*`) is read through
//! these helpers. The contract, uniform across all knobs:
//!
//! * an **unset** variable falls back to the caller's default silently;
//! * a **malformed** value warns loudly on stderr, quoting the offending
//!   string, and then falls back — it is never silently ignored, and it
//!   never panics (historically each call site picked one of the three
//!   behaviors at random);
//! * integer knobs accept decimal and `0x`-prefixed hexadecimal, so the
//!   seeds printed in failure reports (`seed 0x…`) can be pasted back
//!   into `RFH_TESTKIT_SEED` verbatim.

/// Reads a string-valued knob. Never warns: any present value is valid.
pub fn string(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

/// Reads a `u64` knob (decimal or `0x`-prefixed hex), warning loudly on a
/// malformed value and falling back to `None`.
pub fn u64_knob(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(&hex.replace('_', ""), 16),
        None => raw.replace('_', "").parse(),
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!(
                "warning: {name}={raw:?} is not a valid integer (decimal or 0x-hex); \
                 falling back to the default"
            );
            None
        }
    }
}

/// Reads a `usize` knob, warning loudly on a malformed value and falling
/// back to `None`.
pub fn usize_knob(name: &str) -> Option<usize> {
    u64_knob(name).and_then(|v| {
        usize::try_from(v)
            .map_err(|_| {
                eprintln!(
                    "warning: {name}={v} does not fit in usize; \
                     falling back to the default"
                );
            })
            .ok()
    })
}

/// Reads a `usize` knob that must be at least 1 (worker counts, sample
/// counts). Zero is malformed: it warns and falls back like any other bad
/// value.
pub fn positive_usize_knob(name: &str) -> Option<usize> {
    match usize_knob(name) {
        Some(0) => {
            eprintln!(
                "warning: {name}=0 is not a valid count (must be >= 1); \
                 falling back to the default"
            );
            None
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test uses a unique variable name: tests run concurrently in one
    // process and share the environment.

    #[test]
    fn unset_is_none() {
        assert_eq!(u64_knob("RFH_TEST_ENV_UNSET"), None);
        assert_eq!(string("RFH_TEST_ENV_UNSET"), None);
    }

    #[test]
    fn decimal_parses() {
        std::env::set_var("RFH_TEST_ENV_DEC", "1234");
        assert_eq!(u64_knob("RFH_TEST_ENV_DEC"), Some(1234));
        assert_eq!(usize_knob("RFH_TEST_ENV_DEC"), Some(1234));
    }

    #[test]
    fn hex_parses() {
        std::env::set_var("RFH_TEST_ENV_HEX", "0x15A_F022");
        assert_eq!(u64_knob("RFH_TEST_ENV_HEX"), Some(0x15A_F022));
    }

    #[test]
    fn malformed_warns_and_falls_back() {
        std::env::set_var("RFH_TEST_ENV_BAD", "not-a-number");
        assert_eq!(u64_knob("RFH_TEST_ENV_BAD"), None);
        assert_eq!(usize_knob("RFH_TEST_ENV_BAD"), None);
    }

    #[test]
    fn zero_is_rejected_for_positive_knobs() {
        std::env::set_var("RFH_TEST_ENV_ZERO", "0");
        assert_eq!(usize_knob("RFH_TEST_ENV_ZERO"), Some(0));
        assert_eq!(positive_usize_knob("RFH_TEST_ENV_ZERO"), None);
    }

    #[test]
    fn string_passes_through() {
        std::env::set_var("RFH_TEST_ENV_STR", "/tmp/out.json");
        assert_eq!(string("RFH_TEST_ENV_STR"), Some("/tmp/out.json".into()));
    }
}
