//! Environment-variable knob parsing, in one place.
//!
//! Every runtime knob of the test/experiment infrastructure (`RFH_JOBS`,
//! `RFH_CHAOS_CASES`, `RFH_TESTKIT_SEED`, `RFH_BENCH_*`) is read through
//! these helpers. The contract, uniform across all knobs:
//!
//! * an **unset** variable falls back to the caller's default silently;
//! * a **malformed** value warns loudly on stderr, quoting the offending
//!   string, and then falls back — it is never silently ignored, and it
//!   never panics (historically each call site picked one of the three
//!   behaviors at random);
//! * integer knobs accept decimal and `0x`-prefixed hexadecimal, so the
//!   seeds printed in failure reports (`seed 0x…`) can be pasted back
//!   into `RFH_TESTKIT_SEED` verbatim.

/// Reads a string-valued knob. Never warns: any present value is valid.
pub fn string(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

/// Parses a raw integer string under the knob grammar (decimal or
/// `0x`-prefixed hex, `_` separators allowed), warning loudly on a
/// malformed value and falling back to `None`.
///
/// `what` names the source in the warning — an environment variable
/// (`"RFH_JOBS"`) or a CLI flag (`"--jobs"`) — so command-line arguments
/// parsed through this helper misbehave *identically* to env knobs.
pub fn parse_u64(what: &str, raw: &str) -> Option<u64> {
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(&hex.replace('_', ""), 16),
        None => raw.replace('_', "").parse(),
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!(
                "warning: {what}={raw:?} is not a valid integer (decimal or 0x-hex); \
                 falling back to the default"
            );
            None
        }
    }
}

/// [`parse_u64`] narrowed to `usize`, with the same loud-warning contract.
pub fn parse_usize(what: &str, raw: &str) -> Option<usize> {
    parse_u64(what, raw).and_then(|v| {
        usize::try_from(v)
            .map_err(|_| {
                eprintln!(
                    "warning: {what}={v} does not fit in usize; \
                     falling back to the default"
                );
            })
            .ok()
    })
}

/// [`parse_usize`] that additionally rejects zero (worker counts, sample
/// counts), warning and falling back like any other bad value.
pub fn parse_positive_usize(what: &str, raw: &str) -> Option<usize> {
    match parse_usize(what, raw) {
        Some(0) => {
            eprintln!(
                "warning: {what}=0 is not a valid count (must be >= 1); \
                 falling back to the default"
            );
            None
        }
        other => other,
    }
}

/// Reads a `u64` knob (decimal or `0x`-prefixed hex), warning loudly on a
/// malformed value and falling back to `None`.
pub fn u64_knob(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    parse_u64(name, &raw)
}

/// Reads a `usize` knob, warning loudly on a malformed value and falling
/// back to `None`.
pub fn usize_knob(name: &str) -> Option<usize> {
    let raw = std::env::var(name).ok()?;
    parse_usize(name, &raw)
}

/// Reads a `usize` knob that must be at least 1 (worker counts, sample
/// counts). Zero is malformed: it warns and falls back like any other bad
/// value.
pub fn positive_usize_knob(name: &str) -> Option<usize> {
    let raw = std::env::var(name).ok()?;
    parse_positive_usize(name, &raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test uses a unique variable name: tests run concurrently in one
    // process and share the environment.

    #[test]
    fn unset_is_none() {
        assert_eq!(u64_knob("RFH_TEST_ENV_UNSET"), None);
        assert_eq!(string("RFH_TEST_ENV_UNSET"), None);
    }

    #[test]
    fn decimal_parses() {
        std::env::set_var("RFH_TEST_ENV_DEC", "1234");
        assert_eq!(u64_knob("RFH_TEST_ENV_DEC"), Some(1234));
        assert_eq!(usize_knob("RFH_TEST_ENV_DEC"), Some(1234));
    }

    #[test]
    fn hex_parses() {
        std::env::set_var("RFH_TEST_ENV_HEX", "0x15A_F022");
        assert_eq!(u64_knob("RFH_TEST_ENV_HEX"), Some(0x15A_F022));
    }

    #[test]
    fn malformed_warns_and_falls_back() {
        std::env::set_var("RFH_TEST_ENV_BAD", "not-a-number");
        assert_eq!(u64_knob("RFH_TEST_ENV_BAD"), None);
        assert_eq!(usize_knob("RFH_TEST_ENV_BAD"), None);
    }

    #[test]
    fn zero_is_rejected_for_positive_knobs() {
        std::env::set_var("RFH_TEST_ENV_ZERO", "0");
        assert_eq!(usize_knob("RFH_TEST_ENV_ZERO"), Some(0));
        assert_eq!(positive_usize_knob("RFH_TEST_ENV_ZERO"), None);
    }

    #[test]
    fn string_passes_through() {
        std::env::set_var("RFH_TEST_ENV_STR", "/tmp/out.json");
        assert_eq!(string("RFH_TEST_ENV_STR"), Some("/tmp/out.json".into()));
    }

    #[test]
    fn raw_parsers_share_the_knob_grammar() {
        assert_eq!(parse_u64("--jobs", "8"), Some(8));
        assert_eq!(parse_u64("--jobs", "0x1_0"), Some(16));
        assert_eq!(parse_u64("--jobs", "eight"), None);
        assert_eq!(parse_usize("--jobs", "4"), Some(4));
        assert_eq!(parse_positive_usize("--jobs", "0"), None);
        assert_eq!(parse_positive_usize("--jobs", "2"), Some(2));
    }
}
