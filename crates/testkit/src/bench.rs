//! A minimal wall-clock micro-benchmark harness.
//!
//! Mirrors the slice of the `criterion` API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`Throughput`],
//! [`BatchSize`], and the
//! [`criterion_group!`](crate::criterion_group)/
//! [`criterion_main!`](crate::criterion_main) macros — with a
//! median-of-samples measurement loop and machine-readable JSON output.
//!
//! Each benchmark: a warmup phase sizes the per-sample iteration count so
//! one sample lasts roughly `RFH_BENCH_SAMPLE_MS` (default 20 ms), then
//! `sample_size` samples are taken and the median/mean/min per-iteration
//! times reported.
//!
//! Environment variables:
//!
//! * `RFH_BENCH_JSON=<path>` — additionally write all results as JSON
//!   (schema: `{"benchmarks": [{"group", "name", "median_ns", "mean_ns",
//!   "min_ns", "samples", "iters_per_sample", "throughput_elems"}]}`),
//!   the format tracked by future `BENCH_*.json` baselines.
//! * `RFH_BENCH_SAMPLE_MS` — target milliseconds per sample.
//! * `RFH_BENCH_SAMPLES` — override every group's `sample_size`.
//!
//! Passing `--test` (as `cargo test` does for `harness = false` bench
//! targets) runs every routine exactly once, unmeasured, as a smoke test.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How expensive batched setup is; accepted for API compatibility (the
/// harness always runs setup un-timed, once per measured call).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: many per batch in criterion; here informational only.
    SmallInput,
    /// Large inputs: one per batch in criterion; here informational only.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

#[derive(Debug, Clone)]
struct Report {
    group: String,
    name: String,
    median_ns: f64,
    mean_ns: f64,
    min_ns: f64,
    samples: usize,
    iters_per_sample: u64,
    throughput_elems: Option<u64>,
}

/// Top-level benchmark driver; owns all collected results.
pub struct Criterion {
    reports: Vec<Report>,
    test_mode: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Builds a driver from the process arguments (`--test` selects smoke
    /// mode; a bare argument filters benchmarks by substring; other
    /// harness flags are accepted and ignored).
    pub fn from_args() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" | "--nocapture" | "-q" | "--quiet" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            reports: Vec::new(),
            test_mode,
            filter,
        }
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: default_samples(),
            throughput: None,
        }
    }

    /// Prints the summary and writes `RFH_BENCH_JSON` if requested. Called
    /// by [`criterion_main!`](crate::criterion_main).
    pub fn finish_all(self) {
        if let Some(path) = crate::env::string("RFH_BENCH_JSON") {
            let json = self.to_json();
            std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("[bench json written to {path}]");
        }
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\"benchmarks\":[");
        for (i, r) in self.reports.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"group\":\"{}\",\"name\":\"{}\",\"median_ns\":{:.1},\
                 \"mean_ns\":{:.1},\"min_ns\":{:.1},\"samples\":{},\
                 \"iters_per_sample\":{},\"throughput_elems\":{}}}",
                escape(&r.group),
                escape(&r.name),
                r.median_ns,
                r.mean_ns,
                r.min_ns,
                r.samples,
                r.iters_per_sample,
                r.throughput_elems
                    .map_or("null".to_string(), |e| e.to_string()),
            ));
        }
        out.push_str("]}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn default_samples() -> usize {
    crate::env::positive_usize_knob("RFH_BENCH_SAMPLES").unwrap_or(10)
}

fn target_sample_time() -> Duration {
    Duration::from_millis(crate::env::u64_knob("RFH_BENCH_SAMPLE_MS").unwrap_or(20))
}

/// A named group of benchmarks sharing sample-count and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if crate::env::string("RFH_BENCH_SAMPLES").is_none() {
            self.sample_size = n.max(2);
        }
        self
    }

    /// Annotates per-iteration throughput for the following benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measures one benchmark; `f` drives the provided [`Bencher`].
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if let Some(filter) = &self.criterion.filter {
            if !format!("{}/{}", self.name, id).contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size,
            measurement: None,
        };
        f(&mut bencher);
        let Some(m) = bencher.measurement else {
            // Test mode, or `f` never called iter(): nothing to report.
            if self.criterion.test_mode {
                println!("{}/{}: ok (smoke)", self.name, id);
            }
            return self;
        };
        let elems = match self.throughput {
            Some(Throughput::Elements(e)) => Some(e),
            _ => None,
        };
        let mut line = format!(
            "{}/{}: median {} mean {} min {} ({} samples x {} iters)",
            self.name,
            id,
            fmt_ns(m.median_ns),
            fmt_ns(m.mean_ns),
            fmt_ns(m.min_ns),
            m.samples,
            m.iters_per_sample,
        );
        if let Some(e) = elems {
            let per_sec = e as f64 / (m.median_ns * 1e-9);
            line += &format!("  [{per_sec:.3e} elem/s]");
        }
        println!("{line}");
        self.criterion.reports.push(Report {
            group: self.name.clone(),
            name: id,
            median_ns: m.median_ns,
            mean_ns: m.mean_ns,
            min_ns: m.min_ns,
            samples: m.samples,
            iters_per_sample: m.iters_per_sample,
            throughput_elems: elems,
        });
        self
    }

    /// Ends the group (all reporting already happened incrementally).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    median_ns: f64,
    mean_ns: f64,
    min_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// Passed to the benchmark closure; runs and times the routine.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    measurement: Option<Measurement>,
}

impl Bencher {
    /// Times `routine` (median over samples of many iterations each).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Warmup: estimate the per-iteration cost.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_iters < 3 || warmup_start.elapsed() < Duration::from_millis(5) {
            std::hint::black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = (warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64).max(1.0);
        let iters = ((target_sample_time().as_nanos() as f64 / est_ns) as u64).clamp(1, 10_000_000);

        let mut per_iter_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.record(per_iter_ns, iters);
    }

    /// Times `routine` on fresh inputs from `setup`; setup cost is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            std::hint::black_box(routine(setup()));
            return;
        }
        let input = setup();
        let warmup_start = Instant::now();
        std::hint::black_box(routine(input));
        let est_ns = (warmup_start.elapsed().as_nanos() as f64).max(1.0);
        let iters = ((target_sample_time().as_nanos() as f64 / est_ns) as u64).clamp(1, 100_000);

        let mut per_iter_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                elapsed += start.elapsed();
            }
            per_iter_ns.push(elapsed.as_nanos() as f64 / iters as f64);
        }
        self.record(per_iter_ns, iters);
    }

    fn record(&mut self, mut per_iter_ns: Vec<f64>, iters: u64) {
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let n = per_iter_ns.len();
        let median_ns = if n % 2 == 1 {
            per_iter_ns[n / 2]
        } else {
            (per_iter_ns[n / 2 - 1] + per_iter_ns[n / 2]) / 2.0
        };
        self.measurement = Some(Measurement {
            median_ns,
            mean_ns: per_iter_ns.iter().sum::<f64>() / n as f64,
            min_ns: per_iter_ns[0],
            samples: n,
            iters_per_sample: iters,
        });
    }
}

/// Declares a benchmark group function, `criterion`-style:
/// `criterion_group!(name, bench_fn_a, bench_fn_b)` defines
/// `fn name(&mut Criterion)` running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(criterion: &mut $crate::bench::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group declared
/// with [`criterion_group!`](crate::criterion_group).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::bench::Criterion::from_args();
            $($group(&mut criterion);)+
            criterion.finish_all();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_criterion() -> Criterion {
        Criterion {
            reports: Vec::new(),
            test_mode: false,
            filter: None,
        }
    }

    #[test]
    fn iter_measures_and_records() {
        let mut c = quiet_criterion();
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(3);
            g.bench_function("spin", |b| {
                b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()))
            });
            g.finish();
        }
        assert_eq!(c.reports.len(), 1);
        let r = &c.reports[0];
        assert!(r.median_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
        assert_eq!(r.samples, 3);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = quiet_criterion();
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(3);
            g.bench_function("batched", |b| {
                b.iter_batched(
                    || vec![1u64; 64],
                    |v| v.iter().sum::<u64>(),
                    BatchSize::SmallInput,
                )
            });
        }
        assert_eq!(c.reports.len(), 1);
    }

    #[test]
    fn json_output_is_well_formed() {
        let mut c = quiet_criterion();
        c.reports.push(Report {
            group: "g".into(),
            name: "n\"q".into(),
            median_ns: 12.5,
            mean_ns: 13.0,
            min_ns: 11.0,
            samples: 5,
            iters_per_sample: 100,
            throughput_elems: Some(42),
        });
        let json = c.to_json();
        assert!(json.starts_with("{\"benchmarks\":[{"));
        assert!(json.contains("\"name\":\"n\\\"q\""));
        assert!(json.contains("\"throughput_elems\":42"));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn test_mode_runs_routine_once_without_measuring() {
        let mut c = quiet_criterion();
        c.test_mode = true;
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("unit");
            g.bench_function("smoke", |b| b.iter(|| runs += 1));
        }
        assert_eq!(runs, 1);
        assert!(c.reports.is_empty());
    }
}
