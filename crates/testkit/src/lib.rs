#![warn(missing_docs)]

//! # rfh-testkit — hermetic test infrastructure
//!
//! Zero-dependency replacements for the external test crates the RFH
//! workspace historically pulled from crates.io, so the whole workspace
//! builds and tests with an empty cargo registry (`--offline`):
//!
//! * [`rng`] — deterministic PRNG ([`rng::SmallRng`]: xoshiro256++ seeded
//!   via SplitMix64) with a [`rng::Rng`] trait mirroring the `rand`
//!   surface the workspace uses, stream-compatible with `rand` 0.8 so
//!   seeded workload data (and the golden `results/*.csv`) is unchanged;
//! * [`strategy`] + [`prop`] — a property-testing harness
//!   ([`prop!`](crate::prop), [`prop_assert!`](crate::prop_assert),
//!   [`prop_oneof!`](crate::prop_oneof), [`strategy::collection::vec`],
//!   [`strategy::option::of`]) with greedy input shrinking and
//!   fixed-seed reproduction via `RFH_TESTKIT_SEED`;
//! * [`bench`] — a wall-clock micro-benchmark harness mirroring the
//!   `criterion` API the benches use, with JSON output for baseline
//!   tracking;
//! * [`pool`] — a scoped thread pool ([`pool::par_map`]) used by the
//!   experiment engine and the chaos harness to fan sweeps out across
//!   cores (`RFH_JOBS` knob) while keeping results in input order, so
//!   parallel runs stay byte-identical to serial ones;
//! * [`env`] — the single home for environment-variable knob parsing
//!   (`RFH_JOBS`, `RFH_CHAOS_CASES`, `RFH_TESTKIT_SEED`, `RFH_BENCH_*`):
//!   malformed values warn loudly with the offending string instead of
//!   silently falling back or panicking;
//! * [`corpus`] — the kernel-text corpus shared by the parser fuzz tests
//!   and the lint golden report.
//!
//! See `docs/TESTING.md` at the repository root for the workflow guide.

pub mod bench;
pub mod corpus;
pub mod env;
pub mod pool;
pub mod prop;
pub mod rng;
pub mod shrink;
pub mod strategy;

// Mirror the `proptest::{collection, option}` module paths at the crate
// root, so test code reads the same as it did under proptest.
pub use strategy::{collection, option};

/// One-stop imports for property tests (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::rng::{Rng, RngCore, SeedableRng, SmallRng, SplitMix64};
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Strategy, StrategyExt};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_oneof};
}
