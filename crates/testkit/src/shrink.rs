//! Lazy shrink trees.
//!
//! A [`Shrinkable`] pairs a generated value with a lazily computed list of
//! "slightly smaller" candidate values, each itself a [`Shrinkable`]
//! (a lazy rose tree, as in Hedgehog-style integrated shrinking). The
//! property runner walks the tree greedily: among the current node's
//! children, the first one that still fails the property becomes the new
//! current node, until no child fails.

use std::rc::Rc;

/// A value plus its lazily computed shrink candidates, ordered most
/// aggressive first.
pub struct Shrinkable<T> {
    /// The generated value.
    pub value: T,
    children: Rc<dyn Fn() -> Vec<Shrinkable<T>>>,
}

impl<T: Clone> Clone for Shrinkable<T> {
    fn clone(&self) -> Self {
        Shrinkable {
            value: self.value.clone(),
            children: Rc::clone(&self.children),
        }
    }
}

impl<T: Clone + 'static> Shrinkable<T> {
    /// A value with no shrink candidates.
    pub fn leaf(value: T) -> Self {
        Shrinkable {
            value,
            children: Rc::new(Vec::new),
        }
    }

    /// A value with lazily computed candidates.
    pub fn new(value: T, children: impl Fn() -> Vec<Shrinkable<T>> + 'static) -> Self {
        Shrinkable {
            value,
            children: Rc::new(children),
        }
    }

    /// Computes the shrink candidates.
    pub fn shrinks(&self) -> Vec<Shrinkable<T>> {
        (self.children)()
    }

    /// Maps the whole tree through `f`.
    pub fn map<U: Clone + 'static>(&self, f: Rc<dyn Fn(&T) -> U>) -> Shrinkable<U> {
        let value = f(&self.value);
        let inner = self.clone();
        Shrinkable::new(value, move || {
            inner
                .shrinks()
                .into_iter()
                .map(|s| s.map(Rc::clone(&f)))
                .collect()
        })
    }
}

/// Combines two trees into a tree of pairs; either side shrinks
/// independently while the other is held fixed.
pub fn zip2<A, B>(a: Shrinkable<A>, b: Shrinkable<B>) -> Shrinkable<(A, B)>
where
    A: Clone + 'static,
    B: Clone + 'static,
{
    let value = (a.value.clone(), b.value.clone());
    Shrinkable::new(value, move || {
        let mut out = Vec::new();
        for sa in a.shrinks() {
            out.push(zip2(sa, b.clone()));
        }
        for sb in b.shrinks() {
            out.push(zip2(a.clone(), sb));
        }
        out
    })
}

/// Combines element trees into a tree over the `Vec` of their values.
///
/// Shrinks by truncating to the first half, dropping single elements
/// (never below `min_len`), and shrinking individual elements.
pub fn zip_vec<T: Clone + 'static>(
    elems: Vec<Shrinkable<T>>,
    min_len: usize,
) -> Shrinkable<Vec<T>> {
    let value: Vec<T> = elems.iter().map(|e| e.value.clone()).collect();
    Shrinkable::new(value, move || {
        let n = elems.len();
        let mut out = Vec::new();
        let half = n / 2;
        if half >= min_len && half < n {
            out.push(zip_vec(elems[..half].to_vec(), min_len));
        }
        if n > min_len {
            for i in 0..n {
                let mut fewer = elems.clone();
                fewer.remove(i);
                out.push(zip_vec(fewer, min_len));
            }
        }
        for i in 0..n {
            for s in elems[i].shrinks() {
                let mut smaller = elems.clone();
                smaller[i] = s;
                out.push(zip_vec(smaller, min_len));
            }
        }
        out
    })
}

/// Integer shrink candidates for `v` toward the origin `lo`: the origin
/// itself, then bisection steps from far to near (ending at `v - 1`).
pub fn int_candidates(lo: i128, v: i128) -> Vec<i128> {
    let mut out = Vec::new();
    if v == lo {
        return out;
    }
    out.push(lo);
    let mut delta = (v - lo) / 2;
    while delta > 0 {
        let c = v - delta;
        if c != lo {
            out.push(c);
        }
        delta /= 2;
    }
    out
}

/// Builds the full lazy shrink tree for an integer drawn from a range
/// starting at `lo`. `back` converts from the wide intermediate type to
/// the concrete integer type.
pub fn int_tree<T: Clone + 'static>(
    lo: i128,
    v: i128,
    back: Rc<dyn Fn(i128) -> T>,
) -> Shrinkable<T> {
    let value = back(v);
    Shrinkable::new(value, move || {
        int_candidates(lo, v)
            .into_iter()
            .map(|c| int_tree(lo, c, Rc::clone(&back)))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_candidates_move_toward_origin() {
        assert_eq!(int_candidates(0, 0), Vec::<i128>::new());
        assert_eq!(int_candidates(0, 1), vec![0]);
        let c = int_candidates(0, 100);
        assert_eq!(c[0], 0);
        assert!(c.contains(&50) && c.contains(&99));
        assert!(c.iter().all(|&x| x < 100));
        let neg = int_candidates(-10, -3);
        assert_eq!(neg[0], -10);
        assert!(neg.iter().all(|&x| (-10..-3).contains(&x)));
    }

    #[test]
    fn zip2_shrinks_each_side() {
        let a = int_tree(0, 4, Rc::new(|x| x as i32));
        let b = int_tree(0, 2, Rc::new(|x| x as i32));
        let pair = zip2(a, b);
        assert_eq!(pair.value, (4, 2));
        let shrunk: Vec<(i32, i32)> = pair.shrinks().iter().map(|s| s.value).collect();
        assert!(shrunk.contains(&(0, 2)));
        assert!(shrunk.contains(&(4, 0)));
    }

    #[test]
    fn vec_shrinks_length_and_elements() {
        let elems = vec![
            int_tree(0, 3, Rc::new(|x| x as i32)),
            int_tree(0, 5, Rc::new(|x| x as i32)),
        ];
        let v = zip_vec(elems, 1);
        assert_eq!(v.value, vec![3, 5]);
        let shrunk: Vec<Vec<i32>> = v.shrinks().iter().map(|s| s.value.clone()).collect();
        assert!(shrunk.contains(&vec![3]), "drop-half candidate");
        assert!(shrunk.contains(&vec![5]), "drop-one candidate");
        assert!(shrunk.contains(&vec![0, 5]), "element shrink candidate");
    }

    #[test]
    fn map_preserves_shrinks() {
        let t = int_tree(0, 6, Rc::new(|x| x as i32));
        let doubled = t.map(Rc::new(|v: &i32| v * 2));
        assert_eq!(doubled.value, 12);
        assert!(doubled.shrinks().iter().any(|s| s.value == 0));
    }
}
