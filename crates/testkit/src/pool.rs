//! A dependency-free scoped thread pool: [`par_map`] fans a slice out
//! over `std::thread::scope` workers and returns the results **in input
//! order**, so a parallel sweep folds to bit-identical output regardless
//! of worker count.
//!
//! Concurrency is controlled by the `RFH_JOBS` environment variable
//! (default: the machine's available parallelism; `RFH_JOBS=1` forces the
//! fully serial path). Workers pull items off a shared atomic cursor, so
//! uneven item costs balance automatically.
//!
//! Panic safety: a panicking closure can neither hang nor deadlock the
//! pool. Every item is wrapped in `catch_unwind`; after all workers have
//! joined, the payload of the first panicking item **in input order** is
//! re-raised on the calling thread (so `par_map` is drop-in for a serial
//! `.map()` even under failure, and a test can observe the panic with its
//! own `catch_unwind`).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count: `RFH_JOBS` if set to a positive integer, else the
/// machine's available parallelism, else 1. A malformed value warns on
/// stderr (see [`crate::env`]) before falling back.
pub fn jobs() -> usize {
    crate::env::positive_usize_knob("RFH_JOBS").unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Applies `f` to every item, in parallel across [`jobs`] scoped worker
/// threads, returning the results in input order.
///
/// # Panics
///
/// If `f` panics for some item, the panic payload of the first such item
/// (in input order) is re-raised here after all workers finish — never a
/// hang, never a silently dropped result.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let workers = jobs().min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, std::thread::Result<U>)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, std::thread::Result<U>)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = catch_unwind(AssertUnwindSafe(|| f(&items[i])));
                    let panicked = result.is_err();
                    local.push((i, result));
                    if panicked {
                        // Stop pulling new work; the other workers drain
                        // the remaining items and the panic is re-raised
                        // after the scope joins.
                        break;
                    }
                }
                collected
                    .lock()
                    .expect("pool results mutex (worker panics are caught before locking)")
                    .extend(local);
            });
        }
    });

    let mut slots: Vec<Option<std::thread::Result<U>>> = (0..n).map(|_| None).collect();
    for (i, r) in collected
        .into_inner()
        .expect("pool results mutex (worker panics are caught before locking)")
    {
        slots[i] = Some(r);
    }
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        match slot.expect("every index is claimed exactly once") {
            Ok(v) => out.push(v),
            Err(payload) => resume_unwind(payload),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..257).collect();
        // Uneven per-item cost exercises the work-stealing cursor.
        let out = par_map(&items, |&i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            i * 2
        });
        assert_eq!(out, items.iter().map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map(&[] as &[u32], |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_serially() {
        assert_eq!(par_map(&[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn worker_panic_propagates_instead_of_hanging() {
        let items: Vec<usize> = (0..64).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_map(&items, |&i| {
                if i == 13 || i == 40 {
                    panic!("boom at {i}");
                }
                i
            })
        }));
        let payload = caught.expect_err("the panic must reach the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        // First panicking item in input order wins, deterministically.
        assert_eq!(msg, "boom at 13");
    }

    #[test]
    fn jobs_is_at_least_one() {
        assert!(jobs() >= 1);
    }
}
