//! A dependency-free scoped thread pool: [`par_map`] fans a slice out
//! over `std::thread::scope` workers and returns the results **in input
//! order**, so a parallel sweep folds to bit-identical output regardless
//! of worker count.
//!
//! Concurrency is controlled by the `RFH_JOBS` environment variable
//! (default: the machine's available parallelism; `RFH_JOBS=1` forces the
//! fully serial path). Workers pull items off a shared atomic cursor, so
//! uneven item costs balance automatically.
//!
//! Panic safety: a panicking closure can neither hang nor deadlock the
//! pool. Every item is wrapped in `catch_unwind`; after all workers have
//! joined, the payload of the first panicking item **in input order** is
//! re-raised on the calling thread (so `par_map` is drop-in for a serial
//! `.map()` even under failure, and a test can observe the panic with its
//! own `catch_unwind`).
//!
//! For open-ended work streams (daemons serving connections rather than
//! sweeps over a known slice) there is [`TaskPool`]: the same worker
//! discipline as a persistent pool with a **bounded** admission queue,
//! per-task panic containment, and drain-then-join shutdown.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count: `RFH_JOBS` if set to a positive integer, else the
/// machine's available parallelism, else 1. A malformed value warns on
/// stderr (see [`crate::env`]) before falling back.
pub fn jobs() -> usize {
    crate::env::positive_usize_knob("RFH_JOBS").unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Applies `f` to every item, in parallel across [`jobs`] scoped worker
/// threads, returning the results in input order.
///
/// # Panics
///
/// If `f` panics for some item, the panic payload of the first such item
/// (in input order) is re-raised here after all workers finish — never a
/// hang, never a silently dropped result.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_with_jobs(jobs(), items, f)
}

/// [`par_map`] with an explicit worker count instead of the `RFH_JOBS`
/// knob — for callers whose concurrency is a first-class parameter (the
/// daemon replay load generator's `--jobs` flag) rather than ambient
/// configuration.
///
/// # Panics
///
/// As [`par_map`].
pub fn par_map_with_jobs<T, U, F>(jobs: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let workers = jobs.min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, std::thread::Result<U>)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, std::thread::Result<U>)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = catch_unwind(AssertUnwindSafe(|| f(&items[i])));
                    let panicked = result.is_err();
                    local.push((i, result));
                    if panicked {
                        // Stop pulling new work; the other workers drain
                        // the remaining items and the panic is re-raised
                        // after the scope joins.
                        break;
                    }
                }
                collected
                    .lock()
                    .expect("pool results mutex (worker panics are caught before locking)")
                    .extend(local);
            });
        }
    });

    let mut slots: Vec<Option<std::thread::Result<U>>> = (0..n).map(|_| None).collect();
    for (i, r) in collected
        .into_inner()
        .expect("pool results mutex (worker panics are caught before locking)")
    {
        slots[i] = Some(r);
    }
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        match slot.expect("every index is claimed exactly once") {
            Ok(v) => out.push(v),
            Err(payload) => resume_unwind(payload),
        }
    }
    out
}

/// A boxed unit of work for a [`TaskPool`].
pub type Task = Box<dyn FnOnce() + Send + 'static>;

/// Error returned by [`TaskPool::try_execute`] when the bounded queue is
/// full (every worker busy and every queue slot taken). The task is handed
/// back so the caller can shed load explicitly instead of blocking.
pub struct PoolBusy(pub Task);

impl std::fmt::Debug for PoolBusy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PoolBusy(..)")
    }
}

/// A persistent bounded worker pool, the long-running counterpart of
/// [`par_map`]: `workers` threads pull [`Task`]s off a bounded queue of
/// depth `queue_depth`.
///
/// Unlike `par_map`, which fans a known slice out and joins, a `TaskPool`
/// serves an open-ended stream of work (e.g. connections accepted by a
/// daemon). Three properties are load-bearing for that use:
///
/// * **bounded admission** — [`try_execute`](Self::try_execute) never
///   blocks and never queues beyond `queue_depth`; a full queue returns
///   [`PoolBusy`] with the task handed back, so callers shed load
///   explicitly instead of growing memory without bound;
/// * **panic isolation** — every task runs under `catch_unwind`; a
///   panicking task increments [`panics`](Self::panics) and the worker
///   keeps serving (no poisoned workers);
/// * **graceful drain** — [`drain`](Self::drain) closes the queue, lets
///   the workers finish everything already admitted, and joins them.
pub struct TaskPool {
    tx: Option<std::sync::mpsc::SyncSender<Task>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    panics: std::sync::Arc<AtomicUsize>,
}

impl TaskPool {
    /// Starts `workers` threads (at least 1) over a queue of `queue_depth`
    /// slots (at least 1).
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        let (tx, rx) = std::sync::mpsc::sync_channel::<Task>(queue_depth.max(1));
        let rx = std::sync::Arc::new(Mutex::new(rx));
        let panics = std::sync::Arc::new(AtomicUsize::new(0));
        let handles = (0..workers.max(1))
            .map(|_| {
                let rx = std::sync::Arc::clone(&rx);
                let panics = std::sync::Arc::clone(&panics);
                std::thread::spawn(move || loop {
                    // Hold the receiver lock only while dequeueing, not
                    // while running the task.
                    let task = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(_) => return,
                    };
                    match task {
                        Ok(task) => {
                            if catch_unwind(AssertUnwindSafe(task)).is_err() {
                                panics.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => return, // queue closed: drain complete
                    }
                })
            })
            .collect();
        TaskPool {
            tx: Some(tx),
            workers: handles,
            panics,
        }
    }

    /// Submits a task without blocking. Returns [`PoolBusy`] (task handed
    /// back) when the queue is full.
    ///
    /// # Errors
    ///
    /// [`PoolBusy`] when every queue slot is taken.
    pub fn try_execute(&self, task: Task) -> Result<(), PoolBusy> {
        let tx = self.tx.as_ref().expect("queue open until drain");
        match tx.try_send(task) {
            Ok(()) => Ok(()),
            Err(std::sync::mpsc::TrySendError::Full(t))
            | Err(std::sync::mpsc::TrySendError::Disconnected(t)) => Err(PoolBusy(t)),
        }
    }

    /// Number of tasks that panicked (and were contained) so far.
    pub fn panics(&self) -> usize {
        self.panics.load(Ordering::Relaxed)
    }

    /// Closes the queue, lets workers finish every admitted task, and
    /// joins them. Returns the final panic count.
    pub fn drain(mut self) -> usize {
        drop(self.tx.take());
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.panics.load(Ordering::Relaxed)
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        // Dropping without `drain()` still shuts down cleanly: close the
        // queue and detach the workers (they exit once it empties).
        drop(self.tx.take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..257).collect();
        // Uneven per-item cost exercises the work-stealing cursor.
        let out = par_map(&items, |&i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            i * 2
        });
        assert_eq!(out, items.iter().map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map(&[] as &[u32], |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_serially() {
        assert_eq!(par_map(&[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn worker_panic_propagates_instead_of_hanging() {
        let items: Vec<usize> = (0..64).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_map(&items, |&i| {
                if i == 13 || i == 40 {
                    panic!("boom at {i}");
                }
                i
            })
        }));
        let payload = caught.expect_err("the panic must reach the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        // First panicking item in input order wins, deterministically.
        assert_eq!(msg, "boom at 13");
    }

    #[test]
    fn jobs_is_at_least_one() {
        assert!(jobs() >= 1);
    }

    #[test]
    fn task_pool_runs_admitted_tasks() {
        let pool = TaskPool::new(4, 8);
        let counter = std::sync::Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let c = std::sync::Arc::clone(&counter);
            // A full queue is possible with 8 submissions racing 4
            // workers; block-retry here because this test is about
            // execution, not shedding.
            let mut task: Task = Box::new(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
            while let Err(PoolBusy(t)) = pool.try_execute(task) {
                task = t;
                std::thread::yield_now();
            }
        }
        assert_eq!(pool.drain(), 0);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn task_pool_sheds_when_the_queue_is_full() {
        // One worker, one queue slot, and the worker is pinned on a gate:
        // the first task occupies the worker, the second the queue slot,
        // and the third must come back as PoolBusy.
        let gate = std::sync::Arc::new((Mutex::new(false), std::sync::Condvar::new()));
        let started = std::sync::Arc::new((Mutex::new(false), std::sync::Condvar::new()));
        let pool = TaskPool::new(1, 1);
        let (g, s) = (
            std::sync::Arc::clone(&gate),
            std::sync::Arc::clone(&started),
        );
        pool.try_execute(Box::new(move || {
            let (lock, cvar) = &*s;
            *lock.lock().expect("started lock") = true;
            cvar.notify_all();
            let (lock, cvar) = &*g;
            let mut open = lock.lock().expect("gate lock");
            while !*open {
                open = cvar.wait(open).expect("gate wait");
            }
        }))
        .expect("first task admitted");
        // Wait until the worker has actually dequeued the first task so
        // the single queue slot is free for the second.
        {
            let (lock, cvar) = &*started;
            let mut s = lock.lock().expect("started lock");
            while !*s {
                s = cvar.wait(s).expect("started wait");
            }
        }
        pool.try_execute(Box::new(|| {})).expect("queue slot free");
        let shed = pool.try_execute(Box::new(|| {}));
        assert!(shed.is_err(), "third task must be shed, not queued");
        let (lock, cvar) = &*gate;
        *lock.lock().expect("gate lock") = true;
        cvar.notify_all();
        assert_eq!(pool.drain(), 0);
    }

    #[test]
    fn task_pool_contains_panics_and_keeps_serving() {
        let pool = TaskPool::new(1, 4);
        pool.try_execute(Box::new(|| panic!("contained")))
            .expect("admitted");
        let done = std::sync::Arc::new(AtomicUsize::new(0));
        let d = std::sync::Arc::clone(&done);
        // Submitted after the panicking task on the same single worker:
        // running at all proves the worker survived.
        let mut task: Task = Box::new(move || {
            d.fetch_add(1, Ordering::Relaxed);
        });
        while let Err(PoolBusy(t)) = pool.try_execute(task) {
            task = t;
            std::thread::yield_now();
        }
        assert_eq!(pool.drain(), 1);
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn task_pool_drain_completes_queued_work() {
        let pool = TaskPool::new(2, 16);
        let counter = std::sync::Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let c = std::sync::Arc::clone(&counter);
            let mut task: Task = Box::new(move || {
                std::thread::sleep(std::time::Duration::from_millis(1));
                c.fetch_add(1, Ordering::Relaxed);
            });
            while let Err(PoolBusy(t)) = pool.try_execute(task) {
                task = t;
                std::thread::yield_now();
            }
        }
        pool.drain();
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }
}
