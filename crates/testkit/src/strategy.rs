//! Input generation strategies for the property harness.
//!
//! A [`Strategy`] produces a [`Shrinkable`] value from a seeded
//! [`SmallRng`]. Plain integer ranges (`0u64..5000`, `1usize..=8`) are
//! strategies; combinators build tuples, mapped values, unions
//! ([`prop_oneof!`](crate::prop_oneof)), [`option::of`], and
//! [`collection::vec`].

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::rng::{Rng, SmallRng};
use crate::shrink::{int_tree, zip2, zip_vec, Shrinkable};

/// Generates shrinkable values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Clone + fmt::Debug + 'static;

    /// Draws one value (with its shrink tree) from `rng`.
    fn generate(&self, rng: &mut SmallRng) -> Shrinkable<Self::Value>;
}

/// A heap-allocated strategy, for heterogeneous unions.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Clone + fmt::Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> Shrinkable<T> {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut SmallRng) -> Shrinkable<Self::Value> {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> Shrinkable<$t> {
                let v = rng.gen_range(self.clone());
                int_tree(self.start as i128, v as i128, Rc::new(|x| x as $t))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> Shrinkable<$t> {
                let v = rng.gen_range(self.clone());
                int_tree(*self.start() as i128, v as i128, Rc::new(|x| x as $t))
            }
        }
    )*};
}
int_range_strategy!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

/// Strategy for `bool` drawing both values and shrinking `true → false`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut SmallRng) -> Shrinkable<bool> {
        if rng.gen::<bool>() {
            Shrinkable::new(true, || vec![Shrinkable::leaf(false)])
        } else {
            Shrinkable::leaf(false)
        }
    }
}

/// Types with a canonical strategy, usable as [`any::<T>()`](any).
pub trait Arbitrary: Clone + fmt::Debug + 'static {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// A shared mapping function from `T` to `U` (shrink trees re-apply it to
/// every shrink candidate, hence the `Rc`).
pub type MapFn<T, U> = Rc<dyn Fn(&T) -> U>;

/// A strategy mapped through a function (see
/// [`StrategyExt::prop_map`]).
pub struct Map<S: Strategy, U> {
    inner: S,
    f: MapFn<S::Value, U>,
}

impl<S: Strategy, U: Clone + fmt::Debug + 'static> Strategy for Map<S, U> {
    type Value = U;
    fn generate(&self, rng: &mut SmallRng) -> Shrinkable<U> {
        self.inner.generate(rng).map(Rc::clone(&self.f))
    }
}

/// Combinator methods on every sized strategy.
pub trait StrategyExt: Strategy + Sized {
    /// Transforms generated values; shrinking happens on the pre-image and
    /// is re-mapped.
    fn prop_map<U, F>(self, f: F) -> Map<Self, U>
    where
        U: Clone + fmt::Debug + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map {
            inner: self,
            f: Rc::new(move |v: &Self::Value| f(v.clone())),
        }
    }

    /// Boxes the strategy for use in heterogeneous unions.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy> StrategyExt for S {}

/// A uniform choice among boxed strategies of one value type. Shrinking
/// stays within the chosen branch.
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T: Clone + fmt::Debug + 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> Shrinkable<T> {
        let i = rng.gen_range(0..self.branches.len());
        self.branches[i].generate(rng)
    }
}

/// Builds a [`Union`]; prefer the [`prop_oneof!`](crate::prop_oneof)
/// macro.
///
/// # Panics
///
/// Panics if `branches` is empty.
pub fn union<T: Clone + fmt::Debug + 'static>(branches: Vec<BoxedStrategy<T>>) -> Union<T> {
    assert!(!branches.is_empty(), "union of zero strategies");
    Union { branches }
}

/// A uniform choice among boxed strategies of one value type.
///
/// `prop_oneof![s1, s2, ...]` generates from one of the argument
/// strategies, chosen uniformly; shrinking stays within the chosen branch.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $($crate::strategy::StrategyExt::boxed($s)),+
        ])
    };
}

// Tuple strategies: each component shrinks independently.
impl<A: Strategy> Strategy for (A,) {
    type Value = (A::Value,);
    fn generate(&self, rng: &mut SmallRng) -> Shrinkable<Self::Value> {
        self.0
            .generate(rng)
            .map(Rc::new(|a: &A::Value| (a.clone(),)))
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut SmallRng) -> Shrinkable<Self::Value> {
        let a = self.0.generate(rng);
        let b = self.1.generate(rng);
        zip2(a, b)
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut SmallRng) -> Shrinkable<Self::Value> {
        let ab = zip2(self.0.generate(rng), self.1.generate(rng));
        let abc = zip2(ab, self.2.generate(rng));
        abc.map(Rc::new(|((a, b), c)| (a.clone(), b.clone(), c.clone())))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut SmallRng) -> Shrinkable<Self::Value> {
        let ab = zip2(self.0.generate(rng), self.1.generate(rng));
        let cd = zip2(self.2.generate(rng), self.3.generate(rng));
        zip2(ab, cd).map(Rc::new(|((a, b), (c, d))| {
            (a.clone(), b.clone(), c.clone(), d.clone())
        }))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy for (A, B, C, D, E) {
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);
    fn generate(&self, rng: &mut SmallRng) -> Shrinkable<Self::Value> {
        let ab = zip2(self.0.generate(rng), self.1.generate(rng));
        let cd = zip2(self.2.generate(rng), self.3.generate(rng));
        let abcd = zip2(ab, cd);
        zip2(abcd, self.4.generate(rng)).map(Rc::new(|(((a, b), (c, d)), e)| {
            (a.clone(), b.clone(), c.clone(), d.clone(), e.clone())
        }))
    }
}

/// Strategies over `Option` (mirrors `proptest::option`).
pub mod option {
    use super::*;

    /// Generates `Some` from `inner` about three times in four, `None`
    /// otherwise. `Some(x)` shrinks to `None` first, then into `x`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// An optional value from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    fn some_tree<T: Clone + fmt::Debug + 'static>(x: Shrinkable<T>) -> Shrinkable<Option<T>> {
        let value = Some(x.value.clone());
        Shrinkable::new(value, move || {
            let mut out = vec![Shrinkable::leaf(None)];
            out.extend(x.shrinks().into_iter().map(some_tree));
            out
        })
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Shrinkable<Option<S::Value>> {
            if rng.gen_range(0..4) == 0 {
                Shrinkable::leaf(None)
            } else {
                some_tree(self.inner.generate(rng))
            }
        }
    }
}

/// Strategies over collections (mirrors `proptest::collection`).
pub mod collection {
    use super::*;

    /// Generates `Vec`s of `elem` values with a length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A vector of `elem` values; the length never shrinks below
    /// `len.start`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "collection::vec: empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Shrinkable<Vec<S::Value>> {
            let n = rng.gen_range(self.len.clone());
            let elems = (0..n).map(|_| self.elem.generate(rng)).collect();
            zip_vec(elems, self.len.start)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(99)
    }

    #[test]
    fn range_strategy_stays_in_bounds_and_shrinks_toward_start() {
        let s = 10i32..20;
        let mut r = rng();
        for _ in 0..100 {
            let sh = s.generate(&mut r);
            assert!((10..20).contains(&sh.value));
            for c in sh.shrinks() {
                assert!((10..sh.value.max(11)).contains(&c.value));
            }
        }
    }

    #[test]
    fn prop_map_and_oneof_compose() {
        let s = prop_oneof![
            (0i32..5).prop_map(|v| v * 2),
            (10i32..15).prop_map(|v| v * 3),
        ];
        let mut r = rng();
        for _ in 0..50 {
            let v = s.generate(&mut r).value;
            assert!(v % 2 == 0 || v % 3 == 0);
        }
    }

    #[test]
    fn tuple_strategies_flatten() {
        let s = (0u8..3, 0u16..3, 0u32..3, 0usize..3);
        let mut r = rng();
        let sh = s.generate(&mut r);
        let (a, b, c, d) = sh.value;
        assert!(a < 3 && b < 3 && c < 3 && d < 3);
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let s = collection::vec(0i32..10, 2..6);
        let mut r = rng();
        for _ in 0..50 {
            let sh = s.generate(&mut r);
            assert!((2..6).contains(&sh.value.len()));
            for c in sh.shrinks() {
                assert!(c.value.len() >= 2);
            }
        }
    }

    #[test]
    fn option_generates_both_variants() {
        let s = option::of(0i32..10);
        let mut r = rng();
        let vals: Vec<Option<i32>> = (0..100).map(|_| s.generate(&mut r).value).collect();
        assert!(vals.iter().any(Option::is_some));
        assert!(vals.iter().any(Option::is_none));
        let some = vals.iter().flatten().count();
        assert!(some > 50, "Some should dominate: {some}");
    }
}
