//! The property-test runner.
//!
//! [`prop!`](crate::prop) declares `#[test]` functions whose arguments are
//! drawn from [`Strategy`](crate::strategy::Strategy) expressions. Each
//! test runs `cases` inputs; the first failing input is greedily shrunk
//! and reported with the seed that reproduces it:
//!
//! ```text
//! property `allocated_execution_matches_baseline` failed (case 17 of 64)
//!   reproduce: RFH_TESTKIT_SEED=0x3aa2... cargo test allocated_execution
//!   ...
//! ```
//!
//! Environment variables:
//!
//! * `RFH_TESTKIT_SEED` — run exactly one case with this seed (decimal or
//!   `0x` hex), skipping the usual sweep; this is what failure reports
//!   print.
//! * `RFH_TESTKIT_CASES` — override the number of cases for every
//!   property (e.g. a nightly deep run with `RFH_TESTKIT_CASES=10000`).

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use crate::rng::{SeedableRng, SmallRng};
use crate::strategy::Strategy;

/// Per-property configuration (see [`prop!`](crate::prop) for the
/// `#![config(...)]` syntax).
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of random cases to run (default 256).
    pub cases: u32,
    /// Cap on property executions spent shrinking a failure (default 800).
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_shrink_iters: 800,
        }
    }
}

thread_local! {
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that suppresses the default
/// "thread panicked" report while this thread is executing a property
/// body. Without this, every probe the shrinker makes would print a
/// backtrace.
fn install_quiet_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

fn run_case<T, F>(body: &F, value: T) -> Result<(), String>
where
    F: Fn(T) -> Result<(), String>,
{
    QUIET_PANICS.with(|q| q.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(|| body(value)));
    QUIET_PANICS.with(|q| q.set(false));
    match result {
        Ok(r) => r,
        Err(payload) => Err(panic_message(payload)),
    }
}

fn env_u64(name: &str) -> Option<u64> {
    crate::env::u64_knob(name)
}

/// Deterministic per-property base seed: properties explore the same
/// inputs on every run (hermetic CI), and different properties explore
/// different streams.
fn base_seed(name: &str) -> u64 {
    // FNV-1a over the property name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs a property: `cases` seeded inputs from `strategy` through `body`,
/// with greedy shrinking and seed reporting on failure.
///
/// This is the target of the [`prop!`](crate::prop) macro; call it
/// directly to build custom harnesses.
///
/// # Panics
///
/// Panics (failing the surrounding `#[test]`) on the first input whose
/// shrunk form still fails `body`.
pub fn run<S, F>(name: &str, config: Config, strategy: S, body: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), String>,
{
    install_quiet_hook();

    let forced_seed = env_u64("RFH_TESTKIT_SEED");
    let cases = match forced_seed {
        Some(_) => 1,
        None => env_u64("RFH_TESTKIT_CASES").map_or(config.cases, |c| c as u32),
    };

    let mut seed_stream = crate::rng::SplitMix64::new(base_seed(name));
    for case in 0..cases {
        use crate::rng::RngCore;
        let case_seed = forced_seed.unwrap_or_else(|| seed_stream.next_u64());
        let mut rng = SmallRng::seed_from_u64(case_seed);
        let generated = strategy.generate(&mut rng);
        let original = generated.value.clone();
        let Err(first_error) = run_case(&body, generated.value.clone()) else {
            continue;
        };

        // Greedy shrink: walk to the first failing child until every
        // child passes (or the probe budget runs out).
        let mut current = generated;
        let mut error = first_error;
        let mut probes = 0u32;
        let mut steps = 0u32;
        'shrinking: while probes < config.max_shrink_iters {
            for candidate in current.shrinks() {
                probes += 1;
                if let Err(e) = run_case(&body, candidate.value.clone()) {
                    current = candidate;
                    error = e;
                    steps += 1;
                    continue 'shrinking;
                }
                if probes >= config.max_shrink_iters {
                    break;
                }
            }
            break;
        }

        panic!(
            "property `{name}` failed (case {case_no} of {cases})\n\
             reproduce: RFH_TESTKIT_SEED={case_seed:#x} cargo test {name}\n\
             original input: {original:?}\n\
             minimal input ({steps} shrink steps, {probes} probes): {min:?}\n\
             error: {error}",
            case_no = case + 1,
            min = current.value,
        );
    }
}

/// Declares property-based `#[test]` functions.
///
/// Mirrors `proptest!`: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]`. The body may use ordinary assertions/`unwrap`
/// (panics are caught and shrunk) or the
/// [`prop_assert!`](crate::prop_assert)/
/// [`prop_assert_eq!`](crate::prop_assert_eq) macros. An optional leading
/// `#![config(cases = N)]` applies to every property in the block.
#[macro_export]
macro_rules! prop {
    (@munch { $cfg:expr } ) => {};
    (@munch { $cfg:expr }
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config = $cfg;
            let strategy = ($($strat,)+);
            #[allow(unused_parens)]
            $crate::prop::run(stringify!($name), config, strategy, |($($arg),+,)| {
                $body
                Ok(())
            });
        }
        $crate::prop!(@munch { $cfg } $($rest)*);
    };
    (#![config($($k:ident = $v:expr),+ $(,)?)] $($rest:tt)*) => {
        $crate::prop!(@munch {
            $crate::prop::Config { $($k: $v,)+ ..$crate::prop::Config::default() }
        } $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::prop!(@munch { $crate::prop::Config::default() } $($rest)*);
    };
}

/// Asserts a condition inside a [`prop!`](crate::prop) body, reporting the
/// failure to the shrinker instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond), file!(), line!(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`prop!`](crate::prop) body, reporting the
/// failure to the shrinker instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left), stringify!($right), l, r, file!(), line!(),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r,
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategyExt;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        run(
            "always_passes",
            Config {
                cases: 40,
                ..Config::default()
            },
            (0i32..100,),
            |(v,)| {
                counter.set(counter.get() + 1);
                if v >= 100 {
                    return Err("out of range".into());
                }
                Ok(())
            },
        );
        count += counter.get();
        assert_eq!(count, 40);
    }

    #[test]
    fn failing_property_shrinks_to_boundary() {
        // Property "v < 57" over 0..1000 must shrink exactly to 57.
        let err = std::panic::catch_unwind(|| {
            run("shrinks_to_57", Config::default(), (0i32..1000,), |(v,)| {
                if v >= 57 {
                    return Err(format!("{v} too big"));
                }
                Ok(())
            });
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic").clone();
        assert!(
            msg.contains("minimal input") && msg.contains("(57,)"),
            "report should contain the shrunk boundary value:\n{msg}"
        );
        assert!(msg.contains("RFH_TESTKIT_SEED=0x"), "{msg}");
    }

    #[test]
    fn panics_in_bodies_are_caught_and_shrunk() {
        let err = std::panic::catch_unwind(|| {
            run(
                "panicking_body",
                Config::default(),
                ((0u32..100).prop_map(|v| v * 2),),
                |(v,)| {
                    assert!(v < 100, "v={v} escaped");
                    Ok(())
                },
            );
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic").clone();
        // Minimal failing doubled value is exactly 100 (pre-image 50).
        assert!(msg.contains("(100,)"), "{msg}");
        assert!(msg.contains("escaped"), "{msg}");
    }

    #[test]
    fn tuple_failures_shrink_componentwise() {
        let err = std::panic::catch_unwind(|| {
            run(
                "pair_sum",
                Config::default(),
                (0i32..500, 0i32..500),
                |(a, b)| {
                    if a + b >= 300 {
                        return Err("sum too big".into());
                    }
                    Ok(())
                },
            );
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic").clone();
        // Greedy shrinking lands on a minimal boundary pair: one
        // component 0 and the other 300, or the (150, 150)-style split is
        // further reduced; accept any pair summing to exactly 300.
        let min = msg
            .split("probes): (")
            .nth(1)
            .and_then(|s| s.split(')').next())
            .expect("minimal tuple in report");
        let parts: Vec<i32> = min
            .split(',')
            .map(|p| p.trim().parse().expect("int"))
            .collect();
        assert_eq!(parts.iter().sum::<i32>(), 300, "{msg}");
    }

    prop! {
        #![config(cases = 32)]

        /// The macro surface end-to-end: multiple args, prop_assert.
        fn macro_declared_property(a in 0u8..10, b in 0u8..10) {
            prop_assert!(u32::from(a) + u32::from(b) < 20);
            prop_assert_eq!(a as u32 + b as u32, b as u32 + a as u32);
        }

        /// Single-argument form.
        fn macro_single_arg(v in 0usize..8) {
            prop_assert!(v < 8);
        }
    }
}
