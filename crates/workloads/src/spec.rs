//! The workload container: kernel + launch + input + reference checker.

use std::fmt;

use rfh_isa::Kernel;
use rfh_sim::exec::Launch;
use rfh_sim::mem::GlobalMemory;

/// The benchmark suite a workload belongs to (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// NVIDIA CUDA SDK 3.2 samples.
    CudaSdk,
    /// The Parboil suite.
    Parboil,
    /// The Rodinia suite.
    Rodinia,
}

impl Suite {
    /// All suites in the paper's order.
    pub const ALL: [Suite; 3] = [Suite::CudaSdk, Suite::Parboil, Suite::Rodinia];
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Suite::CudaSdk => write!(f, "CUDA SDK"),
            Suite::Parboil => write!(f, "Parboil"),
            Suite::Rodinia => write!(f, "Rodinia"),
        }
    }
}

/// Result verifier: receives the initial and final global memory and
/// returns a description of the first mismatch, if any.
pub type VerifyFn = fn(&GlobalMemory, &GlobalMemory) -> Result<(), String>;

/// A runnable benchmark: kernel, launch geometry, initial memory image,
/// and a host reference checker.
pub struct Workload {
    /// Short lower-case name (e.g. `"vectoradd"`).
    pub name: String,
    /// Which suite the port belongs to.
    pub suite: Suite,
    /// The kernel in RFH IR (unallocated; all placements default to MRF).
    pub kernel: Kernel,
    /// Launch geometry and parameters.
    pub launch: Launch,
    /// Deterministic initial global memory.
    pub memory: GlobalMemory,
    /// Host reference checker for the final memory image.
    pub verify: VerifyFn,
}

impl Workload {
    /// Convenience: runs the workload's kernel on a copy of its input in
    /// the given mode and verifies the result, returning the final memory.
    ///
    /// # Errors
    ///
    /// Returns the executor error or the verifier's mismatch description.
    pub fn run_and_verify(
        &self,
        mode: rfh_sim::exec::ExecMode,
        kernel: &Kernel,
        sinks: &mut [&mut dyn rfh_sim::sink::TraceSink],
    ) -> Result<GlobalMemory, String> {
        let mut mem = self.memory.clone();
        rfh_sim::exec::execute(kernel, &self.launch, &mut mem, mode, sinks)
            .map_err(|e| format!("{}: {e}", self.name))?;
        (self.verify)(&self.memory, &mem).map_err(|e| format!("{}: {e}", self.name))?;
        Ok(mem)
    }
}

impl fmt::Debug for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Workload({}, {}, {} instrs, {} threads)",
            self.name,
            self.suite,
            self.kernel.instr_count(),
            self.launch.total_threads()
        )
    }
}

/// Helpers shared by the suite ports.
pub(crate) mod util {
    use rfh_testkit::rng::{Rng, SeedableRng, SmallRng};

    /// Deterministic f32 data in `[lo, hi)`.
    pub fn f32_data(seed: u64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(lo..hi)).collect()
    }

    /// Deterministic i32 data in `[lo, hi)`, stored as u32.
    pub fn i32_data(seed: u64, n: usize, lo: i32, hi: i32) -> Vec<u32> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(lo..hi) as u32).collect()
    }

    /// Compares an f32 region with a relative/absolute tolerance.
    pub fn check_f32_region(
        out: &rfh_sim::mem::GlobalMemory,
        base: usize,
        expected: &[f32],
        tol: f32,
    ) -> Result<(), String> {
        for (i, e) in expected.iter().enumerate() {
            let got = out
                .load_f32((base + i) as u32)
                .ok_or_else(|| format!("word {} out of range", base + i))?;
            let err = (got - e).abs();
            let bound = tol * e.abs().max(1.0);
            // `is_nan` keeps NaN results (err incomparable) as failures.
            if err > bound || err.is_nan() {
                return Err(format!(
                    "word {}: expected {e}, got {got} (|err| {err} > {bound})",
                    base + i
                ));
            }
        }
        Ok(())
    }

    /// Compares a u32 region exactly.
    pub fn check_u32_region(
        out: &rfh_sim::mem::GlobalMemory,
        base: usize,
        expected: &[u32],
    ) -> Result<(), String> {
        for (i, e) in expected.iter().enumerate() {
            let got = out
                .load((base + i) as u32)
                .ok_or_else(|| format!("word {} out of range", base + i))?;
            if got != *e {
                return Err(format!("word {}: expected {e}, got {got}", base + i));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_display() {
        assert_eq!(Suite::CudaSdk.to_string(), "CUDA SDK");
        assert_eq!(Suite::ALL.len(), 3);
    }

    #[test]
    fn f32_data_is_deterministic() {
        let a = util::f32_data(7, 16, 0.0, 1.0);
        let b = util::f32_data(7, 16, 0.0, 1.0);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (0.0..1.0).contains(v)));
    }

    #[test]
    fn check_helpers_report_mismatches() {
        let mem = rfh_sim::mem::GlobalMemory::from_f32(&[1.0, 2.0]);
        assert!(util::check_f32_region(&mem, 0, &[1.0, 2.0], 1e-6).is_ok());
        let err = util::check_f32_region(&mem, 0, &[1.0, 3.0], 1e-6).unwrap_err();
        assert!(err.contains("word 1"));
        let memu = rfh_sim::mem::GlobalMemory::from_words(vec![5, 6]);
        assert!(util::check_u32_region(&memu, 0, &[5, 6]).is_ok());
        assert!(util::check_u32_region(&memu, 1, &[7]).is_err());
    }
}
