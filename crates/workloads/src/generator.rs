//! Seeded random kernel generator for property-based testing.
//!
//! Generates structurally valid kernels mixing arithmetic chains,
//! predication, hammocks, bounded loops, SFU operations, and global/shared
//! memory traffic (with masked, always-in-bounds addresses). Used by the
//! integration and property tests to check, for arbitrary programs, that
//!
//! * allocation always produces validator-clean placements, and
//! * hierarchy-faithful execution of the allocated kernel computes exactly
//!   the memory image of the baseline run.

use rfh_testkit::rng::{Rng, SeedableRng, SmallRng};

use rfh_isa::{ops, CmpOp, Kernel, KernelBuilder, Operand, PredReg, Reg, SfuOp, Special};
use rfh_sim::exec::Launch;
use rfh_sim::mem::GlobalMemory;

/// Shape parameters for the generator.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of code segments (linear runs, hammocks, loops).
    pub segments: usize,
    /// Instructions per linear run.
    pub run_len: usize,
    /// Maximum loop trip count.
    pub max_trips: i32,
    /// Number of data registers in play.
    pub pool: u16,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            segments: 6,
            run_len: 6,
            max_trips: 5,
            pool: 8,
        }
    }
}

/// Memory words the generated kernels address (addresses are masked).
pub const MEM_WORDS: usize = 4096;
const ADDR_MASK: i32 = (MEM_WORDS - 1) as i32;

struct Gen {
    rng: SmallRng,
    cfg: GenConfig,
}

impl Gen {
    fn data_reg(&mut self) -> Reg {
        Reg::new(1 + self.rng.gen_range(0..self.cfg.pool))
    }

    fn operand(&mut self) -> Operand {
        match self.rng.gen_range(0..10) {
            0..=5 => self.data_reg().into(),
            6 | 7 => Operand::Imm(self.rng.gen_range(-64..64)),
            8 => Operand::f32(self.rng.gen_range(-2.0..2.0)),
            _ => Operand::Special(Special::TidX),
        }
    }

    /// One random computational instruction (never control flow).
    fn instr(&mut self, b: &mut KernelBuilder) {
        let d = self.data_reg();
        let choice = self.rng.gen_range(0..100);
        let i = match choice {
            0..=14 => ops::iadd(d, self.operand(), self.operand()),
            15..=24 => ops::imad(d, self.operand(), self.operand(), self.operand()),
            25..=34 => ops::fadd(d, self.operand(), self.operand()),
            35..=44 => ops::ffma(d, self.operand(), self.operand(), self.operand()),
            45..=52 => ops::fmul(d, self.operand(), self.operand()),
            53..=58 => ops::xor(d, self.operand(), self.operand()),
            59..=64 => ops::imax(d, self.operand(), self.operand()),
            65..=68 => {
                let f =
                    [SfuOp::Rcp, SfuOp::Rsqrt, SfuOp::Sqrt, SfuOp::Ex2][self.rng.gen_range(0..4)];
                ops::sfu(f, d, self.operand())
            }
            69..=72 => ops::mov(d, self.operand()),
            73..=76 => {
                // Guarded move: exercises weak updates.
                ops::mov(d, self.operand()).guarded(PredReg::new(0), self.rng.gen())
            }
            77..=82 => {
                // Masked global load.
                let addr = Reg::new(1 + self.cfg.pool); // scratch
                b.push(ops::and(
                    addr,
                    self.data_reg().into(),
                    Operand::Imm(ADDR_MASK),
                ));
                ops::ld_global(d, addr.into())
            }
            83..=87 => {
                let addr = Reg::new(1 + self.cfg.pool);
                b.push(ops::and(
                    addr,
                    self.data_reg().into(),
                    Operand::Imm(ADDR_MASK),
                ));
                ops::ld_shared(d, addr.into())
            }
            88..=92 => {
                let addr = Reg::new(1 + self.cfg.pool);
                b.push(ops::and(addr, self.data_reg().into(), Operand::Imm(1023)));
                b.push(ops::st_shared(addr.into(), self.data_reg().into()));
                return;
            }
            93..=96 => ops::i2f(d, self.operand()),
            _ => ops::sel(d, self.operand(), self.operand(), PredReg::new(0)),
        };
        b.push(i);
    }

    fn linear_run(&mut self, b: &mut KernelBuilder) {
        for _ in 0..self.rng.gen_range(1..=self.cfg.run_len) {
            self.instr(b);
        }
    }

    fn hammock(&mut self, b: &mut KernelBuilder) {
        let p = PredReg::new(1);
        b.push(ops::setp(
            CmpOp::Lt,
            p,
            self.data_reg().into(),
            Operand::Imm(self.rng.gen_range(-16..48)),
        ));
        let cur = b.current();
        let then_side = b.add_block();
        let merge = b.add_block();
        // In the preceding block: skip the then-side when !p.
        b.switch_to(cur);
        b.push(ops::bra_if(p, true, merge));
        b.switch_to(then_side);
        self.linear_run(b);
        b.switch_to(merge);
    }

    fn bounded_loop(&mut self, b: &mut KernelBuilder) {
        let counter = Reg::new(2 + self.cfg.pool);
        let trips = self.rng.gen_range(1..=self.cfg.max_trips);
        b.push(ops::mov(counter, Operand::Imm(0)));
        let body = b.add_block();
        b.switch_to(body);
        self.linear_run(b);
        b.push(ops::iadd(counter, counter.into(), Operand::Imm(1)));
        let p = PredReg::new(2);
        b.push(ops::setp(CmpOp::Lt, p, counter.into(), Operand::Imm(trips)));
        b.push(ops::bra_if(p, false, body));
        let next = b.add_block();
        b.switch_to(next);
    }

    fn scratch_regs(&self) -> u16 {
        3 + self.cfg.pool
    }
}

/// Generates a random kernel plus a launch and memory image to run it on.
///
/// The same seed always yields the same program.
pub fn random_program(seed: u64, cfg: GenConfig) -> (Kernel, Launch, GlobalMemory) {
    let mut g = Gen {
        rng: SmallRng::seed_from_u64(seed),
        cfg,
    };
    let mut b = KernelBuilder::new(format!("gen{seed}"));

    // Initialize the register pool deterministically.
    b.push(ops::mov(Reg::new(0), Operand::Special(Special::TidX)));
    for i in 0..cfg.pool {
        let r = Reg::new(1 + i);
        match i % 3 {
            0 => b.push(ops::mov(r, Reg::new(0).into())),
            1 => b.push(ops::mov(r, Operand::Imm(g.rng.gen_range(0..128)))),
            _ => b.push(ops::mov(r, Operand::f32(g.rng.gen_range(0.5..4.0)))),
        };
    }
    b.push(ops::setp(
        CmpOp::Lt,
        PredReg::new(0),
        Reg::new(0).into(),
        Operand::Imm(500),
    ));

    for _ in 0..cfg.segments {
        match g.rng.gen_range(0..5) {
            0..=2 => g.linear_run(&mut b),
            3 => g.hammock(&mut b),
            _ => g.bounded_loop(&mut b),
        }
    }

    // Make every pool register observable.
    let addr = Reg::new(g.scratch_regs());
    for i in 0..cfg.pool {
        b.push(ops::imad(
            addr,
            Reg::new(0).into(),
            Operand::Imm(cfg.pool as i32),
            Operand::Imm(i as i32),
        ));
        b.push(ops::and(addr, addr.into(), Operand::Imm(ADDR_MASK)));
        b.push(ops::st_global(addr.into(), Reg::new(1 + i).into()));
    }
    b.push(ops::exit());

    let kernel = b.finish();
    debug_assert!(rfh_isa::validate(&kernel).is_ok());

    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
    let words: Vec<u32> = (0..MEM_WORDS).map(|_| rng.gen_range(0..1 << 16)).collect();
    (kernel, Launch::new(1, 128), GlobalMemory::from_words(words))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfh_sim::exec::{execute, ExecMode};
    use rfh_sim::sink::NullSink;

    #[test]
    fn generated_kernels_are_valid() {
        for seed in 0..50 {
            let (k, _, _) = random_program(seed, GenConfig::default());
            rfh_isa::validate(&k).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (a, _, ma) = random_program(42, GenConfig::default());
        let (b, _, mb) = random_program(42, GenConfig::default());
        assert_eq!(a, b);
        assert_eq!(ma.words(), mb.words());
    }

    #[test]
    fn generated_kernels_execute() {
        for seed in 0..20 {
            let (k, launch, mem) = random_program(seed, GenConfig::default());
            let mut m = mem.clone();
            let mut sink = NullSink;
            execute(&k, &launch, &mut m, ExecMode::Baseline, &mut [&mut sink])
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn bigger_configs_make_bigger_kernels() {
        let small = random_program(
            7,
            GenConfig {
                segments: 2,
                ..Default::default()
            },
        )
        .0;
        let big = random_program(
            7,
            GenConfig {
                segments: 12,
                ..Default::default()
            },
        )
        .0;
        assert!(big.instr_count() > small.instr_count());
    }
}
