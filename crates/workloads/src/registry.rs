//! Workload registry.

use crate::spec::{Suite, Workload};
use crate::suites;

/// All workloads across the three suites, in suite order.
pub fn all() -> Vec<Workload> {
    let mut v = suites::sdk::all();
    v.extend(suites::parboil::all());
    v.extend(suites::rodinia::all());
    v
}

/// The workloads of one suite.
pub fn suite_of(suite: Suite) -> Vec<Workload> {
    all().into_iter().filter(|w| w.suite == suite).collect()
}

/// Looks up a workload by its lower-case name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let ws = all();
        assert!(
            ws.len() >= 15,
            "expected a substantial suite, got {}",
            ws.len()
        );
        let mut names: Vec<&str> = ws.iter().map(|w| w.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate workload names");
        for s in Suite::ALL {
            assert!(!suite_of(s).is_empty(), "{s} suite is empty");
        }
    }

    #[test]
    fn by_name_round_trips() {
        for w in all() {
            let found = by_name(&w.name).unwrap();
            assert_eq!(found.suite, w.suite);
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn kernels_are_valid_and_sized_sanely() {
        for w in all() {
            rfh_isa::validate(&w.kernel).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(w.kernel.instr_count() >= 8, "{} too trivial", w.name);
            assert!(
                w.launch.total_threads() >= 256,
                "{} too few threads",
                w.name
            );
            assert!(
                w.kernel.num_regs() <= 32,
                "{} exceeds the 32 registers/thread budget",
                w.name
            );
        }
    }
}

#[cfg(test)]
mod execution_tests {
    use super::*;
    use rfh_sim::exec::ExecMode;
    use rfh_sim::sink::NullSink;

    #[test]
    fn every_workload_verifies_against_its_reference() {
        for w in all() {
            let mut sink = NullSink;
            w.run_and_verify(ExecMode::Baseline, &w.kernel, &mut [&mut sink])
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn every_workload_verifies_after_allocation() {
        // The end-to-end proof: compile-time placements move operands
        // through modeled ORF/LRF storage (poisoned at strand boundaries)
        // and the results still match the host reference, for several
        // hierarchy shapes.
        let model = rfh_energy::EnergyModel::paper();
        for cfg in [
            rfh_alloc::AllocConfig::two_level(3),
            rfh_alloc::AllocConfig::three_level(3, true),
            rfh_alloc::AllocConfig::three_level(1, false),
        ] {
            for w in all() {
                let mut kernel = w.kernel.clone();
                rfh_alloc::allocate(&mut kernel, &cfg, &model).unwrap();
                let mut sink = NullSink;
                w.run_and_verify(ExecMode::Hierarchy(cfg), &kernel, &mut [&mut sink])
                    .unwrap_or_else(|e| panic!("{cfg}: {e}"));
            }
        }
    }
}
