#![warn(missing_docs)]

//! # rfh-workloads — benchmark kernels and synthetic generators
//!
//! The paper evaluates on CUDA SDK 3.2, Parboil, and Rodinia applications
//! compiled to PTX (Table 1). Those binaries and their toolchain are not
//! available here, so this crate provides:
//!
//! * hand-ported kernels in the RFH IR, organized into the same three
//!   suites ([`suites`]), each with a deterministic input generator and a
//!   host reference implementation used to verify every simulated run
//!   end-to-end;
//! * a seeded random kernel generator ([`generator`]) for property-based
//!   testing of the compiler and simulator.
//!
//! The ports are written to reproduce the register usage regime the paper
//! measures (Figure 2): dataflow-chain arithmetic where most values are
//! consumed once, shortly after production, with global loads at strand
//! boundaries. `rfh-experiments::fig2` checks the resulting distributions
//! against the paper's.
//!
//! ## Example
//!
//! ```
//! let w = rfh_workloads::by_name("vectoradd").unwrap();
//! let mut mem = w.memory.clone();
//! rfh_sim::execute(
//!     &w.kernel,
//!     &w.launch,
//!     &mut mem,
//!     rfh_sim::ExecMode::Baseline,
//!     &mut [&mut rfh_sim::sink::NullSink],
//! ).unwrap();
//! (w.verify)(&w.memory, &mem).unwrap();
//! ```

pub mod generator;
pub mod registry;
pub mod spec;
pub mod suites;

pub use registry::{all, by_name, suite_of};
pub use spec::{Suite, Workload};
