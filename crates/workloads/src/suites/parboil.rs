//! Parboil suite ports (paper Table 1).

use rfh_sim::exec::Launch;
use rfh_sim::mem::GlobalMemory;

use crate::spec::util::{check_f32_region, check_u32_region, f32_data, i32_data};
use crate::spec::{Suite, Workload};

fn parse(text: &str) -> rfh_isa::Kernel {
    rfh_isa::parse_kernel(text).unwrap_or_else(|e| panic!("workload kernel: {e}"))
}

const N: usize = 1024;

/// `cp` — Coulombic potential: each thread accumulates the potential from
/// 64 atoms at its grid point (rsqrt-heavy inner loop).
pub fn cp() -> Workload {
    const ATOMS: usize = 64;
    let ax = f32_data(101, ATOMS, -8.0, 8.0);
    let aq = f32_data(102, ATOMS, -1.0, 1.0);
    let mut words: Vec<u32> = Vec::new();
    words.extend(ax.iter().map(|v| v.to_bits())); // 0..64 atom x
    words.extend(aq.iter().map(|v| v.to_bits())); // 64..128 atom charge
    words.extend(std::iter::repeat_n(0, N)); // output potential
    let kernel = parse(&format!(
        "
.kernel cp
BB0:
  mov r0, %tid.x
  i2f r1 r0
  fmul r1 r1, 0.015625f
  mov r2, 0.0f
  mov r3, 0
BB1:
  ld.global r4 r3
  iadd r5 r3, 64
  ld.global r6 r5
  fsub r7 r4, r1
  ffma r8 r7, r7, 0.25f
  rsqrt r9 r8
  ffma r2 r6, r9, r2
  iadd r3 r3, 1
  setp.lt p0 r3, {ATOMS}
  @p0 bra BB1
BB2:
  iadd r10 r0, 128
  st.global r10, r2
  exit
"
    ));
    Workload {
        name: "cp".into(),
        suite: Suite::Parboil,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            const ATOMS: usize = 64;
            let expected: Vec<f32> = (0..N)
                .map(|t| {
                    let gx = t as f32 * 0.015625;
                    let mut en = 0.0f32;
                    for j in 0..ATOMS {
                        let ax = init.load_f32(j as u32).unwrap();
                        let q = init.load_f32((64 + j) as u32).unwrap();
                        let dx = ax - gx;
                        let r2 = dx.mul_add(dx, 0.25);
                        en = q.mul_add(1.0 / r2.sqrt(), en);
                    }
                    en
                })
                .collect();
            check_f32_region(out, 128, &expected, 1e-4)
        },
    }
}

/// `mri-q` — MRI reconstruction Q computation: sin/cos of per-sample phase
/// accumulated over 32 k-space points.
pub fn mri_q() -> Workload {
    const KPOINTS: usize = 32;
    let kx = f32_data(111, KPOINTS, -1.0, 1.0);
    let phi = f32_data(112, KPOINTS, 0.2, 1.0);
    let x = f32_data(113, N, -4.0, 4.0);
    let mut words: Vec<u32> = Vec::new();
    words.extend(kx.iter().map(|v| v.to_bits())); // 0..32
    words.extend(phi.iter().map(|v| v.to_bits())); // 32..64
    words.extend(x.iter().map(|v| v.to_bits())); // 64..64+N
    words.extend(std::iter::repeat_n(0, 2 * N)); // Qr, Qi
    let kernel = parse(&format!(
        "
.kernel mriq
BB0:
  mov r0, %tid.x
  iadd r1 r0, 64
  ld.global r2 r1
  mov r3, 0.0f
  mov r4, 0.0f
  mov r5, 0
BB1:
  ld.global r6 r5
  iadd r7 r5, 32
  ld.global r8 r7
  fmul r9 r6, r2
  cos r10 r9
  sin r11 r9
  ffma r3 r8, r10, r3
  ffma r4 r8, r11, r4
  iadd r5 r5, 1
  setp.lt p0 r5, {KPOINTS}
  @p0 bra BB1
BB2:
  iadd r12 r0, {qr}
  st.global r12, r3
  iadd r13 r0, {qi}
  st.global r13, r4
  exit
",
        KPOINTS = KPOINTS,
        qr = 64 + N,
        qi = 64 + 2 * N
    ));
    Workload {
        name: "mri-q".into(),
        suite: Suite::Parboil,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            const KPOINTS: usize = 32;
            let mut qr = Vec::with_capacity(N);
            let mut qi = Vec::with_capacity(N);
            for t in 0..N {
                let x = init.load_f32((64 + t) as u32).unwrap();
                let (mut sr, mut si) = (0.0f32, 0.0f32);
                for j in 0..KPOINTS {
                    let k = init.load_f32(j as u32).unwrap();
                    let p = init.load_f32((32 + j) as u32).unwrap();
                    let arg = k * x;
                    sr = p.mul_add(arg.cos(), sr);
                    si = p.mul_add(arg.sin(), si);
                }
                qr.push(sr);
                qi.push(si);
            }
            check_f32_region(out, 64 + N, &qr, 1e-4)?;
            check_f32_region(out, 64 + 2 * N, &qi, 1e-4)
        },
    }
}

/// `sad` — sum of absolute differences over 16-element blocks (integer).
pub fn sad() -> Workload {
    const BLK: usize = 16;
    let cur = i32_data(121, N * BLK, 0, 256);
    let refd = i32_data(122, N * BLK, 0, 256);
    let mut words: Vec<u32> = Vec::new();
    words.extend(&cur);
    words.extend(&refd);
    words.extend(std::iter::repeat_n(0, N));
    let kernel = parse(&format!(
        "
.kernel sad
BB0:
  mov r0, %tid.x
  imul r1 r0, {BLK}
  iadd r2 r1, {refbase}
  mov r3, 0
  mov r4, 0
BB1:
  ld.global r5 r1
  ld.global r6 r2
  isub r7 r5, r6
  isub r8 0, r7
  imax r7 r7, r8
  iadd r3 r3, r7
  iadd r1 r1, 1
  iadd r2 r2, 1
  iadd r4 r4, 1
  setp.lt p0 r4, {BLK}
  @p0 bra BB1
BB2:
  iadd r9 r0, {out}
  st.global r9, r3
  exit
",
        BLK = BLK,
        refbase = N * BLK,
        out = 2 * N * BLK
    ));
    Workload {
        name: "sad".into(),
        suite: Suite::Parboil,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            const BLK: usize = 16;
            let expected: Vec<u32> = (0..N)
                .map(|t| {
                    (0..BLK)
                        .map(|i| {
                            let c = init.load((t * BLK + i) as u32).unwrap() as i32;
                            let r = init.load((N * BLK + t * BLK + i) as u32).unwrap() as i32;
                            (c - r).unsigned_abs()
                        })
                        .sum()
                })
                .collect();
            check_u32_region(out, 2 * N * BLK, &expected)
        },
    }
}

/// All Parboil workloads.
pub fn all() -> Vec<Workload> {
    vec![cp(), mri_q(), mri_fhd(), sad(), rpes()]
}

/// `mri-fhd` — the FHD companion to `mri-q`: two accumulators fed by
/// sin/cos of per-sample phase with real and imaginary weights.
pub fn mri_fhd() -> Workload {
    const KPOINTS: usize = 32;
    let kx = f32_data(131, KPOINTS, -1.0, 1.0);
    let rmu = f32_data(132, KPOINTS, -0.5, 0.5);
    let imu = f32_data(133, KPOINTS, -0.5, 0.5);
    let x = f32_data(134, N, -4.0, 4.0);
    let mut words: Vec<u32> = Vec::new();
    words.extend(kx.iter().map(|v| v.to_bits())); // 0..32
    words.extend(rmu.iter().map(|v| v.to_bits())); // 32..64
    words.extend(imu.iter().map(|v| v.to_bits())); // 64..96
    words.extend(x.iter().map(|v| v.to_bits())); // 96..96+N
    words.extend(std::iter::repeat_n(0, 2 * N));
    let kernel = parse(&format!(
        "
.kernel mrifhd
BB0:
  mov r0, %tid.x
  iadd r1 r0, 96
  ld.global r2 r1
  mov r3, 0.0f
  mov r4, 0.0f
  mov r5, 0
BB1:
  ld.global r6 r5
  iadd r7 r5, 32
  ld.global r8 r7
  iadd r9 r5, 64
  ld.global r10 r9
  fmul r11 r6, r2
  cos r12 r11
  sin r13 r11
  fmul r14 r8, r12
  ffma r3 r10, r13, r14
  fadd r3 r3, r3
  fmul r14 r8, r13
  fmul r15 r10, r12
  fsub r14 r15, r14
  fadd r4 r4, r14
  iadd r5 r5, 1
  setp.lt p0 r5, {KPOINTS}
  @p0 bra BB1
BB2:
  iadd r16 r0, {fr}
  st.global r16, r3
  iadd r17 r0, {fi}
  st.global r17, r4
  exit
",
        KPOINTS = KPOINTS,
        fr = 96 + N,
        fi = 96 + 2 * N
    ));
    Workload {
        name: "mri-fhd".into(),
        suite: Suite::Parboil,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            const KPOINTS: usize = 32;
            for t in 0..N {
                let x = init.load_f32((96 + t) as u32).unwrap();
                let (mut fr, mut fi) = (0.0f32, 0.0f32);
                for j in 0..KPOINTS {
                    let k = init.load_f32(j as u32).unwrap();
                    let r = init.load_f32((32 + j) as u32).unwrap();
                    let im = init.load_f32((64 + j) as u32).unwrap();
                    let arg = k * x;
                    let (c, s) = (arg.cos(), arg.sin());
                    // Mirrors the kernel's exact op order.
                    let t14 = r * c;
                    fr = im.mul_add(s, t14);
                    fr += fr;
                    let a = r * s;
                    let b = im * c;
                    fi += b - a;
                    // note: fr accumulation pattern matches the kernel
                    // (fr overwritten then doubled each step, fi summed).
                }
                let got_r = out.load_f32((96 + N + t) as u32).unwrap();
                let got_i = out.load_f32((96 + 2 * N + t) as u32).unwrap();
                if (got_r - fr).abs() > 1e-4 * fr.abs().max(1.0) {
                    return Err(format!("t={t} fr: expected {fr}, got {got_r}"));
                }
                if (got_i - fi).abs() > 1e-4 * fi.abs().max(1.0) {
                    return Err(format!("t={t} fi: expected {fi}, got {got_i}"));
                }
            }
            Ok(())
        },
    }
}

/// `rpes` — distance-weighted Gaussian accumulation over 32 centers
/// (`ex2`-heavy inner loop standing in for the quantum-chemistry kernel).
pub fn rpes() -> Workload {
    const CENTERS: usize = 32;
    let cx = f32_data(141, CENTERS, -4.0, 4.0);
    let cw = f32_data(142, CENTERS, 0.1, 1.0);
    let mut words: Vec<u32> = Vec::new();
    words.extend(cx.iter().map(|v| v.to_bits()));
    words.extend(cw.iter().map(|v| v.to_bits()));
    words.extend(std::iter::repeat_n(0, N));
    let kernel = parse(&format!(
        "
.kernel rpes
BB0:
  mov r0, %tid.x
  i2f r1 r0
  fmul r1 r1, 0.0078125f
  mov r2, 0.0f
  mov r3, 0
BB1:
  ld.global r4 r3
  iadd r5 r3, 32
  ld.global r6 r5
  fsub r7 r4, r1
  fmul r8 r7, r7
  fmul r8 r8, -1.4426951f
  ex2 r9 r8
  ffma r2 r6, r9, r2
  iadd r3 r3, 1
  setp.lt p0 r3, {CENTERS}
  @p0 bra BB1
BB2:
  iadd r10 r0, 64
  st.global r10, r2
  exit
"
    ));
    Workload {
        name: "rpes".into(),
        suite: Suite::Parboil,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            const CENTERS: usize = 32;
            let expected: Vec<f32> = (0..N)
                .map(|t| {
                    let x = t as f32 * 0.0078125;
                    let mut acc = 0.0f32;
                    for j in 0..CENTERS {
                        let c = init.load_f32(j as u32).unwrap();
                        let w = init.load_f32((32 + j) as u32).unwrap();
                        let d = c - x;
                        let e = (d * d * -1.442_695_1).exp2();
                        acc = w.mul_add(e, acc);
                    }
                    acc
                })
                .collect();
            check_f32_region(out, 64, &expected, 1e-4)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfh_sim::exec::ExecMode;
    use rfh_sim::sink::NullSink;

    #[test]
    fn sad_is_zero_for_identical_blocks() {
        let mut w = sad();
        // Make the reference region identical to the current region.
        const BLK: usize = 16;
        let mut words: Vec<u32> = (0..N * BLK)
            .map(|i| w.memory.load(i as u32).unwrap())
            .collect();
        words.extend(words.clone());
        words.extend(std::iter::repeat_n(1u32, N));
        w.memory = GlobalMemory::from_words(words);
        let mut sink = NullSink;
        let mem = w
            .run_and_verify(ExecMode::Baseline, &w.kernel, &mut [&mut sink])
            .unwrap();
        for t in 0..N {
            assert_eq!(mem.load((2 * N * BLK + t) as u32), Some(0), "t={t}");
        }
    }

    #[test]
    fn rpes_peaks_near_centers() {
        // The Gaussian sum is strictly positive and bounded by the total
        // weight mass.
        let w = rpes();
        let total_weight: f32 = (0..32).map(|j| w.memory.load_f32(32 + j).unwrap()).sum();
        let mut sink = NullSink;
        let mem = w
            .run_and_verify(ExecMode::Baseline, &w.kernel, &mut [&mut sink])
            .unwrap();
        for t in 0..N {
            let v = mem.load_f32((64 + t) as u32).unwrap();
            assert!(v >= 0.0 && v <= total_weight + 1e-3, "t={t}: {v}");
        }
    }
}
