//! Rodinia suite ports (paper Table 1).

use rfh_sim::exec::Launch;
use rfh_sim::mem::GlobalMemory;

use crate::spec::util::{check_f32_region, check_u32_region, f32_data, i32_data};
use crate::spec::{Suite, Workload};

fn parse(text: &str) -> rfh_isa::Kernel {
    rfh_isa::parse_kernel(text).unwrap_or_else(|e| panic!("workload kernel: {e}"))
}

const N: usize = 1024;

/// `backprop` — forward layer: weighted sum over 16 inputs plus a sigmoid
/// via `ex2`/`rcp`.
pub fn backprop() -> Workload {
    const IN: usize = 16;
    let w = f32_data(201, N * IN, -0.5, 0.5);
    let x = f32_data(202, IN, -1.0, 1.0);
    let mut words: Vec<u32> = Vec::new();
    words.extend(w.iter().map(|v| v.to_bits())); // weights [n][IN]
    words.extend(x.iter().map(|v| v.to_bits())); // inputs
    words.extend(std::iter::repeat_n(0, N)); // outputs
    let kernel = parse(&format!(
        "
.kernel backprop
BB0:
  mov r0, %tid.x
  imul r1 r0, {IN}
  mov r2, 0.0f
  mov r3, 0
BB1:
  ld.global r4 r1
  iadd r5 r3, {xbase}
  ld.global r6 r5
  ffma r2 r4, r6, r2
  iadd r1 r1, 1
  iadd r3 r3, 1
  setp.lt p0 r3, {IN}
  @p0 bra BB1
BB2:
  fmul r7 r2, -1.4426951f
  ex2 r8 r7
  fadd r9 r8, 1.0f
  rcp r10 r9
  iadd r11 r0, {out}
  st.global r11, r10
  exit
",
        IN = IN,
        xbase = N * IN,
        out = N * IN + IN
    ));
    Workload {
        name: "backprop".into(),
        suite: Suite::Rodinia,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            const IN: usize = 16;
            let expected: Vec<f32> = (0..N)
                .map(|t| {
                    let mut sum = 0.0f32;
                    for j in 0..IN {
                        let w = init.load_f32((t * IN + j) as u32).unwrap();
                        let x = init.load_f32((N * IN + j) as u32).unwrap();
                        sum = w.mul_add(x, sum);
                    }
                    let e = (sum * -1.442_695_1).exp2();
                    1.0 / (e + 1.0)
                })
                .collect();
            check_f32_region(out, N * IN + IN, &expected, 1e-5)
        },
    }
}

/// `hotspot` — one step of the thermal stencil with guarded edges.
pub fn hotspot() -> Workload {
    let temp = f32_data(211, N, 20.0, 90.0);
    let power = f32_data(212, N, 0.0, 2.0);
    let mut words: Vec<u32> = Vec::new();
    words.extend(temp.iter().map(|v| v.to_bits()));
    words.extend(power.iter().map(|v| v.to_bits()));
    words.extend(std::iter::repeat_n(0, N));
    let kernel = parse(&format!(
        "
.kernel hotspot
BB0:
  mov r0, %tid.x
  ld.global r1 r0
  mov r2, r1
  setp.ge p0 r0, 1
  @!p0 bra BB3
BB1:
  setp.le p1 r0, {lastm1}
  @!p1 bra BB3
BB2:
  isub r3 r0, 1
  ld.global r4 r3
  iadd r5 r0, 1
  ld.global r6 r5
  iadd r7 r0, {pbase}
  ld.global r8 r7
  fadd r9 r4, r6
  fmul r10 r1, 2.0f
  fsub r9 r9, r10
  fmul r9 r9, 0.1f
  ffma r9 r8, 0.05f, r9
  fadd r2 r1, r9
BB3:
  iadd r11 r0, {out}
  st.global r11, r2
  exit
",
        lastm1 = N - 2,
        pbase = N,
        out = 2 * N
    ));
    Workload {
        name: "hotspot".into(),
        suite: Suite::Rodinia,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            let expected: Vec<f32> = (0..N)
                .map(|t| {
                    let me = init.load_f32(t as u32).unwrap();
                    if t == 0 || t == N - 1 {
                        me
                    } else {
                        let l = init.load_f32((t - 1) as u32).unwrap();
                        let r = init.load_f32((t + 1) as u32).unwrap();
                        let p = init.load_f32((N + t) as u32).unwrap();
                        let mut d = (l + r) - me * 2.0;
                        d *= 0.1;
                        d = p.mul_add(0.05, d);
                        me + d
                    }
                })
                .collect();
            check_f32_region(out, 2 * N, &expected, 1e-5)
        },
    }
}

/// `needle` — Needleman–Wunsch style integer scoring over 8 candidates.
pub fn needle() -> Workload {
    const STEPS: usize = 8;
    let nw = i32_data(221, N * STEPS, -10, 10);
    let w = i32_data(222, N * STEPS, -10, 10);
    let n_ = i32_data(223, N * STEPS, -10, 10);
    let mut words: Vec<u32> = Vec::new();
    words.extend(&nw);
    words.extend(&w);
    words.extend(&n_);
    words.extend(std::iter::repeat_n(0, N));
    let kernel = parse(&format!(
        "
.kernel needle
BB0:
  mov r0, %tid.x
  imul r1 r0, {STEPS}
  mov r2, 0
  mov r3, 0
BB1:
  ld.global r4 r1
  iadd r5 r1, {wbase}
  ld.global r6 r5
  iadd r7 r1, {nbase}
  ld.global r8 r7
  iadd r9 r2, r4
  isub r10 r6, 2
  isub r11 r8, 2
  imax r12 r9, r10
  imax r2 r12, r11
  iadd r1 r1, 1
  iadd r3 r3, 1
  setp.lt p0 r3, {STEPS}
  @p0 bra BB1
BB2:
  iadd r13 r0, {out}
  st.global r13, r2
  exit
",
        STEPS = STEPS,
        wbase = N * STEPS,
        nbase = 2 * N * STEPS,
        out = 3 * N * STEPS
    ));
    Workload {
        name: "needle".into(),
        suite: Suite::Rodinia,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            const STEPS: usize = 8;
            let expected: Vec<u32> = (0..N)
                .map(|t| {
                    let mut score = 0i32;
                    for s in 0..STEPS {
                        let nw = init.load((t * STEPS + s) as u32).unwrap() as i32;
                        let w = init.load((N * STEPS + t * STEPS + s) as u32).unwrap() as i32;
                        let n = init.load((2 * N * STEPS + t * STEPS + s) as u32).unwrap() as i32;
                        score = (score + nw).max(w - 2).max(n - 2);
                    }
                    score as u32
                })
                .collect();
            check_u32_region(out, 3 * N * STEPS, &expected)
        },
    }
}

/// `srad` — speckle-reducing diffusion step: stencil plus division chain.
pub fn srad() -> Workload {
    let img = f32_data(231, N, 1.0, 10.0);
    let mut words: Vec<u32> = img.iter().map(|v| v.to_bits()).collect();
    words.extend(std::iter::repeat_n(0, N));
    let kernel = parse(&format!(
        "
.kernel srad
BB0:
  mov r0, %tid.x
  ld.global r1 r0
  mov r2, r1
  setp.ge p0 r0, 1
  @!p0 bra BB3
BB1:
  setp.le p1 r0, {lastm1}
  @!p1 bra BB3
BB2:
  isub r3 r0, 1
  ld.global r4 r3
  iadd r5 r0, 1
  ld.global r6 r5
  fadd r7 r4, r6
  fmul r8 r1, 2.0f
  fsub r7 r7, r8
  rcp r9 r1
  fmul r10 r7, r9
  fmul r11 r10, r10
  fadd r12 r11, 1.0f
  rcp r13 r12
  ffma r2 r7, r13, r1
BB3:
  iadd r14 r0, {out}
  st.global r14, r2
  exit
",
        lastm1 = N - 2,
        out = N
    ));
    Workload {
        name: "srad".into(),
        suite: Suite::Rodinia,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            let expected: Vec<f32> = (0..N)
                .map(|t| {
                    let me = init.load_f32(t as u32).unwrap();
                    if t == 0 || t == N - 1 {
                        me
                    } else {
                        let l = init.load_f32((t - 1) as u32).unwrap();
                        let r = init.load_f32((t + 1) as u32).unwrap();
                        let lap = (l + r) - me * 2.0;
                        let g = lap * (1.0 / me);
                        let c = 1.0 / (g * g + 1.0);
                        lap.mul_add(c, me)
                    }
                })
                .collect();
            check_f32_region(out, N, &expected, 1e-5)
        },
    }
}

/// All Rodinia workloads.
pub fn all() -> Vec<Workload> {
    vec![backprop(), hotspot(), needle(), srad(), hwt(), lu()]
}

/// `hwt` — two Haar wavelet levels over 4 values per thread, entirely in
/// registers between one load and one store phase.
pub fn hwt() -> Workload {
    const S: f32 = std::f32::consts::FRAC_1_SQRT_2;
    let data = f32_data(241, 4 * N, -1.0, 1.0);
    let mut words: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
    words.extend(std::iter::repeat_n(0, 4 * N));
    let kernel = parse(&format!(
        "
.kernel hwt
BB0:
  mov r0, %tid.x
  ld.global r1 r0
  iadd r9 r0, {n}
  ld.global r2 r9
  iadd r9 r0, {n2}
  ld.global r3 r9
  iadd r9 r0, {n3}
  ld.global r4 r9
  fadd r5 r1, r2
  fmul r5 r5, {S}f
  fsub r6 r1, r2
  fmul r6 r6, {S}f
  fadd r7 r3, r4
  fmul r7 r7, {S}f
  fsub r8 r3, r4
  fmul r8 r8, {S}f
  fadd r1 r5, r7
  fmul r1 r1, {S}f
  fsub r2 r5, r7
  fmul r2 r2, {S}f
  iadd r9 r0, {o0}
  st.global r9, r1
  iadd r9 r0, {o1}
  st.global r9, r2
  iadd r9 r0, {o2}
  st.global r9, r6
  iadd r9 r0, {o3}
  st.global r9, r8
  exit
",
        n = N,
        n2 = 2 * N,
        n3 = 3 * N,
        S = S,
        o0 = 4 * N,
        o1 = 5 * N,
        o2 = 6 * N,
        o3 = 7 * N
    ));
    Workload {
        name: "hwt".into(),
        suite: Suite::Rodinia,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            const S: f32 = std::f32::consts::FRAC_1_SQRT_2;
            for t in 0..N {
                let x: Vec<f32> = (0..4)
                    .map(|i| init.load_f32((i * N + t) as u32).unwrap())
                    .collect();
                let a0 = (x[0] + x[1]) * S;
                let d0 = (x[0] - x[1]) * S;
                let a1 = (x[2] + x[3]) * S;
                let d1 = (x[2] - x[3]) * S;
                let expect = [(a0 + a1) * S, (a0 - a1) * S, d0, d1];
                for (i, e) in expect.iter().enumerate() {
                    let got = out.load_f32(((4 + i) * N + t) as u32).unwrap();
                    if (got - e).abs() > 1e-5 {
                        return Err(format!("t={t} i={i}: expected {e}, got {got}"));
                    }
                }
            }
            Ok(())
        },
    }
}

/// `lu` — in-register 3×3 LU elimination with reciprocal pivots.
pub fn lu() -> Workload {
    // Diagonally dominant 3×3 systems so pivots never vanish.
    let mut mats = f32_data(251, 9 * N, -1.0, 1.0);
    for t in 0..N {
        for d in 0..3 {
            mats[(d * 3 + d) * N + t] += 5.0;
        }
    }
    let mut words: Vec<u32> = mats.iter().map(|v| v.to_bits()).collect();
    words.extend(std::iter::repeat_n(0, N));
    let mut body = String::new();
    for i in 0..9 {
        body.push_str(&format!(
            "  iadd r10 r0, {}\n  ld.global r{} r10\n",
            i * N,
            1 + i
        ));
    }
    // Eliminate column 0: rows 1 and 2 (a = r1..r9 row-major).
    body.push_str("  rcp r10 r1\n");
    for row in 1..3 {
        let l = 1 + row * 3;
        body.push_str(&format!("  fmul r11 r{l}, r10\n"));
        for col in 1..3 {
            let (dst, src) = (1 + row * 3 + col, 1 + col);
            body.push_str(&format!(
                "  fmul r12 r11, r{src}\n  fsub r{dst} r{dst}, r12\n"
            ));
        }
    }
    // Eliminate column 1: row 2.
    body.push_str("  rcp r10 r5\n  fmul r11 r8, r10\n  fmul r12 r11, r6\n  fsub r9 r9, r12\n");
    let kernel = parse(&format!(
        ".kernel lu\nBB0:\n  mov r0, %tid.x\n{body}  iadd r10 r0, {}\n  st.global r10, r9\n  exit\n",
        9 * N
    ));
    Workload {
        name: "lu".into(),
        suite: Suite::Rodinia,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            for t in 0..N {
                let a = |r: usize, c: usize| init.load_f32(((r * 3 + c) * N + t) as u32).unwrap();
                let mut m = [
                    [a(0, 0), a(0, 1), a(0, 2)],
                    [a(1, 0), a(1, 1), a(1, 2)],
                    [a(2, 0), a(2, 1), a(2, 2)],
                ];
                let inv0 = 1.0 / m[0][0];
                for row in 1..3 {
                    let l = m[row][0] * inv0;
                    let pivot_row = m[0];
                    for (col, cell) in m[row].iter_mut().enumerate().skip(1) {
                        *cell -= l * pivot_row[col];
                    }
                }
                let inv1 = 1.0 / m[1][1];
                let l = m[2][1] * inv1;
                let expect = m[2][2] - l * m[1][2];
                let got = out.load_f32((9 * N + t) as u32).unwrap();
                if (got - expect).abs() > 1e-4 * expect.abs().max(1.0) {
                    return Err(format!("t={t}: expected {expect}, got {got}"));
                }
            }
            Ok(())
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfh_sim::exec::ExecMode;
    use rfh_sim::sink::NullSink;

    #[test]
    fn backprop_outputs_are_sigmoid_bounded() {
        let w = backprop();
        let mut sink = NullSink;
        let mem = w
            .run_and_verify(ExecMode::Baseline, &w.kernel, &mut [&mut sink])
            .unwrap();
        for t in 0..N {
            let v = mem.load_f32((16 * N + 16 + t) as u32).unwrap();
            assert!((0.0..=1.0).contains(&v), "t={t}: {v}");
        }
    }

    #[test]
    fn hotspot_preserves_boundary_cells() {
        let w = hotspot();
        let mut sink = NullSink;
        let mem = w
            .run_and_verify(ExecMode::Baseline, &w.kernel, &mut [&mut sink])
            .unwrap();
        assert_eq!(mem.load_f32(2 * N as u32), w.memory.load_f32(0));
        assert_eq!(
            mem.load_f32((3 * N - 1) as u32),
            w.memory.load_f32((N - 1) as u32)
        );
    }

    #[test]
    fn lu_pivots_stay_stable_with_dominant_diagonals() {
        // The input generator biases diagonals by +5, so the final Schur
        // complement must stay bounded away from zero.
        let w = lu();
        let mut sink = NullSink;
        let mem = w
            .run_and_verify(ExecMode::Baseline, &w.kernel, &mut [&mut sink])
            .unwrap();
        for t in 0..N {
            let v = mem.load_f32((9 * N + t) as u32).unwrap();
            assert!(v.abs() > 1.0, "t={t}: degenerate pivot {v}");
        }
    }
}
