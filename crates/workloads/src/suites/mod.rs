//! The three benchmark suites of Table 1.

pub mod parboil;
pub mod rodinia;
pub mod sdk;
