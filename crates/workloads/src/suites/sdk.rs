//! CUDA SDK 3.2 suite ports (paper Table 1).
//!
//! Each port reproduces the dataflow shape of the original sample — the
//! mix of global loads, arithmetic chains, SFU use, shared memory, and
//! control flow — at a size that keeps one SM's worth of threads (32 warps)
//! busy. Every workload carries a host reference implementation that
//! mirrors the kernel's f32 operation order exactly (including fused
//! multiply-adds), so simulated results are checked verbatim.

use rfh_sim::exec::Launch;
use rfh_sim::mem::GlobalMemory;

use crate::spec::util::{check_f32_region, check_u32_region, f32_data, i32_data};
use crate::spec::{Suite, Workload};

fn parse(text: &str) -> rfh_isa::Kernel {
    rfh_isa::parse_kernel(text).unwrap_or_else(|e| panic!("workload kernel: {e}"))
}

const N: usize = 1024;

/// `VectorAdd`: `c[i] = a[i] + b[i]`.
pub fn vectoradd() -> Workload {
    let a = f32_data(11, N, -1.0, 1.0);
    let b = f32_data(12, N, -1.0, 1.0);
    let mut words: Vec<u32> = Vec::new();
    words.extend(a.iter().map(|v| v.to_bits()));
    words.extend(b.iter().map(|v| v.to_bits()));
    words.extend(std::iter::repeat_n(0, N));
    // Launched as 4 CTAs of 256 threads (still one SM's residency), so the
    // global index is computed the standard way.
    let kernel = parse(
        "
.kernel vectoradd
BB0:
  mov r0, %ctaid.x
  imul r0 r0, %ntid.x
  iadd r0 r0, %tid.x
  ld.param r1 0
  iadd r2 r1, r0
  ld.global r3 r2
  ld.param r4 1
  iadd r5 r4, r0
  ld.global r6 r5
  fadd r7 r3, r6
  ld.param r8 2
  iadd r9 r8, r0
  st.global r9, r7
  exit
",
    );
    Workload {
        name: "vectoradd".into(),
        suite: Suite::CudaSdk,
        kernel,
        launch: Launch::new(4, N / 4).with_params(vec![0, N as u32, 2 * N as u32]),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            let expected: Vec<f32> = (0..N)
                .map(|i| init.load_f32(i as u32).unwrap() + init.load_f32((N + i) as u32).unwrap())
                .collect();
            check_f32_region(out, 2 * N, &expected, 0.0)
        },
    }
}

/// `ScalarProd`: per-thread dot product over a K-element segment — the
/// paper's worst case (tight loop of global loads and one FMA, §6.4).
pub fn scalarprod() -> Workload {
    const K: usize = 16;
    let a = f32_data(21, N * K, -1.0, 1.0);
    let b = f32_data(22, N * K, -1.0, 1.0);
    let mut words: Vec<u32> = Vec::new();
    words.extend(a.iter().map(|v| v.to_bits()));
    words.extend(b.iter().map(|v| v.to_bits()));
    words.extend(std::iter::repeat_n(0, N));
    let kernel = parse(&format!(
        "
.kernel scalarprod
BB0:
  mov r0, %tid.x
  imul r1 r0, {K}
  ld.param r2 0
  iadd r2 r2, r1
  ld.param r3 1
  iadd r3 r3, r1
  mov r4, 0.0f
  mov r5, 0
BB1:
  ld.global r6 r2
  ld.global r7 r3
  ffma r4 r6, r7, r4
  iadd r2 r2, 1
  iadd r3 r3, 1
  iadd r5 r5, 1
  setp.lt p0 r5, {K}
  @p0 bra BB1
BB2:
  ld.param r8 2
  iadd r9 r8, r0
  st.global r9, r4
  exit
"
    ));
    Workload {
        name: "scalarprod".into(),
        suite: Suite::CudaSdk,
        kernel,
        launch: Launch::new(1, N).with_params(vec![0, (N * K) as u32, (2 * N * K) as u32]),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            let expected: Vec<f32> = (0..N)
                .map(|t| {
                    let mut sum = 0.0f32;
                    for i in 0..K {
                        let a = init.load_f32((t * K + i) as u32).unwrap();
                        let b = init.load_f32((N * K + t * K + i) as u32).unwrap();
                        sum = a.mul_add(b, sum);
                    }
                    sum
                })
                .collect();
            check_f32_region(out, 2 * N * K, &expected, 1e-6)
        },
    }
}

/// `Reduction`: shared-memory tree reduction of 1024 floats, one CTA.
pub fn reduction() -> Workload {
    let data = f32_data(31, N, 0.0, 1.0);
    let mut words: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
    words.push(0); // output cell at word N
    let kernel = parse(
        "
.kernel reduction
BB0:
  mov r0, %tid.x
  ld.param r1 0
  iadd r2 r1, r0
  ld.global r3 r2
  st.shared r0, r3
  bar
  mov r4, 512
BB1:
  setp.lt p0 r0, r4
  iadd r5 r0, r4
  @p0 ld.shared r6 r5
  @p0 ld.shared r7 r0
  @p0 fadd r8 r6, r7
  @p0 st.shared r0, r8
  bar
  shr r4 r4, 1
  setp.ge p1 r4, 1
  @p1 bra BB1
BB2:
  setp.eq p2 r0, 0
  @!p2 exit
  ld.shared r9 0
  ld.param r10 1
  st.global r10, r9
  exit
",
    );
    Workload {
        name: "reduction".into(),
        suite: Suite::CudaSdk,
        kernel,
        launch: Launch::new(1, N).with_params(vec![0, N as u32]),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            // Tree-order reduction, matching the kernel exactly.
            let mut sh: Vec<f32> = (0..N).map(|i| init.load_f32(i as u32).unwrap()).collect();
            let mut stride = N / 2;
            while stride >= 1 {
                for t in 0..stride {
                    sh[t] += sh[t + stride];
                }
                stride /= 2;
            }
            check_f32_region(out, N, &sh[..1], 0.0)
        },
    }
}

/// `MatrixMul`: 32×32 · 32×32 matrix product, one output element per
/// thread.
pub fn matrixmul() -> Workload {
    const D: usize = 32;
    let a = f32_data(41, D * D, -1.0, 1.0);
    let b = f32_data(42, D * D, -1.0, 1.0);
    let mut words: Vec<u32> = Vec::new();
    words.extend(a.iter().map(|v| v.to_bits()));
    words.extend(b.iter().map(|v| v.to_bits()));
    words.extend(std::iter::repeat_n(0, D * D));
    let kernel = parse(&format!(
        "
.kernel matrixmul
BB0:
  mov r0, %tid.x
  shr r1 r0, 5
  and r2 r0, 31
  ld.param r3 0
  imul r4 r1, {D}
  iadd r3 r3, r4
  ld.param r5 1
  iadd r5 r5, r2
  mov r6, 0.0f
  mov r7, 0
BB1:
  ld.global r8 r3
  ld.global r9 r5
  ffma r6 r8, r9, r6
  iadd r3 r3, 1
  iadd r5 r5, {D}
  iadd r7 r7, 1
  setp.lt p0 r7, {D}
  @p0 bra BB1
BB2:
  ld.param r10 2
  iadd r10 r10, r0
  st.global r10, r6
  exit
"
    ));
    Workload {
        name: "matrixmul".into(),
        suite: Suite::CudaSdk,
        kernel,
        launch: Launch::new(1, D * D).with_params(vec![0, (D * D) as u32, (2 * D * D) as u32]),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            const D: usize = 32;
            let expected: Vec<f32> = (0..D * D)
                .map(|idx| {
                    let (row, col) = (idx / D, idx % D);
                    let mut sum = 0.0f32;
                    for k in 0..D {
                        let a = init.load_f32((row * D + k) as u32).unwrap();
                        let b = init.load_f32((D * D + k * D + col) as u32).unwrap();
                        sum = a.mul_add(b, sum);
                    }
                    sum
                })
                .collect();
            check_f32_region(out, 2 * D * D, &expected, 1e-5)
        },
    }
}

/// `Mandelbrot`: per-thread escape-time iteration with heavy divergence.
pub fn mandelbrot() -> Workload {
    let words = vec![0u32; N];
    let kernel = parse(
        "
.kernel mandelbrot
BB0:
  mov r0, %tid.x
  and r1 r0, 31
  shr r2 r0, 5
  i2f r3 r1
  fmul r3 r3, 0.09375f
  fadd r3 r3, -2.0f
  i2f r4 r2
  fmul r4 r4, 0.09375f
  fadd r4 r4, -1.5f
  mov r5, 0.0f
  mov r6, 0.0f
  mov r7, 0
BB1:
  fmul r8 r5, r5
  fmul r9 r6, r6
  fadd r10 r8, r9
  fsetp.ge p0 r10, 4.0f
  @p0 bra BB3
BB2:
  fmul r11 r5, r6
  fsub r5 r8, r9
  fadd r5 r5, r3
  ffma r6 r11, 2.0f, r4
  iadd r7 r7, 1
  setp.lt p1 r7, 48
  @p1 bra BB1
BB3:
  st.global r0, r7
  exit
",
    );
    Workload {
        name: "mandelbrot".into(),
        suite: Suite::CudaSdk,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |_, out| {
            let expected: Vec<u32> = (0..N as u32)
                .map(|t| {
                    let cx = (t & 31) as f32 * 0.09375 + -2.0;
                    let cy = (t >> 5) as f32 * 0.09375 + -1.5;
                    let (mut zx, mut zy, mut it) = (0.0f32, 0.0f32, 0u32);
                    loop {
                        let (x2, y2) = (zx * zx, zy * zy);
                        if x2 + y2 >= 4.0 {
                            break;
                        }
                        let xy = zx * zy;
                        zx = (x2 - y2) + cx;
                        zy = xy.mul_add(2.0, cy);
                        it += 1;
                        if it >= 48 {
                            break;
                        }
                    }
                    it
                })
                .collect();
            check_u32_region(out, 0, &expected)
        },
    }
}

/// `Nbody`: gravitational accumulation over 64 bodies per thread (rsqrt
/// SFU inner loop).
pub fn nbody() -> Workload {
    const BODIES: usize = 64;
    let xs = f32_data(51, BODIES, -4.0, 4.0);
    let ms = f32_data(52, BODIES, 0.1, 2.0);
    let px = f32_data(53, N, -4.0, 4.0);
    let mut words: Vec<u32> = Vec::new();
    words.extend(xs.iter().map(|v| v.to_bits())); // 0..64: body positions
    words.extend(ms.iter().map(|v| v.to_bits())); // 64..128: body masses
    words.extend(px.iter().map(|v| v.to_bits())); // 128..128+N: particle x
    words.extend(std::iter::repeat_n(0, N)); // output accel
    let kernel = parse(&format!(
        "
.kernel nbody
BB0:
  mov r0, %tid.x
  iadd r1 r0, 128
  ld.global r2 r1
  mov r3, 0.0f
  mov r4, 0
BB1:
  ld.global r5 r4
  iadd r6 r4, 64
  ld.global r7 r6
  fsub r8 r5, r2
  ffma r9 r8, r8, 0.01f
  rsqrt r10 r9
  fmul r11 r10, r10
  fmul r11 r11, r10
  fmul r12 r7, r11
  ffma r3 r12, r8, r3
  iadd r4 r4, 1
  setp.lt p0 r4, {BODIES}
  @p0 bra BB1
BB2:
  iadd r13 r0, {out}
  st.global r13, r3
  exit
",
        BODIES = BODIES,
        out = 128 + N
    ));
    Workload {
        name: "nbody".into(),
        suite: Suite::CudaSdk,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            const BODIES: usize = 64;
            let expected: Vec<f32> = (0..N)
                .map(|t| {
                    let x = init.load_f32((128 + t) as u32).unwrap();
                    let mut acc = 0.0f32;
                    for j in 0..BODIES {
                        let bx = init.load_f32(j as u32).unwrap();
                        let m = init.load_f32((64 + j) as u32).unwrap();
                        let dx = bx - x;
                        let d2 = dx.mul_add(dx, 0.01);
                        let inv = 1.0 / d2.sqrt();
                        let inv3 = inv * inv * inv;
                        acc = (m * inv3).mul_add(dx, acc);
                    }
                    acc
                })
                .collect();
            check_f32_region(out, 128 + N, &expected, 1e-4)
        },
    }
}

/// `Histogram`: each thread counts how often its bin appears in a data
/// segment (compare-and-accumulate inner loop).
pub fn histogram() -> Workload {
    const SEG: usize = 16;
    let data = i32_data(61, N * SEG, 0, 1024);
    let mut words: Vec<u32> = data.clone();
    words.extend(std::iter::repeat_n(0, N));
    let kernel = parse(&format!(
        "
.kernel histogram
BB0:
  mov r0, %tid.x
  mov r1, 0
  mov r2, 0
BB1:
  imul r4 r2, {N}
  iadd r4 r4, r0
  ld.global r5 r4
  setp.eq p0 r5, r0
  @p0 iadd r1 r1, 1
  iadd r2 r2, 1
  setp.lt p1 r2, {SEG}
  @p1 bra BB1
BB2:
  iadd r6 r0, {out}
  st.global r6, r1
  exit
",
        N = N,
        SEG = SEG,
        out = N * SEG
    ));
    Workload {
        name: "histogram".into(),
        suite: Suite::CudaSdk,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            const SEG: usize = 16;
            let expected: Vec<u32> = (0..N as u32)
                .map(|t| {
                    let mut count = 0;
                    for s in 0..SEG {
                        let v = init.load((s * N) as u32 + t).unwrap();
                        if v == t {
                            count += 1;
                        }
                    }
                    count
                })
                .collect();
            check_u32_region(out, N * SEG, &expected)
        },
    }
}

/// `BicubicTexture`: four texture fetches blended with computed weights.
pub fn bicubictexture() -> Workload {
    let texture = f32_data(71, 2048, 0.0, 1.0);
    let mut words: Vec<u32> = texture.iter().map(|v| v.to_bits()).collect();
    words.extend(std::iter::repeat_n(0, N));
    let kernel = parse(&format!(
        "
.kernel bicubictexture
BB0:
  mov r0, %tid.x
  and r1 r0, 1023
  i2f r2 r0
  fmul r2 r2, 0.3141f
  sin r3 r2
  fadd r3 r3, 1.0f
  fmul r3 r3, 0.5f
  tex r4 r1
  iadd r5 r1, 1
  tex r6 r5
  iadd r7 r1, 2
  tex r8 r7
  iadd r9 r1, 3
  tex r10 r9
  fsub r11 1.0f, r3
  fmul r12 r4, r11
  ffma r12 r6, r3, r12
  fmul r13 r8, r11
  ffma r13 r10, r3, r13
  fadd r14 r12, r13
  fmul r14 r14, 0.5f
  iadd r15 r0, {out}
  st.global r15, r14
  exit
",
        out = 2048
    ));
    Workload {
        name: "bicubictexture".into(),
        suite: Suite::CudaSdk,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            let expected: Vec<f32> = (0..N as u32)
                .map(|t| {
                    let i = t & 1023;
                    let w = ((t as f32 * 0.3141).sin() + 1.0) * 0.5;
                    let fetch = |a: u32| init.load_f32(a).unwrap();
                    let (t0, t1, t2, t3) = (fetch(i), fetch(i + 1), fetch(i + 2), fetch(i + 3));
                    let inv = 1.0 - w;
                    let lo = t1.mul_add(w, t0 * inv);
                    let hi = t3.mul_add(w, t2 * inv);
                    (lo + hi) * 0.5
                })
                .collect();
            check_f32_region(out, 2048, &expected, 1e-5)
        },
    }
}

/// `DwtHaar1D`: one Haar wavelet step, one butterfly per thread.
pub fn dwthaar1d() -> Workload {
    let data = f32_data(81, 2 * N, -1.0, 1.0);
    let mut words: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
    words.extend(std::iter::repeat_n(0, 2 * N));
    let kernel = parse(&format!(
        "
.kernel dwthaar1d
BB0:
  mov r0, %tid.x
  shl r1 r0, 1
  ld.global r2 r1
  iadd r3 r1, 1
  ld.global r4 r3
  fadd r5 r2, r4
  fmul r5 r5, 0.70710678f
  fsub r6 r2, r4
  fmul r6 r6, 0.70710678f
  iadd r7 r0, {approx}
  st.global r7, r5
  iadd r8 r0, {detail}
  st.global r8, r6
  exit
",
        approx = 2 * N,
        detail = 3 * N
    ));
    Workload {
        name: "dwthaar1d".into(),
        suite: Suite::CudaSdk,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            let approx: Vec<f32> = (0..N)
                .map(|t| {
                    let a = init.load_f32((2 * t) as u32).unwrap();
                    let b = init.load_f32((2 * t + 1) as u32).unwrap();
                    (a + b) * std::f32::consts::FRAC_1_SQRT_2
                })
                .collect();
            let detail: Vec<f32> = (0..N)
                .map(|t| {
                    let a = init.load_f32((2 * t) as u32).unwrap();
                    let b = init.load_f32((2 * t + 1) as u32).unwrap();
                    (a - b) * std::f32::consts::FRAC_1_SQRT_2
                })
                .collect();
            check_f32_region(out, 2 * N, &approx, 1e-6)?;
            check_f32_region(out, 3 * N, &detail, 1e-6)
        },
    }
}

/// `SobelFilter`: 1-D gradient magnitude with guarded edges.
pub fn sobelfilter() -> Workload {
    let data = f32_data(91, N, 0.0, 8.0);
    let mut words: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
    words.extend(std::iter::repeat_n(0, N));
    let kernel = parse(&format!(
        "
.kernel sobelfilter
BB0:
  mov r0, %tid.x
  mov r1, 0.0f
  setp.ge p0 r0, 1
  @!p0 bra BB3
BB1:
  setp.le p1 r0, {lastm1}
  @!p1 bra BB3
BB2:
  isub r2 r0, 1
  ld.global r3 r2
  iadd r4 r0, 1
  ld.global r5 r4
  fsub r6 r5, r3
  fsub r7 0.0f, r6
  fmax r1 r6, r7
BB3:
  iadd r8 r0, {out}
  st.global r8, r1
  exit
",
        lastm1 = N - 2,
        out = N
    ));
    Workload {
        name: "sobelfilter".into(),
        suite: Suite::CudaSdk,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            let expected: Vec<f32> = (0..N)
                .map(|t| {
                    if t == 0 || t == N - 1 {
                        0.0
                    } else {
                        let l = init.load_f32((t - 1) as u32).unwrap();
                        let r = init.load_f32((t + 1) as u32).unwrap();
                        (r - l).abs()
                    }
                })
                .collect();
            check_f32_region(out, N, &expected, 1e-6)
        },
    }
}

/// All CUDA SDK workloads.
pub fn all() -> Vec<Workload> {
    vec![
        vectoradd(),
        scalarprod(),
        reduction(),
        matrixmul(),
        mandelbrot(),
        nbody(),
        histogram(),
        bicubictexture(),
        dwthaar1d(),
        sobelfilter(),
        dct8x8(),
        fastwalshtransform(),
        sortingnetworks(),
        convolutionseparable(),
        binomialoptions(),
        montecarlo(),
        volumerender(),
        boxfilter(),
        convolutiontexture(),
        sobolqrng(),
        imagedenoising(),
        mergesort(),
        eigenvalues(),
        recursivegaussian(),
    ]
}

/// `Dct8x8` (4-point DCT-II per thread, two blocks): dense FMA chains on
/// register values between one load and one store phase.
pub fn dct8x8() -> Workload {
    let data = f32_data(131, 8 * N, -1.0, 1.0);
    let mut words: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
    words.extend(std::iter::repeat_n(0, 8 * N));
    // DCT-II coefficients for 4 points: c[k][n] = cos(pi/4 * (n + 0.5) * k).
    let c = |k: usize, n: usize| -> f32 {
        (std::f32::consts::PI / 4.0 * (n as f32 + 0.5) * k as f32).cos()
    };
    let mut body = String::new();
    // Two 4-point blocks per thread: registers r1..r4 and r5..r8.
    for blk in 0..2 {
        let base = 1 + blk * 4;
        for k in 0..4 {
            let d = 9 + k; // r9..r12 outputs
            body.push_str(&format!("  fmul r{d} r{base}, {:?}f\n", c(k, 0)));
            for n in 1..4 {
                body.push_str(&format!(
                    "  ffma r{d} r{}, {:?}f, r{d}\n",
                    base + n,
                    c(k, n)
                ));
            }
        }
        for k in 0..4 {
            body.push_str(&format!(
                "  iadd r13 r0, {}\n  st.global r13, r{}\n",
                8 * N + blk * 4 * N + k * N,
                9 + k
            ));
        }
    }
    let mut loads = String::new();
    for i in 0..8 {
        loads.push_str(&format!(
            "  iadd r13 r0, {}\n  ld.global r{} r13\n",
            i * N,
            1 + i
        ));
    }
    let kernel = parse(&format!(
        ".kernel dct8x8\nBB0:\n  mov r0, %tid.x\n{loads}{body}  exit\n"
    ));
    Workload {
        name: "dct8x8".into(),
        suite: Suite::CudaSdk,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            let c = |k: usize, n: usize| -> f32 {
                (std::f32::consts::PI / 4.0 * (n as f32 + 0.5) * k as f32).cos()
            };
            for t in 0..N {
                for blk in 0..2 {
                    for k in 0..4 {
                        let mut acc = init.load_f32((blk * 4 * N + t) as u32).unwrap() * c(k, 0);
                        for n in 1..4 {
                            let x = init.load_f32(((blk * 4 + n) * N + t) as u32).unwrap();
                            acc = x.mul_add(c(k, n), acc);
                        }
                        let got = out
                            .load_f32((8 * N + blk * 4 * N + k * N + t) as u32)
                            .unwrap();
                        if (got - acc).abs() > 1e-4 * acc.abs().max(1.0) {
                            return Err(format!("t={t} blk={blk} k={k}: {acc} vs {got}"));
                        }
                    }
                }
            }
            Ok(())
        },
    }
}

/// `FastWalshTransform`: an 8-point Walsh–Hadamard butterfly network held
/// entirely in registers.
pub fn fastwalshtransform() -> Workload {
    let data = f32_data(141, 8 * N, -1.0, 1.0);
    let mut words: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
    words.extend(std::iter::repeat_n(0, 8 * N));
    let mut body = String::new();
    // Three butterfly stages over r1..r8 (strides 1, 2, 4).
    for stage in 0..3u32 {
        let stride = 1usize << stage;
        let mut done = [false; 8];
        for i in 0..8 {
            if done[i] {
                continue;
            }
            let j = i + stride;
            if j >= 8 || done[j] || (i / stride) % 2 == 1 {
                continue;
            }
            done[i] = true;
            done[j] = true;
            let (a, b) = (1 + i, 1 + j);
            body.push_str(&format!(
                "  fadd r9 r{a}, r{b}\n  fsub r{b} r{a}, r{b}\n  mov r{a}, r9\n"
            ));
        }
    }
    let mut loads = String::new();
    let mut stores = String::new();
    for i in 0..8 {
        loads.push_str(&format!(
            "  iadd r10 r0, {}\n  ld.global r{} r10\n",
            i * N,
            1 + i
        ));
        stores.push_str(&format!(
            "  iadd r10 r0, {}\n  st.global r10, r{}\n",
            8 * N + i * N,
            1 + i
        ));
    }
    let kernel = parse(&format!(
        ".kernel fastwalshtransform\nBB0:\n  mov r0, %tid.x\n{loads}{body}{stores}  exit\n"
    ));
    Workload {
        name: "fastwalshtransform".into(),
        suite: Suite::CudaSdk,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            for t in 0..N {
                let mut v: Vec<f32> = (0..8)
                    .map(|i| init.load_f32((i * N + t) as u32).unwrap())
                    .collect();
                for stage in 0..3u32 {
                    let stride = 1usize << stage;
                    let mut done = [false; 8];
                    for i in 0..8 {
                        if done[i] {
                            continue;
                        }
                        let j = i + stride;
                        if j >= 8 || done[j] || (i / stride) % 2 == 1 {
                            continue;
                        }
                        done[i] = true;
                        done[j] = true;
                        let (a, b) = (v[i] + v[j], v[i] - v[j]);
                        v[i] = a;
                        v[j] = b;
                    }
                }
                for (i, e) in v.iter().enumerate() {
                    let got = out.load_f32((8 * N + i * N + t) as u32).unwrap();
                    if (got - e).abs() > 1e-5 * e.abs().max(1.0) {
                        return Err(format!("t={t} i={i}: expected {e}, got {got}"));
                    }
                }
            }
            Ok(())
        },
    }
}

/// `SortingNetworks`: Batcher's 8-element odd–even merge network, entirely
/// in registers (dense `imin`/`imax` chains).
pub fn sortingnetworks() -> Workload {
    const NET: [(usize, usize); 19] = [
        (0, 1),
        (2, 3),
        (4, 5),
        (6, 7),
        (0, 2),
        (1, 3),
        (4, 6),
        (5, 7),
        (1, 2),
        (5, 6),
        (0, 4),
        (1, 5),
        (2, 6),
        (3, 7),
        (2, 4),
        (3, 5),
        (1, 2),
        (3, 4),
        (5, 6),
    ];
    let data = i32_data(151, 8 * N, -1000, 1000);
    let mut words: Vec<u32> = data.clone();
    words.extend(std::iter::repeat_n(0, 8 * N));
    let mut body = String::new();
    for (a, b) in NET {
        let (ra, rb) = (1 + a, 1 + b);
        body.push_str(&format!(
            "  imin r9 r{ra}, r{rb}\n  imax r{rb} r{ra}, r{rb}\n  mov r{ra}, r9\n"
        ));
    }
    let mut loads = String::new();
    let mut stores = String::new();
    for i in 0..8 {
        loads.push_str(&format!(
            "  iadd r10 r0, {}\n  ld.global r{} r10\n",
            i * N,
            1 + i
        ));
        stores.push_str(&format!(
            "  iadd r10 r0, {}\n  st.global r10, r{}\n",
            8 * N + i * N,
            1 + i
        ));
    }
    let kernel = parse(&format!(
        ".kernel sortingnetworks\nBB0:\n  mov r0, %tid.x\n{loads}{body}{stores}  exit\n"
    ));
    Workload {
        name: "sortingnetworks".into(),
        suite: Suite::CudaSdk,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            for t in 0..N {
                let mut v: Vec<i32> = (0..8)
                    .map(|i| init.load((i * N + t) as u32).unwrap() as i32)
                    .collect();
                v.sort_unstable();
                for (i, e) in v.iter().enumerate() {
                    let got = out.load((8 * N + i * N + t) as u32).unwrap() as i32;
                    if got != *e {
                        return Err(format!("t={t} i={i}: expected {e}, got {got}"));
                    }
                }
            }
            Ok(())
        },
    }
}

/// `ConvolutionSeparable`: 7-tap 1-D convolution with clamped borders
/// (address clamping via `imax`/`imin` keeps every lane in bounds).
pub fn convolutionseparable() -> Workload {
    const TAPS: [f32; 7] = [0.0625, 0.125, 0.1875, 0.25, 0.1875, 0.125, 0.0625];
    let data = f32_data(161, N, -2.0, 2.0);
    let mut words: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
    words.extend(std::iter::repeat_n(0, N));
    let mut body = String::new();
    body.push_str("  mov r1, 0.0f\n");
    for (k, w) in TAPS.iter().enumerate() {
        let off = k as i32 - 3;
        body.push_str(&format!("  iadd r2 r0, {off}\n"));
        body.push_str("  imax r2 r2, 0\n");
        body.push_str(&format!("  imin r2 r2, {}\n", N - 1));
        body.push_str("  ld.global r3 r2\n");
        body.push_str(&format!("  ffma r1 r3, {w:?}f, r1\n"));
    }
    let kernel = parse(&format!(
        ".kernel convolutionseparable\nBB0:\n  mov r0, %tid.x\n{body}  iadd r4 r0, {}\n  st.global r4, r1\n  exit\n",
        N
    ));
    Workload {
        name: "convolutionseparable".into(),
        suite: Suite::CudaSdk,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            const TAPS: [f32; 7] = [0.0625, 0.125, 0.1875, 0.25, 0.1875, 0.125, 0.0625];
            let expected: Vec<f32> = (0..N as i32)
                .map(|t| {
                    let mut acc = 0.0f32;
                    for (k, w) in TAPS.iter().enumerate() {
                        let idx = (t + k as i32 - 3).clamp(0, N as i32 - 1) as u32;
                        acc = init.load_f32(idx).unwrap().mul_add(*w, acc);
                    }
                    acc
                })
                .collect();
            check_f32_region(out, N, &expected, 1e-5)
        },
    }
}

/// `BinomialOptions`: an 8-step CRR backward induction held entirely in
/// registers — the densest FMA chain in the suite.
pub fn binomialoptions() -> Workload {
    const STEPS: usize = 8;
    const U: f32 = 1.05; // up factor per step
    const PU: f32 = 0.55; // risk-neutral up probability × discount
    const PD: f32 = 0.43; // down probability × discount
    const STRIKE: f32 = 1.0;
    let spots = f32_data(171, N, 0.5, 2.0);
    let mut words: Vec<u32> = spots.iter().map(|v| v.to_bits()).collect();
    words.extend(std::iter::repeat_n(0, N));
    let mut body = String::new();
    // Leaves: v_j = max(S·U^(2j−STEPS) − K, 0), j = 0..=STEPS in r2..r10.
    for j in 0..=STEPS {
        let factor = U.powi(2 * j as i32 - STEPS as i32);
        let r = 2 + j;
        body.push_str(&format!("  fmul r{r} r1, {factor:?}f\n"));
        body.push_str(&format!("  fsub r{r} r{r}, {STRIKE:?}f\n"));
        body.push_str(&format!("  fmax r{r} r{r}, 0.0f\n"));
    }
    // Backward induction: v_j = PU·v_{j+1} + PD·v_j.
    for step in (1..=STEPS).rev() {
        for j in 0..step {
            let (lo, hi) = (2 + j, 2 + j + 1);
            body.push_str(&format!("  fmul r11 r{lo}, {PD:?}f\n"));
            body.push_str(&format!("  ffma r{lo} r{hi}, {PU:?}f, r11\n"));
        }
    }
    let kernel = parse(&format!(
        ".kernel binomialoptions\nBB0:\n  mov r0, %tid.x\n  ld.global r1 r0\n{body}  iadd r12 r0, {N}\n  st.global r12, r2\n  exit\n"
    ));
    Workload {
        name: "binomialoptions".into(),
        suite: Suite::CudaSdk,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            const STEPS: usize = 8;
            let expected: Vec<f32> = (0..N)
                .map(|t| {
                    let s = init.load_f32(t as u32).unwrap();
                    let mut v: Vec<f32> = (0..=STEPS)
                        .map(|j| {
                            let f = U.powi(2 * j as i32 - STEPS as i32);
                            ((s * f) - STRIKE).max(0.0)
                        })
                        .collect();
                    for step in (1..=STEPS).rev() {
                        for j in 0..step {
                            v[j] = v[j + 1].mul_add(PU, v[j] * PD);
                        }
                    }
                    v[0]
                })
                .collect();
            check_f32_region(out, N, &expected, 1e-4)
        },
    }
}

/// `MonteCarlo`: per-thread LCG paths with payoff accumulation (integer
/// RNG chain feeding float arithmetic in a loop).
pub fn montecarlo() -> Workload {
    const PATHS: usize = 24;
    let seeds = i32_data(181, N, 1, 1 << 20);
    let mut words: Vec<u32> = seeds.clone();
    words.extend(std::iter::repeat_n(0, N));
    let kernel = parse(&format!(
        "
.kernel montecarlo
BB0:
  mov r0, %tid.x
  ld.global r1 r0
  mov r2, 0.0f
  mov r3, 0
BB1:
  imul r1 r1, 1103515245
  iadd r1 r1, 12345
  and r4 r1, 65535
  i2f r5 r4
  fmul r5 r5, 0.0000305f
  fsub r5 r5, 0.8f
  fmax r5 r5, 0.0f
  fadd r2 r2, r5
  iadd r3 r3, 1
  setp.lt p0 r3, {PATHS}
  @p0 bra BB1
BB2:
  fmul r2 r2, {inv}f
  iadd r6 r0, {out}
  st.global r6, r2
  exit
",
        PATHS = PATHS,
        inv = 1.0 / PATHS as f32,
        out = N
    ));
    Workload {
        name: "montecarlo".into(),
        suite: Suite::CudaSdk,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            const PATHS: usize = 24;
            let expected: Vec<f32> = (0..N)
                .map(|t| {
                    let mut x = init.load(t as u32).unwrap() as i32;
                    let mut acc = 0.0f32;
                    for _ in 0..PATHS {
                        x = x.wrapping_mul(1103515245).wrapping_add(12345);
                        let u = (x as u32 & 65535) as i32 as f32;
                        let v = (u * 0.0000305 - 0.8).max(0.0);
                        acc += v;
                    }
                    acc * (1.0 / PATHS as f32)
                })
                .collect();
            check_f32_region(out, N, &expected, 1e-5)
        },
    }
}

/// `VolumeRender`: front-to-back ray marching with texture fetches and a
/// transmittance recurrence.
pub fn volumerender() -> Workload {
    const STEPS: usize = 16;
    let volume = f32_data(191, 2048, 0.0, 0.6);
    let mut words: Vec<u32> = volume.iter().map(|v| v.to_bits()).collect();
    words.extend(std::iter::repeat_n(0, N));
    let kernel = parse(&format!(
        "
.kernel volumerender
BB0:
  mov r0, %tid.x
  and r1 r0, 1023
  mov r2, 0.0f
  mov r3, 1.0f
  mov r4, 0
BB1:
  tex r5 r1
  fmul r6 r5, r3
  fadd r2 r2, r6
  fmul r7 r5, 0.5f
  fsub r8 1.0f, r7
  fmul r3 r3, r8
  iadd r1 r1, 61
  and r1 r1, 2047
  iadd r4 r4, 1
  setp.lt p0 r4, {STEPS}
  @p0 bra BB1
BB2:
  iadd r9 r0, {out}
  st.global r9, r2
  exit
",
        STEPS = STEPS,
        out = 2048
    ));
    Workload {
        name: "volumerender".into(),
        suite: Suite::CudaSdk,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            const STEPS: usize = 16;
            let expected: Vec<f32> = (0..N as u32)
                .map(|t| {
                    let mut pos = t & 1023;
                    let (mut color, mut trans) = (0.0f32, 1.0f32);
                    for _ in 0..STEPS {
                        let s = init.load_f32(pos).unwrap();
                        color += s * trans;
                        trans *= 1.0 - s * 0.5;
                        pos = (pos + 61) & 2047;
                    }
                    color
                })
                .collect();
            check_f32_region(out, 2048, &expected, 1e-4)
        },
    }
}

/// `BoxFilter`: 9-wide sliding box average with clamped borders.
pub fn boxfilter() -> Workload {
    let data = f32_data(301, N, 0.0, 16.0);
    let mut words: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
    words.extend(std::iter::repeat_n(0, N));
    let mut body = String::from("  mov r1, 0.0f\n");
    for off in -4i32..=4 {
        body.push_str(&format!(
            "  iadd r2 r0, {off}\n  imax r2 r2, 0\n  imin r2 r2, {}\n  ld.global r3 r2\n  fadd r1 r1, r3\n",
            N - 1
        ));
    }
    let kernel = parse(&format!(
        ".kernel boxfilter\nBB0:\n  mov r0, %tid.x\n{body}  fmul r1 r1, {inv:?}f\n  iadd r4 r0, {out}\n  st.global r4, r1\n  exit\n",
        inv = 1.0f32 / 9.0,
        out = N
    ));
    Workload {
        name: "boxfilter".into(),
        suite: Suite::CudaSdk,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            let expected: Vec<f32> = (0..N as i32)
                .map(|t| {
                    let mut acc = 0.0f32;
                    for off in -4i32..=4 {
                        let idx = (t + off).clamp(0, N as i32 - 1) as u32;
                        acc += init.load_f32(idx).unwrap();
                    }
                    acc * (1.0f32 / 9.0)
                })
                .collect();
            check_f32_region(out, N, &expected, 1e-5)
        },
    }
}

/// `ConvolutionTexture`: 5-tap convolution through the texture unit with
/// wrapped coordinates.
pub fn convolutiontexture() -> Workload {
    const TAPS: [f32; 5] = [0.1, 0.2, 0.4, 0.2, 0.1];
    let tex = f32_data(311, 1024, -1.0, 1.0);
    let mut words: Vec<u32> = tex.iter().map(|v| v.to_bits()).collect();
    words.extend(std::iter::repeat_n(0, N));
    let mut body = String::from("  mov r1, 0.0f\n");
    for (k, w) in TAPS.iter().enumerate() {
        body.push_str(&format!(
            "  iadd r2 r0, {k}\n  and r2 r2, 1023\n  tex r3 r2\n  ffma r1 r3, {w:?}f, r1\n"
        ));
    }
    let kernel = parse(&format!(
        ".kernel convolutiontexture\nBB0:\n  mov r0, %tid.x\n{body}  iadd r4 r0, 1024\n  st.global r4, r1\n  exit\n"
    ));
    Workload {
        name: "convolutiontexture".into(),
        suite: Suite::CudaSdk,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            const TAPS: [f32; 5] = [0.1, 0.2, 0.4, 0.2, 0.1];
            let expected: Vec<f32> = (0..N as u32)
                .map(|t| {
                    let mut acc = 0.0f32;
                    for (k, w) in TAPS.iter().enumerate() {
                        let c = (t + k as u32) & 1023;
                        acc = init.load_f32(c).unwrap().mul_add(*w, acc);
                    }
                    acc
                })
                .collect();
            check_f32_region(out, 1024, &expected, 1e-5)
        },
    }
}

/// `SobolQRNG`: direction-number XOR accumulation with predicated updates
/// (integer + predication heavy).
pub fn sobolqrng() -> Workload {
    const BITS: usize = 16;
    let dirs = i32_data(321, BITS, 1, 1 << 30);
    let mut words: Vec<u32> = dirs.clone();
    words.extend(std::iter::repeat_n(0, N));
    let mut body = String::from("  mov r1, 0\n");
    for bit in 0..BITS {
        body.push_str(&format!(
            "  shr r2 r0, {bit}\n  and r2 r2, 1\n  setp.eq p0 r2, 1\n  ld.global r3 {bit}\n  @p0 xor r1 r1, r3\n"
        ));
    }
    let kernel = parse(&format!(
        ".kernel sobolqrng\nBB0:\n  mov r0, %tid.x\n{body}  iadd r4 r0, {BITS}\n  st.global r4, r1\n  exit\n"
    ));
    Workload {
        name: "sobolqrng".into(),
        suite: Suite::CudaSdk,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            const BITS: usize = 16;
            let expected: Vec<u32> = (0..N as u32)
                .map(|t| {
                    let mut v = 0u32;
                    for bit in 0..BITS {
                        if (t >> bit) & 1 == 1 {
                            v ^= init.load(bit as u32).unwrap();
                        }
                    }
                    v
                })
                .collect();
            check_u32_region(out, BITS, &expected)
        },
    }
}

/// `ImageDenoising`: edge-preserving weighted average — per-neighbor
/// weights from `rcp(1 + d²)`, then a reciprocal normalization.
pub fn imagedenoising() -> Workload {
    let img = f32_data(331, N, 0.0, 4.0);
    let mut words: Vec<u32> = img.iter().map(|v| v.to_bits()).collect();
    words.extend(std::iter::repeat_n(0, N));
    let mut body = String::from("  ld.global r1 r0\n  mov r2, 0.0f\n  mov r3, 0.0f\n");
    for off in [-2i32, -1, 1, 2] {
        body.push_str(&format!(
            "  iadd r4 r0, {off}\n  imax r4 r4, 0\n  imin r4 r4, {}\n  ld.global r5 r4\n",
            N - 1
        ));
        body.push_str(
            "  fsub r6 r5, r1\n  ffma r7 r6, r6, 1.0f\n  rcp r8 r7\n  ffma r2 r5, r8, r2\n  fadd r3 r3, r8\n",
        );
    }
    let kernel = parse(&format!(
        ".kernel imagedenoising\nBB0:\n  mov r0, %tid.x\n{body}  rcp r9 r3\n  fmul r2 r2, r9\n  iadd r10 r0, {out}\n  st.global r10, r2\n  exit\n",
        out = N
    ));
    Workload {
        name: "imagedenoising".into(),
        suite: Suite::CudaSdk,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            let expected: Vec<f32> = (0..N as i32)
                .map(|t| {
                    let me = init.load_f32(t as u32).unwrap();
                    let (mut num, mut den) = (0.0f32, 0.0f32);
                    for off in [-2i32, -1, 1, 2] {
                        let idx = (t + off).clamp(0, N as i32 - 1) as u32;
                        let v = init.load_f32(idx).unwrap();
                        let d = v - me;
                        let w = 1.0 / d.mul_add(d, 1.0);
                        num = v.mul_add(w, num);
                        den += w;
                    }
                    num * (1.0 / den)
                })
                .collect();
            check_f32_region(out, N, &expected, 1e-4)
        },
    }
}

/// `MergeSort`: bitonic merge of two pre-sorted 4-element runs held in
/// registers.
pub fn mergesort() -> Workload {
    // Each thread owns 8 values: words [0..4) ascending, [4..8) ascending.
    let mut data = i32_data(341, 8 * N, -500, 500);
    for t in 0..N {
        let mut lo: Vec<u32> = (0..4).map(|i| data[i * N + t]).collect();
        let mut hi: Vec<u32> = (4..8).map(|i| data[i * N + t]).collect();
        lo.sort_by_key(|v| *v as i32);
        hi.sort_by_key(|v| *v as i32);
        for i in 0..4 {
            data[i * N + t] = lo[i];
            data[(4 + i) * N + t] = hi[i];
        }
    }
    let mut words = data.clone();
    words.extend(std::iter::repeat_n(0, 8 * N));
    // Bitonic merge: reverse the second run, then 3 compare-exchange
    // stages with strides 4, 2, 1.
    let mut body = String::new();
    for i in 0..8 {
        // r1..r8 hold the bitonic sequence: lo ascending, hi descending.
        let src = if i < 4 { i } else { 4 + (7 - i) };
        body.push_str(&format!(
            "  iadd r10 r0, {}\n  ld.global r{} r10\n",
            src * N,
            1 + i
        ));
    }
    for stride in [4usize, 2, 1] {
        let mut i = 0;
        while i < 8 {
            for j in i..i + stride {
                let (a, b) = (1 + j, 1 + j + stride);
                body.push_str(&format!(
                    "  imin r9 r{a}, r{b}\n  imax r{b} r{a}, r{b}\n  mov r{a}, r9\n"
                ));
            }
            i += 2 * stride;
        }
    }
    for i in 0..8 {
        body.push_str(&format!(
            "  iadd r10 r0, {}\n  st.global r10, r{}\n",
            (8 + i) * N,
            1 + i
        ));
    }
    let kernel = parse(&format!(
        ".kernel mergesort\nBB0:\n  mov r0, %tid.x\n{body}  exit\n"
    ));
    Workload {
        name: "mergesort".into(),
        suite: Suite::CudaSdk,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            for t in 0..N {
                let mut v: Vec<i32> = (0..8)
                    .map(|i| init.load((i * N + t) as u32).unwrap() as i32)
                    .collect();
                v.sort_unstable();
                for (i, e) in v.iter().enumerate() {
                    let got = out.load(((8 + i) * N + t) as u32).unwrap() as i32;
                    if got != *e {
                        return Err(format!("t={t} i={i}: expected {e}, got {got}"));
                    }
                }
            }
            Ok(())
        },
    }
}

/// `EigenValues`: closed-form eigenvalues of per-thread symmetric 2×2
/// matrices (sqrt-centred float chain).
pub fn eigenvalues() -> Workload {
    let a = f32_data(351, N, -4.0, 4.0);
    let b = f32_data(352, N, -2.0, 2.0);
    let c = f32_data(353, N, -4.0, 4.0);
    let mut words: Vec<u32> = Vec::new();
    words.extend(a.iter().map(|v| v.to_bits()));
    words.extend(b.iter().map(|v| v.to_bits()));
    words.extend(c.iter().map(|v| v.to_bits()));
    words.extend(std::iter::repeat_n(0, 2 * N));
    let kernel = parse(&format!(
        "
.kernel eigenvalues
BB0:
  mov r0, %tid.x
  ld.global r1 r0
  iadd r9 r0, {n}
  ld.global r2 r9
  iadd r9 r0, {n2}
  ld.global r3 r9
  fadd r4 r1, r3
  fmul r4 r4, 0.5f
  fsub r5 r1, r3
  fmul r5 r5, 0.5f
  fmul r6 r5, r5
  ffma r6 r2, r2, r6
  sqrt r7 r6
  fadd r8 r4, r7
  fsub r9 r4, r7
  iadd r10 r0, {lo}
  st.global r10, r8
  iadd r11 r0, {hi}
  st.global r11, r9
  exit
",
        n = N,
        n2 = 2 * N,
        lo = 3 * N,
        hi = 4 * N
    ));
    Workload {
        name: "eigenvalues".into(),
        suite: Suite::CudaSdk,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            for t in 0..N {
                let a = init.load_f32(t as u32).unwrap();
                let b = init.load_f32((N + t) as u32).unwrap();
                let c = init.load_f32((2 * N + t) as u32).unwrap();
                let mid = (a + c) * 0.5;
                let half = (a - c) * 0.5;
                let disc = b.mul_add(b, half * half).sqrt();
                for (region, e) in [(3 * N, mid + disc), (4 * N, mid - disc)] {
                    let got = out.load_f32((region + t) as u32).unwrap();
                    if (got - e).abs() > 1e-4 * e.abs().max(1.0) {
                        return Err(format!("t={t}: expected {e}, got {got}"));
                    }
                }
            }
            Ok(())
        },
    }
}

/// `RecursiveGaussian`: first-order IIR along an 8-sample per-thread
/// column (loop-carried state with a global load per step).
pub fn recursivegaussian() -> Workload {
    const LEN: usize = 8;
    const A: f32 = 0.3;
    const B: f32 = 0.7;
    let data = f32_data(361, LEN * N, -1.0, 1.0);
    let mut words: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
    words.extend(std::iter::repeat_n(0, LEN * N));
    let kernel = parse(&format!(
        "
.kernel recursivegaussian
BB0:
  mov r0, %tid.x
  mov r1, 0.0f
  mov r2, 0
BB1:
  imul r3 r2, {N}
  iadd r3 r3, r0
  ld.global r4 r3
  fmul r5 r4, {A:?}f
  ffma r1 r1, {B:?}f, r5
  iadd r6 r3, {out}
  st.global r6, r1
  iadd r2 r2, 1
  setp.lt p0 r2, {LEN}
  @p0 bra BB1
BB2:
  exit
",
        N = N,
        LEN = LEN,
        A = A,
        B = B,
        out = LEN * N
    ));
    Workload {
        name: "recursivegaussian".into(),
        suite: Suite::CudaSdk,
        kernel,
        launch: Launch::new(1, N),
        memory: GlobalMemory::from_words(words),
        verify: |init, out| {
            const LEN: usize = 8;
            for t in 0..N {
                let mut y = 0.0f32;
                for s in 0..LEN {
                    let x = init.load_f32((s * N + t) as u32).unwrap();
                    y = y.mul_add(B, x * A);
                    let got = out.load_f32((LEN * N + s * N + t) as u32).unwrap();
                    if (got - y).abs() > 1e-5 * y.abs().max(1.0) {
                        return Err(format!("t={t} s={s}: expected {y}, got {got}"));
                    }
                }
            }
            Ok(())
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfh_sim::exec::ExecMode;
    use rfh_sim::sink::NullSink;

    fn final_memory(w: &Workload) -> GlobalMemory {
        let mut sink = NullSink;
        w.run_and_verify(ExecMode::Baseline, &w.kernel, &mut [&mut sink])
            .unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn mandelbrot_iteration_counts_vary() {
        let mem = final_memory(&mandelbrot());
        let counts: Vec<u32> = (0..N as u32).map(|t| mem.load(t).unwrap()).collect();
        assert!(counts.iter().any(|c| *c >= 48), "some points never escape");
        assert!(
            counts.iter().any(|c| *c < 4),
            "some points escape immediately"
        );
        let distinct: std::collections::HashSet<u32> = counts.iter().copied().collect();
        assert!(distinct.len() > 10, "divergence needs varied trip counts");
    }

    #[test]
    fn sortingnetworks_output_is_sorted() {
        let w = sortingnetworks();
        let mem = final_memory(&w);
        for t in 0..N {
            let v: Vec<i32> = (0..8)
                .map(|i| mem.load(((8 + i) * N + t) as u32).unwrap() as i32)
                .collect();
            assert!(v.windows(2).all(|p| p[0] <= p[1]), "t={t}: {v:?}");
        }
    }

    #[test]
    fn reduction_matches_plain_sum_loosely() {
        // The tree order differs from a serial sum, but for uniform(0,1)
        // data both must land close.
        let w = reduction();
        let mem = final_memory(&w);
        let serial: f32 = (0..N).map(|i| w.memory.load_f32(i as u32).unwrap()).sum();
        let tree = mem.load_f32(N as u32).unwrap();
        assert!((tree - serial).abs() < 0.01 * serial, "{tree} vs {serial}");
    }

    #[test]
    fn binomial_option_values_are_nonnegative_and_monotone_in_spot() {
        let w = binomialoptions();
        let mem = final_memory(&w);
        let mut priced: Vec<(f32, f32)> = (0..N)
            .map(|t| {
                (
                    w.memory.load_f32(t as u32).unwrap(),
                    mem.load_f32((N + t) as u32).unwrap(),
                )
            })
            .collect();
        assert!(priced.iter().all(|(_, v)| *v >= 0.0));
        priced.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        // Option value is non-decreasing in the spot price (tolerating
        // float noise between near-equal spots).
        for pair in priced.windows(2) {
            assert!(pair[1].1 >= pair[0].1 - 1e-4, "{pair:?}");
        }
    }

    #[test]
    fn boxfilter_smooths() {
        let w = boxfilter();
        let mem = final_memory(&w);
        let var = |vals: &[f32]| {
            let mean = vals.iter().sum::<f32>() / vals.len() as f32;
            vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32
        };
        let input: Vec<f32> = (0..N)
            .map(|i| w.memory.load_f32(i as u32).unwrap())
            .collect();
        let output: Vec<f32> = (0..N)
            .map(|i| mem.load_f32((N + i) as u32).unwrap())
            .collect();
        assert!(
            var(&output) < var(&input) * 0.5,
            "box filter must reduce variance"
        );
    }
}
