//! Per-opcode semantics tests: every ALU/SFU/memory opcode is executed on
//! a warp of distinct per-lane inputs and checked against a host oracle.

use rfh_sim::exec::{execute, ExecMode, Launch};
use rfh_sim::mem::GlobalMemory;
use rfh_sim::sink::NullSink;

/// Runs a one-warp kernel template that loads per-lane inputs a and b from
/// memory, applies `body` (reading r1 and r2, writing r3), stores r3, and
/// returns the 32 lane results.
fn run_binary(body: &str, a: &[u32], b: &[u32]) -> Vec<u32> {
    assert_eq!(a.len(), 32);
    assert_eq!(b.len(), 32);
    let text = format!(
        "
.kernel op
BB0:
  mov r0, %tid.x
  ld.global r1 r0
  iadd r4 r0, 32
  ld.global r2 r4
  {body}
  iadd r5 r0, 64
  st.global r5, r3
  exit
"
    );
    let kernel = rfh_isa::parse_kernel(&text).unwrap();
    let mut words = Vec::new();
    words.extend_from_slice(a);
    words.extend_from_slice(b);
    words.extend([0u32; 32]);
    let mut mem = GlobalMemory::from_words(words);
    let mut sink = NullSink;
    execute(
        &kernel,
        &Launch::new(1, 32),
        &mut mem,
        ExecMode::Baseline,
        &mut [&mut sink],
    )
    .unwrap();
    (64..96).map(|i| mem.load(i).unwrap()).collect()
}

fn ints() -> (Vec<u32>, Vec<u32>) {
    let a: Vec<u32> = (0i32..32).map(|i| (i * 7 - 50) as u32).collect();
    let b: Vec<u32> = (0i32..32).map(|i| (13 - i * 3) as u32).collect();
    (a, b)
}

fn floats() -> (Vec<u32>, Vec<u32>) {
    let a: Vec<u32> = (0..32).map(|i| (i as f32 * 0.37 - 3.0).to_bits()).collect();
    let b: Vec<u32> = (0..32).map(|i| (2.5 - i as f32 * 0.21).to_bits()).collect();
    (a, b)
}

macro_rules! int_op_test {
    ($name:ident, $body:expr, $f:expr) => {
        #[test]
        fn $name() {
            let (a, b) = ints();
            let got = run_binary($body, &a, &b);
            let f: fn(i32, i32) -> i32 = $f;
            for lane in 0..32 {
                let expect = f(a[lane] as i32, b[lane] as i32) as u32;
                assert_eq!(got[lane], expect, "lane {lane}");
            }
        }
    };
}

macro_rules! float_op_test {
    ($name:ident, $body:expr, $f:expr) => {
        #[test]
        fn $name() {
            let (a, b) = floats();
            let got = run_binary($body, &a, &b);
            let f: fn(f32, f32) -> f32 = $f;
            for lane in 0..32 {
                let expect = f(f32::from_bits(a[lane]), f32::from_bits(b[lane])).to_bits();
                assert_eq!(got[lane], expect, "lane {lane}");
            }
        }
    };
}

int_op_test!(iadd, "iadd r3 r1, r2", |a, b| a.wrapping_add(b));
int_op_test!(isub, "isub r3 r1, r2", |a, b| a.wrapping_sub(b));
int_op_test!(imul, "imul r3 r1, r2", |a, b| a.wrapping_mul(b));
int_op_test!(imin, "imin r3 r1, r2", |a, b| a.min(b));
int_op_test!(imax, "imax r3 r1, r2", |a, b| a.max(b));
int_op_test!(and, "and r3 r1, r2", |a, b| a & b);
int_op_test!(or, "or r3 r1, r2", |a, b| a | b);
int_op_test!(xor, "xor r3 r1, r2", |a, b| a ^ b);
int_op_test!(
    shl,
    "shl r3 r1, r2",
    |a, b| ((a as u32).wrapping_shl(b as u32 & 31)) as i32
);
int_op_test!(
    shr,
    "shr r3 r1, r2",
    |a, b| ((a as u32).wrapping_shr(b as u32 & 31)) as i32
);
int_op_test!(imad, "imad r3 r1, r2, r1", |a, b| a
    .wrapping_mul(b)
    .wrapping_add(a));
int_op_test!(mov, "mov r3 r1", |a, _| a);

float_op_test!(fadd, "fadd r3 r1, r2", |a, b| a + b);
float_op_test!(fsub, "fsub r3 r1, r2", |a, b| a - b);
float_op_test!(fmul, "fmul r3 r1, r2", |a, b| a * b);
float_op_test!(fmin, "fmin r3 r1, r2", |a, b| a.min(b));
float_op_test!(fmax, "fmax r3 r1, r2", |a, b| a.max(b));
float_op_test!(ffma, "ffma r3 r1, r2, r2", |a, b| a.mul_add(b, b));

float_op_test!(sqrt, "sqrt r3 r1", |a, _| a.sqrt());
float_op_test!(rcp, "rcp r3 r1", |a, _| 1.0 / a);
float_op_test!(rsqrt, "rsqrt r3 r1", |a, _| 1.0 / a.sqrt());
float_op_test!(sin, "sin r3 r1", |a, _| a.sin());
float_op_test!(cos, "cos r3 r1", |a, _| a.cos());
float_op_test!(ex2, "ex2 r3 r1", |a, _| a.exp2());
float_op_test!(lg2, "lg2 r3 r1", |a, _| a.log2());

#[test]
fn i2f_and_f2i_round_trip() {
    let (a, _) = ints();
    let got = run_binary("i2f r3 r1", &a, &a);
    for lane in 0..32 {
        assert_eq!(
            got[lane],
            ((a[lane] as i32) as f32).to_bits(),
            "lane {lane}"
        );
    }
    let (f, _) = floats();
    let got = run_binary("f2i r3 r1", &f, &f);
    for lane in 0..32 {
        assert_eq!(
            got[lane] as i32,
            f32::from_bits(f[lane]) as i32,
            "lane {lane}"
        );
    }
}

#[test]
fn f2i_of_nan_is_zero() {
    let nan = vec![f32::NAN.to_bits(); 32];
    let got = run_binary("f2i r3 r1", &nan, &nan);
    assert!(got.iter().all(|v| *v == 0));
}

#[test]
fn setp_all_comparisons() {
    // For each comparison, produce 1 when it holds, else 0, via sel.
    for (cmp, f) in [
        ("eq", (|a, b| a == b) as fn(i32, i32) -> bool),
        ("ne", |a, b| a != b),
        ("lt", |a, b| a < b),
        ("le", |a, b| a <= b),
        ("gt", |a, b| a > b),
        ("ge", |a, b| a >= b),
    ] {
        let (a, b) = ints();
        let body = format!("setp.{cmp} p0 r1, r2\n  sel r3 1, 0, p0");
        let got = run_binary(&body, &a, &b);
        for lane in 0..32 {
            let expect = u32::from(f(a[lane] as i32, b[lane] as i32));
            assert_eq!(got[lane], expect, "{cmp} lane {lane}");
        }
    }
}

#[test]
fn fsetp_all_comparisons() {
    for (cmp, f) in [
        ("lt", (|a, b| a < b) as fn(f32, f32) -> bool),
        ("ge", |a, b| a >= b),
        ("eq", |a, b| a == b),
        ("ne", |a, b| a != b),
    ] {
        let (a, b) = floats();
        let body = format!("fsetp.{cmp} p0 r1, r2\n  sel r3 1, 0, p0");
        let got = run_binary(&body, &a, &b);
        for lane in 0..32 {
            let expect = u32::from(f(f32::from_bits(a[lane]), f32::from_bits(b[lane])));
            assert_eq!(got[lane], expect, "{cmp} lane {lane}");
        }
    }
}

#[test]
fn tex_gathers_from_memory() {
    // Coordinates point into the b[] region (words 32..64): lane i fetches
    // b[(i*5) % 32].
    let coords: Vec<u32> = (0..32).map(|i| 32 + (i * 5) % 32).collect();
    let vals: Vec<u32> = (0..32).map(|i| i * 13 + 7).collect();
    let got = run_binary("tex r3 r1", &coords, &vals);
    for lane in 0..32 {
        assert_eq!(got[lane], vals[(lane * 5) % 32], "lane {lane}");
    }
}

#[test]
fn local_memory_round_trips() {
    // st.local / ld.local behave like a private slice of global words.
    let a: Vec<u32> = (0..32).map(|i| i + 64).collect(); // per-lane addresses
    let b: Vec<u32> = (0..32).map(|i| i * 11 + 1).collect();
    let got = run_binary("st.local r1, r2\n  ld.local r3 r1", &a, &b);
    for lane in 0..32 {
        assert_eq!(got[lane], b[lane], "lane {lane}");
    }
}
