//! Dynamic register value usage statistics (paper Figure 2 and §3.2).
//!
//! Tracks, over a full execution, how many times each produced value is
//! read before being overwritten, and the lifetime (in warp instructions)
//! of values read exactly once. These distributions are the empirical
//! foundation of the whole design: up to 70% of values are read once, and
//! 50% of all values are read once within three instructions of being
//! produced.

use std::collections::HashMap;

use crate::sink::{InstrEvent, TraceSink};

/// Read-count histogram (Figure 2a buckets).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadHistogram {
    /// Values never read before being overwritten (or at warp end).
    pub read0: u64,
    /// Values read exactly once.
    pub read1: u64,
    /// Values read exactly twice.
    pub read2: u64,
    /// Values read three or more times.
    pub read_more: u64,
}

impl ReadHistogram {
    /// Total values produced.
    pub fn total(&self) -> u64 {
        self.read0 + self.read1 + self.read2 + self.read_more
    }

    /// Fraction of values read exactly once.
    pub fn frac_read_once(&self) -> f64 {
        self.read1 as f64 / self.total().max(1) as f64
    }
}

/// Lifetime histogram of read-once values (Figure 2b buckets).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifetimeHistogram {
    /// Consumed by the next instruction.
    pub life1: u64,
    /// Consumed two instructions after production.
    pub life2: u64,
    /// Consumed three instructions after production.
    pub life3: u64,
    /// Consumed later than that.
    pub life_more: u64,
}

impl LifetimeHistogram {
    /// Total read-once values.
    pub fn total(&self) -> u64 {
        self.life1 + self.life2 + self.life3 + self.life_more
    }

    /// Fraction of read-once values consumed within three instructions.
    pub fn frac_within3(&self) -> f64 {
        (self.life1 + self.life2 + self.life3) as f64 / self.total().max(1) as f64
    }
}

#[derive(Debug, Clone, Copy)]
struct ValueTrack {
    def_step: u64,
    reads: u64,
    last_read_step: u64,
    any_shared_read: bool,
    produced_on_shared: bool,
}

#[derive(Debug, Default)]
struct WarpTrack {
    step: u64,
    values: HashMap<u16, ValueTrack>,
}

/// Collects Figure 2 statistics from the instruction trace.
#[derive(Debug, Default)]
pub struct UsageStats {
    warps: HashMap<usize, WarpTrack>,
    /// Read-count distribution over all produced values.
    pub reads: ReadHistogram,
    /// Lifetime distribution over read-once values.
    pub lifetimes: LifetimeHistogram,
    /// Values with at least one shared-datapath consumer (§3.2: ~7%).
    pub shared_consumed: u64,
    /// Of those, values produced on the private datapath (§3.2: ~70%).
    pub shared_consumed_private_produced: u64,
}

impl UsageStats {
    fn finalize(&mut self, v: ValueTrack) {
        match v.reads {
            0 => self.reads.read0 += 1,
            1 => {
                self.reads.read1 += 1;
                match v.last_read_step - v.def_step {
                    0 | 1 => self.lifetimes.life1 += 1,
                    2 => self.lifetimes.life2 += 1,
                    3 => self.lifetimes.life3 += 1,
                    _ => self.lifetimes.life_more += 1,
                }
            }
            2 => self.reads.read2 += 1,
            _ => self.reads.read_more += 1,
        }
        if v.any_shared_read {
            self.shared_consumed += 1;
            if !v.produced_on_shared {
                self.shared_consumed_private_produced += 1;
            }
        }
    }
}

impl TraceSink for UsageStats {
    fn on_instr(&mut self, event: &InstrEvent<'_>) {
        let mut track = self.warps.remove(&event.warp).unwrap_or_default();
        track.step += 1;
        let step = track.step;
        let shared = event.instr.op.unit().is_shared();
        let plan = event.plan;

        for a in plan.reads() {
            if let Some(v) = track.values.get_mut(&a.reg.index()) {
                v.reads += 1;
                v.last_read_step = step;
                v.any_shared_read |= shared;
            }
        }

        // A 64-bit value is one value occupying two registers; both written
        // words get the same track and overwrite-finalize independently.
        let mut finalized: Vec<ValueTrack> = Vec::new();
        for r in plan.written_words() {
            if let Some(old) = track.values.remove(&r.index()) {
                finalized.push(old);
            }
        }
        for old in finalized {
            self.finalize(old);
        }
        for r in plan.written_words() {
            track.values.insert(
                r.index(),
                ValueTrack {
                    def_step: step,
                    reads: 0,
                    last_read_step: step,
                    any_shared_read: false,
                    produced_on_shared: shared,
                },
            );
        }
        self.warps.insert(event.warp, track);
    }

    fn on_warp_done(&mut self, warp: usize) {
        if let Some(track) = self.warps.remove(&warp) {
            for (_, v) in track.values {
                self.finalize(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, ExecMode, Launch};
    use crate::mem::GlobalMemory;

    fn stats(text: &str) -> UsageStats {
        let kernel = rfh_isa::parse_kernel(text).unwrap();
        let mut mem = GlobalMemory::new(4096);
        let mut s = UsageStats::default();
        execute(
            &kernel,
            &Launch::new(1, 32),
            &mut mem,
            ExecMode::Baseline,
            &mut [&mut s],
        )
        .unwrap();
        s
    }

    #[test]
    fn read_counts_bucketized() {
        let s = stats(
            "
.kernel rc
BB0:
  mov r0, 1
  mov r1, 2
  iadd r2 r1, r1
  iadd r3 r2, r1
  st.global r0, r3
  exit
",
        );
        // r0 read once (store addr), r1 read three times, r2 read once,
        // r3 read once.
        assert_eq!(s.reads.read1, 3);
        assert_eq!(s.reads.read_more, 1);
        assert_eq!(s.reads.read0, 0);
        assert_eq!(s.reads.total(), 4);
    }

    #[test]
    fn dead_value_counts_as_read0() {
        let s = stats(".kernel d\nBB0:\n  mov r0, 1\n  mov r1, 2\n  st.global r1, r1\n  exit\n");
        assert_eq!(s.reads.read0, 1, "r0 is never read");
    }

    #[test]
    fn lifetime_of_next_instruction_consumer() {
        let s = stats(
            "
.kernel lt
BB0:
  mov r0, 5
  iadd r1 r0, 1
  mov r2, 0
  mov r3, 0
  iadd r4 r1, 1
  st.global r2, r4
  exit
",
        );
        // r0 and r4 are consumed by the very next instruction → life1;
        // r1 and r2 are consumed three instructions after production.
        assert_eq!(s.lifetimes.life1, 2);
        assert_eq!(s.lifetimes.life3, 2);
    }

    #[test]
    fn overwrite_finalizes_value() {
        let s = stats(
            "
.kernel ow
BB0:
  mov r0, 1
  mov r0, 2
  st.global r0, r0
  exit
",
        );
        // First r0: read 0 times (overwritten); second: read twice.
        assert_eq!(s.reads.read0, 1);
        assert_eq!(s.reads.read2, 1);
    }

    #[test]
    fn shared_consumption_tracked() {
        let s = stats(
            "
.kernel sc
BB0:
  mov r0, %tid.x
  iadd r1 r0, 32
  ld.shared r2 r1
  st.global r0, r2
  exit
",
        );
        // r1 (private-produced) is consumed by the load; r0 by the store;
        // r2 (shared-produced) by the store.
        assert_eq!(s.shared_consumed, 3);
        assert_eq!(s.shared_consumed_private_produced, 2);
    }

    #[test]
    fn per_warp_independence() {
        let kernel =
            rfh_isa::parse_kernel(".kernel w\nBB0:\n  mov r0, 1\n  st.global r0, r0\n  exit\n")
                .unwrap();
        let mut mem = GlobalMemory::new(64);
        let mut s = UsageStats::default();
        execute(
            &kernel,
            &Launch::new(1, 128),
            &mut mem,
            ExecMode::Baseline,
            &mut [&mut s],
        )
        .unwrap();
        assert_eq!(s.reads.total(), 4, "one value per warp, four warps");
        assert_eq!(s.reads.read2, 4);
    }
}
