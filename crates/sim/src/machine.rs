//! Simulated machine parameters (paper Table 2 and §2).

/// Configuration of the simulated streaming multiprocessor.
///
/// Defaults reproduce Table 2: a 32-wide in-order SIMT processor with a
/// 128 KB main register file in 32 banks, 32 KB of shared memory, and the
/// listed operation latencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// SIMT width (threads per warp).
    pub warp_width: usize,
    /// Machine-resident warps per SM.
    pub resident_warps: usize,
    /// Warps allowed to issue by the two-level scheduler.
    pub active_warps: usize,
    /// Register file capacity in bytes.
    pub register_file_bytes: usize,
    /// Register bank capacity in bytes.
    pub register_bank_bytes: usize,
    /// Shared memory capacity in bytes.
    pub shared_memory_bytes: usize,
    /// ALU latency in cycles.
    pub alu_latency: u64,
    /// Special function latency in cycles.
    pub sfu_latency: u64,
    /// Shared memory latency in cycles.
    pub shared_mem_latency: u64,
    /// Texture instruction latency in cycles.
    pub tex_latency: u64,
    /// DRAM latency in cycles.
    pub dram_latency: u64,
    /// Issue slots a shared-datapath instruction occupies (the SFU/MEM/TEX
    /// units run at a quarter of warp-wide throughput).
    pub shared_issue_cycles: u64,
    /// Safety limit on warp instructions per warp (malformed kernels).
    pub max_warp_instructions: u64,
}

impl MachineConfig {
    /// Table 2 parameters.
    pub fn paper() -> Self {
        MachineConfig {
            warp_width: 32,
            resident_warps: 32,
            active_warps: 8,
            register_file_bytes: 128 * 1024,
            register_bank_bytes: 4 * 1024,
            shared_memory_bytes: 32 * 1024,
            alu_latency: 8,
            sfu_latency: 20,
            shared_mem_latency: 20,
            tex_latency: 400,
            dram_latency: 400,
            shared_issue_cycles: 4,
            max_warp_instructions: 20_000_000,
        }
    }

    /// Threads resident on the SM.
    pub fn resident_threads(&self) -> usize {
        self.warp_width * self.resident_warps
    }

    /// MRF entries (32-bit registers) per thread.
    pub fn registers_per_thread(&self) -> usize {
        self.register_file_bytes / 4 / self.resident_threads()
    }

    /// The issue latency of an opcode under this configuration.
    pub fn latency(&self, op: rfh_isa::Opcode) -> u64 {
        use rfh_isa::{Opcode, Space, Unit};
        match op {
            Opcode::Ld(Space::Global)
            | Opcode::Ld(Space::Local)
            | Opcode::St(Space::Global)
            | Opcode::St(Space::Local) => self.dram_latency,
            Opcode::Ld(Space::Shared) | Opcode::St(Space::Shared) => self.shared_mem_latency,
            Opcode::Ld(Space::Param) => self.shared_mem_latency,
            Opcode::Tex => self.tex_latency,
            _ => match op.unit() {
                Unit::Sfu => self.sfu_latency,
                _ => self.alu_latency,
            },
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfh_isa::{CmpOp, Opcode, SfuOp, Space};

    #[test]
    fn paper_parameters() {
        let m = MachineConfig::paper();
        assert_eq!(m.resident_threads(), 1024);
        assert_eq!(m.registers_per_thread(), 32, "128KB / 1024 threads / 4B");
        assert_eq!(
            m.register_file_bytes / m.register_bank_bytes,
            32,
            "32 banks"
        );
    }

    #[test]
    fn latencies_follow_table2() {
        let m = MachineConfig::paper();
        assert_eq!(m.latency(Opcode::IAdd), 8);
        assert_eq!(m.latency(Opcode::Setp(CmpOp::Lt)), 8);
        assert_eq!(m.latency(Opcode::Sfu(SfuOp::Rcp)), 20);
        assert_eq!(m.latency(Opcode::Ld(Space::Shared)), 20);
        assert_eq!(m.latency(Opcode::Ld(Space::Global)), 400);
        assert_eq!(m.latency(Opcode::Tex), 400);
    }
}
