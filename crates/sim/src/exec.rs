//! The functional SIMT executor.
//!
//! Executes a kernel warp by warp with full predication and branch
//! divergence (immediate-post-dominator reconvergence via a token stack),
//! emitting an instruction trace to the registered [`TraceSink`]s.
//!
//! Two execution modes:
//!
//! * [`ExecMode::Baseline`] — all operands come from the architectural
//!   register file (the MRF);
//! * [`ExecMode::Hierarchy`] — operands move through modeled ORF/LRF
//!   storage exactly as the placement annotations dictate, and the upper
//!   levels are **poisoned at every strand boundary**. A kernel whose
//!   placements are wrong (a read crossing a strand, a missing MRF copy, a
//!   clobbered entry) computes wrong values and produces wrong memory
//!   output, so comparing final memory against a baseline run is an
//!   end-to-end proof of allocation correctness.

use std::error::Error;
use std::fmt;

use rfh_alloc::{AllocConfig, LrfMode};
use rfh_analysis::DomTree;
use rfh_isa::access::{AccessKind, AccessPlan, Place};
use rfh_isa::{
    CmpOp, InstrRef, Instruction, Kernel, Opcode, Operand, ReadLoc, SfuOp, Space, Special, Width,
    WriteLoc,
};

use crate::machine::MachineConfig;
use crate::mem::{GlobalMemory, SharedMemory};
use crate::sink::{InstrEvent, TraceSink};

/// A kernel launch: grid geometry, parameters, and shared memory size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Launch {
    /// Number of CTAs (thread blocks).
    pub ctas: usize,
    /// Threads per CTA.
    pub threads_per_cta: usize,
    /// Kernel parameters, read by `ld.param`.
    pub params: Vec<u32>,
    /// Shared memory words allocated per CTA.
    pub shared_words: usize,
}

impl Launch {
    /// A launch with no parameters and the full 32 KB of shared memory.
    pub fn new(ctas: usize, threads_per_cta: usize) -> Self {
        Launch {
            ctas,
            threads_per_cta,
            params: Vec::new(),
            shared_words: 8192,
        }
    }

    /// Sets the kernel parameters.
    pub fn with_params(mut self, params: Vec<u32>) -> Self {
        self.params = params;
        self
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> usize {
        self.ctas * self.threads_per_cta
    }
}

/// How operand values flow during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// All operands served by the architectural register file.
    Baseline,
    /// Operands move through modeled ORF/LRF storage according to the
    /// placement annotations produced under the given configuration.
    Hierarchy(AllocConfig),
}

/// Aggregate execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// Warp instructions issued.
    pub warp_instructions: u64,
    /// Thread instructions executed (warp instructions × executing threads).
    pub thread_instructions: u64,
    /// Warps executed.
    pub warps: usize,
}

/// Execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A memory access fell outside the allocated space.
    OutOfBounds {
        /// Which space was accessed.
        space: &'static str,
        /// The offending word address.
        addr: u32,
        /// The instruction performing the access.
        at: InstrRef,
    },
    /// A warp exceeded the instruction budget (probable infinite loop).
    InstructionBudget {
        /// The runaway warp.
        warp: usize,
    },
    /// An unsupported instruction shape was executed.
    Unsupported {
        /// Description of the problem.
        what: String,
        /// Where it happened.
        at: InstrRef,
    },
    /// A placement annotation references hierarchy storage that does not
    /// exist under the executing configuration (e.g. an ORF entry past the
    /// configured size). Detected up front, before any instruction runs.
    BadPlacement {
        /// Description of the problem.
        what: String,
        /// The instruction carrying the annotation.
        at: InstrRef,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfBounds { space, addr, at } => {
                write!(f, "out-of-bounds {space} access at word {addr} ({at})")
            }
            ExecError::InstructionBudget { warp } => {
                write!(
                    f,
                    "warp {warp} exceeded the instruction budget (infinite loop?)"
                )
            }
            ExecError::Unsupported { what, at } => write!(f, "unsupported: {what} ({at})"),
            ExecError::BadPlacement { what, at } => {
                write!(f, "bad placement annotation: {what} ({at})")
            }
        }
    }
}

impl Error for ExecError {}

type Pc = (u32, usize);

#[derive(Debug, Clone, Copy)]
struct Token {
    pc: Pc,
    mask: u32,
    reconv: Option<Pc>,
}

/// Per-warp architectural and hierarchy state.
struct WarpState {
    regs: Vec<Vec<u32>>,   // [reg][lane]
    preds: Vec<Vec<bool>>, // [pred][lane]
    orf: Vec<Vec<u32>>,    // [entry][lane]
    lrf: Vec<Vec<u32>>,    // [bank][lane]
}

const POISON: u32 = 0xDEAD_BEE0;

impl WarpState {
    fn new(kernel: &Kernel, width: usize, mode: &ExecMode) -> WarpState {
        let (orf_entries, lrf_banks) = match mode {
            ExecMode::Baseline => (0, 0),
            ExecMode::Hierarchy(cfg) => (
                cfg.orf_entries,
                match cfg.lrf {
                    LrfMode::None => 0,
                    LrfMode::Unified => 1,
                    LrfMode::Split => 3,
                },
            ),
        };
        WarpState {
            regs: vec![vec![0; width]; kernel.num_regs().max(1) as usize],
            preds: vec![vec![false; width]; kernel.num_preds().max(1) as usize],
            orf: vec![vec![POISON; width]; orf_entries],
            lrf: vec![vec![POISON; width]; lrf_banks],
        }
    }

    fn poison_upper(&mut self) {
        for e in &mut self.orf {
            e.fill(POISON);
        }
        for b in &mut self.lrf {
            b.fill(POISON);
        }
    }
}

struct WarpContext<'a> {
    kernel: &'a Kernel,
    launch: &'a Launch,
    mode: ExecMode,
    warp: usize,
    cta: usize,
    warp_in_cta: usize,
}

impl WarpContext<'_> {
    fn special(&self, s: Special, lane: usize) -> u32 {
        match s {
            Special::TidX => (self.warp_in_cta * 32 + lane) as u32,
            Special::CtaIdX => self.cta as u32,
            Special::NTidX => self.launch.threads_per_cta as u32,
            Special::NCtaIdX => self.launch.ctas as u32,
            Special::LaneId => lane as u32,
            Special::WarpId => self.warp_in_cta as u32,
        }
    }

    /// Reads one source operand for `lane`, honouring hierarchy placements.
    fn read_operand(
        &self,
        state: &WarpState,
        instr: &Instruction,
        slot: usize,
        lane: usize,
    ) -> u32 {
        match instr.srcs[slot] {
            Operand::Imm(v) => v as u32,
            Operand::FBits(bits) => bits,
            Operand::Special(s) => self.special(s, lane),
            Operand::Reg(r) => match self.mode {
                ExecMode::Baseline => state.regs[r.index() as usize][lane],
                ExecMode::Hierarchy(_) => match instr.read_locs[slot] {
                    ReadLoc::Mrf | ReadLoc::MrfFillOrf(_) => state.regs[r.index() as usize][lane],
                    ReadLoc::Orf(e) => state.orf[e as usize][lane],
                    ReadLoc::Lrf(bank) => {
                        let b = bank.map(|s| s.index()).unwrap_or(0);
                        state.lrf[b][lane]
                    }
                },
            },
        }
    }

    /// Writes the destination for `lane`, honouring hierarchy placements.
    fn write_dst(&self, state: &mut WarpState, instr: &Instruction, lane: usize, lo: u32, hi: u32) {
        let dst = instr.dst.expect("write_dst requires a destination");
        let wide = dst.width == Width::W64;
        let r = dst.reg.index() as usize;
        let write_mrf = |state: &mut WarpState| {
            state.regs[r][lane] = lo;
            if wide {
                state.regs[r + 1][lane] = hi;
            }
        };
        match (self.mode, instr.write_loc) {
            (ExecMode::Baseline, _) | (_, WriteLoc::Mrf) => write_mrf(state),
            (ExecMode::Hierarchy(_), WriteLoc::Orf { entry, also_mrf }) => {
                state.orf[entry as usize][lane] = lo;
                if wide {
                    state.orf[entry as usize + 1][lane] = hi;
                }
                if also_mrf {
                    write_mrf(state);
                }
            }
            (ExecMode::Hierarchy(_), WriteLoc::Lrf { bank, also_mrf }) => {
                let b = bank.map(|s| s.index()).unwrap_or(0);
                state.lrf[b][lane] = lo;
                if also_mrf {
                    write_mrf(state);
                }
            }
        }
    }
}

/// Evaluates a private-datapath ALU opcode, or `None` when `op` is not an
/// ALU opcode (control flow, memory, barriers — dispatched elsewhere; the
/// caller reports [`ExecError::Unsupported`] rather than panicking).
fn eval_alu(op: Opcode, a: u32, b: u32, c: u32) -> Option<u32> {
    let (ia, ib, ic) = (a as i32, b as i32, c as i32);
    let (fa, fb, fc) = (f32::from_bits(a), f32::from_bits(b), f32::from_bits(c));
    let v = match op {
        Opcode::IAdd => ia.wrapping_add(ib) as u32,
        Opcode::ISub => ia.wrapping_sub(ib) as u32,
        Opcode::IMul => ia.wrapping_mul(ib) as u32,
        Opcode::IMad => ia.wrapping_mul(ib).wrapping_add(ic) as u32,
        Opcode::IMin => ia.min(ib) as u32,
        Opcode::IMax => ia.max(ib) as u32,
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Shl => a.wrapping_shl(b & 31),
        Opcode::Shr => a.wrapping_shr(b & 31),
        Opcode::FAdd => (fa + fb).to_bits(),
        Opcode::FSub => (fa - fb).to_bits(),
        Opcode::FMul => (fa * fb).to_bits(),
        Opcode::FFma => fa.mul_add(fb, fc).to_bits(),
        Opcode::FMin => fa.min(fb).to_bits(),
        Opcode::FMax => fa.max(fb).to_bits(),
        Opcode::Mov => a,
        Opcode::I2F => (ia as f32).to_bits(),
        Opcode::F2I => {
            if fa.is_nan() {
                0
            } else {
                (fa as i32) as u32
            }
        }
        Opcode::Sfu(f) => {
            let v = match f {
                SfuOp::Rcp => 1.0 / fa,
                SfuOp::Rsqrt => 1.0 / fa.sqrt(),
                SfuOp::Sqrt => fa.sqrt(),
                SfuOp::Sin => fa.sin(),
                SfuOp::Cos => fa.cos(),
                SfuOp::Ex2 => fa.exp2(),
                SfuOp::Lg2 => fa.log2(),
            };
            v.to_bits()
        }
        _ => return None,
    };
    Some(v)
}

fn eval_cmp(cmp: CmpOp, float: bool, a: u32, b: u32) -> bool {
    if float {
        let (fa, fb) = (f32::from_bits(a), f32::from_bits(b));
        match cmp {
            CmpOp::Eq => fa == fb,
            CmpOp::Ne => fa != fb,
            CmpOp::Lt => fa < fb,
            CmpOp::Le => fa <= fb,
            CmpOp::Gt => fa > fb,
            CmpOp::Ge => fa >= fb,
        }
    } else {
        let (ia, ib) = (a as i32, b as i32);
        match cmp {
            CmpOp::Eq => ia == ib,
            CmpOp::Ne => ia != ib,
            CmpOp::Lt => ia < ib,
            CmpOp::Le => ia <= ib,
            CmpOp::Gt => ia > ib,
            CmpOp::Ge => ia >= ib,
        }
    }
}

/// Number of modeled LRF banks for a configuration (matches
/// [`WarpState::new`]).
fn lrf_bank_count(mode: LrfMode) -> usize {
    match mode {
        LrfMode::None => 0,
        LrfMode::Unified => 1,
        LrfMode::Split => 3,
    }
}

/// Rejects placement annotations that reference hierarchy storage the
/// executing configuration does not have. Run before execution so that
/// corrupted annotations surface as [`ExecError::BadPlacement`] instead of
/// an out-of-bounds panic mid-run.
fn check_placements(kernel: &Kernel, cfg: &AllocConfig) -> Result<(), ExecError> {
    let orf = cfg.orf_entries;
    let banks = lrf_bank_count(cfg.lrf);
    let bad = |what: String, at: InstrRef| ExecError::BadPlacement { what, at };
    let mut plan = AccessPlan::new();
    for (at, instr) in kernel.iter_instrs() {
        plan.resolve_into(instr);
        for a in plan.accesses() {
            let verb = match a.kind {
                AccessKind::Read => "read of",
                AccessKind::Fill => "fill of",
                AccessKind::Write => "write to",
            };
            match a.place {
                Place::Mrf => {}
                Place::Orf(e) => {
                    if e as usize >= orf {
                        return Err(bad(format!("{verb} ORF entry {e} of {orf} configured"), at));
                    }
                }
                Place::Lrf(bank) => {
                    let b = bank.map(|s| s.index()).unwrap_or(0);
                    if b >= banks {
                        return Err(bad(
                            format!("{verb} LRF bank {b} of {banks} configured"),
                            at,
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

fn normalize(kernel: &Kernel, pc: Pc) -> Pc {
    let (mut b, mut i) = pc;
    while (b as usize) < kernel.blocks.len() && i >= kernel.blocks[b as usize].instrs.len() {
        b += 1;
        i = 0;
    }
    (b, i)
}

/// Executes a kernel launch, streaming the instruction trace to `sinks`.
///
/// Execution is *barrier phased*: within a CTA, every warp runs until its
/// next `bar` (or exit) before any warp proceeds past that barrier, which
/// gives `bar` its synchronization semantics for the standard
/// produce-barrier-consume idiom. Register file access counts are
/// interleaving-independent (software placements are static and the
/// hardware-cache models track per-warp state), so this ordering is
/// equivalent to any fair schedule. Timing questions are answered by
/// [`crate::timing`] instead.
///
/// # Errors
///
/// Returns an [`ExecError`] on out-of-bounds memory accesses, runaway
/// loops, or unsupported instruction shapes.
pub fn execute(
    kernel: &Kernel,
    launch: &Launch,
    memory: &mut GlobalMemory,
    mode: ExecMode,
    sinks: &mut [&mut dyn TraceSink],
) -> Result<ExecReport, ExecError> {
    let machine = MachineConfig::paper();
    execute_with(kernel, launch, memory, mode, &machine, sinks)
}

/// [`execute`] with an explicit machine configuration.
///
/// # Errors
///
/// As for [`execute`].
pub fn execute_with(
    kernel: &Kernel,
    launch: &Launch,
    memory: &mut GlobalMemory,
    mode: ExecMode,
    machine: &MachineConfig,
    sinks: &mut [&mut dyn TraceSink],
) -> Result<ExecReport, ExecError> {
    rfh_isa::validate(kernel).map_err(|e| ExecError::Unsupported {
        what: format!("invalid kernel: {e}"),
        at: InstrRef {
            block: rfh_isa::BlockId::new(0),
            index: 0,
        },
    })?;
    if let ExecMode::Hierarchy(cfg) = &mode {
        check_placements(kernel, cfg)?;
    }
    let ipdom = DomTree::post_dominators(kernel);
    let warps_per_cta = launch.threads_per_cta.div_ceil(machine.warp_width);
    let mut shared: Vec<SharedMemory> = (0..launch.ctas)
        .map(|_| SharedMemory::new(launch.shared_words))
        .collect();
    let mut report = ExecReport::default();

    for (cta, cta_shared) in shared.iter_mut().enumerate() {
        // Barrier-phased execution of the CTA's warps.
        let mut runs: Vec<WarpRun> = (0..warps_per_cta)
            .map(|warp_in_cta| {
                let lanes = (launch.threads_per_cta - warp_in_cta * machine.warp_width)
                    .min(machine.warp_width);
                let full_mask: u32 = if lanes == 32 {
                    u32::MAX
                } else {
                    (1u32 << lanes) - 1
                };
                WarpRun {
                    warp_in_cta,
                    lanes,
                    state: WarpState::new(kernel, machine.warp_width, &mode),
                    stack: vec![Token {
                        pc: (0, 0),
                        mask: full_mask,
                        reconv: None,
                    }],
                    exited: 0,
                    steps: 0,
                    done: false,
                }
            })
            .collect();
        while runs.iter().any(|r| !r.done) {
            for run in runs.iter_mut() {
                if run.done {
                    continue;
                }
                let warp = cta * warps_per_cta + run.warp_in_cta;
                let ctx = WarpContext {
                    kernel,
                    launch,
                    mode,
                    warp,
                    cta,
                    warp_in_cta: run.warp_in_cta,
                };
                let outcome = run_warp_until(
                    &ctx,
                    run,
                    memory,
                    cta_shared,
                    &ipdom,
                    machine,
                    sinks,
                    &mut report,
                )?;
                if outcome == Phase::Done {
                    run.done = true;
                    for s in sinks.iter_mut() {
                        s.on_warp_done(warp);
                    }
                    report.warps += 1;
                }
            }
        }
    }
    Ok(report)
}

/// Why a warp yielded back to the CTA scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// The warp executed a barrier and waits for its CTA.
    Barrier,
    /// The warp has no more work.
    Done,
}

/// Resumable per-warp execution state.
struct WarpRun {
    warp_in_cta: usize,
    lanes: usize,
    state: WarpState,
    stack: Vec<Token>,
    exited: u32,
    steps: u64,
    done: bool,
}

#[allow(clippy::too_many_arguments)]
fn run_warp_until(
    ctx: &WarpContext<'_>,
    run: &mut WarpRun,
    memory: &mut GlobalMemory,
    shared: &mut SharedMemory,
    ipdom: &DomTree,
    machine: &MachineConfig,
    sinks: &mut [&mut dyn TraceSink],
    report: &mut ExecReport,
) -> Result<Phase, ExecError> {
    let kernel = ctx.kernel;
    let lanes = run.lanes;
    let state = &mut run.state;
    let stack = &mut run.stack;

    while let Some(tok) = stack.last_mut() {
        let mask = tok.mask & !run.exited;
        if mask == 0 || Some(tok.pc) == tok.reconv {
            stack.pop();
            continue;
        }
        let (block, index) = tok.pc;
        let at = InstrRef {
            block: rfh_isa::BlockId::new(block),
            index,
        };
        let instr = &kernel.blocks[block as usize].instrs[index];
        run.steps += 1;
        if run.steps > machine.max_warp_instructions {
            return Err(ExecError::InstructionBudget { warp: ctx.warp });
        }

        // Evaluate the guard.
        let exec_mask = match instr.guard {
            None => mask,
            Some(g) => {
                let mut m = 0u32;
                for lane in 0..lanes {
                    if mask & (1 << lane) != 0 {
                        let p = state.preds[g.reg.index() as usize][lane];
                        if p != g.negated {
                            m |= 1 << lane;
                        }
                    }
                }
                m
            }
        };

        for s in sinks.iter_mut() {
            s.on_instr(&InstrEvent {
                warp: ctx.warp,
                at,
                instr,
                active_mask: mask,
                exec_mask,
            });
        }
        report.warp_instructions += 1;
        report.thread_instructions += exec_mask.count_ones() as u64;

        // Read-operand fills deposit the MRF value into the ORF. The fill
        // is a side effect of operand *fetch*: its value is captured here,
        // before the instruction executes, and deposited after — with the
        // instruction's own writeback winning on a same-entry collision —
        // exactly as the placement validator models it (reads see the
        // pre-fill state; fills precede the destination write).
        let fills: Vec<(usize, Vec<u32>)> = if matches!(ctx.mode, ExecMode::Hierarchy(_)) {
            instr
                .read_locs
                .iter()
                .enumerate()
                .filter_map(|(slot, loc)| {
                    let e = loc.orf_fill()?;
                    let r = instr.srcs[slot].as_reg()?;
                    Some((e as usize, state.regs[r.index() as usize].clone()))
                })
                .collect()
        } else {
            Vec::new()
        };

        match instr.op {
            Opcode::Bra => {
                let target: Pc = (instr.target.expect("validated").index() as u32, 0);
                let fall = normalize(kernel, (block, index + 1));
                let taken = exec_mask;
                let not_taken = mask & !taken;
                if not_taken == 0 {
                    tok.pc = target;
                } else if taken == 0 {
                    tok.pc = fall;
                } else {
                    let reconv = ipdom
                        .idom(rfh_isa::BlockId::new(block))
                        .map(|b| (b.index() as u32, 0usize));
                    match reconv {
                        Some(r) => {
                            tok.pc = r;
                            let tok_reconv = Some(r);
                            stack.push(Token {
                                pc: fall,
                                mask: not_taken,
                                reconv: tok_reconv,
                            });
                            stack.push(Token {
                                pc: target,
                                mask: taken,
                                reconv: tok_reconv,
                            });
                        }
                        None => {
                            // Paths never rejoin: run each side to exit.
                            tok.mask = 0;
                            stack.push(Token {
                                pc: fall,
                                mask: not_taken,
                                reconv: None,
                            });
                            stack.push(Token {
                                pc: target,
                                mask: taken,
                                reconv: None,
                            });
                        }
                    }
                }
                continue;
            }
            Opcode::Exit => {
                run.exited |= exec_mask;
                if instr.guard.is_none() {
                    stack.pop();
                } else {
                    tok.pc = normalize(kernel, (block, index + 1));
                }
                continue;
            }
            Opcode::Bar => {
                // Yield to the CTA scheduler: every warp of the CTA reaches
                // this barrier before any proceeds past it.
                if matches!(ctx.mode, ExecMode::Hierarchy(_)) && instr.ends_strand {
                    state.poison_upper();
                }
                tok.pc = normalize(kernel, (block, index + 1));
                return Ok(Phase::Barrier);
            }
            Opcode::St(space) => {
                for lane in 0..lanes {
                    if exec_mask & (1 << lane) == 0 {
                        continue;
                    }
                    let addr = ctx.read_operand(state, instr, 0, lane);
                    let value = ctx.read_operand(state, instr, 1, lane);
                    let ok = match space {
                        Space::Global => memory.store(addr, value),
                        Space::Shared => shared.store(addr, value),
                        Space::Local => {
                            // Local memory is modeled as a private slice of
                            // global memory addressed by (thread, addr);
                            // workloads use small offsets.
                            memory.store(addr, value)
                        }
                        Space::Param => false,
                    };
                    if !ok {
                        return Err(ExecError::OutOfBounds {
                            space: space.mnemonic(),
                            addr,
                            at,
                        });
                    }
                }
            }
            Opcode::Ld(space) => {
                let wide = instr.dst.map(|d| d.width == Width::W64).unwrap_or(false);
                for lane in 0..lanes {
                    if exec_mask & (1 << lane) == 0 {
                        continue;
                    }
                    let addr = ctx.read_operand(state, instr, 0, lane);
                    let load_one = |a: u32| -> Result<u32, ExecError> {
                        let v = match space {
                            Space::Global | Space::Local => memory.load(a),
                            Space::Shared => shared.load(a),
                            Space::Param => ctx.launch.params.get(a as usize).copied(),
                        };
                        v.ok_or(ExecError::OutOfBounds {
                            space: space.mnemonic(),
                            addr: a,
                            at,
                        })
                    };
                    let lo = load_one(addr)?;
                    let hi = if wide {
                        load_one(addr.wrapping_add(1))?
                    } else {
                        0
                    };
                    ctx.write_dst(state, instr, lane, lo, hi);
                }
            }
            Opcode::Tex => {
                for lane in 0..lanes {
                    if exec_mask & (1 << lane) == 0 {
                        continue;
                    }
                    let coord = ctx.read_operand(state, instr, 0, lane);
                    let v = memory.load(coord).ok_or(ExecError::OutOfBounds {
                        space: "texture",
                        addr: coord,
                        at,
                    })?;
                    ctx.write_dst(state, instr, lane, v, 0);
                }
            }
            Opcode::Setp(cmp) | Opcode::FSetp(cmp) => {
                let float = matches!(instr.op, Opcode::FSetp(_));
                let p = instr.pdst.expect("validated").index() as usize;
                for lane in 0..lanes {
                    if exec_mask & (1 << lane) == 0 {
                        continue;
                    }
                    let a = ctx.read_operand(state, instr, 0, lane);
                    let b = ctx.read_operand(state, instr, 1, lane);
                    state.preds[p][lane] = eval_cmp(cmp, float, a, b);
                }
            }
            Opcode::Sel => {
                let p = instr.psrc.expect("validated").index() as usize;
                for lane in 0..lanes {
                    if exec_mask & (1 << lane) == 0 {
                        continue;
                    }
                    let a = ctx.read_operand(state, instr, 0, lane);
                    let b = ctx.read_operand(state, instr, 1, lane);
                    let v = if state.preds[p][lane] { a } else { b };
                    ctx.write_dst(state, instr, lane, v, 0);
                }
            }
            _ => {
                if instr.dst.map(|d| d.width == Width::W64).unwrap_or(false) {
                    return Err(ExecError::Unsupported {
                        what: format!("64-bit destination on `{instr}`"),
                        at,
                    });
                }
                for lane in 0..lanes {
                    if exec_mask & (1 << lane) == 0 {
                        continue;
                    }
                    let a = ctx.read_operand(state, instr, 0, lane);
                    let b = if instr.srcs.len() > 1 {
                        ctx.read_operand(state, instr, 1, lane)
                    } else {
                        0
                    };
                    let c = if instr.srcs.len() > 2 {
                        ctx.read_operand(state, instr, 2, lane)
                    } else {
                        0
                    };
                    let v = eval_alu(instr.op, a, b, c).ok_or_else(|| ExecError::Unsupported {
                        what: format!("`{}` has no ALU semantics", instr.op),
                        at,
                    })?;
                    ctx.write_dst(state, instr, lane, v, 0);
                }
            }
        }

        // Deposit the operand-fetch fills captured above. The instruction's
        // own ORF writeback wins on a same-entry collision, so a fill is
        // skipped for lanes where the destination write targeted the entry.
        if !fills.is_empty() {
            let written: Option<(usize, usize)> = match (instr.write_loc, instr.dst) {
                (WriteLoc::Orf { entry, .. }, Some(d)) => {
                    Some((entry as usize, d.width.regs() as usize))
                }
                _ => None,
            };
            for (e, vals) in &fills {
                let dst_covers =
                    written.is_some_and(|(base, width)| *e >= base && *e < base + width);
                for (lane, v) in vals.iter().enumerate().take(lanes) {
                    if mask & (1 << lane) == 0 {
                        continue;
                    }
                    if dst_covers && exec_mask & (1 << lane) != 0 {
                        continue;
                    }
                    state.orf[*e][lane] = *v;
                }
            }
        }

        // Strand boundaries invalidate the upper levels.
        if matches!(ctx.mode, ExecMode::Hierarchy(_)) && instr.ends_strand {
            state.poison_upper();
        }

        tok.pc = normalize(kernel, (block, index + 1));
    }
    Ok(Phase::Done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::NullSink;

    fn run(text: &str, mem_words: usize, init: &[(u32, u32)]) -> (GlobalMemory, ExecReport) {
        let kernel = rfh_isa::parse_kernel(text).unwrap();
        let mut mem = GlobalMemory::new(mem_words);
        for (a, v) in init {
            mem.store(*a, *v);
        }
        let mut sink = NullSink;
        let report = execute(
            &kernel,
            &Launch::new(1, 32),
            &mut mem,
            ExecMode::Baseline,
            &mut [&mut sink],
        )
        .unwrap();
        (mem, report)
    }

    #[test]
    fn eval_alu_is_total_over_opcodes() {
        // Non-ALU opcodes yield None — the caller reports Unsupported
        // instead of the old unreachable! panic.
        for op in [
            Opcode::Bra,
            Opcode::Bar,
            Opcode::Exit,
            Opcode::Tex,
            Opcode::Ld(Space::Global),
            Opcode::St(Space::Shared),
            Opcode::Setp(CmpOp::Lt),
            Opcode::Sel,
        ] {
            assert_eq!(eval_alu(op, 1, 2, 3), None, "{op}");
        }
        assert_eq!(eval_alu(Opcode::IAdd, 1, 2, 3), Some(3));
        assert_eq!(eval_alu(Opcode::Mov, 7, 0, 0), Some(7));
    }

    #[test]
    fn fill_precedes_same_instruction_writeback() {
        // `iadd r2 r1(ORF0-fill), 1` writing ORF0: the fill is an operand-
        // fetch side effect, so the destination write must win and a later
        // ORF0 read of r2 must see r2, not the filled r1. Found by the
        // rfh-chaos placement harness — the fill used to be applied after
        // writeback, disagreeing with the placement validator's model.
        let mut kernel = rfh_isa::parse_kernel(
            ".kernel f\nBB0:\n  mov r1, 5\n  iadd r2 r1, 1\n  st.global r0, r2\n  exit\n",
        )
        .unwrap();
        let at = |i: usize| InstrRef {
            block: rfh_isa::BlockId::new(0),
            index: i,
        };
        kernel.instr_mut(at(1)).read_locs[0] = ReadLoc::MrfFillOrf(0);
        kernel.instr_mut(at(1)).write_loc = WriteLoc::Orf {
            entry: 0,
            also_mrf: false,
        };
        kernel.instr_mut(at(2)).read_locs[1] = ReadLoc::Orf(0);
        let cfg = rfh_alloc::AllocConfig::two_level(3);
        rfh_alloc::validate_placements(&kernel, &cfg).unwrap();
        let mut mem = GlobalMemory::new(32);
        let mut sink = NullSink;
        execute(
            &kernel,
            &Launch::new(1, 1),
            &mut mem,
            ExecMode::Hierarchy(cfg),
            &mut [&mut sink],
        )
        .unwrap();
        assert_eq!(mem.load(0).unwrap(), 6, "store must see r2 = 6, not r1 = 5");
    }

    #[test]
    fn same_instruction_orf_read_sees_the_pre_fill_value() {
        // The exact shape the chaos harness found (seed 0x9b5979cb901570cb):
        // one instruction reads ORF0 in slot 0, fills ORF0 from the MRF in
        // slot 1, and writes ORF0. Operand reads see the pre-fill state, the
        // fill lands next, and the destination write wins — so the sum must
        // be old-ORF0 + MRF operand, and ORF0 must end up holding the dst.
        let mut kernel = rfh_isa::parse_kernel(
            ".kernel g\nBB0:\n  mov r1, 5\n  mov r2, 3\n  iadd r3 r1, r2\n  st.global r0, r3\n  exit\n",
        )
        .unwrap();
        let at = |i: usize| InstrRef {
            block: rfh_isa::BlockId::new(0),
            index: i,
        };
        kernel.instr_mut(at(0)).write_loc = WriteLoc::Orf {
            entry: 0,
            also_mrf: false,
        };
        kernel.instr_mut(at(2)).read_locs[0] = ReadLoc::Orf(0);
        kernel.instr_mut(at(2)).read_locs[1] = ReadLoc::MrfFillOrf(0);
        kernel.instr_mut(at(2)).write_loc = WriteLoc::Orf {
            entry: 0,
            also_mrf: false,
        };
        kernel.instr_mut(at(3)).read_locs[1] = ReadLoc::Orf(0);
        let cfg = rfh_alloc::AllocConfig::two_level(3);
        rfh_alloc::validate_placements(&kernel, &cfg).unwrap();
        let mut mem = GlobalMemory::new(32);
        let mut sink = NullSink;
        execute(
            &kernel,
            &Launch::new(1, 1),
            &mut mem,
            ExecMode::Hierarchy(cfg),
            &mut [&mut sink],
        )
        .unwrap();
        assert_eq!(
            mem.load(0).unwrap(),
            8,
            "r3 = old ORF0 (r1 = 5) + r2 = 3; a pre-read fill would give 6, \
             a post-writeback fill would store 3"
        );
    }

    #[test]
    fn out_of_range_orf_placement_is_an_error_not_a_panic() {
        let mut kernel =
            rfh_isa::parse_kernel(".kernel b\nBB0:\n  iadd r1 r0, 1\n  st.global r0, r1\n  exit\n")
                .unwrap();
        let cfg = rfh_alloc::AllocConfig::two_level(3);
        rfh_alloc::allocate(&mut kernel, &cfg, &rfh_energy::EnergyModel::paper()).unwrap();
        // Point a read past the configured ORF size.
        let at = InstrRef {
            block: rfh_isa::BlockId::new(0),
            index: 1,
        };
        kernel.instr_mut(at).read_locs[1] = ReadLoc::Orf(200);
        let mut mem = GlobalMemory::new(32);
        let mut sink = NullSink;
        let err = execute(
            &kernel,
            &Launch::new(1, 32),
            &mut mem,
            ExecMode::Hierarchy(cfg),
            &mut [&mut sink],
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::BadPlacement { .. }), "{err}");
    }

    #[test]
    fn out_of_range_lrf_bank_is_an_error_not_a_panic() {
        let mut kernel =
            rfh_isa::parse_kernel(".kernel b\nBB0:\n  iadd r1 r0, 1\n  st.global r0, r1\n  exit\n")
                .unwrap();
        // Unified LRF has one bank; bank C does not exist.
        let at = InstrRef {
            block: rfh_isa::BlockId::new(0),
            index: 0,
        };
        kernel.instr_mut(at).write_loc = WriteLoc::Lrf {
            bank: Some(rfh_isa::Slot::C),
            also_mrf: true,
        };
        let cfg = rfh_alloc::AllocConfig::three_level(3, false);
        let mut mem = GlobalMemory::new(32);
        let mut sink = NullSink;
        let err = execute(
            &kernel,
            &Launch::new(1, 32),
            &mut mem,
            ExecMode::Hierarchy(cfg),
            &mut [&mut sink],
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::BadPlacement { .. }), "{err}");
    }

    #[test]
    fn straight_line_arithmetic() {
        let (mem, report) = run(
            "
.kernel a
BB0:
  mov r0, %tid.x
  iadd r1 r0, 10
  imul r2 r1, 3
  st.global r0, r2
  exit
",
            32,
            &[],
        );
        for t in 0..32u32 {
            assert_eq!(mem.load(t), Some((t + 10) * 3));
        }
        assert_eq!(report.warps, 1);
        assert_eq!(report.warp_instructions, 5);
        assert_eq!(report.thread_instructions, 5 * 32);
    }

    #[test]
    fn float_pipeline() {
        let k = "
.kernel f
BB0:
  mov r0, %tid.x
  ld.global r1 r0
  ffma r2 r1, 2.0f, 1.0f
  st.global r0, r2
  exit
";
        let kernel = rfh_isa::parse_kernel(k).unwrap();
        let mut mem = GlobalMemory::from_f32(&(0..32).map(|i| i as f32).collect::<Vec<_>>());
        let mut sink = NullSink;
        execute(
            &kernel,
            &Launch::new(1, 32),
            &mut mem,
            ExecMode::Baseline,
            &mut [&mut sink],
        )
        .unwrap();
        assert_eq!(mem.load_f32(5), Some(11.0));
    }

    #[test]
    fn predication_masks_lanes() {
        let (mem, _) = run(
            "
.kernel p
BB0:
  mov r0, %tid.x
  mov r1, 0
  setp.lt p0 r0, 4
  @p0 mov r1, 1
  st.global r0, r1
  exit
",
            32,
            &[],
        );
        for t in 0..32u32 {
            assert_eq!(mem.load(t), Some(u32::from(t < 4)), "lane {t}");
        }
    }

    #[test]
    fn divergent_hammock_reconverges() {
        let (mem, _) = run(
            "
.kernel h
BB0:
  mov r0, %tid.x
  setp.lt p0 r0, 16
  @p0 bra BB2
BB1:
  mov r1, 100
  bra BB3
BB2:
  mov r1, 200
BB3:
  iadd r1 r1, r0
  st.global r0, r1
  exit
",
            32,
            &[],
        );
        for t in 0..32u32 {
            let expect = if t < 16 { 200 + t } else { 100 + t };
            assert_eq!(mem.load(t), Some(expect), "lane {t}");
        }
    }

    #[test]
    fn divergent_loop_trip_counts() {
        // Each lane loops tid+1 times.
        let (mem, _) = run(
            "
.kernel l
BB0:
  mov r0, %tid.x
  mov r1, 0
  mov r2, 0
BB1:
  iadd r1 r1, 1
  iadd r2 r2, 5
  setp.le p0 r1, r0
  @p0 bra BB1
BB2:
  st.global r0, r2
  exit
",
            32,
            &[],
        );
        for t in 0..32u32 {
            assert_eq!(mem.load(t), Some((t + 1) * 5), "lane {t}");
        }
    }

    #[test]
    fn guarded_exit_retires_lanes() {
        let (mem, _) = run(
            "
.kernel e
BB0:
  mov r0, %tid.x
  mov r1, 0
  setp.lt p0 r0, 8
  @p0 exit
  mov r1, 9
  st.global r0, r1
  exit
",
            32,
            &[],
        );
        for t in 0..32u32 {
            let expect = if t < 8 { 0 } else { 9 };
            assert_eq!(mem.load(t), Some(expect), "lane {t}");
        }
    }

    #[test]
    fn shared_memory_round_trip() {
        let (mem, _) = run(
            "
.kernel s
BB0:
  mov r0, %tid.x
  imul r1 r0, 7
  st.shared r0, r1
  bar
  ld.shared r2 r0
  st.global r0, r2
  exit
",
            32,
            &[],
        );
        for t in 0..32u32 {
            assert_eq!(mem.load(t), Some(t * 7));
        }
    }

    #[test]
    fn params_and_ctas() {
        let kernel = rfh_isa::parse_kernel(
            "
.kernel c
BB0:
  ld.param r1 0
  mov r2, %ctaid.x
  imul r3 r2, %ntid.x
  mov r4, %tid.x
  iadd r3 r3, r4
  iadd r5 r3, r1
  st.global r3, r5
  exit
",
        )
        .unwrap();
        let mut mem = GlobalMemory::new(128);
        let mut sink = NullSink;
        let launch = Launch::new(2, 64).with_params(vec![1000]);
        let report = execute(
            &kernel,
            &launch,
            &mut mem,
            ExecMode::Baseline,
            &mut [&mut sink],
        )
        .unwrap();
        assert_eq!(report.warps, 4);
        for g in 0..128u32 {
            assert_eq!(mem.load(g), Some(g + 1000), "gid {g}");
        }
    }

    #[test]
    fn wide_load_fills_register_pair() {
        let (mem, _) = run(
            "
.kernel w
BB0:
  mov r0, %tid.x
  shl r1 r0, 1
  ld.global r4.w64 r1
  iadd r6 r4, r5
  st.global r0, r6
  exit
",
            96,
            &[(0, 3), (1, 4), (2, 30), (3, 40)],
        );
        assert_eq!(mem.load(0), Some(7));
        assert_eq!(mem.load(1), Some(70));
    }

    #[test]
    fn out_of_bounds_reports_location() {
        let kernel =
            rfh_isa::parse_kernel(".kernel o\nBB0:\n  mov r0, 9999\n  ld.global r1 r0\n  exit\n")
                .unwrap();
        let mut mem = GlobalMemory::new(4);
        let mut sink = NullSink;
        let err = execute(
            &kernel,
            &Launch::new(1, 32),
            &mut mem,
            ExecMode::Baseline,
            &mut [&mut sink],
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::OutOfBounds { addr: 9999, .. }));
    }

    #[test]
    fn infinite_loop_hits_budget() {
        let kernel = rfh_isa::parse_kernel(
            ".kernel i\nBB0:\n  mov r0, 0\nBB1:\n  iadd r0 r0, 1\n  bra BB1\nBB2:\n  exit\n",
        )
        .unwrap();
        let mut mem = GlobalMemory::new(4);
        let mut machine = MachineConfig::paper();
        machine.max_warp_instructions = 1000;
        let mut sink = NullSink;
        let err = execute_with(
            &kernel,
            &Launch::new(1, 32),
            &mut mem,
            ExecMode::Baseline,
            &machine,
            &mut [&mut sink],
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::InstructionBudget { .. }));
    }

    #[test]
    fn partial_warp_masks_trailing_lanes() {
        let kernel = rfh_isa::parse_kernel(
            ".kernel pw\nBB0:\n  mov r0, %tid.x\n  st.global r0, 1\n  exit\n",
        )
        .unwrap();
        let mut mem = GlobalMemory::new(64);
        let mut sink = NullSink;
        let launch = Launch::new(1, 40); // one full warp + 8 lanes
        execute(
            &kernel,
            &launch,
            &mut mem,
            ExecMode::Baseline,
            &mut [&mut sink],
        )
        .unwrap();
        for t in 0..40u32 {
            assert_eq!(mem.load(t), Some(1), "lane {t}");
        }
        for t in 40..64u32 {
            assert_eq!(mem.load(t), Some(0), "lane {t} must not execute");
        }
    }

    #[test]
    fn hierarchy_mode_matches_baseline_after_allocation() {
        let text = "
.kernel hm
BB0:
  mov r0, %tid.x
  ld.global r1 r0
  ffma r2 r1, r1, 1.0f
  fadd r3 r2, r1
  iadd r4 r0, 32
  st.global r4, r3
  exit
";
        let mut kernel = rfh_isa::parse_kernel(text).unwrap();
        let data: Vec<f32> = (0..64).map(|i| i as f32 * 0.5).collect();

        let mut base_mem = GlobalMemory::from_f32(&data);
        let mut sink = NullSink;
        execute(
            &kernel,
            &Launch::new(1, 32),
            &mut base_mem,
            ExecMode::Baseline,
            &mut [&mut sink],
        )
        .unwrap();

        let cfg = rfh_alloc::AllocConfig::three_level(3, true);
        rfh_alloc::allocate(&mut kernel, &cfg, &rfh_energy::EnergyModel::paper()).unwrap();
        let mut hier_mem = GlobalMemory::from_f32(&data);
        execute(
            &kernel,
            &Launch::new(1, 32),
            &mut hier_mem,
            ExecMode::Hierarchy(cfg),
            &mut [&mut sink],
        )
        .unwrap();
        assert_eq!(base_mem.words(), hier_mem.words());
    }

    #[test]
    fn hierarchy_mode_catches_bad_placement() {
        // Deliberately corrupt a placement: read from a never-written entry.
        let text = "
.kernel bad
BB0:
  mov r0, %tid.x
  iadd r1 r0, 1
  st.global r0, r1
  exit
";
        let mut kernel = rfh_isa::parse_kernel(text).unwrap();
        let cfg = rfh_alloc::AllocConfig::two_level(3);
        rfh_alloc::allocate(&mut kernel, &cfg, &rfh_energy::EnergyModel::paper()).unwrap();
        // Corrupt: point the store's value read at a wrong ORF entry.
        let at = InstrRef {
            block: rfh_isa::BlockId::new(0),
            index: 2,
        };
        kernel.instr_mut(at).read_locs[1] = ReadLoc::Orf(2);

        let mut base = GlobalMemory::new(32);
        let mut bad = GlobalMemory::new(32);
        let mut sink = NullSink;
        let clean = {
            let mut k2 = rfh_isa::parse_kernel(text).unwrap();
            rfh_alloc::allocate(&mut k2, &cfg, &rfh_energy::EnergyModel::paper()).unwrap();
            k2
        };
        execute(
            &clean,
            &Launch::new(1, 32),
            &mut base,
            ExecMode::Hierarchy(cfg),
            &mut [&mut sink],
        )
        .unwrap();
        execute(
            &kernel,
            &Launch::new(1, 32),
            &mut bad,
            ExecMode::Hierarchy(cfg),
            &mut [&mut sink],
        )
        .unwrap();
        assert_ne!(
            base.words(),
            bad.words(),
            "poisoned entry must corrupt output"
        );
    }
}

#[cfg(test)]
mod divergence_tests {
    use super::*;
    use crate::sink::NullSink;

    fn run32(text: &str) -> GlobalMemory {
        let kernel = rfh_isa::parse_kernel(text).unwrap();
        let mut mem = GlobalMemory::new(256);
        let mut sink = NullSink;
        execute(
            &kernel,
            &Launch::new(1, 32),
            &mut mem,
            ExecMode::Baseline,
            &mut [&mut sink],
        )
        .unwrap();
        mem
    }

    #[test]
    fn nested_hammocks_reconverge() {
        // Outer split at 16, inner split at 8 / 24: four lane classes.
        let mem = run32(
            "
.kernel nest
BB0:
  mov r0, %tid.x
  mov r1, 0
  setp.lt p0 r0, 16
  @!p0 bra BB4
BB1:
  setp.lt p1 r0, 8
  @!p1 bra BB3
BB2:
  iadd r1 r1, 1
BB3:
  iadd r1 r1, 10
  bra BB7
BB4:
  setp.lt p1 r0, 24
  @!p1 bra BB6
BB5:
  iadd r1 r1, 100
BB6:
  iadd r1 r1, 1000
BB7:
  iadd r1 r1, 7
  st.global r0, r1
  exit
",
        );
        for t in 0..32u32 {
            let expect = match t {
                0..=7 => 1 + 10 + 7,
                8..=15 => 10 + 7,
                16..=23 => 100 + 1000 + 7,
                _ => 1000 + 7,
            };
            assert_eq!(mem.load(t), Some(expect), "lane {t}");
        }
    }

    #[test]
    fn loop_inside_hammock() {
        // Lanes < 16 run a per-lane-trip-count loop; others skip it.
        let mem = run32(
            "
.kernel lih
BB0:
  mov r0, %tid.x
  mov r1, 0
  setp.ge p0 r0, 16
  @p0 bra BB2
BB1:
  iadd r1 r1, 3
  setp.gt p1 r1, r0
  @!p1 bra BB1
BB2:
  iadd r1 r1, 500
  st.global r0, r1
  exit
",
        );
        for t in 0..32u32 {
            let expect = if t < 16 { ((t / 3) + 1) * 3 + 500 } else { 500 };
            assert_eq!(mem.load(t), Some(expect), "lane {t}");
        }
    }

    #[test]
    fn hammock_inside_loop() {
        // Each iteration diverges on parity of the accumulator.
        let mem = run32(
            "
.kernel hil
BB0:
  mov r0, %tid.x
  mov r1, 0
  mov r2, 0
BB1:
  and r3 r1, 1
  setp.eq p0 r3, 0
  @!p0 bra BB3
BB2:
  iadd r2 r2, 5
BB3:
  iadd r2 r2, 1
  iadd r1 r1, 1
  setp.lt p1 r1, 4
  @p1 bra BB1
BB4:
  st.global r0, r2
  exit
",
        );
        // Iterations 0 and 2 take the even path: 2·(5+1) + 2·1 = 14.
        for t in 0..32u32 {
            assert_eq!(mem.load(t), Some(14), "lane {t}");
        }
    }
}

#[cfg(test)]
mod nested_loop_exec_tests {
    use super::*;
    use crate::sink::NullSink;

    /// Nested loops with lane-dependent inner trip counts, executed with
    /// full allocation under hierarchy-faithful mode.
    #[test]
    fn nested_divergent_loops_allocate_and_execute() {
        let text = "
.kernel nestdiv
BB0:
  mov r0, %tid.x
  and r7 r0, 7
  mov r1, 0
  mov r2, 0
BB1:
  mov r3, 0
BB2:
  iadd r3 r3, 1
  imad r2 r3, r1, r2
  iadd r2 r2, 1
  setp.le p0 r3, r7
  @p0 bra BB2
BB3:
  iadd r1 r1, 1
  setp.lt p1 r1, 3
  @p1 bra BB1
BB4:
  st.global r0, r2
  exit
";
        let kernel = rfh_isa::parse_kernel(text).unwrap();
        let mut base = GlobalMemory::new(32);
        let mut sink = NullSink;
        execute(
            &kernel,
            &Launch::new(1, 32),
            &mut base,
            ExecMode::Baseline,
            &mut [&mut sink],
        )
        .unwrap();

        // Host oracle.
        for t in 0..32i64 {
            let lane_bound = t & 7;
            let mut r2: i64 = 0;
            for r1 in 0..3i64 {
                let mut r3 = 0i64;
                loop {
                    r3 += 1;
                    r2 = (r3 * r1 + r2) & 0xFFFF_FFFF;
                    r2 += 1;
                    if r3 > lane_bound {
                        break;
                    }
                }
            }
            assert_eq!(
                base.load(t as u32),
                Some((r2 & 0xFFFF_FFFF) as u32),
                "lane {t}"
            );
        }

        // And the allocated kernel computes the same image.
        let cfg = rfh_alloc::AllocConfig::three_level(2, true);
        let mut allocated = kernel.clone();
        rfh_alloc::allocate(&mut allocated, &cfg, &rfh_energy::EnergyModel::paper()).unwrap();
        let mut hier = GlobalMemory::new(32);
        execute(
            &allocated,
            &Launch::new(1, 32),
            &mut hier,
            ExecMode::Hierarchy(cfg),
            &mut [&mut sink],
        )
        .unwrap();
        assert_eq!(base.words(), hier.words());
    }
}
