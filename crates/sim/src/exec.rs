//! The functional SIMT executor.
//!
//! Executes a kernel warp by warp with full predication and branch
//! divergence (immediate-post-dominator reconvergence via a token stack),
//! emitting an instruction trace to the registered [`TraceSink`]s.
//!
//! Two execution modes:
//!
//! * [`ExecMode::Baseline`] — all operands come from the architectural
//!   register file (the MRF);
//! * [`ExecMode::Hierarchy`] — operands move through modeled ORF/LRF
//!   storage exactly as the placement annotations dictate, and the upper
//!   levels are **poisoned at every strand boundary**. A kernel whose
//!   placements are wrong (a read crossing a strand, a missing MRF copy, a
//!   clobbered entry) computes wrong values and produces wrong memory
//!   output, so comparing final memory against a baseline run is an
//!   end-to-end proof of allocation correctness.
//!
//! Two engines implement those semantics:
//!
//! * [`Engine::Soa`] (the default) — a warp-batched structure-of-arrays
//!   executor: a one-time decode pass lowers each instruction into a flat
//!   op table with pre-resolved [`AccessPlan`]s, slab offsets, and
//!   pre-normalized flat branch targets, and the hot loop dispatches over
//!   that table with contiguous lane-major register storage;
//! * [`Engine::Reference`] — the original per-thread interpreter, frozen
//!   in [`reference`] as the differential oracle the SoA engine is
//!   conformance-tested against (`tests/exec_differential.rs` and the
//!   chaos `run_exec_differential_layer`).
//!
//! Both engines share this module's validation, placement checking, ALU
//! semantics, and error taxonomy, so they can only diverge in execution
//! order and state layout — exactly what the differential suite pins.

use std::error::Error;
use std::fmt;

use rfh_alloc::{AllocConfig, LrfMode};
use rfh_isa::access::{AccessKind, AccessPlan, Place};
use rfh_isa::{CmpOp, InstrRef, Kernel, Opcode, SfuOp};

use crate::machine::MachineConfig;
use crate::mem::GlobalMemory;
use crate::sink::TraceSink;

pub mod reference;
mod soa;

/// A kernel launch: grid geometry, parameters, and shared memory size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Launch {
    /// Number of CTAs (thread blocks).
    pub ctas: usize,
    /// Threads per CTA.
    pub threads_per_cta: usize,
    /// Kernel parameters, read by `ld.param`.
    pub params: Vec<u32>,
    /// Shared memory words allocated per CTA.
    pub shared_words: usize,
}

impl Launch {
    /// A launch with no parameters and the full 32 KB of shared memory.
    pub fn new(ctas: usize, threads_per_cta: usize) -> Self {
        Launch {
            ctas,
            threads_per_cta,
            params: Vec::new(),
            shared_words: 8192,
        }
    }

    /// Sets the kernel parameters.
    pub fn with_params(mut self, params: Vec<u32>) -> Self {
        self.params = params;
        self
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> usize {
        self.ctas * self.threads_per_cta
    }
}

/// How operand values flow during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// All operands served by the architectural register file.
    Baseline,
    /// Operands move through modeled ORF/LRF storage according to the
    /// placement annotations produced under the given configuration.
    Hierarchy(AllocConfig),
}

/// Which executor engine interprets a launch.
///
/// Both engines implement identical semantics (the differential
/// conformance suite enforces it); they differ in speed and in role. New
/// code should use [`Engine::Soa`]; the oracle exists for differential
/// testing and for benchmarking the speedup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Engine {
    /// The warp-batched structure-of-arrays executor (the default).
    #[default]
    Soa,
    /// The frozen per-thread reference interpreter ([`reference`]).
    Reference,
}

impl Engine {
    /// Parses an engine name as accepted by `rfhc trace --engine`.
    pub fn from_name(name: &str) -> Option<Engine> {
        match name {
            "soa" => Some(Engine::Soa),
            "reference" => Some(Engine::Reference),
            _ => None,
        }
    }

    /// The name accepted by [`Engine::from_name`].
    pub const fn name(self) -> &'static str {
        match self {
            Engine::Soa => "soa",
            Engine::Reference => "reference",
        }
    }
}

/// Aggregate execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// Warp instructions issued.
    pub warp_instructions: u64,
    /// Thread instructions executed (warp instructions × executing threads).
    pub thread_instructions: u64,
    /// Warps executed.
    pub warps: usize,
}

/// Execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A memory access fell outside the allocated space.
    OutOfBounds {
        /// Which space was accessed.
        space: &'static str,
        /// The offending word address.
        addr: u32,
        /// The instruction performing the access.
        at: InstrRef,
    },
    /// A warp exceeded the instruction budget (probable infinite loop).
    InstructionBudget {
        /// The runaway warp.
        warp: usize,
    },
    /// An unsupported instruction shape was executed.
    Unsupported {
        /// Description of the problem.
        what: String,
        /// Where it happened.
        at: InstrRef,
    },
    /// A placement annotation references hierarchy storage that does not
    /// exist under the executing configuration (e.g. an ORF entry past the
    /// configured size). Detected up front, before any instruction runs.
    BadPlacement {
        /// Description of the problem.
        what: String,
        /// The instruction carrying the annotation.
        at: InstrRef,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfBounds { space, addr, at } => {
                write!(f, "out-of-bounds {space} access at word {addr} ({at})")
            }
            ExecError::InstructionBudget { warp } => {
                write!(
                    f,
                    "warp {warp} exceeded the instruction budget (infinite loop?)"
                )
            }
            ExecError::Unsupported { what, at } => write!(f, "unsupported: {what} ({at})"),
            ExecError::BadPlacement { what, at } => {
                write!(f, "bad placement annotation: {what} ({at})")
            }
        }
    }
}

impl Error for ExecError {}

const POISON: u32 = 0xDEAD_BEE0;

/// Evaluates a private-datapath ALU opcode, or `None` when `op` is not an
/// ALU opcode (control flow, memory, barriers — dispatched elsewhere; the
/// caller reports [`ExecError::Unsupported`] rather than panicking).
fn eval_alu(op: Opcode, a: u32, b: u32, c: u32) -> Option<u32> {
    let (ia, ib, ic) = (a as i32, b as i32, c as i32);
    let (fa, fb, fc) = (f32::from_bits(a), f32::from_bits(b), f32::from_bits(c));
    let v = match op {
        Opcode::IAdd => ia.wrapping_add(ib) as u32,
        Opcode::ISub => ia.wrapping_sub(ib) as u32,
        Opcode::IMul => ia.wrapping_mul(ib) as u32,
        Opcode::IMad => ia.wrapping_mul(ib).wrapping_add(ic) as u32,
        Opcode::IMin => ia.min(ib) as u32,
        Opcode::IMax => ia.max(ib) as u32,
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Shl => a.wrapping_shl(b & 31),
        Opcode::Shr => a.wrapping_shr(b & 31),
        Opcode::FAdd => (fa + fb).to_bits(),
        Opcode::FSub => (fa - fb).to_bits(),
        Opcode::FMul => (fa * fb).to_bits(),
        Opcode::FFma => fa.mul_add(fb, fc).to_bits(),
        Opcode::FMin => fa.min(fb).to_bits(),
        Opcode::FMax => fa.max(fb).to_bits(),
        Opcode::Mov => a,
        Opcode::I2F => (ia as f32).to_bits(),
        Opcode::F2I => {
            if fa.is_nan() {
                0
            } else {
                (fa as i32) as u32
            }
        }
        Opcode::Sfu(f) => {
            let v = match f {
                SfuOp::Rcp => 1.0 / fa,
                SfuOp::Rsqrt => 1.0 / fa.sqrt(),
                SfuOp::Sqrt => fa.sqrt(),
                SfuOp::Sin => fa.sin(),
                SfuOp::Cos => fa.cos(),
                SfuOp::Ex2 => fa.exp2(),
                SfuOp::Lg2 => fa.log2(),
            };
            v.to_bits()
        }
        _ => return None,
    };
    Some(v)
}

fn eval_cmp(cmp: CmpOp, float: bool, a: u32, b: u32) -> bool {
    if float {
        let (fa, fb) = (f32::from_bits(a), f32::from_bits(b));
        match cmp {
            CmpOp::Eq => fa == fb,
            CmpOp::Ne => fa != fb,
            CmpOp::Lt => fa < fb,
            CmpOp::Le => fa <= fb,
            CmpOp::Gt => fa > fb,
            CmpOp::Ge => fa >= fb,
        }
    } else {
        let (ia, ib) = (a as i32, b as i32);
        match cmp {
            CmpOp::Eq => ia == ib,
            CmpOp::Ne => ia != ib,
            CmpOp::Lt => ia < ib,
            CmpOp::Le => ia <= ib,
            CmpOp::Gt => ia > ib,
            CmpOp::Ge => ia >= ib,
        }
    }
}

/// Number of modeled LRF banks for a configuration (matches the storage
/// both engines allocate).
fn lrf_bank_count(mode: LrfMode) -> usize {
    match mode {
        LrfMode::None => 0,
        LrfMode::Unified => 1,
        LrfMode::Split => 3,
    }
}

/// Rejects placement annotations that reference hierarchy storage the
/// executing configuration does not have. Run before execution so that
/// corrupted annotations surface as [`ExecError::BadPlacement`] instead of
/// an out-of-bounds panic mid-run. Wide writes are already expanded per
/// word by [`AccessPlan::resolve`], so the high word of a 64-bit ORF write
/// is range-checked at `entry + 1` — which also makes the SoA engine's
/// pre-computed slab offsets safe by construction.
fn check_placements(kernel: &Kernel, cfg: &AllocConfig) -> Result<(), ExecError> {
    let orf = cfg.orf_entries;
    let banks = lrf_bank_count(cfg.lrf);
    let bad = |what: String, at: InstrRef| ExecError::BadPlacement { what, at };
    let mut plan = AccessPlan::new();
    for (at, instr) in kernel.iter_instrs() {
        plan.resolve_into(instr);
        for a in plan.accesses() {
            let verb = match a.kind {
                AccessKind::Read => "read of",
                AccessKind::Fill => "fill of",
                AccessKind::Write => "write to",
            };
            match a.place {
                Place::Mrf => {}
                Place::Orf(e) => {
                    if e as usize >= orf {
                        return Err(bad(format!("{verb} ORF entry {e} of {orf} configured"), at));
                    }
                }
                Place::Lrf(bank) => {
                    let b = bank.map(|s| s.index()).unwrap_or(0);
                    if b >= banks {
                        return Err(bad(
                            format!("{verb} LRF bank {b} of {banks} configured"),
                            at,
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Why a warp yielded back to the CTA scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// The warp executed a barrier and waits for its CTA.
    Barrier,
    /// The warp has no more work.
    Done,
}

/// Executes a kernel launch, streaming the instruction trace to `sinks`.
///
/// Execution is *barrier phased*: within a CTA, every warp runs until its
/// next `bar` (or exit) before any warp proceeds past that barrier, which
/// gives `bar` its synchronization semantics for the standard
/// produce-barrier-consume idiom. Register file access counts are
/// interleaving-independent (software placements are static and the
/// hardware-cache models track per-warp state), so this ordering is
/// equivalent to any fair schedule. Timing questions are answered by
/// [`crate::timing`] instead.
///
/// Runs on the default [`Engine::Soa`]; use [`execute_with_engine`] (or
/// [`reference::execute`]) to pick the engine explicitly.
///
/// # Errors
///
/// Returns an [`ExecError`] on out-of-bounds memory accesses, runaway
/// loops, or unsupported instruction shapes.
pub fn execute(
    kernel: &Kernel,
    launch: &Launch,
    memory: &mut GlobalMemory,
    mode: ExecMode,
    sinks: &mut [&mut dyn TraceSink],
) -> Result<ExecReport, ExecError> {
    let machine = MachineConfig::paper();
    execute_with(kernel, launch, memory, mode, &machine, sinks)
}

/// [`execute`] with an explicit machine configuration.
///
/// # Errors
///
/// As for [`execute`].
pub fn execute_with(
    kernel: &Kernel,
    launch: &Launch,
    memory: &mut GlobalMemory,
    mode: ExecMode,
    machine: &MachineConfig,
    sinks: &mut [&mut dyn TraceSink],
) -> Result<ExecReport, ExecError> {
    execute_with_engine(kernel, launch, memory, mode, machine, Engine::Soa, sinks)
}

/// [`execute_with`] on an explicitly chosen [`Engine`].
///
/// Validation and placement checking happen here, once, before either
/// engine runs — so both engines see only structurally valid kernels and
/// reject corrupted annotations with identical errors.
///
/// # Errors
///
/// As for [`execute`].
pub fn execute_with_engine(
    kernel: &Kernel,
    launch: &Launch,
    memory: &mut GlobalMemory,
    mode: ExecMode,
    machine: &MachineConfig,
    engine: Engine,
    sinks: &mut [&mut dyn TraceSink],
) -> Result<ExecReport, ExecError> {
    rfh_isa::validate(kernel).map_err(|e| ExecError::Unsupported {
        what: format!("invalid kernel: {e}"),
        at: InstrRef {
            block: rfh_isa::BlockId::new(0),
            index: 0,
        },
    })?;
    if let ExecMode::Hierarchy(cfg) = &mode {
        check_placements(kernel, cfg)?;
    }
    match engine {
        Engine::Soa => soa::run(kernel, launch, memory, mode, machine, sinks),
        Engine::Reference => reference::run(kernel, launch, memory, mode, machine, sinks),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::NullSink;
    use rfh_isa::{ReadLoc, Space, WriteLoc};

    fn run(text: &str, mem_words: usize, init: &[(u32, u32)]) -> (GlobalMemory, ExecReport) {
        let kernel = rfh_isa::parse_kernel(text).unwrap();
        let mut mem = GlobalMemory::new(mem_words);
        for (a, v) in init {
            mem.store(*a, *v);
        }
        let mut sink = NullSink;
        let report = execute(
            &kernel,
            &Launch::new(1, 32),
            &mut mem,
            ExecMode::Baseline,
            &mut [&mut sink],
        )
        .unwrap();
        (mem, report)
    }

    #[test]
    fn eval_alu_is_total_over_opcodes() {
        // Non-ALU opcodes yield None — the caller reports Unsupported
        // instead of the old unreachable! panic.
        for op in [
            Opcode::Bra,
            Opcode::Bar,
            Opcode::Exit,
            Opcode::Tex,
            Opcode::Ld(Space::Global),
            Opcode::St(Space::Shared),
            Opcode::Setp(CmpOp::Lt),
            Opcode::Sel,
        ] {
            assert_eq!(eval_alu(op, 1, 2, 3), None, "{op}");
        }
        assert_eq!(eval_alu(Opcode::IAdd, 1, 2, 3), Some(3));
        assert_eq!(eval_alu(Opcode::Mov, 7, 0, 0), Some(7));
    }

    #[test]
    fn fill_precedes_same_instruction_writeback() {
        // `iadd r2 r1(ORF0-fill), 1` writing ORF0: the fill is an operand-
        // fetch side effect, so the destination write must win and a later
        // ORF0 read of r2 must see r2, not the filled r1. Found by the
        // rfh-chaos placement harness — the fill used to be applied after
        // writeback, disagreeing with the placement validator's model.
        let mut kernel = rfh_isa::parse_kernel(
            ".kernel f\nBB0:\n  mov r1, 5\n  iadd r2 r1, 1\n  st.global r0, r2\n  exit\n",
        )
        .unwrap();
        let at = |i: usize| InstrRef {
            block: rfh_isa::BlockId::new(0),
            index: i,
        };
        kernel.instr_mut(at(1)).read_locs[0] = ReadLoc::MrfFillOrf(0);
        kernel.instr_mut(at(1)).write_loc = WriteLoc::Orf {
            entry: 0,
            also_mrf: false,
        };
        kernel.instr_mut(at(2)).read_locs[1] = ReadLoc::Orf(0);
        let cfg = rfh_alloc::AllocConfig::two_level(3);
        rfh_alloc::validate_placements(&kernel, &cfg).unwrap();
        let mut mem = GlobalMemory::new(32);
        let mut sink = NullSink;
        execute(
            &kernel,
            &Launch::new(1, 1),
            &mut mem,
            ExecMode::Hierarchy(cfg),
            &mut [&mut sink],
        )
        .unwrap();
        assert_eq!(mem.load(0).unwrap(), 6, "store must see r2 = 6, not r1 = 5");
    }

    #[test]
    fn same_instruction_orf_read_sees_the_pre_fill_value() {
        // The exact shape the chaos harness found (seed 0x9b5979cb901570cb):
        // one instruction reads ORF0 in slot 0, fills ORF0 from the MRF in
        // slot 1, and writes ORF0. Operand reads see the pre-fill state, the
        // fill lands next, and the destination write wins — so the sum must
        // be old-ORF0 + MRF operand, and ORF0 must end up holding the dst.
        let mut kernel = rfh_isa::parse_kernel(
            ".kernel g\nBB0:\n  mov r1, 5\n  mov r2, 3\n  iadd r3 r1, r2\n  st.global r0, r3\n  exit\n",
        )
        .unwrap();
        let at = |i: usize| InstrRef {
            block: rfh_isa::BlockId::new(0),
            index: i,
        };
        kernel.instr_mut(at(0)).write_loc = WriteLoc::Orf {
            entry: 0,
            also_mrf: false,
        };
        kernel.instr_mut(at(2)).read_locs[0] = ReadLoc::Orf(0);
        kernel.instr_mut(at(2)).read_locs[1] = ReadLoc::MrfFillOrf(0);
        kernel.instr_mut(at(2)).write_loc = WriteLoc::Orf {
            entry: 0,
            also_mrf: false,
        };
        kernel.instr_mut(at(3)).read_locs[1] = ReadLoc::Orf(0);
        let cfg = rfh_alloc::AllocConfig::two_level(3);
        rfh_alloc::validate_placements(&kernel, &cfg).unwrap();
        let mut mem = GlobalMemory::new(32);
        let mut sink = NullSink;
        execute(
            &kernel,
            &Launch::new(1, 1),
            &mut mem,
            ExecMode::Hierarchy(cfg),
            &mut [&mut sink],
        )
        .unwrap();
        assert_eq!(
            mem.load(0).unwrap(),
            8,
            "r3 = old ORF0 (r1 = 5) + r2 = 3; a pre-read fill would give 6, \
             a post-writeback fill would store 3"
        );
    }

    #[test]
    fn out_of_range_orf_placement_is_an_error_not_a_panic() {
        let mut kernel =
            rfh_isa::parse_kernel(".kernel b\nBB0:\n  iadd r1 r0, 1\n  st.global r0, r1\n  exit\n")
                .unwrap();
        let cfg = rfh_alloc::AllocConfig::two_level(3);
        rfh_alloc::allocate(&mut kernel, &cfg, &rfh_energy::EnergyModel::paper()).unwrap();
        // Point a read past the configured ORF size.
        let at = InstrRef {
            block: rfh_isa::BlockId::new(0),
            index: 1,
        };
        kernel.instr_mut(at).read_locs[1] = ReadLoc::Orf(200);
        let mut mem = GlobalMemory::new(32);
        let mut sink = NullSink;
        let err = execute(
            &kernel,
            &Launch::new(1, 32),
            &mut mem,
            ExecMode::Hierarchy(cfg),
            &mut [&mut sink],
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::BadPlacement { .. }), "{err}");
    }

    #[test]
    fn out_of_range_lrf_bank_is_an_error_not_a_panic() {
        let mut kernel =
            rfh_isa::parse_kernel(".kernel b\nBB0:\n  iadd r1 r0, 1\n  st.global r0, r1\n  exit\n")
                .unwrap();
        // Unified LRF has one bank; bank C does not exist.
        let at = InstrRef {
            block: rfh_isa::BlockId::new(0),
            index: 0,
        };
        kernel.instr_mut(at).write_loc = WriteLoc::Lrf {
            bank: Some(rfh_isa::Slot::C),
            also_mrf: true,
        };
        let cfg = rfh_alloc::AllocConfig::three_level(3, false);
        let mut mem = GlobalMemory::new(32);
        let mut sink = NullSink;
        let err = execute(
            &kernel,
            &Launch::new(1, 32),
            &mut mem,
            ExecMode::Hierarchy(cfg),
            &mut [&mut sink],
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::BadPlacement { .. }), "{err}");
    }

    #[test]
    fn straight_line_arithmetic() {
        let (mem, report) = run(
            "
.kernel a
BB0:
  mov r0, %tid.x
  iadd r1 r0, 10
  imul r2 r1, 3
  st.global r0, r2
  exit
",
            32,
            &[],
        );
        for t in 0..32u32 {
            assert_eq!(mem.load(t), Some((t + 10) * 3));
        }
        assert_eq!(report.warps, 1);
        assert_eq!(report.warp_instructions, 5);
        assert_eq!(report.thread_instructions, 5 * 32);
    }

    #[test]
    fn float_pipeline() {
        let k = "
.kernel f
BB0:
  mov r0, %tid.x
  ld.global r1 r0
  ffma r2 r1, 2.0f, 1.0f
  st.global r0, r2
  exit
";
        let kernel = rfh_isa::parse_kernel(k).unwrap();
        let mut mem = GlobalMemory::from_f32(&(0..32).map(|i| i as f32).collect::<Vec<_>>());
        let mut sink = NullSink;
        execute(
            &kernel,
            &Launch::new(1, 32),
            &mut mem,
            ExecMode::Baseline,
            &mut [&mut sink],
        )
        .unwrap();
        assert_eq!(mem.load_f32(5), Some(11.0));
    }

    #[test]
    fn predication_masks_lanes() {
        let (mem, _) = run(
            "
.kernel p
BB0:
  mov r0, %tid.x
  mov r1, 0
  setp.lt p0 r0, 4
  @p0 mov r1, 1
  st.global r0, r1
  exit
",
            32,
            &[],
        );
        for t in 0..32u32 {
            assert_eq!(mem.load(t), Some(u32::from(t < 4)), "lane {t}");
        }
    }

    #[test]
    fn divergent_hammock_reconverges() {
        let (mem, _) = run(
            "
.kernel h
BB0:
  mov r0, %tid.x
  setp.lt p0 r0, 16
  @p0 bra BB2
BB1:
  mov r1, 100
  bra BB3
BB2:
  mov r1, 200
BB3:
  iadd r1 r1, r0
  st.global r0, r1
  exit
",
            32,
            &[],
        );
        for t in 0..32u32 {
            let expect = if t < 16 { 200 + t } else { 100 + t };
            assert_eq!(mem.load(t), Some(expect), "lane {t}");
        }
    }

    #[test]
    fn divergent_loop_trip_counts() {
        // Each lane loops tid+1 times.
        let (mem, _) = run(
            "
.kernel l
BB0:
  mov r0, %tid.x
  mov r1, 0
  mov r2, 0
BB1:
  iadd r1 r1, 1
  iadd r2 r2, 5
  setp.le p0 r1, r0
  @p0 bra BB1
BB2:
  st.global r0, r2
  exit
",
            32,
            &[],
        );
        for t in 0..32u32 {
            assert_eq!(mem.load(t), Some((t + 1) * 5), "lane {t}");
        }
    }

    #[test]
    fn guarded_exit_retires_lanes() {
        let (mem, _) = run(
            "
.kernel e
BB0:
  mov r0, %tid.x
  mov r1, 0
  setp.lt p0 r0, 8
  @p0 exit
  mov r1, 9
  st.global r0, r1
  exit
",
            32,
            &[],
        );
        for t in 0..32u32 {
            let expect = if t < 8 { 0 } else { 9 };
            assert_eq!(mem.load(t), Some(expect), "lane {t}");
        }
    }

    #[test]
    fn shared_memory_round_trip() {
        let (mem, _) = run(
            "
.kernel s
BB0:
  mov r0, %tid.x
  imul r1 r0, 7
  st.shared r0, r1
  bar
  ld.shared r2 r0
  st.global r0, r2
  exit
",
            32,
            &[],
        );
        for t in 0..32u32 {
            assert_eq!(mem.load(t), Some(t * 7));
        }
    }

    #[test]
    fn params_and_ctas() {
        let kernel = rfh_isa::parse_kernel(
            "
.kernel c
BB0:
  ld.param r1 0
  mov r2, %ctaid.x
  imul r3 r2, %ntid.x
  mov r4, %tid.x
  iadd r3 r3, r4
  iadd r5 r3, r1
  st.global r3, r5
  exit
",
        )
        .unwrap();
        let mut mem = GlobalMemory::new(128);
        let mut sink = NullSink;
        let launch = Launch::new(2, 64).with_params(vec![1000]);
        let report = execute(
            &kernel,
            &launch,
            &mut mem,
            ExecMode::Baseline,
            &mut [&mut sink],
        )
        .unwrap();
        assert_eq!(report.warps, 4);
        for g in 0..128u32 {
            assert_eq!(mem.load(g), Some(g + 1000), "gid {g}");
        }
    }

    #[test]
    fn wide_load_fills_register_pair() {
        let (mem, _) = run(
            "
.kernel w
BB0:
  mov r0, %tid.x
  shl r1 r0, 1
  ld.global r4.w64 r1
  iadd r6 r4, r5
  st.global r0, r6
  exit
",
            96,
            &[(0, 3), (1, 4), (2, 30), (3, 40)],
        );
        assert_eq!(mem.load(0), Some(7));
        assert_eq!(mem.load(1), Some(70));
    }

    #[test]
    fn out_of_bounds_reports_location() {
        let kernel =
            rfh_isa::parse_kernel(".kernel o\nBB0:\n  mov r0, 9999\n  ld.global r1 r0\n  exit\n")
                .unwrap();
        let mut mem = GlobalMemory::new(4);
        let mut sink = NullSink;
        let err = execute(
            &kernel,
            &Launch::new(1, 32),
            &mut mem,
            ExecMode::Baseline,
            &mut [&mut sink],
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::OutOfBounds { addr: 9999, .. }));
    }

    #[test]
    fn infinite_loop_hits_budget() {
        let kernel = rfh_isa::parse_kernel(
            ".kernel i\nBB0:\n  mov r0, 0\nBB1:\n  iadd r0 r0, 1\n  bra BB1\nBB2:\n  exit\n",
        )
        .unwrap();
        let mut mem = GlobalMemory::new(4);
        let mut machine = MachineConfig::paper();
        machine.max_warp_instructions = 1000;
        let mut sink = NullSink;
        let err = execute_with(
            &kernel,
            &Launch::new(1, 32),
            &mut mem,
            ExecMode::Baseline,
            &machine,
            &mut [&mut sink],
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::InstructionBudget { .. }));
    }

    #[test]
    fn partial_warp_masks_trailing_lanes() {
        let kernel = rfh_isa::parse_kernel(
            ".kernel pw\nBB0:\n  mov r0, %tid.x\n  st.global r0, 1\n  exit\n",
        )
        .unwrap();
        let mut mem = GlobalMemory::new(64);
        let mut sink = NullSink;
        let launch = Launch::new(1, 40); // one full warp + 8 lanes
        execute(
            &kernel,
            &launch,
            &mut mem,
            ExecMode::Baseline,
            &mut [&mut sink],
        )
        .unwrap();
        for t in 0..40u32 {
            assert_eq!(mem.load(t), Some(1), "lane {t}");
        }
        for t in 40..64u32 {
            assert_eq!(mem.load(t), Some(0), "lane {t} must not execute");
        }
    }

    #[test]
    fn hierarchy_mode_matches_baseline_after_allocation() {
        let text = "
.kernel hm
BB0:
  mov r0, %tid.x
  ld.global r1 r0
  ffma r2 r1, r1, 1.0f
  fadd r3 r2, r1
  iadd r4 r0, 32
  st.global r4, r3
  exit
";
        let mut kernel = rfh_isa::parse_kernel(text).unwrap();
        let data: Vec<f32> = (0..64).map(|i| i as f32 * 0.5).collect();

        let mut base_mem = GlobalMemory::from_f32(&data);
        let mut sink = NullSink;
        execute(
            &kernel,
            &Launch::new(1, 32),
            &mut base_mem,
            ExecMode::Baseline,
            &mut [&mut sink],
        )
        .unwrap();

        let cfg = rfh_alloc::AllocConfig::three_level(3, true);
        rfh_alloc::allocate(&mut kernel, &cfg, &rfh_energy::EnergyModel::paper()).unwrap();
        let mut hier_mem = GlobalMemory::from_f32(&data);
        execute(
            &kernel,
            &Launch::new(1, 32),
            &mut hier_mem,
            ExecMode::Hierarchy(cfg),
            &mut [&mut sink],
        )
        .unwrap();
        assert_eq!(base_mem.words(), hier_mem.words());
    }

    #[test]
    fn hierarchy_mode_catches_bad_placement() {
        // Deliberately corrupt a placement: read from a never-written entry.
        let text = "
.kernel bad
BB0:
  mov r0, %tid.x
  iadd r1 r0, 1
  st.global r0, r1
  exit
";
        let mut kernel = rfh_isa::parse_kernel(text).unwrap();
        let cfg = rfh_alloc::AllocConfig::two_level(3);
        rfh_alloc::allocate(&mut kernel, &cfg, &rfh_energy::EnergyModel::paper()).unwrap();
        // Corrupt: point the store's value read at a wrong ORF entry.
        let at = InstrRef {
            block: rfh_isa::BlockId::new(0),
            index: 2,
        };
        kernel.instr_mut(at).read_locs[1] = ReadLoc::Orf(2);

        let mut base = GlobalMemory::new(32);
        let mut bad = GlobalMemory::new(32);
        let mut sink = NullSink;
        let clean = {
            let mut k2 = rfh_isa::parse_kernel(text).unwrap();
            rfh_alloc::allocate(&mut k2, &cfg, &rfh_energy::EnergyModel::paper()).unwrap();
            k2
        };
        execute(
            &clean,
            &Launch::new(1, 32),
            &mut base,
            ExecMode::Hierarchy(cfg),
            &mut [&mut sink],
        )
        .unwrap();
        execute(
            &kernel,
            &Launch::new(1, 32),
            &mut bad,
            ExecMode::Hierarchy(cfg),
            &mut [&mut sink],
        )
        .unwrap();
        assert_ne!(
            base.words(),
            bad.words(),
            "poisoned entry must corrupt output"
        );
    }
}

#[cfg(test)]
mod divergence_tests {
    use super::*;
    use crate::sink::NullSink;

    fn run32(text: &str) -> GlobalMemory {
        let kernel = rfh_isa::parse_kernel(text).unwrap();
        let mut mem = GlobalMemory::new(256);
        let mut sink = NullSink;
        execute(
            &kernel,
            &Launch::new(1, 32),
            &mut mem,
            ExecMode::Baseline,
            &mut [&mut sink],
        )
        .unwrap();
        mem
    }

    #[test]
    fn nested_hammocks_reconverge() {
        // Outer split at 16, inner split at 8 / 24: four lane classes.
        let mem = run32(
            "
.kernel nest
BB0:
  mov r0, %tid.x
  mov r1, 0
  setp.lt p0 r0, 16
  @!p0 bra BB4
BB1:
  setp.lt p1 r0, 8
  @!p1 bra BB3
BB2:
  iadd r1 r1, 1
BB3:
  iadd r1 r1, 10
  bra BB7
BB4:
  setp.lt p1 r0, 24
  @!p1 bra BB6
BB5:
  iadd r1 r1, 100
BB6:
  iadd r1 r1, 1000
BB7:
  iadd r1 r1, 7
  st.global r0, r1
  exit
",
        );
        for t in 0..32u32 {
            let expect = match t {
                0..=7 => 1 + 10 + 7,
                8..=15 => 10 + 7,
                16..=23 => 100 + 1000 + 7,
                _ => 1000 + 7,
            };
            assert_eq!(mem.load(t), Some(expect), "lane {t}");
        }
    }

    #[test]
    fn loop_inside_hammock() {
        // Lanes < 16 run a per-lane-trip-count loop; others skip it.
        let mem = run32(
            "
.kernel lih
BB0:
  mov r0, %tid.x
  mov r1, 0
  setp.ge p0 r0, 16
  @p0 bra BB2
BB1:
  iadd r1 r1, 3
  setp.gt p1 r1, r0
  @!p1 bra BB1
BB2:
  iadd r1 r1, 500
  st.global r0, r1
  exit
",
        );
        for t in 0..32u32 {
            let expect = if t < 16 { ((t / 3) + 1) * 3 + 500 } else { 500 };
            assert_eq!(mem.load(t), Some(expect), "lane {t}");
        }
    }

    #[test]
    fn hammock_inside_loop() {
        // Each iteration diverges on parity of the accumulator.
        let mem = run32(
            "
.kernel hil
BB0:
  mov r0, %tid.x
  mov r1, 0
  mov r2, 0
BB1:
  and r3 r1, 1
  setp.eq p0 r3, 0
  @!p0 bra BB3
BB2:
  iadd r2 r2, 5
BB3:
  iadd r2 r2, 1
  iadd r1 r1, 1
  setp.lt p1 r1, 4
  @p1 bra BB1
BB4:
  st.global r0, r2
  exit
",
        );
        // Iterations 0 and 2 take the even path: 2·(5+1) + 2·1 = 14.
        for t in 0..32u32 {
            assert_eq!(mem.load(t), Some(14), "lane {t}");
        }
    }
}

#[cfg(test)]
mod nested_loop_exec_tests {
    use super::*;
    use crate::sink::NullSink;

    /// Nested loops with lane-dependent inner trip counts, executed with
    /// full allocation under hierarchy-faithful mode.
    #[test]
    fn nested_divergent_loops_allocate_and_execute() {
        let text = "
.kernel nestdiv
BB0:
  mov r0, %tid.x
  and r7 r0, 7
  mov r1, 0
  mov r2, 0
BB1:
  mov r3, 0
BB2:
  iadd r3 r3, 1
  imad r2 r3, r1, r2
  iadd r2 r2, 1
  setp.le p0 r3, r7
  @p0 bra BB2
BB3:
  iadd r1 r1, 1
  setp.lt p1 r1, 3
  @p1 bra BB1
BB4:
  st.global r0, r2
  exit
";
        let kernel = rfh_isa::parse_kernel(text).unwrap();
        let mut base = GlobalMemory::new(32);
        let mut sink = NullSink;
        execute(
            &kernel,
            &Launch::new(1, 32),
            &mut base,
            ExecMode::Baseline,
            &mut [&mut sink],
        )
        .unwrap();

        // Host oracle.
        for t in 0..32i64 {
            let lane_bound = t & 7;
            let mut r2: i64 = 0;
            for r1 in 0..3i64 {
                let mut r3 = 0i64;
                loop {
                    r3 += 1;
                    r2 = (r3 * r1 + r2) & 0xFFFF_FFFF;
                    r2 += 1;
                    if r3 > lane_bound {
                        break;
                    }
                }
            }
            assert_eq!(
                base.load(t as u32),
                Some((r2 & 0xFFFF_FFFF) as u32),
                "lane {t}"
            );
        }

        // And the allocated kernel computes the same image.
        let cfg = rfh_alloc::AllocConfig::three_level(2, true);
        let mut allocated = kernel.clone();
        rfh_alloc::allocate(&mut allocated, &cfg, &rfh_energy::EnergyModel::paper()).unwrap();
        let mut hier = GlobalMemory::new(32);
        execute(
            &allocated,
            &Launch::new(1, 32),
            &mut hier,
            ExecMode::Hierarchy(cfg),
            &mut [&mut sink],
        )
        .unwrap();
        assert_eq!(base.words(), hier.words());
    }
}
