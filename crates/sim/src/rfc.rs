//! The hardware register file cache baseline of prior work \[11\] (§2.2),
//! plus the hardware three-level (LRF + RFC + MRF) variant of §6.2.
//!
//! Per warp, a FIFO-replacement cache of `entries_per_thread` register
//! entries captures produced values and (optionally) read misses. Evicted
//! dirty values are written back to the MRF (one overhead RFC read plus one
//! MRF write) unless static liveness marked them dead. When the two-level
//! scheduler deschedules the warp — on a dependence on an outstanding
//! long-latency operation, or at a barrier — the live dirty contents are
//! flushed to the MRF.
//!
//! The §7 limit-study variants are flags: `flush_on_backward_branch`
//! (compare against RFC contents persisting around loops) and
//! `flush_on_deschedule: false` (the idealized never-flush experiment).

use std::collections::{HashMap, HashSet, VecDeque};

use rfh_energy::AccessCounts;
use rfh_isa::access::{AccessSlot, Datapath};
use rfh_isa::Unit;

use crate::sink::{InstrEvent, TraceSink};

/// Configuration of the hardware-managed hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RfcConfig {
    /// RFC entries per thread (the paper sweeps 1–8; prior work used 6).
    pub entries_per_thread: usize,
    /// Add the hardware last-result file in front of the RFC (§6.2).
    pub hw_lrf: bool,
    /// Also allocate RFC entries for read misses. The RFC of \[11\] as
    /// described in §2.2 allocates only produced values ("values produced
    /// by the function units are written into the RFC"), so this defaults
    /// to off; enabling it is an ablation.
    pub allocate_on_read_miss: bool,
    /// Flush live RFC contents when the warp is descheduled.
    pub flush_on_deschedule: bool,
    /// Also flush when executing a backward branch (§7 variant; prior work
    /// keeps contents and the paper reports only ~5% difference).
    pub flush_on_backward_branch: bool,
}

impl RfcConfig {
    /// The prior-work two-level RFC with `entries` per thread.
    pub fn two_level(entries: usize) -> Self {
        RfcConfig {
            entries_per_thread: entries,
            hw_lrf: false,
            allocate_on_read_miss: false,
            flush_on_deschedule: true,
            flush_on_backward_branch: false,
        }
    }

    /// The hardware three-level hierarchy (LRF + RFC + MRF) of §6.2.
    pub fn three_level(entries: usize) -> Self {
        RfcConfig {
            hw_lrf: true,
            ..RfcConfig::two_level(entries)
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    reg: u16,
    dirty: bool,
    dead: bool,
}

#[derive(Debug, Default)]
struct WarpRfc {
    fifo: VecDeque<Line>,
    lrf: Option<Line>,
    /// Registers holding results of long-latency operations still "in
    /// flight" since the last deschedule point.
    pending: HashSet<u16>,
}

/// Counts hierarchy accesses under hardware caching.
#[derive(Debug)]
pub struct HwCounter {
    cfg: RfcConfig,
    counts: AccessCounts,
    warps: HashMap<usize, WarpRfc>,
    /// Registers ever consumed by the shared datapath. The HW LRF is not
    /// reachable from the shared units, so the compiler steers such values
    /// into the RFC instead (§6.2: "the compiler ensures that values
    /// accessed by the shared units will be available in the RFC or MRF").
    shared_regs: HashSet<u16>,
    /// Number of deschedule (flush) events observed.
    pub deschedules: u64,
}

impl HwCounter {
    /// Creates a counter for the given cache configuration and kernel (the
    /// kernel is scanned for registers with shared-datapath consumers).
    pub fn new(cfg: RfcConfig, kernel: &rfh_isa::Kernel) -> Self {
        let mut shared_regs = HashSet::new();
        for (_, i) in kernel.iter_instrs() {
            if i.op.unit().is_shared() {
                for (_, r) in i.reg_srcs() {
                    shared_regs.insert(r.index());
                }
            }
        }
        HwCounter {
            cfg,
            counts: AccessCounts::default(),
            warps: HashMap::new(),
            shared_regs,
            deschedules: 0,
        }
    }

    /// The accumulated counts. RFC accesses appear in the ORF fields (the
    /// structures are the same size and read/write energy; the RFC's tag
    /// energy is not modeled, which favours the hardware scheme).
    pub fn counts(&self) -> AccessCounts {
        self.counts
    }

    fn flush(counts: &mut AccessCounts, state: &mut WarpRfc) {
        if let Some(line) = state.lrf.take() {
            if line.dirty && !line.dead {
                counts.lrf_read += 1;
                counts.mrf_write += 1;
            }
        }
        for line in state.fifo.drain(..) {
            if line.dirty && !line.dead {
                counts.orf_read_private += 1;
                counts.mrf_write += 1;
            }
        }
    }

    fn evict_line(counts: &mut AccessCounts, line: Line) {
        if line.dirty && !line.dead {
            counts.orf_read_private += 1;
            counts.mrf_write += 1;
        }
    }

    /// Inserts (or refreshes) `reg` in the FIFO; returns nothing but counts
    /// the eviction writeback if one occurs.
    fn fifo_insert(
        cfg: &RfcConfig,
        counts: &mut AccessCounts,
        state: &mut WarpRfc,
        reg: u16,
        dirty: bool,
    ) {
        if let Some(line) = state.fifo.iter_mut().find(|l| l.reg == reg) {
            line.dirty |= dirty;
            line.dead = false;
            return;
        }
        if cfg.entries_per_thread == 0 {
            return;
        }
        if state.fifo.len() >= cfg.entries_per_thread {
            let victim = state.fifo.pop_front().expect("nonempty");
            Self::evict_line(counts, victim);
        }
        state.fifo.push_back(Line {
            reg,
            dirty,
            dead: false,
        });
    }
}

impl TraceSink for HwCounter {
    fn on_instr(&mut self, event: &InstrEvent<'_>) {
        let instr = event.instr;
        let plan = event.plan;
        let state = self.warps.entry(event.warp).or_default();
        let counts = &mut self.counts;

        // ---- deschedule detection (two-level scheduler) ----
        let blocks_on_pending = plan.reads().any(|a| state.pending.contains(&a.reg.index()));
        let barrier = instr.op.is_barrier();
        if blocks_on_pending || barrier {
            self.deschedules += 1;
            if self.cfg.flush_on_deschedule {
                Self::flush(counts, state);
            }
            state.pending.clear();
        }
        if self.cfg.flush_on_backward_branch
            && instr.op.is_branch()
            && instr.target.map(|t| t <= event.at.block).unwrap_or(false)
        {
            Self::flush(counts, state);
        }

        // ---- reads ----
        for a in plan.reads() {
            let AccessSlot::Src(slot) = a.slot else {
                continue;
            };
            let reg = a.reg.index();
            let dead = instr.dead_after[slot as usize];
            let consumer_shared = a.datapath == Datapath::Shared;
            let lrf_hit = self.cfg.hw_lrf
                && !consumer_shared
                && state.lrf.map(|l| l.reg == reg).unwrap_or(false);
            if lrf_hit {
                counts.lrf_read += 1;
                if dead {
                    if let Some(l) = state.lrf.as_mut() {
                        l.dead = true;
                    }
                }
                continue;
            }
            if let Some(line) = state.fifo.iter_mut().find(|l| l.reg == reg) {
                if consumer_shared {
                    counts.orf_read_shared += 1;
                } else {
                    counts.orf_read_private += 1;
                }
                if dead {
                    line.dead = true;
                }
                continue;
            }
            counts.mrf_read += 1;
            if self.cfg.allocate_on_read_miss && !dead {
                Self::fifo_insert(&self.cfg, counts, state, reg, false);
            }
        }

        // ---- writes ----
        for r in plan.written_words() {
            let reg = r.index();
            // Overwritten stale copies are dropped silently.
            state.fifo.retain(|l| l.reg != reg);
            if state.lrf.map(|l| l.reg == reg).unwrap_or(false) {
                state.lrf = None;
            }
            state.pending.remove(&reg);

            if instr.op.is_long_latency() {
                // The result arrives after the warp was descheduled and
                // is deposited directly in the MRF.
                counts.mrf_write += 1;
                state.pending.insert(reg);
            } else if self.cfg.hw_lrf
                && instr.op.unit() == Unit::Alu
                && !self.shared_regs.contains(&reg)
            {
                counts.lrf_write += 1;
                if let Some(old) = state.lrf.replace(Line {
                    reg,
                    dirty: true,
                    dead: false,
                }) {
                    if old.dirty && !old.dead {
                        // LRF eviction moves the value into the RFC.
                        counts.lrf_read += 1;
                        counts.orf_write_private += 1;
                        Self::fifo_insert(&self.cfg, counts, state, old.reg, true);
                    }
                }
            } else {
                if instr.op.unit().is_shared() {
                    counts.orf_write_shared += 1;
                } else {
                    counts.orf_write_private += 1;
                }
                Self::fifo_insert(&self.cfg, counts, state, reg, true);
            }
        }
    }

    fn on_warp_done(&mut self, warp: usize) {
        // Values at thread exit are dead: no flush traffic.
        self.warps.remove(&warp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, ExecMode, Launch};
    use crate::mem::GlobalMemory;

    fn run(text: &str, cfg: RfcConfig) -> (AccessCounts, u64) {
        let mut kernel = rfh_isa::parse_kernel(text).unwrap();
        // Liveness (dead_after) annotation, as the compiler provides in \[11\].
        let lv = rfh_analysis::Liveness::compute(&kernel);
        rfh_analysis::liveness::annotate_dead(&mut kernel, &lv);
        let mut mem = GlobalMemory::new(4096);
        let mut hw = HwCounter::new(cfg, &kernel);
        execute(
            &kernel,
            &Launch::new(1, 32),
            &mut mem,
            ExecMode::Baseline,
            &mut [&mut hw],
        )
        .unwrap();
        (hw.counts(), hw.deschedules)
    }

    const CHAIN: &str = "
.kernel chain
BB0:
  mov r0, %tid.x
  iadd r1 r0, 1
  iadd r2 r1, 1
  st.global r0, r2
  exit
";

    #[test]
    fn rfc_captures_producer_consumer_traffic() {
        let (c, _) = run(CHAIN, RfcConfig::two_level(6));
        // All three produced values are written to the RFC; all four reads
        // hit (r0 allocated at production by mov).
        assert_eq!(c.orf_write_private + c.orf_write_shared, 3);
        assert_eq!(c.orf_read_private + c.orf_read_shared, 4);
        assert_eq!(c.mrf_read, 0);
        // Dead values (liveness-elided) never write back.
        assert_eq!(c.mrf_write, 0);
    }

    #[test]
    fn eviction_writes_back_live_values() {
        // Produce 3 live values in a 1-entry RFC, then read them all:
        // evictions must write back, and the reads partially miss.
        let text = "
.kernel ev
BB0:
  mov r0, %tid.x
  iadd r1 r0, 1
  iadd r2 r0, 2
  iadd r3 r1, r2
  st.global r0, r3
  exit
";
        let (c, _) = run(text, RfcConfig::two_level(1));
        assert!(c.mrf_write > 0, "live evictions write back");
        assert!(c.mrf_read > 0, "evicted values must be re-read from MRF");
        // Writeback overhead reads: RFC read per live eviction.
        let (c6, _) = run(text, RfcConfig::two_level(6));
        assert!(c6.mrf_read < c.mrf_read);
    }

    #[test]
    fn deschedule_flushes_live_values() {
        let text = "
.kernel ds
BB0:
  mov r0, %tid.x
  iadd r1 r0, 1
  ld.global r2 r0
  iadd r3 r2, r1
  st.global r0, r3
  exit
";
        let (c, deschedules) = run(text, RfcConfig::two_level(6));
        assert_eq!(
            deschedules,
            32 / 32,
            "one deschedule per warp at the load consumer"
        );
        // r1 is live across the deschedule: flushed (RFC read + MRF write),
        // then re-read from the MRF.
        assert!(c.mrf_write >= 1);
        assert!(c.mrf_read >= 1);

        let no_flush = RfcConfig {
            flush_on_deschedule: false,
            ..RfcConfig::two_level(6)
        };
        let (c2, _) = run(text, no_flush);
        assert!(c2.mrf_read < c.mrf_read, "never-flush keeps r1 in the RFC");
    }

    #[test]
    fn long_latency_results_write_mrf_directly() {
        let text = "
.kernel ll
BB0:
  mov r0, %tid.x
  ld.global r1 r0
  iadd r2 r1, 1
  st.global r0, r2
  exit
";
        let (c, _) = run(text, RfcConfig::two_level(6));
        // The load result goes to the MRF; its consumer reads the MRF.
        assert!(c.mrf_write >= 1);
        assert!(c.mrf_read >= 1);
    }

    #[test]
    fn hw_lrf_captures_back_to_back_values() {
        let (c2, _) = run(CHAIN, RfcConfig::two_level(6));
        let (c3, _) = run(CHAIN, RfcConfig::three_level(6));
        assert!(c3.lrf_read > 0, "back-to-back chain hits the HW LRF");
        assert!(c3.lrf_write > 0);
        assert!(
            c3.orf_read_private < c2.orf_read_private,
            "LRF hits replace RFC reads"
        );
    }

    #[test]
    fn backward_branch_flush_variant_costs_more() {
        let text = "
.kernel loop
BB0:
  mov r0, %tid.x
  mov r1, 0
  mov r2, 0
BB1:
  iadd r1 r1, 1
  iadd r2 r2, 3
  setp.lt p0 r1, 10
  @p0 bra BB1
BB2:
  st.global r0, r2
  exit
";
        let (keep, _) = run(text, RfcConfig::two_level(6));
        let flush_cfg = RfcConfig {
            flush_on_backward_branch: true,
            ..RfcConfig::two_level(6)
        };
        let (flush, _) = run(text, flush_cfg);
        assert!(
            flush.mrf_read + flush.mrf_write > keep.mrf_read + keep.mrf_write,
            "flushing at backedges forces loop-carried values through the MRF"
        );
    }

    #[test]
    fn shared_consumer_reads_use_shared_port() {
        let text = "
.kernel sc
BB0:
  mov r0, %tid.x
  iadd r1 r0, 64
  ld.shared r2 r1
  st.global r0, r2
  exit
";
        let (c, _) = run(text, RfcConfig::two_level(6));
        assert!(c.orf_read_shared > 0);
    }
}
