//! The stage-combinator timing engine ([`super::Engine::Staged`]).
//!
//! Same semantics as [`super::reference`], recomposed from the
//! [`super::stage`] vocabulary so each scheduler concern is an explicit,
//! swappable part:
//!
//! * active-set occupancy — [`Credit`] flow control inside
//!   [`ActiveSet`];
//! * active-set refill — [`PriorityMux`] (lowest pending warp first);
//! * warp issue selection — [`RrMux`] (round-robin; the greedy policy
//!   resets the pointer instead of advancing it);
//! * issue/commit seam — a [`Skid`] buffer, drained the same cycle
//!   today, but the registered boundary a future writeback stage would
//!   backpressure;
//! * shared SFU/MEM/TEX datapaths — quarter-rate [`Pipe`]s;
//! * MRF operand collection — [`BankStage`], ideal (reference-equal) or
//!   bank-arbitrated with per-bank operand-buffer [`Fifo`]s.
//!
//! Under [`BankPolicy::Ideal`] every decision reduces to the reference
//! engine's arithmetic, which is what the differential suite
//! (`tests/timing_differential.rs`) and the chaos trace layer pin.

use std::collections::HashSet;

use rfh_isa::Unit;

use super::stage::{Credit, Fifo, Pipe, PriorityMux, RrMux, Skid, Stage};
use super::{
    pending_latency, BankPolicy, DeadlockSnapshot, SchedPolicy, TimingConfig, TimingError,
    TimingResult, TraceOp, WarpSnapshot,
};

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Active,
    Pending { resume: u64 },
    AtBarrier,
    Done,
}

/// Per-warp register scoreboard: result-ready cycles plus the set of
/// registers whose pending producer is long-latency.
struct Scoreboard {
    reg_ready: Vec<u64>,
    long_regs: HashSet<u16>,
}

impl Scoreboard {
    fn new(max_reg: usize) -> Self {
        Scoreboard {
            reg_ready: vec![0; max_reg],
            long_regs: HashSet::new(),
        }
    }

    /// The cycle all of `op`'s sources are ready (0 when none).
    fn ready_at(&self, op: &TraceOp) -> u64 {
        op.srcs
            .iter()
            .flatten()
            .map(|r| self.reg_ready[*r as usize])
            .max()
            .unwrap_or(0)
    }

    /// Whether a not-yet-ready source is fed by a long-latency producer
    /// (the two-level deschedule trigger).
    fn blocked_on_long(&self, op: &TraceOp, now: u64) -> bool {
        op.srcs
            .iter()
            .flatten()
            .any(|r| self.reg_ready[*r as usize] > now && self.long_regs.contains(r))
    }

    /// Records the issue of `op` at `now`: retires satisfied long-reg
    /// entries and posts destination ready times. `extra` is additional
    /// result latency from operand collection (0 under the ideal MRF).
    fn issue(&mut self, op: &TraceOp, now: u64, extra: u64) {
        for r in op.srcs.iter().flatten() {
            if self.reg_ready[*r as usize] <= now {
                self.long_regs.remove(r);
            }
        }
        for d in op.dsts.iter().flatten() {
            self.reg_ready[*d as usize] = now + op.latency + extra;
            if op.long {
                self.long_regs.insert(*d);
            } else {
                self.long_regs.remove(d);
            }
        }
    }
}

/// The scheduler's upper level: the ordered active set, with occupancy
/// bounded by credit-based flow control.
struct ActiveSet {
    order: Vec<usize>,
    credit: Credit,
}

impl ActiveSet {
    fn new(slots: usize) -> Self {
        ActiveSet {
            order: Vec::new(),
            credit: Credit::new(slots),
        }
    }

    fn len(&self) -> usize {
        self.order.len()
    }

    fn at(&self, pos: usize) -> usize {
        self.order[pos]
    }

    fn has_credit(&self) -> bool {
        self.credit.available() > 0
    }

    /// Admits a warp (appending, as hardware would enqueue), holding one
    /// credit for it.
    fn push(&mut self, warp: usize) -> bool {
        if self.credit.acquire() {
            self.order.push(warp);
            true
        } else {
            false
        }
    }

    /// Evicts a warp (retire/deschedule/barrier), releasing its credit.
    fn remove(&mut self, warp: usize) {
        let before = self.order.len();
        self.order.retain(|&w| w != warp);
        if self.order.len() < before {
            self.credit.release();
        }
    }
}

/// The shared quarter-rate datapaths (SFU/MEM/TEX), each a fixed-latency
/// pipe whose initiation interval is `shared_issue_cycles`. ALU issues at
/// full rate and has no pipe.
struct SharedUnits {
    sfu: Pipe<()>,
    mem: Pipe<()>,
    tex: Pipe<()>,
}

impl SharedUnits {
    fn new(interval: u64) -> Self {
        SharedUnits {
            sfu: Pipe::new(1, interval),
            mem: Pipe::new(1, interval),
            tex: Pipe::new(1, interval),
        }
    }

    fn pipe(&self, unit: Unit) -> Option<&Pipe<()>> {
        match unit {
            Unit::Sfu => Some(&self.sfu),
            Unit::Mem => Some(&self.mem),
            Unit::Tex => Some(&self.tex),
            _ => None,
        }
    }

    fn ready(&self, unit: Unit, now: u64) -> bool {
        self.pipe(unit).is_none_or(|p| p.ready(now))
    }

    /// The cycle the unit next accepts an issue (0 for full-rate units).
    fn free_at(&self, unit: Unit) -> u64 {
        self.pipe(unit).map_or(0, Pipe::free_at)
    }

    fn occupy(&mut self, unit: Unit, now: u64) {
        let pipe = match unit {
            Unit::Sfu => &mut self.sfu,
            Unit::Mem => &mut self.mem,
            Unit::Tex => &mut self.tex,
            _ => return,
        };
        // The pipe applies backpressure via `ready`; the scheduler only
        // occupies units it saw ready, so a bounce cannot happen.
        let _ = pipe.offer(now, ());
    }

    /// Drains completed issues so pipe occupancy stays bounded.
    fn retire(&mut self, now: u64) {
        while self.sfu.take(now).is_some() {}
        while self.mem.take(now).is_some() {}
        while self.tex.take(now).is_some() {}
    }
}

/// The MRF operand-collection stage.
///
/// `Ideal` reads every operand the issue cycle at no cost — the
/// reference model. `Arbitrated` interleaves registers across
/// single-ported banks (`reg % banks`): each bank grants one read per
/// cycle in arrival order through a depth-bounded operand-buffer
/// [`Fifo`], so same-bank operand reads serialize. Issue stalls only
/// when a needed bank's operand buffer is full; the serialization delay
/// itself lands on the instruction's result latency (dependents see
/// their operands later), which keeps issue bandwidth honest without
/// blocking the scheduler.
enum BankStage {
    Ideal,
    Arbitrated {
        /// Per-bank in-flight read completions (operand-buffer slots).
        fifos: Vec<Fifo<u64>>,
        /// Per-bank completion time of the last granted read.
        tails: Vec<u64>,
    },
}

impl BankStage {
    fn new(policy: BankPolicy) -> Self {
        match policy {
            BankPolicy::Ideal => BankStage::Ideal,
            BankPolicy::Arbitrated { banks, depth } => BankStage::Arbitrated {
                fifos: (0..banks).map(|_| Fifo::new(depth)).collect(),
                tails: vec![0; banks],
            },
        }
    }

    /// Reads `op` requests from bank `b`.
    fn reads_of(op: &TraceOp, b: usize, banks: usize) -> usize {
        op.srcs
            .iter()
            .flatten()
            .filter(|r| **r as usize % banks == b)
            .count()
    }

    /// Capacity gate: 0 when every needed bank has operand-buffer slots
    /// for `op`'s reads, else the cycle a slot next frees up.
    fn gate(&self, op: &TraceOp, _now: u64) -> u64 {
        match self {
            BankStage::Ideal => 0,
            BankStage::Arbitrated { fifos, .. } => {
                let banks = fifos.len();
                let mut at = 0u64;
                for (b, fifo) in fifos.iter().enumerate() {
                    let need = Self::reads_of(op, b, banks).min(fifo.free() + fifo.len());
                    if fifo.free() < need {
                        if let Some(done) = fifo.peek() {
                            at = at.max(*done);
                        }
                    }
                }
                at
            }
        }
    }

    /// Grants `op`'s reads at `now`: enqueues per-bank completions and
    /// returns the extra result latency from read serialization (0 when
    /// every operand came from a distinct uncontended bank).
    fn issue(&mut self, op: &TraceOp, now: u64) -> u64 {
        match self {
            BankStage::Ideal => 0,
            BankStage::Arbitrated { fifos, tails } => {
                let banks = fifos.len();
                let mut extra = 0u64;
                for b in 0..banks {
                    let reads = Self::reads_of(op, b, banks);
                    if reads == 0 {
                        continue;
                    }
                    let start = tails[b].max(now);
                    let done = start + reads as u64;
                    tails[b] = done;
                    // One read grant per bank per cycle: the i-th read of
                    // this bank completes at start + i.
                    for i in 1..=reads as u64 {
                        let _ = fifos[b].offer(now, start + i);
                    }
                    extra = extra.max(done - (now + 1));
                }
                extra
            }
        }
    }

    /// Drains reads that completed by `now`.
    fn retire(&mut self, now: u64) {
        if let BankStage::Arbitrated { fifos, .. } = self {
            for fifo in fifos {
                while fifo.peek().is_some_and(|done| *done <= now) {
                    fifo.take();
                }
            }
        }
    }
}

/// Replays captured traces through the stage-composed scheduler.
///
/// Semantics are documented on [`super::simulate_timing`]; this engine is
/// the default ([`super::Engine::Staged`]).
pub(super) fn run(
    traces: &[Vec<TraceOp>],
    cta_of: &dyn Fn(usize) -> usize,
    config: &TimingConfig,
) -> Result<TimingResult, TimingError> {
    let n = traces.len();
    let max_reg = traces
        .iter()
        .flatten()
        .flat_map(|op| op.dsts.iter().chain(op.srcs.iter()).flatten())
        .copied()
        .max()
        .unwrap_or(0) as usize
        + 1;
    let mut sb: Vec<Scoreboard> = (0..n).map(|_| Scoreboard::new(max_reg)).collect();
    let mut pc = vec![0usize; n];
    // An empty trace has nothing to retire; it starts Done so the issue
    // stage never indexes an empty slice.
    let mut phase: Vec<Phase> = (0..n)
        .map(|wi| {
            if traces[wi].is_empty() {
                Phase::Done
            } else {
                Phase::Pending { resume: 0 }
            }
        })
        .collect();
    let mut ever_descheduled = vec![false; n];

    let slots = if config.two_level {
        config.active_warps.min(n)
    } else {
        n
    };
    let n_ctas = (0..n).map(cta_of).max().map(|c| c + 1).unwrap_or(0);
    let mut barrier_arrived = vec![0usize; n_ctas];

    let mut active = ActiveSet::new(slots);
    let refill_mux = PriorityMux;
    let refill = |phase: &mut [Phase], active: &mut ActiveSet, now: u64| {
        while active.has_credit() {
            let candidate = refill_mux.grant(
                phase.len(),
                |i| matches!(phase[i], Phase::Pending { resume } if resume <= now),
            );
            match candidate {
                Some(i) if active.push(i) => phase[i] = Phase::Active,
                _ => break,
            }
        }
    };

    let mut units = SharedUnits::new(config.machine.shared_issue_cycles);
    let mut banks = BankStage::new(config.bank_policy);
    let mut issue_arb = RrMux::new();
    let mut issue_buf: Skid<(usize, TraceOp)> = Skid::new();

    let mut now: u64 = 0;
    let mut instructions: u64 = 0;
    let mut deschedules: u64 = 0;

    refill(&mut phase, &mut active, now);

    loop {
        if phase.iter().all(|p| *p == Phase::Done) {
            break;
        }
        if now > config.max_cycles {
            return Err(TimingError::CycleBudget {
                limit: config.max_cycles,
            });
        }
        units.retire(now);
        banks.retire(now);

        let mut release_cta: Option<usize> = None;
        let mut desched: Option<(usize, u64)> = None;
        let mut granted: Option<usize> = None;

        // Issue stage: scan active positions from the round-robin
        // pointer; first schedulable warp wins the (single) issue port.
        let len = active.len();
        for k in 0..len {
            let p = issue_arb.position(k, len);
            let wi = active.at(p);
            debug_assert_eq!(phase[wi], Phase::Active);
            let op = &traces[wi][pc[wi]];

            // Operand readiness: scoreboard plus the bank capacity gate.
            let score_ready = sb[wi].ready_at(op);
            if score_ready.max(banks.gate(op, now)) > now {
                if config.two_level && sb[wi].blocked_on_long(op, now) {
                    desched = Some((wi, score_ready));
                    break;
                }
                continue; // short stall: wait in place
            }
            if !units.ready(op.unit, now) {
                continue;
            }
            if issue_buf.offer(now, (wi, *op)).is_none() {
                granted = Some(k);
            }
            break;
        }

        // Commit stage: drain the issue skid. (Today the downstream is
        // always ready, so the skid empties the cycle it fills; a future
        // writeback stage would backpressure here.)
        let mut issued = false;
        if let Some(k) = granted {
            if let Some((wi, op)) = issue_buf.take() {
                let extra = banks.issue(&op, now);
                sb[wi].issue(&op, now, extra);
                units.occupy(op.unit, now);
                pc[wi] += 1;
                instructions += 1;
                issued = true;
                match config.policy {
                    SchedPolicy::RoundRobin => issue_arb.advance_past(k, len),
                    SchedPolicy::Greedy => issue_arb.reset(),
                }

                if pc[wi] == traces[wi].len() {
                    phase[wi] = Phase::Done;
                    active.remove(wi);
                } else if op.barrier {
                    let cta = cta_of(wi);
                    phase[wi] = Phase::AtBarrier;
                    active.remove(wi);
                    barrier_arrived[cta] += 1;
                    let expected = (0..n)
                        .filter(|&x| cta_of(x) == cta && phase[x] != Phase::Done)
                        .count();
                    if barrier_arrived[cta] >= expected {
                        release_cta = Some(cta);
                    }
                }
            }
        }

        if let Some((wi, resume)) = desched {
            deschedules += 1;
            ever_descheduled[wi] = true;
            phase[wi] = Phase::Pending { resume };
            active.remove(wi);
        }
        if let Some(cta) = release_cta {
            barrier_arrived[cta] = 0;
            for (x, p) in phase.iter_mut().enumerate() {
                if cta_of(x) == cta && *p == Phase::AtBarrier {
                    *p = Phase::Pending { resume: now };
                }
            }
        }
        refill(&mut phase, &mut active, now);

        if issued || desched.is_some() || release_cta.is_some() {
            now += 1;
            continue;
        }
        // Nothing happened: fast-forward to the next event.
        let mut next_event = u64::MAX;
        for p in 0..active.len() {
            let wi = active.at(p);
            let op = &traces[wi][pc[wi]];
            let ready = sb[wi].ready_at(op).max(banks.gate(op, now));
            let unit = units.free_at(op.unit);
            next_event = next_event.min(ready.max(unit).max(now + 1));
        }
        for p in phase.iter() {
            if let Phase::Pending { resume } = *p {
                next_event = next_event.min(resume.max(now + 1));
            }
        }
        if next_event == u64::MAX {
            let snapshot = DeadlockSnapshot {
                warps: (0..n)
                    .filter(|&wi| phase[wi] != Phase::Done)
                    .map(|wi| WarpSnapshot {
                        warp: wi,
                        cta: cta_of(wi),
                        pc: pc[wi],
                        at_barrier: phase[wi] == Phase::AtBarrier,
                        descheduled: ever_descheduled[wi],
                        pending_latency: pending_latency(
                            traces,
                            wi,
                            pc[wi],
                            &sb[wi].reg_ready,
                            now,
                        ),
                    })
                    .collect(),
            };
            return Err(TimingError::Deadlock {
                cycle: now,
                snapshot,
            });
        }
        now = next_event;
        refill(&mut phase, &mut active, now);
    }

    Ok(TimingResult {
        cycles: now,
        instructions,
        deschedules,
    })
}
