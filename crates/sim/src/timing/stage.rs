//! Latency-insensitive stage combinators for timing models.
//!
//! The vocabulary follows the shakeflow interface-combinator style: a
//! stage exposes a *forward* path (`offer` a payload when the stage is
//! `ready`) and a *backward* path (take completed payloads out), and the
//! pair forms a valid/ready handshake. Composing a timing model from
//! these parts keeps every queue, arbiter, and latency element an
//! explicit, swappable component instead of ad-hoc counters woven
//! through a scheduler loop:
//!
//! * [`Stage`] — the valid/ready handshake contract;
//! * [`Fifo`] — bounded in-order queue (operand buffers);
//! * [`Skid`] — one-entry decoupling buffer with registered output;
//! * [`Pipe`] — fixed-latency, fixed-initiation-interval pipeline
//!   (shared SFU/MEM/TEX datapaths);
//! * [`RrMux`] — round-robin arbiter (warp issue selection, bank read
//!   ports);
//! * [`PriorityMux`] — fixed lowest-index-first arbiter (active-set
//!   refill);
//! * [`Credit`] — credit-based flow control (active-set occupancy).
//!
//! All state is plain data and all methods are deterministic, so engines
//! built from these parts replay byte-identically across runs and across
//! `RFH_JOBS` settings.

use std::collections::VecDeque;

/// The valid/ready handshake every combinator implements.
///
/// A producer calls [`Stage::ready`] and, if `true`, [`Stage::offer`]s a
/// payload; `offer` on a stage that is not ready returns the payload back
/// (backpressure) instead of panicking, so a mis-sequenced caller loses
/// no data.
pub trait Stage {
    /// The payload carried through the stage.
    type Item;

    /// Whether the stage can accept a payload this cycle.
    fn ready(&self, now: u64) -> bool;

    /// Offers a payload at cycle `now`. Returns `None` when accepted, or
    /// `Some(item)` (the payload handed back) when the stage is full.
    fn offer(&mut self, now: u64, item: Self::Item) -> Option<Self::Item>;
}

/// A bounded in-order queue.
///
/// Payloads become takeable in insertion order; the queue applies
/// backpressure when `len == capacity`. Capacity 0 is clamped to 1 so a
/// `Fifo` is never unconditionally stuck.
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> Fifo<T> {
    /// A queue holding up to `capacity` payloads (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Fifo {
            items: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Queued payloads.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Free slots.
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Borrows the oldest payload without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Removes and returns the oldest payload.
    pub fn take(&mut self) -> Option<T> {
        self.items.pop_front()
    }
}

impl<T> Stage for Fifo<T> {
    type Item = T;

    fn ready(&self, _now: u64) -> bool {
        self.items.len() < self.capacity
    }

    fn offer(&mut self, now: u64, item: T) -> Option<T> {
        if self.ready(now) {
            self.items.push_back(item);
            None
        } else {
            Some(item)
        }
    }
}

/// A one-entry skid buffer: registered-output decoupling between two
/// stages, so a downstream stall takes one cycle to propagate upstream
/// instead of combinationally freezing the producer.
#[derive(Debug, Clone, Default)]
pub struct Skid<T> {
    slot: Option<T>,
}

impl<T> Skid<T> {
    /// An empty skid buffer.
    pub fn new() -> Self {
        Skid { slot: None }
    }

    /// Whether a payload is parked in the buffer.
    pub fn is_occupied(&self) -> bool {
        self.slot.is_some()
    }

    /// Borrows the parked payload.
    pub fn peek(&self) -> Option<&T> {
        self.slot.as_ref()
    }

    /// Removes and returns the parked payload.
    pub fn take(&mut self) -> Option<T> {
        self.slot.take()
    }
}

impl<T> Stage for Skid<T> {
    type Item = T;

    fn ready(&self, _now: u64) -> bool {
        self.slot.is_none()
    }

    fn offer(&mut self, now: u64, item: T) -> Option<T> {
        if self.ready(now) {
            self.slot = Some(item);
            None
        } else {
            Some(item)
        }
    }
}

/// A fixed-latency pipeline with a fixed initiation interval.
///
/// A payload offered at cycle `t` completes (becomes takeable) at
/// `t + latency`, and the next payload cannot enter before
/// `t + interval` — `interval > 1` models a shared datapath issuing at a
/// fraction of full throughput (the paper's quarter-rate SFU/MEM/TEX
/// units use `interval = shared_issue_cycles`).
#[derive(Debug, Clone)]
pub struct Pipe<T> {
    latency: u64,
    interval: u64,
    in_flight: VecDeque<(u64, T)>,
    next_free: u64,
}

impl<T> Pipe<T> {
    /// A pipeline with the given result latency and initiation interval
    /// (both minimum 1).
    pub fn new(latency: u64, interval: u64) -> Self {
        Pipe {
            latency: latency.max(1),
            interval: interval.max(1),
            in_flight: VecDeque::new(),
            next_free: 0,
        }
    }

    /// The first cycle at which a new payload can enter.
    pub fn free_at(&self) -> u64 {
        self.next_free
    }

    /// Payloads still in flight.
    pub fn len(&self) -> usize {
        self.in_flight.len()
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Removes and returns the oldest payload whose latency has elapsed
    /// by `now`.
    pub fn take(&mut self, now: u64) -> Option<T> {
        if self.in_flight.front().is_some_and(|(done, _)| *done <= now) {
            self.in_flight.pop_front().map(|(_, item)| item)
        } else {
            None
        }
    }

    /// The completion cycle of the oldest in-flight payload.
    pub fn next_done(&self) -> Option<u64> {
        self.in_flight.front().map(|(done, _)| *done)
    }
}

impl<T> Stage for Pipe<T> {
    type Item = T;

    fn ready(&self, now: u64) -> bool {
        self.next_free <= now
    }

    fn offer(&mut self, now: u64, item: T) -> Option<T> {
        if self.ready(now) {
            self.in_flight.push_back((now + self.latency, item));
            self.next_free = now + self.interval;
            None
        } else {
            Some(item)
        }
    }
}

/// A round-robin arbiter over a dynamically sized request vector.
///
/// The grant pointer advances only past granted requesters, so an
/// ungranted requester keeps its priority (work-conserving fairness).
/// Requesters are addressed by *position* in the caller's current
/// vector; the caller reports the vector length at each grant so the
/// pointer stays in range as requesters come and go.
#[derive(Debug, Clone, Copy, Default)]
pub struct RrMux {
    next: usize,
}

impl RrMux {
    /// An arbiter starting at position 0.
    pub fn new() -> Self {
        RrMux { next: 0 }
    }

    /// Grants the first position `p` (scanning `len` positions starting
    /// at the pointer) for which `request(p)` is true; returns the
    /// winning `(scan_offset, position)`.
    pub fn grant(
        &self,
        len: usize,
        mut request: impl FnMut(usize) -> bool,
    ) -> Option<(usize, usize)> {
        for k in 0..len {
            let p = (self.next + k) % len;
            if request(p) {
                return Some((k, p));
            }
        }
        None
    }

    /// The position scanned at offset `k` this cycle.
    pub fn position(&self, k: usize, len: usize) -> usize {
        (self.next + k) % len
    }

    /// Advances the pointer past scan offset `k` (of `len` positions).
    pub fn advance_past(&mut self, k: usize, len: usize) {
        self.next = (self.next + k + 1) % len.max(1);
    }

    /// Resets the pointer to position 0 (the greedy/oldest-first policy).
    pub fn reset(&mut self) {
        self.next = 0;
    }
}

/// A fixed-priority arbiter: always grants the lowest index whose
/// request is true. Used where the reference semantics are "pick the
/// lowest-numbered candidate" (active-set refill).
#[derive(Debug, Clone, Copy, Default)]
pub struct PriorityMux;

impl PriorityMux {
    /// Grants the lowest index `i < len` for which `request(i)` is true.
    pub fn grant(&self, len: usize, mut request: impl FnMut(usize) -> bool) -> Option<usize> {
        (0..len).find(|&i| request(i))
    }
}

/// Credit-based flow control: a fixed pool of credits, one held per
/// in-flight payload. The holder acquires on entry and releases on
/// retirement; `acquire` failing is the backpressure signal.
#[derive(Debug, Clone, Copy)]
pub struct Credit {
    available: usize,
    capacity: usize,
}

impl Credit {
    /// A pool of `capacity` credits, all initially available.
    pub fn new(capacity: usize) -> Self {
        Credit {
            available: capacity,
            capacity,
        }
    }

    /// Credits currently available.
    pub fn available(&self) -> usize {
        self.available
    }

    /// Credits currently held.
    pub fn held(&self) -> usize {
        self.capacity - self.available
    }

    /// Takes one credit; `false` (backpressure) when the pool is empty.
    pub fn acquire(&mut self) -> bool {
        if self.available > 0 {
            self.available -= 1;
            true
        } else {
            false
        }
    }

    /// Returns one credit to the pool. Saturates at capacity, so a
    /// double release is inert rather than inflating the pool.
    pub fn release(&mut self) {
        self.available = (self.available + 1).min(self.capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_preserves_order_and_backpressures() {
        let mut f: Fifo<u32> = Fifo::new(2);
        assert!(f.is_empty());
        assert_eq!(f.offer(0, 10), None);
        assert_eq!(f.offer(0, 11), None);
        assert!(!f.ready(0));
        // Full: the payload comes back, nothing is lost.
        assert_eq!(f.offer(0, 12), Some(12));
        assert_eq!(f.len(), 2);
        assert_eq!(f.take(), Some(10));
        assert_eq!(f.free(), 1);
        assert_eq!(f.offer(1, 12), None);
        assert_eq!(f.take(), Some(11));
        assert_eq!(f.take(), Some(12));
        assert_eq!(f.take(), None);
    }

    #[test]
    fn fifo_zero_capacity_is_clamped() {
        let mut f: Fifo<u8> = Fifo::new(0);
        assert!(f.ready(0));
        assert_eq!(f.offer(0, 1), None);
        assert_eq!(f.offer(0, 2), Some(2));
    }

    #[test]
    fn skid_holds_exactly_one() {
        let mut s: Skid<&str> = Skid::new();
        assert!(s.ready(0));
        assert_eq!(s.offer(0, "a"), None);
        assert!(s.is_occupied());
        assert_eq!(s.offer(0, "b"), Some("b"));
        assert_eq!(s.peek(), Some(&"a"));
        assert_eq!(s.take(), Some("a"));
        assert!(s.ready(1));
        assert_eq!(s.take(), None);
    }

    #[test]
    fn pipe_applies_latency_and_initiation_interval() {
        let mut p: Pipe<u32> = Pipe::new(8, 4);
        assert!(p.ready(0));
        assert_eq!(p.offer(0, 1), None);
        // Initiation interval: busy until cycle 4.
        assert!(!p.ready(3));
        assert_eq!(p.offer(3, 2), Some(2));
        assert_eq!(p.free_at(), 4);
        assert!(p.ready(4));
        assert_eq!(p.offer(4, 2), None);
        // Latency: payload 1 completes at 8, payload 2 at 12.
        assert_eq!(p.take(7), None);
        assert_eq!(p.next_done(), Some(8));
        assert_eq!(p.take(8), Some(1));
        assert_eq!(p.take(11), None);
        assert_eq!(p.take(12), Some(2));
        assert!(p.is_empty());
    }

    #[test]
    fn pipe_full_throughput_is_interval_one() {
        let mut p: Pipe<u64> = Pipe::new(2, 1);
        for t in 0..4u64 {
            assert!(p.ready(t));
            assert_eq!(p.offer(t, t), None);
        }
        assert_eq!(p.len(), 4);
        for t in 0..4u64 {
            assert_eq!(p.take(t + 2), Some(t));
        }
    }

    #[test]
    fn rr_mux_rotates_only_past_grants() {
        let mut m = RrMux::new();
        // Positions 0..4; only 2 requests.
        assert_eq!(m.grant(4, |p| p == 2), Some((2, 2)));
        // No grant taken: pointer unchanged, same winner next cycle.
        assert_eq!(m.grant(4, |p| p == 2), Some((2, 2)));
        m.advance_past(2, 4);
        // Pointer now at 3: scan order is 3,0,1,2.
        assert_eq!(m.grant(4, |_| true), Some((0, 3)));
        m.advance_past(0, 4);
        assert_eq!(m.grant(4, |_| true), Some((0, 0)));
        assert_eq!(m.grant(4, |_| false), None);
    }

    #[test]
    fn rr_mux_is_fair_over_contending_requesters() {
        // Two always-requesting positions alternate grants.
        let mut m = RrMux::new();
        let mut wins = [0u32; 2];
        for _ in 0..10 {
            let (k, p) = m.grant(2, |_| true).unwrap();
            wins[p] += 1;
            m.advance_past(k, 2);
        }
        assert_eq!(wins, [5, 5]);
    }

    #[test]
    fn rr_mux_advance_handles_shrinking_vector() {
        let mut m = RrMux::new();
        m.advance_past(3, 4); // pointer 0 -> 0 (wraps)
        assert_eq!(m.position(0, 4), 0);
        m.advance_past(2, 3); // pointer -> 0 on a 3-long vector
        assert_eq!(m.position(0, 3), 0);
        m.advance_past(0, 0); // empty vector: no panic, pointer 0
        assert_eq!(m.position(0, 1), 0);
    }

    #[test]
    fn priority_mux_always_grants_lowest() {
        let m = PriorityMux;
        assert_eq!(m.grant(5, |i| i >= 3), Some(3));
        assert_eq!(m.grant(5, |_| true), Some(0));
        assert_eq!(m.grant(5, |_| false), None);
        assert_eq!(m.grant(0, |_| true), None);
    }

    #[test]
    fn credit_bounds_occupancy() {
        let mut c = Credit::new(2);
        assert!(c.acquire());
        assert!(c.acquire());
        assert_eq!(c.available(), 0);
        assert_eq!(c.held(), 2);
        assert!(!c.acquire());
        c.release();
        assert!(c.acquire());
        // Saturating release: cannot mint credits beyond capacity.
        c.release();
        c.release();
        c.release();
        assert_eq!(c.available(), 2);
    }
}
