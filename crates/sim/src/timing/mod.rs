//! Cycle-level timing model of the two-level warp scheduler.
//!
//! The paper's performance claim (§6): with 8 active warps out of 32
//! resident, the two-level scheduler loses no performance relative to a
//! scheduler that considers all warps, because the active set hides short
//! (ALU/shared-memory) latencies while descheduling hides long (DRAM/
//! texture) latencies.
//!
//! The model is trace driven: a [`TraceCapture`] sink records each warp's
//! dynamic instruction stream (latency class, operands, unit); the
//! scheduler then replays all warps with:
//!
//! * single-issue in-order issue per cycle across active warps
//!   (round-robin);
//! * per-warp register scoreboards;
//! * shared-datapath units (SFU/MEM/TEX) issuing at quarter throughput;
//! * descheduling on dependences on in-flight long-latency results, and at
//!   barriers (warps wait off the active set);
//! * idle-cycle fast-forwarding, so long DRAM stalls cost simulation time
//!   proportional to events, not cycles.
//!
//! Two engines implement those semantics:
//!
//! * [`Engine::Staged`] (the default) — the scheduler recomposed from the
//!   latency-insensitive stage vocabulary in [`stage`] (valid/ready
//!   handshakes, FIFOs, skid buffers, round-robin and priority arbiters,
//!   fixed-latency pipes, credit-based flow control), so bank
//!   arbitration, operand buffering, and the scheduler policy are
//!   swappable parts instead of hand-woven loops;
//! * [`Engine::Reference`] — the original bespoke engine, frozen in
//!   [`reference`] as the differential oracle the staged engine is
//!   conformance-tested against (`tests/timing_differential.rs` and the
//!   chaos `run_timing_layer`).
//!
//! [`multi_sm`] scales the model beyond one SM: CTAs distribute
//! round-robin across N SM contexts that share a [`MemoryModel`], and the
//! SMs simulate in parallel over the `RFH_JOBS` pool with input-order
//! folding, so results are identical at any job count.

use std::error::Error;
use std::fmt;

use rfh_isa::Unit;

use crate::machine::MachineConfig;
use crate::sink::{InstrEvent, TraceSink};

pub mod multi_sm;
pub mod reference;
pub mod stage;
mod staged;

pub use multi_sm::{simulate_multi_sm, MemoryModel, MultiSmConfig, MultiSmResult, SmResult};

/// Default cycle budget for a timing simulation ([`TimingConfig::max_cycles`]).
///
/// Far above any real workload in this repo (the full paper sweep stays
/// under ten million cycles) while still bounding a runaway simulation to
/// seconds of wall time thanks to idle-cycle fast-forwarding.
pub const DEFAULT_MAX_CYCLES: u64 = 1_000_000_000;

/// Which timing engine replays the traces.
///
/// Production code should use [`Engine::Staged`]; the frozen reference
/// engine exists for differential testing and for reproducing any
/// divergence from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The stage-combinator engine (the default).
    #[default]
    Staged,
    /// The frozen pre-refactor engine ([`reference`]), the oracle.
    Reference,
}

impl Engine {
    /// Parses an engine name as accepted by `rfhc timing --engine`.
    pub fn from_name(name: &str) -> Option<Engine> {
        match name {
            "staged" => Some(Engine::Staged),
            "reference" => Some(Engine::Reference),
            _ => None,
        }
    }

    /// The name accepted by [`Engine::from_name`].
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Staged => "staged",
            Engine::Reference => "reference",
        }
    }
}

/// The latency class a [`ConfigError::ZeroLatency`] names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyClass {
    /// `MachineConfig::alu_latency`.
    Alu,
    /// `MachineConfig::sfu_latency`.
    Sfu,
    /// `MachineConfig::shared_mem_latency`.
    SharedMem,
    /// `MachineConfig::tex_latency`.
    Tex,
    /// `MachineConfig::dram_latency`.
    Dram,
}

impl fmt::Display for LatencyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LatencyClass::Alu => "ALU",
            LatencyClass::Sfu => "SFU",
            LatencyClass::SharedMem => "shared-memory",
            LatencyClass::Tex => "texture",
            LatencyClass::Dram => "DRAM",
        };
        write!(f, "{name}")
    }
}

/// A structurally invalid [`TimingConfig`], rejected up front by
/// [`simulate_timing_with_engine`] instead of producing silently
/// degenerate schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `two_level` with zero active warps: nothing could ever issue.
    ZeroActiveWarps,
    /// The active set exceeds the machine's resident warps — the
    /// two-level scheduler would silently degenerate to single-level.
    ActiveExceedsResident {
        /// The configured active-set size.
        active: usize,
        /// The machine's resident warps.
        resident: usize,
    },
    /// A zero operation latency: results would be ready the cycle they
    /// issue, which no hardware class of this machine models.
    ZeroLatency {
        /// The offending latency class.
        class: LatencyClass,
    },
    /// A bank-arbitrated MRF with zero banks or zero operand-buffer
    /// depth.
    BankGeometry {
        /// Configured bank count.
        banks: usize,
        /// Configured per-bank operand-buffer depth.
        depth: usize,
    },
    /// The frozen reference engine predates bank modeling and cannot
    /// honor a non-ideal [`BankPolicy`].
    BankPolicyUnsupported,
    /// A multi-SM simulation with zero SMs.
    ZeroSms,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroActiveWarps => {
                write!(f, "two-level scheduler with 0 active warps can never issue")
            }
            ConfigError::ActiveExceedsResident { active, resident } => write!(
                f,
                "active set of {active} exceeds the machine's {resident} resident warps"
            ),
            ConfigError::ZeroLatency { class } => {
                write!(f, "{class} latency of 0 cycles models no hardware class")
            }
            ConfigError::BankGeometry { banks, depth } => write!(
                f,
                "bank-arbitrated MRF needs at least 1 bank and depth-1 operand \
                 buffers (got {banks} banks, depth {depth})"
            ),
            ConfigError::BankPolicyUnsupported => write!(
                f,
                "the reference engine predates bank modeling; use the staged \
                 engine for a bank-arbitrated MRF"
            ),
            ConfigError::ZeroSms => write!(f, "multi-SM simulation needs at least 1 SM"),
        }
    }
}

/// The scheduler state of one unretired warp at the moment of a
/// deadlock, embedded in [`TimingError::Deadlock`] so chaos-layer
/// failures are diagnosable from the message alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpSnapshot {
    /// Warp index.
    pub warp: usize,
    /// The warp's CTA.
    pub cta: usize,
    /// Trace position (next instruction to issue).
    pub pc: usize,
    /// Waiting at a barrier that never released.
    pub at_barrier: bool,
    /// Was descheduled at least once during the run.
    pub descheduled: bool,
    /// Cycles until the next instruction's source operands would be
    /// ready (0 = operands already ready).
    pub pending_latency: u64,
}

impl fmt::Display for WarpSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "w{} cta{} pc{}{}{}{}",
            self.warp,
            self.cta,
            self.pc,
            if self.at_barrier { " at-barrier" } else { "" },
            if self.descheduled { " descheduled" } else { "" },
            if self.pending_latency > 0 {
                format!(" pending+{}", self.pending_latency)
            } else {
                String::new()
            }
        )
    }
}

/// Per-warp state snapshot attached to [`TimingError::Deadlock`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeadlockSnapshot {
    /// One entry per unretired warp, in warp order.
    pub warps: Vec<WarpSnapshot>,
}

impl fmt::Display for DeadlockSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const SHOWN: usize = 8;
        for (i, w) in self.warps.iter().take(SHOWN).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{w}")?;
        }
        if self.warps.len() > SHOWN {
            write!(f, ", +{} more", self.warps.len() - SHOWN)?;
        }
        Ok(())
    }
}

/// An error from the timing model: the simulation could not run to
/// completion. Every case is returned instead of hanging or panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimingError {
    /// The configuration was rejected before simulation started.
    Config(ConfigError),
    /// No active work and no pending events, but warps remain unretired —
    /// typically a barrier mismatch (some warps of a CTA never arrive).
    Deadlock {
        /// The cycle at which the scheduler ran dry.
        cycle: u64,
        /// State of every unretired warp, for diagnosis.
        snapshot: DeadlockSnapshot,
    },
    /// The simulation exceeded [`TimingConfig::max_cycles`].
    CycleBudget {
        /// The configured budget that was exceeded.
        limit: u64,
    },
}

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingError::Config(e) => write!(f, "invalid timing configuration: {e}"),
            TimingError::Deadlock { cycle, snapshot } => write!(
                f,
                "scheduler deadlock at cycle {cycle}: no active work and no \
                 pending events (barrier mismatch?); {} unretired warp(s): {snapshot}",
                snapshot.warps.len()
            ),
            TimingError::CycleBudget { limit } => {
                write!(f, "timing simulation exceeded the {limit}-cycle budget")
            }
        }
    }
}

impl Error for TimingError {}

/// One dynamic instruction in a warp's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Result latency in cycles.
    pub latency: u64,
    /// Executing unit.
    pub unit: Unit,
    /// Whether this is a long-latency (DRAM/texture) operation.
    pub long: bool,
    /// Whether this is a barrier.
    pub barrier: bool,
    /// Destination registers (64-bit values use both slots).
    pub dsts: [Option<u16>; 2],
    /// Source registers.
    pub srcs: [Option<u16>; 3],
}

/// Captures per-warp dynamic traces from the functional executor.
#[derive(Debug)]
pub struct TraceCapture {
    machine: MachineConfig,
    warps_per_cta: usize,
    /// Dynamic instruction stream per warp.
    pub traces: Vec<Vec<TraceOp>>,
}

impl TraceCapture {
    /// Creates a capture sized for a launch of `ctas × threads_per_cta`.
    pub fn new(machine: MachineConfig, threads_per_cta: usize) -> Self {
        let warps_per_cta = threads_per_cta.div_ceil(machine.warp_width);
        TraceCapture {
            machine,
            warps_per_cta,
            traces: Vec::new(),
        }
    }

    /// The CTA index of a warp.
    pub fn cta_of(&self, warp: usize) -> usize {
        warp / self.warps_per_cta
    }

    /// Warps per CTA in the captured launch.
    pub fn warps_per_cta(&self) -> usize {
        self.warps_per_cta
    }
}

impl TraceSink for TraceCapture {
    fn on_instr(&mut self, event: &InstrEvent<'_>) {
        if self.traces.len() <= event.warp {
            self.traces.resize_with(event.warp + 1, Vec::new);
        }
        let instr = event.instr;
        let mut dsts = [None, None];
        for (i, r) in instr.def_regs().enumerate().take(2) {
            dsts[i] = Some(r.index());
        }
        let mut srcs = [None, None, None];
        for (i, (_, r)) in instr.reg_srcs().enumerate().take(3) {
            srcs[i] = Some(r.index());
        }
        self.traces[event.warp].push(TraceOp {
            latency: self.machine.latency(instr.op),
            unit: instr.op.unit(),
            long: instr.op.is_long_latency(),
            barrier: instr.op.is_barrier(),
            dsts,
            srcs,
        });
    }
}

/// Warp selection policy among schedulable warps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Rotate the starting point after every issue (fair; the default).
    #[default]
    RoundRobin,
    /// Always prefer the lowest-numbered ready warp (greedy/oldest-first;
    /// tends to run a few warps far ahead of the rest).
    Greedy,
}

/// MRF read-port model of the staged engine's operand-collection stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BankPolicy {
    /// Infinitely ported MRF: operand reads never stall. This is the
    /// reference engine's (and the paper's §6 model's) behavior, and the
    /// only policy the differential suite runs.
    #[default]
    Ideal,
    /// Single-ported banks with one read grant per bank per cycle:
    /// same-bank operand reads serialize through per-bank operand-buffer
    /// FIFOs, delaying issue (staged engine only). Unlocks the
    /// bank-contention-sensitive techniques of the related work
    /// (GREENER, compiler-assisted RFC replacement).
    Arbitrated {
        /// Number of MRF banks (registers interleave as `reg % banks`).
        banks: usize,
        /// Operand-buffer entries per bank; a full buffer back-pressures
        /// issue until a pending read drains.
        depth: usize,
    },
}

/// Timing simulation configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingConfig {
    /// The machine parameters.
    pub machine: MachineConfig,
    /// Active warps (the two-level scheduler's upper set size).
    pub active_warps: usize,
    /// `false` simulates the single-level baseline scheduler, which keeps
    /// every resident warp schedulable.
    pub two_level: bool,
    /// Warp selection policy.
    pub policy: SchedPolicy,
    /// MRF read-port model (staged engine only; the reference engine
    /// rejects anything but [`BankPolicy::Ideal`]).
    pub bank_policy: BankPolicy,
    /// Cycle budget: the simulation aborts with
    /// [`TimingError::CycleBudget`] once `now` exceeds this. Defaults to
    /// [`DEFAULT_MAX_CYCLES`].
    pub max_cycles: u64,
}

impl TimingConfig {
    /// The paper's two-level scheduler with `active` warps.
    pub fn two_level(active: usize) -> Self {
        TimingConfig {
            machine: MachineConfig::paper(),
            active_warps: active,
            two_level: true,
            policy: SchedPolicy::RoundRobin,
            bank_policy: BankPolicy::Ideal,
            max_cycles: DEFAULT_MAX_CYCLES,
        }
    }

    /// The single-level baseline (all resident warps schedulable).
    pub fn single_level() -> Self {
        TimingConfig {
            machine: MachineConfig::paper(),
            active_warps: usize::MAX,
            two_level: false,
            policy: SchedPolicy::RoundRobin,
            bank_policy: BankPolicy::Ideal,
            max_cycles: DEFAULT_MAX_CYCLES,
        }
    }

    /// Selects a warp selection policy.
    pub fn with_policy(mut self, policy: SchedPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Selects an MRF read-port model.
    pub fn with_bank_policy(mut self, bank_policy: BankPolicy) -> Self {
        self.bank_policy = bank_policy;
        self
    }

    /// Overrides the cycle budget.
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Rejects structurally invalid configurations up front, so both
    /// engines fail identically (and loudly) instead of producing
    /// silently degenerate schedules.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found: a zero or over-resident
    /// active set (two-level only), a zero latency class, or a bank
    /// policy the selected engine cannot honor.
    pub fn validate(&self, engine: Engine) -> Result<(), ConfigError> {
        if self.two_level {
            if self.active_warps == 0 {
                return Err(ConfigError::ZeroActiveWarps);
            }
            if self.active_warps > self.machine.resident_warps {
                return Err(ConfigError::ActiveExceedsResident {
                    active: self.active_warps,
                    resident: self.machine.resident_warps,
                });
            }
        }
        let classes = [
            (self.machine.alu_latency, LatencyClass::Alu),
            (self.machine.sfu_latency, LatencyClass::Sfu),
            (self.machine.shared_mem_latency, LatencyClass::SharedMem),
            (self.machine.tex_latency, LatencyClass::Tex),
            (self.machine.dram_latency, LatencyClass::Dram),
        ];
        for (latency, class) in classes {
            if latency == 0 {
                return Err(ConfigError::ZeroLatency { class });
            }
        }
        match self.bank_policy {
            BankPolicy::Ideal => {}
            BankPolicy::Arbitrated { banks, depth } => {
                if banks == 0 || depth == 0 {
                    return Err(ConfigError::BankGeometry { banks, depth });
                }
                if engine == Engine::Reference {
                    return Err(ConfigError::BankPolicyUnsupported);
                }
            }
        }
        Ok(())
    }
}

/// Result of a timing simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingResult {
    /// Total cycles to drain every warp.
    pub cycles: u64,
    /// Warp instructions issued.
    pub instructions: u64,
    /// Deschedule events (two-level only).
    pub deschedules: u64,
}

impl TimingResult {
    /// Warp instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.instructions as f64 / self.cycles.max(1) as f64
    }
}

/// Cycles until the sources of `traces[warp][pc]` are ready, per the
/// given per-register ready times — the `pending_latency` of a
/// [`WarpSnapshot`]. Shared by both engines so their deadlock snapshots
/// are field-for-field identical.
pub(crate) fn pending_latency(
    traces: &[Vec<TraceOp>],
    warp: usize,
    pc: usize,
    reg_ready: &[u64],
    cycle: u64,
) -> u64 {
    traces[warp]
        .get(pc)
        .map(|op| {
            op.srcs
                .iter()
                .flatten()
                .map(|r| reg_ready[*r as usize])
                .max()
                .unwrap_or(0)
                .saturating_sub(cycle)
        })
        .unwrap_or(0)
}

/// Replays captured traces through the two-level scheduler on the default
/// [`Engine::Staged`]; use [`simulate_timing_with_engine`] to pick the
/// engine explicitly.
///
/// `cta_of` maps warp index → CTA (for barrier scoping); use
/// [`TraceCapture::cta_of`].
///
/// # Errors
///
/// Returns [`TimingError::Config`] for an invalid configuration,
/// [`TimingError::Deadlock`] on a barrier deadlock (a CTA whose warps
/// cannot all reach the barrier — a malformed trace set), and
/// [`TimingError::CycleBudget`] when the simulation exceeds
/// [`TimingConfig::max_cycles`]. It never hangs: every loop iteration
/// either advances the clock or retires work, and the clock is bounded by
/// the budget.
pub fn simulate_timing(
    traces: &[Vec<TraceOp>],
    cta_of: &dyn Fn(usize) -> usize,
    config: &TimingConfig,
) -> Result<TimingResult, TimingError> {
    simulate_timing_with_engine(traces, cta_of, config, Engine::default())
}

/// [`simulate_timing`] on an explicitly chosen [`Engine`].
///
/// # Errors
///
/// As [`simulate_timing`]; both engines return field-for-field identical
/// errors on the same input (pinned by the differential suite and the
/// chaos trace layer).
pub fn simulate_timing_with_engine(
    traces: &[Vec<TraceOp>],
    cta_of: &dyn Fn(usize) -> usize,
    config: &TimingConfig,
    engine: Engine,
) -> Result<TimingResult, TimingError> {
    config.validate(engine).map_err(TimingError::Config)?;
    match engine {
        Engine::Staged => staged::run(traces, cta_of, config),
        Engine::Reference => reference::run(traces, cta_of, config),
    }
}

#[cfg(test)]
mod tests;
