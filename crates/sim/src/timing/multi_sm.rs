//! Multi-SM scaling of the timing model.
//!
//! One [`super::simulate_timing`] call models a single SM. This module
//! instantiates N SM contexts: CTAs distribute round-robin across SMs
//! (CTA `c` runs on SM `c % sms` as local CTA `c / sms`, preserving warp
//! order within each SM), each SM runs the selected timing engine
//! independently, and all SMs share a [`MemoryModel`] that uplifts
//! long-latency (DRAM/TEX) operations as more SMs contend for the
//! memory system.
//!
//! SMs simulate in parallel over the `rfh_testkit::pool` worker pool
//! (the `RFH_JOBS` knob) with results folded in SM order, so a multi-SM
//! run is byte-identical at any job count — pinned by
//! `tests/multi_sm.rs`. With `sms = 1` the distribution and the
//! contention uplift are both identities, so the result equals the
//! single-SM path exactly.

use rfh_testkit::pool;

use super::{
    simulate_timing_with_engine, ConfigError, Engine, TimingConfig, TimingError, TimingResult,
    TraceOp,
};

/// The memory system shared by all SMs.
///
/// Contention is modeled as a fixed-point uplift on long-latency
/// operations: with `s` SMs, a long op's latency becomes
/// `base + base * num * (s - 1) / den` (integer arithmetic, so results
/// are exact and platform-independent). One SM sees no uplift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryModel {
    /// Contention uplift numerator.
    pub contention_num: u64,
    /// Contention uplift denominator (must be nonzero; constructors
    /// guarantee it).
    pub contention_den: u64,
}

impl MemoryModel {
    /// The default contention model: +12.5% long-op latency per
    /// additional SM (so 8 SMs nearly double DRAM latency — in the
    /// ballpark of the paper's single-SM 400-cycle DRAM assumption
    /// scaling under full-chip load).
    pub fn paper() -> Self {
        MemoryModel {
            contention_num: 1,
            contention_den: 8,
        }
    }

    /// An uncontended memory system: long-op latency independent of SM
    /// count (useful to isolate pure scheduling effects).
    pub fn uncontended() -> Self {
        MemoryModel {
            contention_num: 0,
            contention_den: 1,
        }
    }

    /// The effective latency of a long operation with `sms` SMs sharing
    /// the memory system.
    pub fn long_latency(&self, base: u64, sms: usize) -> u64 {
        let extra_sms = sms.saturating_sub(1) as u64;
        base + base * self.contention_num * extra_sms / self.contention_den.max(1)
    }
}

/// Configuration of a multi-SM timing simulation.
#[derive(Debug, Clone)]
pub struct MultiSmConfig {
    /// Number of SM contexts.
    pub sms: usize,
    /// The per-SM scheduler configuration.
    pub per_sm: TimingConfig,
    /// The shared memory system.
    pub memory: MemoryModel,
    /// The timing engine each SM runs.
    pub engine: Engine,
}

impl MultiSmConfig {
    /// `sms` SMs, each running the given scheduler config on the default
    /// engine under the default contention model.
    pub fn new(sms: usize, per_sm: TimingConfig) -> Self {
        MultiSmConfig {
            sms,
            per_sm,
            memory: MemoryModel::paper(),
            engine: Engine::default(),
        }
    }

    /// Selects a memory model.
    pub fn with_memory(mut self, memory: MemoryModel) -> Self {
        self.memory = memory;
        self
    }

    /// Selects a timing engine.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }
}

/// One SM's share of a multi-SM simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmResult {
    /// SM index.
    pub sm: usize,
    /// CTAs distributed to this SM.
    pub ctas: usize,
    /// Warps distributed to this SM.
    pub warps: usize,
    /// The SM's timing result.
    pub result: TimingResult,
}

/// Result of a multi-SM simulation: per-SM results in SM order.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSmResult {
    /// One entry per SM, in SM order (possibly with zero warps when
    /// there are fewer CTAs than SMs).
    pub per_sm: Vec<SmResult>,
}

impl MultiSmResult {
    /// Chip cycles: the slowest SM bounds the launch.
    pub fn cycles(&self) -> u64 {
        self.per_sm
            .iter()
            .map(|s| s.result.cycles)
            .max()
            .unwrap_or(0)
    }

    /// Total instructions issued across SMs.
    pub fn instructions(&self) -> u64 {
        self.per_sm.iter().map(|s| s.result.instructions).sum()
    }

    /// Total deschedule events across SMs.
    pub fn deschedules(&self) -> u64 {
        self.per_sm.iter().map(|s| s.result.deschedules).sum()
    }

    /// Chip-level instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.instructions() as f64 / self.cycles().max(1) as f64
    }
}

/// One SM's distributed slice of the launch.
struct SmWork {
    sm: usize,
    ctas: usize,
    traces: Vec<Vec<TraceOp>>,
    /// Local CTA index per local warp.
    warp_cta: Vec<usize>,
}

/// Distributes CTAs round-robin across `sms` SM contexts and simulates
/// each on the configured engine, SMs in parallel over the `RFH_JOBS`
/// pool.
///
/// # Errors
///
/// [`TimingError::Config`] for zero SMs or an invalid per-SM
/// configuration; otherwise the first per-SM error in SM order
/// (deadlock, cycle budget). See [`super::simulate_timing`].
pub fn simulate_multi_sm(
    traces: &[Vec<TraceOp>],
    cta_of: &dyn Fn(usize) -> usize,
    config: &MultiSmConfig,
) -> Result<MultiSmResult, TimingError> {
    simulate_multi_sm_with_jobs(pool::jobs(), traces, cta_of, config)
}

/// [`simulate_multi_sm`] with an explicit worker count instead of the
/// `RFH_JOBS` knob (determinism tests pin 1 vs N without touching the
/// environment).
///
/// # Errors
///
/// As [`simulate_multi_sm`].
pub fn simulate_multi_sm_with_jobs(
    jobs: usize,
    traces: &[Vec<TraceOp>],
    cta_of: &dyn Fn(usize) -> usize,
    config: &MultiSmConfig,
) -> Result<MultiSmResult, TimingError> {
    if config.sms == 0 {
        return Err(TimingError::Config(ConfigError::ZeroSms));
    }
    // Validate the per-SM config once up front, before distributing work.
    config
        .per_sm
        .validate(config.engine)
        .map_err(TimingError::Config)?;

    // Distribute: CTA c -> SM (c % sms) as local CTA (c / sms); warp
    // order within each SM follows global warp order.
    let mut work: Vec<SmWork> = (0..config.sms)
        .map(|sm| SmWork {
            sm,
            ctas: 0,
            traces: Vec::new(),
            warp_cta: Vec::new(),
        })
        .collect();
    let mut ctas_seen = vec![false; (0..traces.len()).map(cta_of).max().map_or(0, |c| c + 1)];
    for (wi, trace) in traces.iter().enumerate() {
        let cta = cta_of(wi);
        let sm = cta % config.sms;
        let slot = &mut work[sm];
        if !ctas_seen[cta] {
            ctas_seen[cta] = true;
            slot.ctas += 1;
        }
        slot.warp_cta.push(cta / config.sms);
        // The shared memory system: long ops slow down with SM count.
        slot.traces.push(
            trace
                .iter()
                .map(|op| {
                    if op.long {
                        TraceOp {
                            latency: config.memory.long_latency(op.latency, config.sms),
                            ..*op
                        }
                    } else {
                        *op
                    }
                })
                .collect(),
        );
    }

    // Each SM simulates independently; fold in SM order so the result is
    // identical at any job count.
    let results = pool::par_map_with_jobs(jobs, &work, |sm_work| {
        simulate_timing_with_engine(
            &sm_work.traces,
            &|w| sm_work.warp_cta[w],
            &config.per_sm,
            config.engine,
        )
        .map(|result| SmResult {
            sm: sm_work.sm,
            ctas: sm_work.ctas,
            warps: sm_work.traces.len(),
            result,
        })
    });
    let mut per_sm = Vec::with_capacity(results.len());
    for r in results {
        per_sm.push(r?);
    }
    Ok(MultiSmResult { per_sm })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::simulate_timing;

    fn alu_op(dst: u16, src: u16) -> TraceOp {
        TraceOp {
            latency: 8,
            unit: rfh_isa::Unit::Alu,
            long: false,
            barrier: false,
            dsts: [Some(dst), None],
            srcs: [Some(src), None, None],
        }
    }

    fn mem_op(dst: u16, src: u16) -> TraceOp {
        TraceOp {
            latency: 400,
            unit: rfh_isa::Unit::Mem,
            long: true,
            barrier: false,
            dsts: [Some(dst), None],
            srcs: [Some(src), None, None],
        }
    }

    /// 4 CTAs x 2 warps mixing ALU chains with long loads.
    fn workload() -> (Vec<Vec<TraceOp>>, impl Fn(usize) -> usize) {
        let traces: Vec<Vec<TraceOp>> = (0..8)
            .map(|wi| {
                let mut t = Vec::new();
                for i in 0..12u16 {
                    t.push(alu_op(i % 4, (i + 1) % 4));
                    if i % 5 == u16::try_from(wi).unwrap_or(0) % 5 {
                        t.push(mem_op(4, i % 4));
                        t.push(alu_op(5, 4));
                    }
                }
                t
            })
            .collect();
        (traces, |w: usize| w / 2)
    }

    #[test]
    fn contention_uplift_is_identity_at_one_sm() {
        let m = MemoryModel::paper();
        assert_eq!(m.long_latency(400, 1), 400);
        assert_eq!(m.long_latency(400, 2), 450);
        assert_eq!(m.long_latency(400, 8), 750);
        assert_eq!(MemoryModel::uncontended().long_latency(400, 8), 400);
    }

    #[test]
    fn one_sm_matches_the_single_sm_path_exactly() {
        let (traces, cta_of) = workload();
        let cfg = TimingConfig::two_level(4);
        let single = simulate_timing(&traces, &cta_of, &cfg).unwrap();
        let multi =
            simulate_multi_sm(&traces, &cta_of, &MultiSmConfig::new(1, cfg.clone())).unwrap();
        assert_eq!(multi.per_sm.len(), 1);
        assert_eq!(multi.per_sm[0].result, single);
        assert_eq!(multi.cycles(), single.cycles);
        assert_eq!(multi.instructions(), single.instructions);
    }

    #[test]
    fn results_are_identical_at_any_job_count() {
        let (traces, cta_of) = workload();
        let cfg = MultiSmConfig::new(4, TimingConfig::two_level(4));
        let serial = simulate_multi_sm_with_jobs(1, &traces, &cta_of, &cfg).unwrap();
        let parallel = simulate_multi_sm_with_jobs(8, &traces, &cta_of, &cfg).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn both_engines_agree_on_multi_sm_runs() {
        let (traces, cta_of) = workload();
        for sms in [1, 2, 3, 4] {
            let base = MultiSmConfig::new(sms, TimingConfig::two_level(4));
            let staged = simulate_multi_sm(&traces, &cta_of, &base.clone()).unwrap();
            let reference =
                simulate_multi_sm(&traces, &cta_of, &base.with_engine(Engine::Reference)).unwrap();
            assert_eq!(staged, reference, "engines diverge at sms={sms}");
        }
    }

    #[test]
    fn instructions_are_conserved_across_sm_counts() {
        let (traces, cta_of) = workload();
        let total: u64 = traces.iter().map(|t| t.len() as u64).sum();
        for sms in [1, 2, 3, 4, 8] {
            let r = simulate_multi_sm(
                &traces,
                &cta_of,
                &MultiSmConfig::new(sms, TimingConfig::two_level(4)),
            )
            .unwrap();
            assert_eq!(r.instructions(), total, "sms={sms}");
            assert_eq!(r.per_sm.len(), sms);
            assert_eq!(r.per_sm.iter().map(|s| s.warps).sum::<usize>(), 8);
            assert_eq!(r.per_sm.iter().map(|s| s.ctas).sum::<usize>(), 4);
        }
    }

    #[test]
    fn more_sms_than_ctas_leaves_trailing_sms_idle() {
        let (traces, cta_of) = workload();
        let r = simulate_multi_sm(
            &traces,
            &cta_of,
            &MultiSmConfig::new(8, TimingConfig::two_level(4)),
        )
        .unwrap();
        assert_eq!(r.per_sm.len(), 8);
        for s in &r.per_sm[4..] {
            assert_eq!(s.warps, 0);
            assert_eq!(s.result.cycles, 0);
        }
    }

    #[test]
    fn contention_slows_long_latency_workloads_as_sms_grow() {
        // Per-SM work shrinks as CTAs spread out, but the *uplifted*
        // DRAM latency must show up in the slowest SM once the
        // distribution stops shrinking (4 CTAs across 4 SMs: one CTA
        // each, latency up 37.5% vs 1 SM's quarter share).
        let (traces, cta_of) = workload();
        let contended = simulate_multi_sm(
            &traces,
            &cta_of,
            &MultiSmConfig::new(4, TimingConfig::two_level(4)),
        )
        .unwrap();
        let ideal = simulate_multi_sm(
            &traces,
            &cta_of,
            &MultiSmConfig::new(4, TimingConfig::two_level(4))
                .with_memory(MemoryModel::uncontended()),
        )
        .unwrap();
        assert!(
            contended.cycles() > ideal.cycles(),
            "contended {} vs uncontended {}",
            contended.cycles(),
            ideal.cycles()
        );
    }

    #[test]
    fn zero_sms_is_a_config_error() {
        let (traces, cta_of) = workload();
        let err = simulate_multi_sm(
            &traces,
            &cta_of,
            &MultiSmConfig::new(0, TimingConfig::two_level(4)),
        )
        .unwrap_err();
        assert_eq!(err, TimingError::Config(ConfigError::ZeroSms));
    }
}
