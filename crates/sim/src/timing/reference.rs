//! The frozen pre-refactor timing engine — the differential oracle.
//!
//! This is the original hand-woven scheduler loop from `timing.rs`,
//! kept verbatim (modulo the shared-type split and the deadlock
//! snapshot) as the oracle that [`super::staged`] is conformance-tested
//! against. Do not "improve" this file: its value is that it does not
//! change. Fix bugs in the staged engine, or — if the reference itself
//! is wrong — change both in one commit and re-run the differential
//! suite.

use std::collections::HashSet;

use rfh_isa::Unit;

use super::{
    pending_latency, DeadlockSnapshot, SchedPolicy, TimingConfig, TimingError, TimingResult,
    TraceOp, WarpSnapshot,
};

#[derive(Debug, Clone, Copy, PartialEq)]
enum Status {
    Active,
    Pending { resume: u64 },
    AtBarrier,
    Done,
}

struct WarpSim {
    next: usize,
    status: Status,
    reg_ready: Vec<u64>,
    long_regs: HashSet<u16>,
    /// Sticky: the warp was descheduled at least once (for the deadlock
    /// snapshot only; no scheduling decision reads this).
    ever_descheduled: bool,
}

/// Replays captured traces through the two-level scheduler.
///
/// Semantics are documented on [`super::simulate_timing`]; this engine is
/// selected with [`super::Engine::Reference`].
pub(super) fn run(
    traces: &[Vec<TraceOp>],
    cta_of: &dyn Fn(usize) -> usize,
    config: &TimingConfig,
) -> Result<TimingResult, TimingError> {
    let n = traces.len();
    let max_reg = traces
        .iter()
        .flatten()
        .flat_map(|op| op.dsts.iter().chain(op.srcs.iter()).flatten())
        .copied()
        .max()
        .unwrap_or(0) as usize
        + 1;
    let mut warps: Vec<WarpSim> = (0..n)
        .map(|wi| WarpSim {
            next: 0,
            // A warp with an empty trace has nothing to retire; starting it
            // Done keeps the issue loop free of empty-slice indexing.
            status: if traces[wi].is_empty() {
                Status::Done
            } else {
                Status::Pending { resume: 0 }
            },
            reg_ready: vec![0; max_reg],
            long_regs: HashSet::new(),
            ever_descheduled: false,
        })
        .collect();
    let slots = if config.two_level {
        config.active_warps.min(n)
    } else {
        n
    };
    // Barrier bookkeeping: arrived counts per CTA.
    let n_ctas = (0..n).map(cta_of).max().map(|c| c + 1).unwrap_or(0);
    let mut barrier_arrived = vec![0usize; n_ctas];

    let mut now: u64 = 0;
    let mut instructions: u64 = 0;
    let mut deschedules: u64 = 0;
    let mut rr: usize = 0;

    // Activate initial warps.
    let mut active: Vec<usize> = Vec::new();
    let activate = |warps: &mut Vec<WarpSim>, active: &mut Vec<usize>, now: u64| {
        while active.len() < slots {
            let candidate = warps
                .iter()
                .enumerate()
                .filter(|(_, w)| matches!(w.status, Status::Pending { resume } if resume <= now))
                .map(|(i, _)| i)
                .next();
            match candidate {
                Some(i) => {
                    warps[i].status = Status::Active;
                    active.push(i);
                }
                None => break,
            }
        }
    };
    activate(&mut warps, &mut active, now);

    let mut sfu_free: u64 = 0;
    let mut mem_free: u64 = 0;
    let mut tex_free: u64 = 0;

    loop {
        if warps.iter().all(|w| w.status == Status::Done) {
            break;
        }
        if now > config.max_cycles {
            return Err(TimingError::CycleBudget {
                limit: config.max_cycles,
            });
        }
        let mut issued = false;
        let mut release_cta: Option<usize> = None;
        let mut to_deschedule: Option<(usize, u64)> = None;

        for k in 0..active.len() {
            let wi = active[(rr + k) % active.len()];
            let trace = &traces[wi];
            let w = &warps[wi];
            debug_assert_eq!(w.status, Status::Active);
            let op = &trace[w.next];

            // Operand readiness.
            let ready_at = op
                .srcs
                .iter()
                .flatten()
                .map(|r| w.reg_ready[*r as usize])
                .max()
                .unwrap_or(0);
            if ready_at > now {
                let blocked_on_long = op
                    .srcs
                    .iter()
                    .flatten()
                    .any(|r| w.reg_ready[*r as usize] > now && w.long_regs.contains(r));
                if config.two_level && blocked_on_long {
                    to_deschedule = Some((wi, ready_at));
                    break;
                }
                continue; // short stall: wait in place
            }
            // Unit availability.
            let unit_free = match op.unit {
                Unit::Sfu => sfu_free,
                Unit::Mem => mem_free,
                Unit::Tex => tex_free,
                _ => 0,
            };
            if unit_free > now {
                continue;
            }

            // ---- issue ----
            let op = *op;
            let w = &mut warps[wi];
            for r in op.srcs.iter().flatten() {
                if w.reg_ready[*r as usize] <= now {
                    w.long_regs.remove(r);
                }
            }
            for d in op.dsts.iter().flatten() {
                w.reg_ready[*d as usize] = now + op.latency;
                if op.long {
                    w.long_regs.insert(*d);
                } else {
                    w.long_regs.remove(d);
                }
            }
            match op.unit {
                Unit::Sfu => sfu_free = now + config.machine.shared_issue_cycles,
                Unit::Mem => mem_free = now + config.machine.shared_issue_cycles,
                Unit::Tex => tex_free = now + config.machine.shared_issue_cycles,
                _ => {}
            }
            w.next += 1;
            instructions += 1;
            issued = true;
            rr = match config.policy {
                SchedPolicy::RoundRobin => (rr + k + 1) % active.len().max(1),
                SchedPolicy::Greedy => 0,
            };

            if w.next == trace.len() {
                w.status = Status::Done;
                active.retain(|&a| a != wi);
            } else if op.barrier {
                let cta = cta_of(wi);
                w.status = Status::AtBarrier;
                active.retain(|&a| a != wi);
                barrier_arrived[cta] += 1;
                let expected = (0..n)
                    .filter(|&x| cta_of(x) == cta && warps[x].status != Status::Done)
                    .count();
                if barrier_arrived[cta] >= expected {
                    release_cta = Some(cta);
                }
            }
            break;
        }

        if let Some((wi, resume)) = to_deschedule {
            deschedules += 1;
            warps[wi].status = Status::Pending { resume };
            warps[wi].ever_descheduled = true;
            active.retain(|&a| a != wi);
        }
        if let Some(cta) = release_cta {
            barrier_arrived[cta] = 0;
            for (x, w) in warps.iter_mut().enumerate() {
                if cta_of(x) == cta && w.status == Status::AtBarrier {
                    w.status = Status::Pending { resume: now };
                }
            }
        }
        activate(&mut warps, &mut active, now);

        if issued || to_deschedule.is_some() || release_cta.is_some() {
            now += 1;
            continue;
        }
        // Nothing happened: fast-forward to the next event.
        let mut next_event = u64::MAX;
        for wi in &active {
            let w = &warps[*wi];
            let op = &traces[*wi][w.next];
            let ready = op
                .srcs
                .iter()
                .flatten()
                .map(|r| w.reg_ready[*r as usize])
                .max()
                .unwrap_or(0);
            let unit = match op.unit {
                Unit::Sfu => sfu_free,
                Unit::Mem => mem_free,
                Unit::Tex => tex_free,
                _ => 0,
            };
            next_event = next_event.min(ready.max(unit).max(now + 1));
        }
        for w in &warps {
            if let Status::Pending { resume } = w.status {
                next_event = next_event.min(resume.max(now + 1));
            }
        }
        if next_event == u64::MAX {
            let snapshot = DeadlockSnapshot {
                warps: warps
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| w.status != Status::Done)
                    .map(|(wi, w)| WarpSnapshot {
                        warp: wi,
                        cta: cta_of(wi),
                        pc: w.next,
                        at_barrier: w.status == Status::AtBarrier,
                        descheduled: w.ever_descheduled,
                        pending_latency: pending_latency(traces, wi, w.next, &w.reg_ready, now),
                    })
                    .collect(),
            };
            return Err(TimingError::Deadlock {
                cycle: now,
                snapshot,
            });
        }
        now = next_event;
        activate(&mut warps, &mut active, now);
    }

    Ok(TimingResult {
        cycles: now,
        instructions,
        deschedules,
    })
}
